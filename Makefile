# Convenience targets; `make ci` mirrors the hosted pipeline.
.PHONY: ci build test lint fmt bench

ci:
	./scripts/ci.sh

build:
	cargo build --release --workspace

test:
	cargo test -q --workspace

lint:
	cargo clippy --workspace --all-targets -- -D warnings

fmt:
	cargo fmt --all

bench:
	cargo bench --workspace
