# Convenience targets; `make ci` mirrors the hosted pipeline.
.PHONY: ci build test lint fmt bench doc smoke

ci:
	./scripts/ci.sh

doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Ingest -> recover round-trip against the release binary (also part of ci).
smoke: build
	@SMOKE=$$(mktemp -d); trap 'rm -rf "$$SMOKE"' EXIT; \
	target/release/gtinker generate --dataset Hollywood-2009 --scale-factor 512 --out "$$SMOKE/g.txt"; \
	target/release/gtinker ingest "$$SMOKE/g.txt" --wal "$$SMOKE/db" --batch 1024 --snapshot-every 4; \
	target/release/gtinker recover "$$SMOKE/db" --root 0

build:
	cargo build --release --workspace

test:
	cargo test -q --workspace

lint:
	cargo clippy --workspace --all-targets -- -D warnings

fmt:
	cargo fmt --all

bench:
	cargo bench --workspace
