# Convenience targets; `make ci` mirrors the hosted pipeline.
.PHONY: ci build test lint fmt bench doc smoke ingest-smoke stats-smoke trace-smoke adaptive-smoke probe-smoke serve-smoke incremental-smoke

ci:
	./scripts/ci.sh

doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Ingest -> recover round-trip against the release binary (also part of ci).
smoke: build
	@SMOKE=$$(mktemp -d); trap 'rm -rf "$$SMOKE"' EXIT; \
	target/release/gtinker generate --dataset Hollywood-2009 --scale-factor 512 --out "$$SMOKE/g.txt"; \
	target/release/gtinker ingest "$$SMOKE/g.txt" --wal "$$SMOKE/db" --batch 1024 --snapshot-every 4; \
	target/release/gtinker recover "$$SMOKE/db" --root 0

# Pooled+pipelined ingest -> recover round-trip, asserting the recovered
# edge count matches the ingested live count (also part of ci).
ingest-smoke: build
	@SMOKE=$$(mktemp -d); trap 'rm -rf "$$SMOKE"' EXIT; \
	target/release/gtinker generate --dataset Hollywood-2009 --scale-factor 512 --out "$$SMOKE/g.txt"; \
	target/release/gtinker ingest "$$SMOKE/g.txt" --wal "$$SMOKE/db" --batch 512 --sync never --pool 4 --pipeline | tee "$$SMOKE/ingest.out"; \
	LIVE=$$(sed -n 's/.* \([0-9][0-9]*\) live, next lsn.*/\1/p' "$$SMOKE/ingest.out"); test -n "$$LIVE"; \
	target/release/gtinker recover "$$SMOKE/db" | tee "$$SMOKE/recover.out"; \
	grep -q "recovered GraphTinker: $$LIVE edges" "$$SMOKE/recover.out"

# Ingest with live metrics, then `stats` on the flat file and on the
# recovered WAL directory; both views must agree on the live edge count
# (also part of ci).
stats-smoke: build
	@SMOKE=$$(mktemp -d); trap 'rm -rf "$$SMOKE"' EXIT; \
	target/release/gtinker generate --dataset Hollywood-2009 --scale-factor 512 --out "$$SMOKE/g.txt"; \
	target/release/gtinker ingest "$$SMOKE/g.txt" --wal "$$SMOKE/db" --batch 1024 --stats | tee "$$SMOKE/ingest.out"; \
	grep -q gtinker_tinker_inserts "$$SMOKE/ingest.out"; \
	target/release/gtinker stats "$$SMOKE/g.txt" --format json | tee "$$SMOKE/file.json"; \
	FE=$$(sed -n 's/.*"live_edges": \([0-9][0-9]*\).*/\1/p' "$$SMOKE/file.json" | head -1); \
	test -n "$$FE"; test "$$FE" -gt 0; \
	target/release/gtinker stats "$$SMOKE/db" --format json | tee "$$SMOKE/dir.json"; \
	DE=$$(sed -n 's/.*"live_edges": \([0-9][0-9]*\).*/\1/p' "$$SMOKE/dir.json" | head -1); \
	test "$$FE" = "$$DE"

# Skewed stream -> adaptive stats; every tier counter must be nonzero and
# the adaptive/fixed layouts must agree on the live edge count (also part
# of ci).
adaptive-smoke: build
	@SMOKE=$$(mktemp -d); trap 'rm -rf "$$SMOKE"' EXIT; \
	target/release/gtinker generate --dataset Zipf_SourceSkew --scale-factor 512 --out "$$SMOKE/skew.txt"; \
	target/release/gtinker stats "$$SMOKE/skew.txt" --adaptive --format json | tee "$$SMOKE/adaptive.json"; \
	for f in tier_inline_vertices tier_blocks_vertices tier_hub_vertices tier_promotions; do \
		V=$$(sed -n "s/.*\"$$f\": \([0-9][0-9]*\).*/\1/p" "$$SMOKE/adaptive.json" | head -1); \
		test -n "$$V"; test "$$V" -gt 0 || { echo "adaptive-smoke: $$f is 0" >&2; exit 1; }; \
	done; \
	AE=$$(sed -n 's/.*"live_edges": \([0-9][0-9]*\).*/\1/p' "$$SMOKE/adaptive.json" | head -1); \
	FE=$$(target/release/gtinker stats "$$SMOKE/skew.txt" --format json | sed -n 's/.*"live_edges": \([0-9][0-9]*\).*/\1/p' | head -1); \
	test "$$AE" = "$$FE"

# Ingest -> stats; the SWAR tag engine must have group-scanned and its
# fingerprint false-positive rate per scanned lane must stay under 2%
# (also part of ci).
probe-smoke: build
	@SMOKE=$$(mktemp -d); trap 'rm -rf "$$SMOKE"' EXIT; \
	target/release/gtinker generate --dataset Hollywood-2009 --scale-factor 512 --out "$$SMOKE/g.txt"; \
	target/release/gtinker stats "$$SMOKE/g.txt" --format json > "$$SMOKE/stats.json"; \
	SCANS=$$(sed -n 's/.*"rhh_tag_group_scans": \([0-9][0-9]*\).*/\1/p' "$$SMOKE/stats.json" | head -1); \
	FPS=$$(sed -n 's/.*"rhh_tag_false_positive": \([0-9][0-9]*\).*/\1/p' "$$SMOKE/stats.json" | head -1); \
	test -n "$$SCANS"; test -n "$$FPS"; \
	test "$$SCANS" -gt 0 || { echo "probe-smoke: rhh_tag_group_scans is 0" >&2; exit 1; }; \
	test $$((FPS * 50)) -lt $$((SCANS * 8)) || { echo "probe-smoke: tag FP rate >= 2% ($$FPS/$$SCANS groups)" >&2; exit 1; }; \
	echo "probe-smoke ok: $$SCANS group scans, $$FPS false positives"

# Traced pooled+pipelined ingest -> Perfetto-loadable timeline; validates
# the exported JSON and that every shard worker produced a track (also
# part of ci, which additionally checks the append/apply overlap).
trace-smoke: build
	@SMOKE=$$(mktemp -d); trap 'rm -rf "$$SMOKE"' EXIT; \
	target/release/gtinker generate --dataset Hollywood-2009 --scale-factor 512 --out "$$SMOKE/g.txt"; \
	target/release/gtinker trace "$$SMOKE/g.txt" --wal "$$SMOKE/db" --batch 256 --sync never --pool 4 --pipeline --out "$$SMOKE/trace.json"; \
	python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); ev=d["traceEvents"]; \
	names={e["tid"]:e["args"]["name"] for e in ev if e.get("ph")=="M" and e.get("name")=="thread_name"}; \
	tids=[t for t,n in names.items() if n.startswith("gtinker-shard-")]; \
	assert len(tids)>=4, "want 4 shard tracks"; \
	assert all(any(e.get("tid")==t and e.get("ph") in ("B","E","i") for e in ev) for t in tids), "empty shard track"; \
	print("trace ok:", len(ev), "events,", len(tids), "shard tracks")' "$$SMOKE/trace.json"

# Pipelined ingest with the live query endpoint attached: curl the
# epoch-pinned query routes, then shut the server down over HTTP (also
# part of ci, which additionally checks 405/400 handling).
serve-smoke: build
	@SMOKE=$$(mktemp -d); trap 'rm -rf "$$SMOKE"' EXIT; \
	target/release/gtinker generate --dataset Hollywood-2009 --scale-factor 512 --out "$$SMOKE/g.txt"; \
	target/release/gtinker ingest "$$SMOKE/g.txt" --wal "$$SMOKE/db" --batch 256 --sync never \
		--pool 2 --pipeline --serve 127.0.0.1:0 --hold > "$$SMOKE/ingest.out" 2>&1 & \
	INGEST_PID=$$!; \
	ADDR=""; for _ in $$(seq 1 50); do \
		ADDR=$$(sed -n 's#serving on http://\([^ ]*\).*#\1#p' "$$SMOKE/ingest.out"); \
		test -n "$$ADDR" && break; sleep 0.1; \
	done; test -n "$$ADDR"; \
	curl -fsS "http://$$ADDR/query/bfs?src=0" | grep -q '"reached":'; \
	curl -fsS "http://$$ADDR/neighbors?v=0" | grep -q '"neighbors":'; \
	curl -fsS "http://$$ADDR/degree?v=0" | grep -q '"degree":'; \
	curl -fsS "http://$$ADDR/quitquitquit" | grep -q "shutting down"; \
	wait "$$INGEST_PID"; echo "serve-smoke ok"

# Churn ingest through the incremental repair engine: deletion-heavy
# incremental CC must equal a cold fixpoint on the same store, churn-free
# incremental CC must match the static solve, and an ingest -> recover
# round trip must agree with incremental BFS on reached vertices (also
# part of ci).
incremental-smoke: build
	@SMOKE=$$(mktemp -d); trap 'rm -rf "$$SMOKE"' EXIT; \
	target/release/gtinker generate --dataset Hollywood-2009 --scale-factor 512 --out "$$SMOKE/g.txt"; \
	target/release/gtinker cc "$$SMOKE/g.txt" --restart incremental --churn-every 5 --batch 512 --verify | tee "$$SMOKE/cc_churn.out"; \
	grep -q "verify: PASS" "$$SMOKE/cc_churn.out"; \
	target/release/gtinker cc "$$SMOKE/g.txt" | tee "$$SMOKE/cc_cold.out"; \
	COLD=$$(sed -n 's/CC: \([0-9][0-9]*\) components.*/\1/p' "$$SMOKE/cc_cold.out"); test -n "$$COLD"; \
	target/release/gtinker cc "$$SMOKE/g.txt" --restart incremental --batch 1024 --verify | tee "$$SMOKE/cc_incr.out"; \
	grep -q "verify: PASS" "$$SMOKE/cc_incr.out"; \
	INCR=$$(sed -n 's/CC: \([0-9][0-9]*\) components.*/\1/p' "$$SMOKE/cc_incr.out"); \
	test "$$COLD" = "$$INCR"; \
	target/release/gtinker ingest "$$SMOKE/g.txt" --wal "$$SMOKE/db" --batch 1024 --sync never; \
	target/release/gtinker recover "$$SMOKE/db" --root 0 | tee "$$SMOKE/recover.out"; \
	RREACH=$$(sed -n 's/BFS from 0: \([0-9][0-9]*\) reached.*/\1/p' "$$SMOKE/recover.out"); test -n "$$RREACH"; \
	target/release/gtinker bfs "$$SMOKE/g.txt" --root 0 --restart incremental --batch 1024 | tee "$$SMOKE/bfs_incr.out"; \
	IREACH=$$(sed -n 's/BFS from 0: \([0-9][0-9]*\) reached.*/\1/p' "$$SMOKE/bfs_incr.out"); \
	test "$$RREACH" = "$$IREACH"; \
	echo "incremental-smoke ok: $$COLD components, $$RREACH reachable from 0"

build:
	cargo build --release --workspace

test:
	cargo test -q --workspace

lint:
	cargo clippy --workspace --all-targets -- -D warnings

fmt:
	cargo fmt --all

bench:
	cargo bench --workspace
