# Convenience targets; `make ci` mirrors the hosted pipeline.
.PHONY: ci build test lint fmt bench doc smoke ingest-smoke

ci:
	./scripts/ci.sh

doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Ingest -> recover round-trip against the release binary (also part of ci).
smoke: build
	@SMOKE=$$(mktemp -d); trap 'rm -rf "$$SMOKE"' EXIT; \
	target/release/gtinker generate --dataset Hollywood-2009 --scale-factor 512 --out "$$SMOKE/g.txt"; \
	target/release/gtinker ingest "$$SMOKE/g.txt" --wal "$$SMOKE/db" --batch 1024 --snapshot-every 4; \
	target/release/gtinker recover "$$SMOKE/db" --root 0

# Pooled+pipelined ingest -> recover round-trip, asserting the recovered
# edge count matches the ingested live count (also part of ci).
ingest-smoke: build
	@SMOKE=$$(mktemp -d); trap 'rm -rf "$$SMOKE"' EXIT; \
	target/release/gtinker generate --dataset Hollywood-2009 --scale-factor 512 --out "$$SMOKE/g.txt"; \
	target/release/gtinker ingest "$$SMOKE/g.txt" --wal "$$SMOKE/db" --batch 512 --sync never --pool 4 --pipeline | tee "$$SMOKE/ingest.out"; \
	LIVE=$$(sed -n 's/.* \([0-9][0-9]*\) live, next lsn.*/\1/p' "$$SMOKE/ingest.out"); test -n "$$LIVE"; \
	target/release/gtinker recover "$$SMOKE/db" | tee "$$SMOKE/recover.out"; \
	grep -q "recovered GraphTinker: $$LIVE edges" "$$SMOKE/recover.out"

build:
	cargo build --release --workspace

test:
	cargo test -q --workspace

lint:
	cargo clippy --workspace --all-targets -- -D warnings

fmt:
	cargo fmt --all

bench:
	cargo bench --workspace
