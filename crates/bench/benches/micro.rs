//! Criterion micro-benchmarks for the hot paths of both data structures
//! and the engine: per-operation costs underlying every figure.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gtinker_core::{sgh::SghUnit, GraphTinker};
use gtinker_datasets::RmatConfig;
use gtinker_engine::{
    algorithms::{Bfs, PageRank, TriangleCount},
    dynamic::symmetrize,
    CsrSnapshot, Engine, ModePolicy, VertexCentricEngine,
};
use gtinker_stinger::Stinger;
use gtinker_types::{DeleteMode, Edge, EdgeBatch, TinkerConfig};

fn workload(edges: u64, seed: u64) -> Vec<Edge> {
    RmatConfig::graph500(13, edges, seed).generate()
}

fn bench_insert(c: &mut Criterion) {
    let edges = workload(50_000, 1);
    let mut group = c.benchmark_group("insert_50k_rmat");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.sample_size(10);

    group.bench_function("graphtinker", |b| {
        b.iter(|| {
            let mut g = GraphTinker::with_defaults();
            for &e in &edges {
                g.insert_edge(black_box(e));
            }
            black_box(g.num_edges())
        })
    });
    group.bench_function("graphtinker_no_cal", |b| {
        b.iter(|| {
            let mut g = GraphTinker::new(TinkerConfig::default().cal(false)).unwrap();
            for &e in &edges {
                g.insert_edge(black_box(e));
            }
            black_box(g.num_edges())
        })
    });
    group.bench_function("stinger", |b| {
        b.iter(|| {
            let mut s = Stinger::with_defaults();
            for &e in &edges {
                s.insert_edge(black_box(e));
            }
            black_box(s.num_edges())
        })
    });
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let edges = workload(50_000, 2);
    let mut gt = GraphTinker::with_defaults();
    gt.apply_batch(&EdgeBatch::inserts(&edges));
    let mut st = Stinger::with_defaults();
    st.apply_batch(&EdgeBatch::inserts(&edges));

    let probes: Vec<(u32, u32)> =
        edges.iter().step_by(7).map(|e| (e.src, e.dst)).take(4_096).collect();
    let mut group = c.benchmark_group("lookup_4k_hits");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("graphtinker", |b| {
        b.iter(|| {
            let mut found = 0u32;
            for &(s, d) in &probes {
                found += gt.contains_edge(s, d) as u32;
            }
            black_box(found)
        })
    });
    group.bench_function("stinger", |b| {
        b.iter(|| {
            let mut found = 0u32;
            for &(s, d) in &probes {
                found += st.contains_edge(s, d) as u32;
            }
            black_box(found)
        })
    });
    group.finish();
}

fn bench_delete(c: &mut Criterion) {
    let edges = workload(30_000, 3);
    let mut pairs: Vec<(u32, u32)> = edges.iter().map(|e| (e.src, e.dst)).collect();
    pairs.sort_unstable();
    pairs.dedup();

    let mut group = c.benchmark_group("delete_full_drain");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    group.sample_size(10);
    for (name, mode) in [
        ("delete_only", DeleteMode::DeleteOnly),
        ("delete_and_compact", DeleteMode::DeleteAndCompact),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut g = GraphTinker::new(TinkerConfig::default().delete_mode(mode)).unwrap();
                g.apply_batch(&EdgeBatch::inserts(&edges));
                for &(s, d) in &pairs {
                    g.delete_edge(s, d);
                }
                black_box(g.num_edges())
            })
        });
    }
    group.bench_function("stinger", |b| {
        b.iter(|| {
            let mut s = Stinger::with_defaults();
            s.apply_batch(&EdgeBatch::inserts(&edges));
            for &(src, dst) in &pairs {
                s.delete_edge(src, dst);
            }
            black_box(s.num_edges())
        })
    });
    group.finish();
}

fn bench_stream(c: &mut Criterion) {
    let edges = workload(100_000, 4);
    let mut gt = GraphTinker::with_defaults();
    gt.apply_batch(&EdgeBatch::inserts(&edges));
    let mut st = Stinger::with_defaults();
    st.apply_batch(&EdgeBatch::inserts(&edges));

    let mut group = c.benchmark_group("stream_all_edges");
    group.throughput(Throughput::Elements(gt.num_edges()));
    group.bench_function("graphtinker_cal", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            gt.for_each_edge(|_, _, w| acc += w as u64);
            black_box(acc)
        })
    });
    group.bench_function("graphtinker_main_scan", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            gt.for_each_edge_main(|_, _, w| acc += w as u64);
            black_box(acc)
        })
    });
    group.bench_function("stinger_chains", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            st.for_each_edge(|_, _, w| acc += w as u64);
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_sgh(c: &mut Criterion) {
    let keys: Vec<u32> = (0..65_536u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
    let mut group = c.benchmark_group("sgh_unit");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("insert_64k", |b| {
        b.iter(|| {
            let mut sgh = SghUnit::with_capacity(16);
            for &k in &keys {
                black_box(sgh.get_or_insert(k));
            }
        })
    });
    let mut built = SghUnit::with_capacity(16);
    for &k in &keys {
        built.get_or_insert(k);
    }
    group.bench_function("lookup_64k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &keys {
                acc += built.get(k).unwrap() as u64;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_bfs_modes(c: &mut Criterion) {
    let edges = workload(100_000, 5);
    let root = edges[0].src;
    let mut gt = GraphTinker::with_defaults();
    gt.apply_batch(&EdgeBatch::inserts(&edges));

    let mut group = c.benchmark_group("bfs_100k_rmat");
    group.sample_size(20);
    for (name, policy) in [
        ("full", ModePolicy::AlwaysFull),
        ("incremental", ModePolicy::AlwaysIncremental),
        ("hybrid", ModePolicy::hybrid()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            b.iter(|| {
                let mut e = Engine::new(Bfs::new(root), policy);
                let r = e.run_from_roots(&gt);
                black_box(r.total_edges_processed)
            })
        });
    }
    group.finish();
}

fn bench_vc_vs_ec(c: &mut Criterion) {
    let edges = workload(80_000, 6);
    let root = edges[0].src;
    let mut gt = GraphTinker::with_defaults();
    gt.apply_batch(&EdgeBatch::inserts(&edges));

    let mut group = c.benchmark_group("vc_vs_ec_bfs");
    group.sample_size(20);
    group.bench_function("edge_centric_hybrid", |b| {
        b.iter(|| {
            let mut e = Engine::new(Bfs::new(root), ModePolicy::hybrid());
            e.run_from_roots(&gt);
            black_box(e.values()[0])
        })
    });
    group.bench_function("vertex_centric_async", |b| {
        b.iter(|| {
            let mut e = VertexCentricEngine::new(Bfs::new(root));
            e.run_from_roots(&gt);
            black_box(e.values()[0])
        })
    });
    group.finish();
}

fn bench_csr_rebuild(c: &mut Criterion) {
    let edges = workload(100_000, 7);
    let mut gt = GraphTinker::with_defaults();
    gt.apply_batch(&EdgeBatch::inserts(&edges));

    let mut group = c.benchmark_group("csr_snapshot");
    group.throughput(Throughput::Elements(gt.num_edges()));
    group.sample_size(20);
    group.bench_function("rebuild_from_store", |b| b.iter(|| black_box(CsrSnapshot::build(&gt))));
    group.finish();
}

fn bench_triangles(c: &mut Criterion) {
    // Point-lookup-dominated analytic: the FIND-mode showcase. Smaller
    // graph (lookup count grows with degree^2).
    let edges = RmatConfig::graph500(10, 10_000, 8).generate();
    let batch = symmetrize(&EdgeBatch::inserts(&edges));
    let mut gt = GraphTinker::with_defaults();
    gt.apply_batch(&batch);
    let mut st = Stinger::with_defaults();
    st.apply_batch(&batch);

    let mut group = c.benchmark_group("triangle_count");
    group.sample_size(10);
    group.bench_function("graphtinker", |b| b.iter(|| black_box(TriangleCount::new().count(&gt))));
    group.bench_function("stinger", |b| b.iter(|| black_box(TriangleCount::new().count(&st))));
    group.finish();
}

fn bench_parallel_gas(c: &mut Criterion) {
    // BFS/PageRank over the sharded engine path vs shard (thread) count.
    let edges = workload(100_000, 9);
    let root = edges[0].src;
    let mut gt = GraphTinker::with_defaults();
    gt.apply_batch(&EdgeBatch::inserts(&edges));

    let mut group = c.benchmark_group("parallel_gas");
    group.throughput(Throughput::Elements(gt.num_edges()));
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        gt.set_analytics_shards(shards);
        group.bench_with_input(BenchmarkId::new("bfs_full", shards), &gt, |b, g| {
            b.iter(|| {
                let mut e = Engine::new(Bfs::new(root), ModePolicy::AlwaysFull);
                let r = e.run_from_roots(g);
                black_box(r.total_edges_processed)
            })
        });
        group.bench_with_input(BenchmarkId::new("pagerank_5it", shards), &gt, |b, g| {
            b.iter(|| black_box(PageRank::new(0.85, 5).run(g)))
        });
    }
    gt.set_analytics_shards(1);
    group.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_lookup,
    bench_delete,
    bench_stream,
    bench_sgh,
    bench_bfs_modes,
    bench_vc_vs_ec,
    bench_csr_rebuild,
    bench_triangles,
    bench_parallel_gas
);
criterion_main!(benches);
