//! CAL vs rebuild-CSR comparison (the paper's "no pre-processing" claim).
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::cal_vs_csr::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
