//! Subblock/workblock geometry ablation (PAGEWIDTH fixed at 64).
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::geometry::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
