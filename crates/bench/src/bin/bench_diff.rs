//! Compares two `BENCH_*.json` result files and exits non-zero when any
//! throughput (`*_meps`) field regressed beyond the threshold.
//!
//! ```text
//! bench_diff OLD.json NEW.json [--threshold PCT]
//! ```

use gtinker_bench::diff::{compare, report, DEFAULT_THRESHOLD_PCT};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<&str> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD_PCT;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--threshold" => {
                let Some(v) = argv.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("error: --threshold expects a number (percent)");
                    std::process::exit(2);
                };
                threshold = v;
                i += 2;
            }
            "--help" | "-h" => {
                println!("usage: bench_diff OLD.json NEW.json [--threshold PCT]");
                println!(
                    "exits 1 if any *_meps field in NEW is more than PCT% (default \
                     {DEFAULT_THRESHOLD_PCT}%) below OLD"
                );
                return;
            }
            f => {
                files.push(f);
                i += 1;
            }
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        eprintln!("usage: bench_diff OLD.json NEW.json [--threshold PCT]");
        std::process::exit(2);
    };
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("error: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let comps = compare(&read(old_path), &read(new_path));
    if comps.is_empty() {
        eprintln!("error: no shared numeric fields between {old_path} and {new_path}");
        std::process::exit(2);
    }
    println!("bench_diff: {old_path} -> {new_path} (threshold {threshold}%)");
    let mut text = String::new();
    let regressed = report(&comps, threshold, &mut text);
    print!("{text}");
    if !regressed.is_empty() {
        std::process::exit(1);
    }
}
