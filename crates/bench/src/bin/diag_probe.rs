//! Probe-distance diagnostics: the measurable mechanism behind every
//! speedup figure. Prints per-operation inspection counts, the tree-depth
//! histogram (GraphTinker's O(log degree) bound) and the Robin Hood probe
//! distribution, next to STINGER's O(degree) chain-walk counts.

use gtinker_bench::experiments::common::{dataset_batches, fresh_stinger, fresh_tinker, hollywood};
use gtinker_bench::Args;

fn main() {
    let args = Args::parse();
    let spec = hollywood(args.scale_factor);
    let batches = dataset_batches(&spec, args.batches, false);
    let mut gt = fresh_tinker();
    let mut st = fresh_stinger();
    for b in &batches {
        gt.apply_batch(b);
        st.apply_batch(b);
    }

    let gs = gt.stats();
    let ss = st.stats();
    println!("dataset: {} ({} edges inserted)\n", spec.name, gs.operations);
    println!(
        "GraphTinker: {:.2} cells/op, {:.2} workblocks/op, {} branch-outs, max depth {}",
        gs.mean_probe(),
        gs.workblocks_fetched as f64 / gs.operations as f64,
        gs.branches_created,
        gs.max_depth
    );
    println!(
        "STINGER    : {:.2} slots/op, {:.2} blocks/op\n",
        ss.mean_probe(),
        ss.blocks_traversed as f64 / ss.operations as f64
    );

    println!("GraphTinker tree-depth histogram (live edges per generation):");
    for (d, n) in gt.depth_histogram().iter().enumerate() {
        println!("  depth {d}: {n}");
    }
    println!("mean depth: {:.3}\n", gt.mean_depth());

    println!("Robin Hood probe-distance histogram:");
    for (p, n) in gt.probe_histogram().iter().enumerate() {
        println!("  probe {p}: {n}");
    }
    println!("\nstructure: {:?}", gt.structure_stats());
}
