//! Fig. 8: insertion throughput vs input size (Hollywood-2009).
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::fig08::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
