//! Fig. 10 companion: analytics (BFS/PageRank) throughput vs shard count.
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::fig10_analytics::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
