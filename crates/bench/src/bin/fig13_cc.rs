//! Fig. 13: CC processing throughput per dataset.
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::fig11_13::run(
        &args,
        gtinker_bench::experiments::common::Algo::Cc,
    );
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
