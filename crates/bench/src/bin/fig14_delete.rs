//! Fig. 14: deletion throughput (delete-only vs delete-and-compact vs STINGER).
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::fig14::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
