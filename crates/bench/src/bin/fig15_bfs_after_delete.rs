//! Fig. 15: BFS throughput as edges are deleted.
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::fig15::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
