//! Fig. 16: average analytics throughput under deletions.
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::fig16::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
