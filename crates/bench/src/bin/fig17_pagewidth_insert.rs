//! Fig. 17: PAGEWIDTH effect on insertion throughput.
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::fig17::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
