//! Degree-adaptive tier benchmark: insert throughput, bytes/edge and BFS
//! latency of the adaptive layout vs the fixed RHH geometry.
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::fig_adaptive::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
