//! Incremental-analytics benchmark: per-batch BFS/CC re-solve time under
//! 1k-op churn for cold, hybrid, monotone-incremental and
//! invalidate-and-repair restart strategies.
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::fig_incremental::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
