//! Ingestion-pipeline benchmark: spawn-per-batch vs persistent shard pool
//! vs pipelined submit, plus durable ingest with/without WAL overlap.
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::fig_ingest_pipeline::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
