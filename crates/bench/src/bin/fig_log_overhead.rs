//! Log-overhead benchmark: pooled ingest throughput with the per-batch
//! structured log record at debug level vs the logger runtime-disabled.
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::fig_log_overhead::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
