//! Metrics-overhead benchmark: ingest throughput with the hot-path metric
//! registry collecting vs runtime-disabled, sequential and pooled paths.
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::fig_metrics_overhead::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
