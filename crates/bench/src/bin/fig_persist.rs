//! Durability benchmark: snapshot bandwidth, WAL append throughput,
//! recovery time vs log length.
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::fig_persist::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
