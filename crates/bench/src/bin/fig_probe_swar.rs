//! SWAR tag-probe benchmark: point-lookup and churn throughput plus
//! cells-inspected-per-find of tag probing vs the seed scalar scan.
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::fig_probe_swar::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
