//! Concurrent-serving benchmark: pipelined writer throughput with epoch-
//! pinned reader threads vs settling reads, plus reader QPS and latency.
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::fig_serve_concurrent::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
