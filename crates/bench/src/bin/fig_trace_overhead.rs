//! Trace-overhead benchmark: pooled/sequential ingest throughput with
//! span tracing on vs runtime-disabled vs all observability disabled.
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::fig_trace_overhead::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
