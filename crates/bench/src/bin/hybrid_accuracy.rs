//! Hybrid inference-box prediction accuracy (section V.B text).
fn main() {
    let args = gtinker_bench::Args::parse();
    let table = gtinker_bench::experiments::hybrid_accuracy::run(&args);
    table.print();
    if let Err(e) = table.write_tsv(&args.out_dir) {
        eprintln!("warning: could not write TSV: {e}");
    }
}
