//! Renders experiment TSVs (from `results/`) as ASCII charts.
//!
//! ```text
//! plot results/fig08_insert_load.tsv [more.tsv ...]
//! plot            # plots every TSV in ./results
//! ```

use gtinker_bench::plot::{filter_series, parse_tsv, render_chart};

fn plot_file(path: &str) {
    match std::fs::read_to_string(path) {
        Ok(content) => match parse_tsv(&content) {
            Ok((caption, xs, series)) => {
                let series = filter_series(series);
                println!("== {path}");
                println!("{}", render_chart(&caption, &xs, &series, 64, 16));
            }
            Err(e) => eprintln!("{path}: {e}"),
        },
        Err(e) => eprintln!("{path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        let mut entries: Vec<_> = std::fs::read_dir("results")
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|x| x == "tsv"))
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default();
        entries.sort();
        if entries.is_empty() {
            eprintln!("no TSVs found; run an experiment first or pass paths");
            std::process::exit(1);
        }
        for p in entries {
            plot_file(p.to_str().unwrap());
        }
    } else {
        for p in &args {
            plot_file(p);
        }
    }
}
