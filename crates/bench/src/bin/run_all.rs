//! Runs the complete evaluation suite (every table and figure) and writes
//! each result to `<out-dir>/<experiment>.tsv`.

use gtinker_bench::experiments::{self, common::Algo};
use gtinker_bench::{Args, Table};

type Experiment = Box<dyn Fn(&Args) -> Table>;

fn main() {
    let args = Args::parse();
    println!(
        "GraphTinker evaluation suite — scale factor {}, {} batches, threads {:?}\n",
        args.scale_factor, args.batches, args.threads
    );
    let suite: Vec<(&str, Experiment)> = vec![
        ("Table 1", Box::new(experiments::table1::run)),
        ("Fig 8", Box::new(experiments::fig08::run)),
        ("Fig 9", Box::new(experiments::fig09::run)),
        ("Fig 10", Box::new(experiments::fig10::run)),
        ("Fig 10 analytics", Box::new(experiments::fig10_analytics::run)),
        ("Fig 11", Box::new(|a: &Args| experiments::fig11_13::run(a, Algo::Bfs))),
        ("Fig 12", Box::new(|a: &Args| experiments::fig11_13::run(a, Algo::Sssp))),
        ("Fig 13", Box::new(|a: &Args| experiments::fig11_13::run(a, Algo::Cc))),
        ("Fig 14", Box::new(experiments::fig14::run)),
        ("Fig 15", Box::new(experiments::fig15::run)),
        ("Fig 16", Box::new(experiments::fig16::run)),
        ("Fig 17", Box::new(experiments::fig17::run)),
        ("Fig 18", Box::new(experiments::fig18::run)),
        ("Fig 19", Box::new(experiments::fig19::run)),
        ("Ablation", Box::new(experiments::ablation::run)),
        ("CAL vs CSR", Box::new(experiments::cal_vs_csr::run)),
        ("Geometry ablation", Box::new(experiments::geometry::run)),
        ("Hybrid accuracy", Box::new(experiments::hybrid_accuracy::run)),
        ("Persistence", Box::new(experiments::fig_persist::run)),
        ("Ingest pipeline", Box::new(experiments::fig_ingest_pipeline::run)),
        ("Metrics overhead", Box::new(experiments::fig_metrics_overhead::run)),
        ("Trace overhead", Box::new(experiments::fig_trace_overhead::run)),
        ("Log overhead", Box::new(experiments::fig_log_overhead::run)),
        ("Adaptive tiers", Box::new(experiments::fig_adaptive::run)),
        ("SWAR probe", Box::new(experiments::fig_probe_swar::run)),
        ("Serve concurrent", Box::new(experiments::fig_serve_concurrent::run)),
        ("Incremental analytics", Box::new(experiments::fig_incremental::run)),
    ];
    for (label, f) in suite {
        let t0 = std::time::Instant::now();
        let table = f(&args);
        table.print();
        if let Err(e) = table.write_tsv(&args.out_dir) {
            eprintln!("warning: could not write TSV for {label}: {e}");
        }
        println!("[{label} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
}
