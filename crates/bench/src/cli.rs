//! Minimal argument handling shared by all experiment binaries.

/// Common experiment parameters.
#[derive(Debug, Clone)]
pub struct Args {
    /// Dataset shrink factor (1 = paper-reported sizes).
    pub scale_factor: u32,
    /// Number of update batches per stream.
    pub batches: usize,
    /// Thread counts for the multicore experiment.
    pub threads: Vec<usize>,
    /// Directory results are written to.
    pub out_dir: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale_factor: 64,
            batches: 10,
            threads: vec![1, 2, 4, 8],
            out_dir: "results".to_string(),
        }
    }
}

impl Args {
    /// Builds arguments from the environment (`GT_SCALE_FACTOR`,
    /// `GT_BATCHES`, `GT_THREADS`, `GT_OUT_DIR`) and then the process
    /// command line (`--scale-factor N`, `--batches N`, `--threads a,b,c`,
    /// `--out-dir PATH`), with the command line winning.
    pub fn parse() -> Self {
        let mut args = Args::default();
        if let Ok(v) = std::env::var("GT_SCALE_FACTOR") {
            if let Ok(n) = v.parse() {
                args.scale_factor = n;
            }
        }
        if let Ok(v) = std::env::var("GT_BATCHES") {
            if let Ok(n) = v.parse() {
                args.batches = n;
            }
        }
        if let Ok(v) = std::env::var("GT_THREADS") {
            args.threads = parse_list(&v);
        }
        if let Ok(v) = std::env::var("GT_OUT_DIR") {
            args.out_dir = v;
        }
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < argv.len() {
            match argv[i].as_str() {
                "--scale-factor" => {
                    args.scale_factor = argv[i + 1].parse().unwrap_or(args.scale_factor)
                }
                "--batches" => args.batches = argv[i + 1].parse().unwrap_or(args.batches),
                "--threads" => args.threads = parse_list(&argv[i + 1]),
                "--out-dir" => args.out_dir = argv[i + 1].clone(),
                _ => {
                    i += 1;
                    continue;
                }
            }
            i += 2;
        }
        args.scale_factor = args.scale_factor.max(1);
        args.batches = args.batches.max(1);
        if args.threads.is_empty() {
            args.threads = vec![1];
        }
        args
    }
}

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',').filter_map(|t| t.trim().parse().ok()).filter(|&n| n > 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let a = Args::default();
        assert_eq!(a.scale_factor, 64);
        assert_eq!(a.batches, 10);
        assert_eq!(a.threads, vec![1, 2, 4, 8]);
    }

    #[test]
    fn list_parsing() {
        assert_eq!(parse_list("1,2, 4"), vec![1, 2, 4]);
        assert_eq!(parse_list("x,0,3"), vec![3]);
        assert!(parse_list("").is_empty());
    }
}
