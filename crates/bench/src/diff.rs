//! Throughput-regression comparison between two `BENCH_*.json` result
//! files (the `bench_diff` binary's engine).
//!
//! Every acceptance benchmark in this crate emits a flat JSON object of
//! numeric fields; the throughput fields all carry a `_meps` suffix
//! (million edges per second, higher is better). `bench_diff` joins two
//! such files on field name, reports the relative change of every shared
//! `_meps` field, and flags a **regression** when the new value falls more
//! than a threshold (default [`DEFAULT_THRESHOLD_PCT`] %) below the old —
//! the contract CI uses to refuse a PR that quietly slows ingest down.
//!
//! Latency fields (`_p99_us` / `_ns` suffixes, lower is better) are gated
//! with the direction inverted: a regression is an *increase* beyond the
//! threshold. Everything else stays informational.
//!
//! The parser is deliberately minimal (no serde_json in the tree): it
//! scans for top-level `"key": number` pairs, which is exactly the shape
//! this crate's writers produce, and ignores everything else — unknown
//! fields, nested objects, strings — so the format can grow without
//! breaking old comparisons.

use std::fmt;

/// Default regression threshold: a throughput drop beyond this fails.
pub const DEFAULT_THRESHOLD_PCT: f64 = 15.0;

/// One field present in both result files.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Field name (e.g. `pooled_enabled_meps`).
    pub key: String,
    /// Value in the baseline (old) file.
    pub old: f64,
    /// Value in the candidate (new) file.
    pub new: f64,
}

impl Comparison {
    /// Relative change in percent; positive = the new run is faster.
    pub fn delta_pct(&self) -> f64 {
        if self.old.abs() < 1e-12 {
            return 0.0;
        }
        (self.new - self.old) / self.old * 100.0
    }

    /// Whether this is a throughput field (higher is better, gated).
    pub fn is_throughput(&self) -> bool {
        self.key.ends_with("_meps")
    }

    /// Whether this is a latency field (lower is better, gated with the
    /// direction inverted).
    pub fn is_latency(&self) -> bool {
        self.key.ends_with("_p99_us") || self.key.ends_with("_ns")
    }

    /// Whether this field is held to the regression gate at all.
    pub fn is_gated(&self) -> bool {
        self.is_throughput() || self.is_latency()
    }

    /// Whether the new value regressed beyond `threshold_pct`: a drop for
    /// throughput fields, a rise for latency fields. Informational fields
    /// (counts, overhead percentages) never fail the gate.
    pub fn is_regression(&self, threshold_pct: f64) -> bool {
        if self.is_throughput() {
            self.delta_pct() < -threshold_pct
        } else if self.is_latency() {
            self.delta_pct() > threshold_pct
        } else {
            false
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {:>12.3} -> {:>12.3}  ({:+.2}%)",
            self.key,
            self.old,
            self.new,
            self.delta_pct()
        )
    }
}

/// Extracts every top-level `"key": number` pair from a flat JSON object.
/// Nested objects, arrays, strings and booleans are skipped; duplicate
/// keys keep the first occurrence.
pub fn parse_numeric_fields(json: &str) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    let bytes = json.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // Find the next quoted key.
        let Some(q0) = json[i..].find('"').map(|p| i + p) else { break };
        let Some(q1) = json[q0 + 1..].find('"').map(|p| q0 + 1 + p) else { break };
        let key = &json[q0 + 1..q1];
        // A key is followed by ':' (possibly spaced); a string value's
        // closing quote is not.
        let rest = json[q1 + 1..].trim_start();
        if let Some(after_colon) = rest.strip_prefix(':') {
            let val = after_colon.trim_start();
            let end = val
                .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
                .unwrap_or(val.len());
            if end > 0 {
                if let Ok(n) = val[..end].parse::<f64>() {
                    if !out.iter().any(|(k, _)| k == key) {
                        out.push((key.to_string(), n));
                    }
                }
            }
        }
        i = q1 + 1;
    }
    out
}

/// Joins two parsed result files on field name, old-file field order.
pub fn compare(old_json: &str, new_json: &str) -> Vec<Comparison> {
    let old = parse_numeric_fields(old_json);
    let new = parse_numeric_fields(new_json);
    old.into_iter()
        .filter_map(|(key, o)| {
            new.iter().find(|(k, _)| *k == key).map(|&(_, n)| Comparison { key, old: o, new: n })
        })
        .collect()
}

/// Renders the full report and the verdict line; returns the regressed
/// comparisons (empty = gate passed).
pub fn report(comps: &[Comparison], threshold_pct: f64, out: &mut String) -> Vec<Comparison> {
    let mut regressed = Vec::new();
    for c in comps {
        let mark = if c.is_regression(threshold_pct) {
            regressed.push(c.clone());
            "  REGRESSION"
        } else if c.is_gated() {
            ""
        } else {
            "  (info)"
        };
        out.push_str(&format!("{c}{mark}\n"));
    }
    let gated = comps.iter().filter(|c| c.is_gated()).count();
    if regressed.is_empty() {
        out.push_str(&format!("OK: {gated} gated field(s) within {threshold_pct}% of baseline\n"));
    } else {
        out.push_str(&format!(
            "FAIL: {} of {gated} gated field(s) regressed more than {threshold_pct}%\n",
            regressed.len()
        ));
    }
    regressed
}

#[cfg(test)]
mod tests {
    use super::*;

    const OLD: &str = r#"{
  "benchmark": "trace_overhead",
  "ops": 80000,
  "pooled_enabled_meps": 10.000,
  "seq_enabled_meps": 20.000,
  "overhead_pct": 1.500,
  "note": "a string: 42 should not parse as a field"
}"#;

    #[test]
    fn parses_flat_numeric_fields_only() {
        let fields = parse_numeric_fields(OLD);
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["ops", "pooled_enabled_meps", "seq_enabled_meps", "overhead_pct"]);
        assert_eq!(fields[1].1, 10.0);
    }

    #[test]
    fn negative_and_exponent_values_parse() {
        let f = parse_numeric_fields(r#"{"a": -2.5, "b": 1e3, "c": 4}"#);
        assert_eq!(f, vec![("a".into(), -2.5), ("b".into(), 1000.0), ("c".into(), 4.0)]);
    }

    #[test]
    fn compare_joins_on_key() {
        let new = OLD.replace("10.000", "9.000").replace("20.000", "30.000");
        let comps = compare(OLD, &new);
        let pooled = comps.iter().find(|c| c.key == "pooled_enabled_meps").unwrap();
        assert!((pooled.delta_pct() + 10.0).abs() < 1e-9);
        let seq = comps.iter().find(|c| c.key == "seq_enabled_meps").unwrap();
        assert!((seq.delta_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn regression_gate_only_fires_on_throughput_fields() {
        // Throughput halved: regression. overhead_pct tripled: info only.
        let new = OLD.replace("10.000", "5.000").replace("1.500", "4.500");
        let comps = compare(OLD, &new);
        let mut text = String::new();
        let regressed = report(&comps, DEFAULT_THRESHOLD_PCT, &mut text);
        assert_eq!(regressed.len(), 1);
        assert_eq!(regressed[0].key, "pooled_enabled_meps");
        assert!(text.contains("REGRESSION"));
        assert!(text.contains("FAIL"));
        // A 10% drop passes the default 15% gate.
        let mild = OLD.replace("10.000", "9.000");
        let mut text = String::new();
        assert!(report(&compare(OLD, &mild), DEFAULT_THRESHOLD_PCT, &mut text).is_empty());
        assert!(text.contains("OK"));
        // ...but fails a tightened 5% gate.
        assert!(!report(&compare(OLD, &mild), 5.0, &mut String::new()).is_empty());
    }

    #[test]
    fn zero_baseline_is_not_a_regression() {
        let c = Comparison { key: "x_meps".into(), old: 0.0, new: 0.0 };
        assert_eq!(c.delta_pct(), 0.0);
        assert!(!c.is_regression(DEFAULT_THRESHOLD_PCT));
    }

    const OLD_LAT: &str = r#"{
  "serve_p99_us": 100.0,
  "find_mean_ns": 250.0,
  "ingest_meps": 10.0,
  "ops": 5000
}"#;

    #[test]
    fn latency_gate_fires_on_increase_not_decrease() {
        // Latency halved: improvement, not a regression.
        let faster = OLD_LAT.replace("100.0", "50.0").replace("250.0", "125.0");
        assert!(report(&compare(OLD_LAT, &faster), DEFAULT_THRESHOLD_PCT, &mut String::new())
            .is_empty());
        // p99 doubled: regression, direction inverted vs throughput.
        let slower = OLD_LAT.replace("100.0", "200.0");
        let regressed =
            report(&compare(OLD_LAT, &slower), DEFAULT_THRESHOLD_PCT, &mut String::new());
        assert_eq!(regressed.len(), 1);
        assert_eq!(regressed[0].key, "serve_p99_us");
        // A `_ns` mean rising past the gate regresses too.
        let slow_ns = OLD_LAT.replace("250.0", "400.0");
        let regressed =
            report(&compare(OLD_LAT, &slow_ns), DEFAULT_THRESHOLD_PCT, &mut String::new());
        assert_eq!(regressed.len(), 1);
        assert_eq!(regressed[0].key, "find_mean_ns");
    }

    #[test]
    fn gated_field_classes_are_disjoint() {
        let lat = Comparison { key: "x_p99_us".into(), old: 1.0, new: 1.0 };
        let tput = Comparison { key: "x_meps".into(), old: 1.0, new: 1.0 };
        let info = Comparison { key: "ops".into(), old: 1.0, new: 1.0 };
        assert!(lat.is_latency() && !lat.is_throughput() && lat.is_gated());
        assert!(tput.is_throughput() && !tput.is_latency() && tput.is_gated());
        assert!(!info.is_gated());
        // Counts never regress even when they balloon.
        let ops = Comparison { key: "ops".into(), old: 10.0, new: 1000.0 };
        assert!(!ops.is_regression(DEFAULT_THRESHOLD_PCT));
    }
}
