//! Ablation (§V.B text): disable SGH and/or CAL and measure the
//! full-processing analytics speedup over STINGER. The paper reports ~10X
//! with both features, dropping to ~1.5X with both disabled — a combined
//! feature contribution of over 91%.

use gtinker_types::TinkerConfig;

use crate::cli::Args;
use crate::experiments::common::{
    dataset_batches, fresh_stinger, fresh_tinker_with, hollywood, pick_root, rmat_2m_32m,
    run_analytics, Algo, Series,
};
use crate::report::{f3, speedup, Table};

/// Runs the SGH/CAL ablation with FP BFS, on the high-degree Hollywood
/// stand-in and on RMAT_2M_32M (whose sparser source space is where SGH
/// pays off).
pub fn run(args: &Args) -> Table {
    let configs: [(&str, TinkerConfig); 4] = [
        ("SGH+CAL", TinkerConfig::default()),
        ("no_SGH", TinkerConfig::default().sgh(false)),
        ("no_CAL", TinkerConfig::default().cal(false)),
        ("neither", TinkerConfig::default().sgh(false).cal(false)),
    ];

    let mut t = Table::new(
        "ablation_sgh_cal",
        "FP-mode BFS throughput with features disabled",
        &["dataset", "config", "throughput_meps", "vs_STINGER", "feature_contribution_pct"],
    );
    for spec in [hollywood(args.scale_factor), rmat_2m_32m(args.scale_factor)] {
        let batches = dataset_batches(&spec, args.batches, false);
        let root = pick_root(&batches);
        let st = run_analytics(fresh_stinger(), &batches, Algo::Bfs, Series::FullProcessing, root);
        let st_meps = st.throughput_meps();
        let mut full_meps = 0.0;
        for (i, (name, cfg)) in configs.into_iter().enumerate() {
            let out = run_analytics(
                fresh_tinker_with(cfg),
                &batches,
                Algo::Bfs,
                Series::FullProcessing,
                root,
            );
            let m = out.throughput_meps();
            if i == 0 {
                full_meps = m;
            }
            let contribution = if full_meps > 0.0 { 100.0 * (1.0 - m / full_meps) } else { 0.0 };
            t.push_row(vec![
                spec.name.to_string(),
                name.to_string(),
                f3(m),
                speedup(m / st_meps),
                if i == 0 { "-".into() } else { f3(contribution) },
            ]);
        }
        t.push_row(vec![
            spec.name.to_string(),
            "STINGER".into(),
            f3(st_meps),
            "1.00x".into(),
            "-".into(),
        ]);
    }
    t
}
