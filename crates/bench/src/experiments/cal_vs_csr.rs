//! CAL vs CSR-rebuild: quantifies the paper's central "no pre-processing"
//! claim (§III.B). The store-and-static-compute model of prior work
//! (§II.B) converts the structure to CSR after every batch to regain
//! sequential streaming; GraphTinker's CAL maintains streamability online.
//! This experiment charges each strategy its true cost per batch:
//!
//! * **CAL**: run FP BFS directly off the live structure (CAL stream);
//! * **CSR**: rebuild a [`CsrSnapshot`] from the structure, then run FP BFS
//!   over the snapshot — rebuild time included;
//! * **CSR (analysis only)**: the same, with the rebuild excluded — the
//!   upper bound CSR streaming could reach if snapshots were free.

use std::time::{Duration, Instant};

use gtinker_engine::{algorithms::Bfs, CsrSnapshot, Engine, ModePolicy};
use gtinker_types::TinkerConfig;

use crate::cli::Args;
use crate::experiments::common::{dataset_batches, fresh_tinker_with, pick_root, DynStore};
use crate::report::{f3, meps, speedup, Table};
use gtinker_datasets::scaled_datasets;

/// Runs the CAL-vs-CSR comparison across the catalog.
pub fn run(args: &Args) -> Table {
    let mut t = Table::new(
        "ablation_cal_vs_csr",
        "FP BFS after every batch: CAL stream vs rebuild-CSR-then-stream (Medges/s)",
        &["dataset", "CAL", "CSR_with_rebuild", "CSR_analysis_only", "CAL_vs_CSR"],
    );
    for spec in scaled_datasets(args.scale_factor) {
        let batches = dataset_batches(&spec, args.batches, false);
        let root = pick_root(&batches);

        // CAL path: stream the live structure.
        let mut g = fresh_tinker_with(TinkerConfig::default());
        let mut cal_time = Duration::ZERO;
        let mut weighted = 0u64;
        for b in &batches {
            g.apply(b);
            let t0 = Instant::now();
            let mut e = Engine::new(Bfs::new(root), ModePolicy::AlwaysFull);
            e.run_from_roots(&g);
            cal_time += t0.elapsed();
            weighted += g.num_edges();
        }

        // CSR path: rebuild a snapshot each batch, then analyze it.
        let mut g = fresh_tinker_with(TinkerConfig::default());
        let mut rebuild_time = Duration::ZERO;
        let mut analyze_time = Duration::ZERO;
        for b in &batches {
            g.apply(b);
            let t0 = Instant::now();
            let csr = CsrSnapshot::build(&g);
            rebuild_time += t0.elapsed();
            let t0 = Instant::now();
            let mut e = Engine::new(Bfs::new(root), ModePolicy::AlwaysFull);
            e.run_from_roots(&csr);
            analyze_time += t0.elapsed();
        }

        let cal = meps(weighted, cal_time);
        let csr_full = meps(weighted, rebuild_time + analyze_time);
        let csr_pure = meps(weighted, analyze_time);
        t.push_row(vec![
            spec.name.to_string(),
            f3(cal),
            f3(csr_full),
            f3(csr_pure),
            speedup(cal / csr_full),
        ]);
    }
    t
}
