//! Shared experiment machinery.

use std::time::{Duration, Instant};

use gtinker_core::GraphTinker;
use gtinker_datasets::{dataset_by_name, insertion_batches, DatasetSpec};
use gtinker_engine::{
    algorithms::{Bfs, Cc, Sssp},
    dynamic::symmetrize,
    DynamicRunner, GraphStore, IncrementalState, ModePolicy, RestartPolicy,
};
use gtinker_stinger::Stinger;
use gtinker_types::{EdgeBatch, TinkerConfig, VertexId};

pub use gtinker_datasets::catalog::scaled_datasets;

/// A store the dynamic experiments can both update and analyze.
pub trait DynStore: GraphStore + Sync {
    /// Applies an update batch.
    fn apply(&mut self, batch: &EdgeBatch);
}

impl DynStore for GraphTinker {
    fn apply(&mut self, batch: &EdgeBatch) {
        self.apply_batch(batch);
    }
}

impl DynStore for Stinger {
    fn apply(&mut self, batch: &EdgeBatch) {
        self.apply_batch(batch);
    }
}

/// The Hollywood-2009 stand-in at the requested scale.
pub fn hollywood(scale_factor: u32) -> DatasetSpec {
    dataset_by_name("Hollywood-2009", scale_factor).expect("catalog dataset")
}

/// The RMAT_2M_32M dataset at the requested scale (deletion experiments).
pub fn rmat_2m_32m(scale_factor: u32) -> DatasetSpec {
    dataset_by_name("RMAT_2M_32M", scale_factor).expect("catalog dataset")
}

/// Splits a dataset into `n` insertion batches, optionally symmetrized
/// (CC needs undirected semantics).
pub fn dataset_batches(spec: &DatasetSpec, n: usize, sym: bool) -> Vec<EdgeBatch> {
    let edges = spec.generate();
    let batch_size = edges.len().div_ceil(n).max(1);
    let batches = insertion_batches(&edges, batch_size);
    if sym {
        batches.iter().map(symmetrize).collect()
    } else {
        batches
    }
}

/// Inserts each batch, timing it; returns `(ops, duration)` per batch.
pub fn timed_inserts<S: DynStore>(store: &mut S, batches: &[EdgeBatch]) -> Vec<(u64, Duration)> {
    batches
        .iter()
        .map(|b| {
            let t0 = Instant::now();
            store.apply(b);
            (b.len() as u64, t0.elapsed())
        })
        .collect()
}

/// The benchmark algorithms, selectable at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Breadth-first search.
    Bfs,
    /// Single-source shortest paths.
    Sssp,
    /// Weakly-connected components (symmetrized input).
    Cc,
}

impl Algo {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Bfs => "BFS",
            Algo::Sssp => "SSSP",
            Algo::Cc => "CC",
        }
    }

    /// Whether the algorithm needs symmetrized (undirected) edges.
    pub fn needs_symmetry(&self) -> bool {
        matches!(self, Algo::Cc)
    }
}

/// An engine-policy series of the analytics figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Series {
    /// Hybrid engine: incremental continuation, inference-box per iteration.
    Hybrid,
    /// Full-processing mode: the store-and-static-compute model.
    FullProcessing,
    /// Incremental-processing mode: incremental continuation, always IP.
    Incremental,
    /// Degree-aware hybrid (this reproduction's extension of the paper's
    /// future-work direction): incremental continuation, per-iteration
    /// FP/IP choice by comparing actual per-mode work.
    DegreeAware,
}

impl Series {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Series::Hybrid => "Hybrid",
            Series::FullProcessing => "FP",
            Series::Incremental => "IP",
            Series::DegreeAware => "HybridDA",
        }
    }

    fn policies(&self) -> (ModePolicy, RestartPolicy) {
        match self {
            Series::Hybrid => (ModePolicy::hybrid(), RestartPolicy::Incremental),
            Series::FullProcessing => (ModePolicy::AlwaysFull, RestartPolicy::StaticRecompute),
            Series::Incremental => (ModePolicy::AlwaysIncremental, RestartPolicy::Incremental),
            Series::DegreeAware => (ModePolicy::degree_aware(), RestartPolicy::Incremental),
        }
    }
}

/// Outcome of one dynamic-analytics run (insert batches, re-analyze after
/// each).
#[derive(Debug, Clone, Copy)]
pub struct AnalyticsOutcome {
    /// Σ over analysis points of the live edge count — the figures'
    /// common throughput numerator.
    pub weighted_edges: u64,
    /// Total analytics wall time (updates excluded).
    pub analytics_time: Duration,
    /// Iterations run in (full, incremental) mode.
    pub mode_counts: (usize, usize),
    /// Edges visited by processing phases.
    pub edges_processed: u64,
}

impl AnalyticsOutcome {
    /// Effective processing throughput in million edges/second.
    pub fn throughput_meps(&self) -> f64 {
        crate::report::meps(self.weighted_edges, self.analytics_time)
    }
}

fn drive<S: DynStore, P: IncrementalState>(
    store: &mut S,
    batches: &[EdgeBatch],
    program: P,
    series: Series,
) -> AnalyticsOutcome {
    let (mode, restart) = series.policies();
    let mut runner = DynamicRunner::new(program, mode, restart);
    let mut weighted = 0u64;
    let mut time = Duration::ZERO;
    let mut full = 0usize;
    let mut inc = 0usize;
    let mut processed = 0u64;
    for b in batches {
        store.apply(b);
        let t0 = Instant::now();
        let report = runner.after_batch(&*store, b);
        time += t0.elapsed();
        weighted += store.num_edges();
        let (f, i) = report.mode_counts();
        full += f;
        inc += i;
        processed += report.total_edges_processed;
    }
    AnalyticsOutcome {
        weighted_edges: weighted,
        analytics_time: time,
        mode_counts: (full, inc),
        edges_processed: processed,
    }
}

/// Runs one algorithm under one series over a fresh store of type `S`,
/// streaming the given batches.
pub fn run_analytics<S: DynStore>(
    mut store: S,
    batches: &[EdgeBatch],
    algo: Algo,
    series: Series,
    root: VertexId,
) -> AnalyticsOutcome {
    match algo {
        Algo::Bfs => drive(&mut store, batches, Bfs::new(root), series),
        Algo::Sssp => drive(&mut store, batches, Sssp::new(root), series),
        Algo::Cc => drive(&mut store, batches, Cc::new(), series),
    }
}

/// A root vertex guaranteed to have outgoing edges: the first batch's first
/// insert source.
pub fn pick_root(batches: &[EdgeBatch]) -> VertexId {
    batches.iter().flat_map(|b| b.iter()).find(|op| op.is_insert()).map(|op| op.src()).unwrap_or(0)
}

/// Fresh GraphTinker with the paper-default configuration.
pub fn fresh_tinker() -> GraphTinker {
    GraphTinker::with_defaults()
}

/// Fresh GraphTinker with a custom configuration.
pub fn fresh_tinker_with(config: TinkerConfig) -> GraphTinker {
    GraphTinker::new(config).expect("valid experiment config")
}

/// Fresh STINGER with the paper-default configuration (edgeblock size 16).
pub fn fresh_stinger() -> Stinger {
    Stinger::with_defaults()
}

/// Serialises tests that toggle the process-global observability flags
/// (metrics/trace runtime enables), so parallel test threads cannot
/// observe each other's mid-measurement state.
#[cfg(test)]
pub(crate) static OBS_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
