//! Fig. 8: insertion throughput vs. input size on Hollywood-2009,
//! single-threaded — GraphTinker with CAL, GraphTinker without CAL, and
//! STINGER. Also reports the paper's load-stability numbers (throughput
//! degradation between the fifth and last batch).

use gtinker_types::TinkerConfig;

use crate::cli::Args;
use crate::experiments::common::{dataset_batches, fresh_stinger, hollywood, timed_inserts};
use crate::report::{f3, meps, Table};

/// Runs the three insertion series batch-by-batch.
pub fn run(args: &Args) -> Table {
    let spec = hollywood(args.scale_factor);
    let batches = dataset_batches(&spec, args.batches, false);

    let mut gt_cal = crate::experiments::common::fresh_tinker();
    let with_cal = timed_inserts(&mut gt_cal, &batches);

    let mut gt_nocal =
        crate::experiments::common::fresh_tinker_with(TinkerConfig::default().cal(false));
    let no_cal = timed_inserts(&mut gt_nocal, &batches);

    let mut st = fresh_stinger();
    let stinger = timed_inserts(&mut st, &batches);

    let mut t = Table::new(
        "fig08_insert_load",
        &format!(
            "Insertion throughput (Medges/s) vs input size, {} ({} edges, {} batches, 1 thread)",
            spec.name,
            spec.edges,
            batches.len()
        ),
        &["batch", "cum_edges", "GT+CAL", "GT-noCAL", "STINGER"],
    );
    let mut cum = 0u64;
    for (i, ((wc, nc), sg)) in with_cal.iter().zip(&no_cal).zip(&stinger).enumerate() {
        cum += wc.0;
        t.push_row(vec![
            (i + 1).to_string(),
            cum.to_string(),
            f3(meps(wc.0, wc.1)),
            f3(meps(nc.0, nc.1)),
            f3(meps(sg.0, sg.1)),
        ]);
    }

    // Load stability: degradation from the fifth batch to the last
    // (paper: GT ~34%, STINGER ~72%).
    let degradation = |series: &[(u64, std::time::Duration)]| -> f64 {
        if series.len() < 6 {
            return 0.0;
        }
        let fifth = meps(series[4].0, series[4].1);
        let last = meps(series[series.len() - 1].0, series[series.len() - 1].1);
        if fifth <= 0.0 {
            0.0
        } else {
            100.0 * (1.0 - last / fifth)
        }
    };
    let total = |series: &[(u64, std::time::Duration)]| -> f64 {
        let ops: u64 = series.iter().map(|x| x.0).sum();
        let dur: std::time::Duration = series.iter().map(|x| x.1).sum();
        meps(ops, dur)
    };
    t.push_row(vec![
        "total".into(),
        cum.to_string(),
        f3(total(&with_cal)),
        f3(total(&no_cal)),
        f3(total(&stinger)),
    ]);
    t.push_row(vec![
        "degradation_pct".into(),
        "-".into(),
        f3(degradation(&with_cal)),
        f3(degradation(&no_cal)),
        f3(degradation(&stinger)),
    ]);
    t.push_row(vec![
        "speedup_vs_stinger".into(),
        "-".into(),
        f3(total(&with_cal) / total(&stinger)),
        f3(total(&no_cal) / total(&stinger)),
        "1.000".into(),
    ]);
    t
}
