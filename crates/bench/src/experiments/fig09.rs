//! Fig. 9: insertion throughput across all six datasets, GraphTinker vs
//! STINGER (batched inserts, single thread).

use crate::cli::Args;
use crate::experiments::common::{dataset_batches, fresh_stinger, fresh_tinker, timed_inserts};
use crate::report::{f3, meps, speedup, Table};
use gtinker_datasets::scaled_datasets;

/// Runs the per-dataset insertion comparison.
pub fn run(args: &Args) -> Table {
    let mut t = Table::new(
        "fig09_insert_datasets",
        &format!("Insertion throughput (Medges/s) per dataset, scale factor {}", args.scale_factor),
        &["dataset", "edges", "GraphTinker", "STINGER", "GT_speedup"],
    );
    for spec in scaled_datasets(args.scale_factor) {
        let batches = dataset_batches(&spec, args.batches, false);
        let total_ops: u64 = batches.iter().map(|b| b.len() as u64).sum();

        let mut gt = fresh_tinker();
        let gt_time: std::time::Duration =
            timed_inserts(&mut gt, &batches).iter().map(|x| x.1).sum();

        let mut st = fresh_stinger();
        let st_time: std::time::Duration =
            timed_inserts(&mut st, &batches).iter().map(|x| x.1).sum();

        let gt_meps = meps(total_ops, gt_time);
        let st_meps = meps(total_ops, st_time);
        t.push_row(vec![
            spec.name.to_string(),
            total_ops.to_string(),
            f3(gt_meps),
            f3(st_meps),
            speedup(gt_meps / st_meps),
        ]);
    }
    t
}
