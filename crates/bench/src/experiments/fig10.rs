//! Fig. 10: update throughput vs. number of cores — interval-partitioned
//! GraphTinker vs STINGER instances (paper §III.D), on Hollywood-2009.
//!
//! On a single-core host the absolute scaling flattens (threads are
//! oversubscribed), but both sides are oversubscribed equally so the
//! GraphTinker-vs-STINGER ordering at each thread count is preserved; see
//! EXPERIMENTS.md.

use std::time::{Duration, Instant};

use gtinker_core::ParallelTinker;
use gtinker_stinger::ParallelStinger;
use gtinker_types::{EdgeBatch, StingerConfig, TinkerConfig};

use crate::cli::Args;
use crate::experiments::common::{dataset_batches, hollywood};
use crate::report::{f3, meps, Table};

fn first_last(durations: &[(u64, Duration)]) -> (f64, f64) {
    let first = durations.first().map(|&(o, d)| meps(o, d)).unwrap_or(0.0);
    let last = durations.last().map(|&(o, d)| meps(o, d)).unwrap_or(0.0);
    (first, last)
}

fn run_parallel_tinker(batches: &[EdgeBatch], n: usize) -> Vec<(u64, Duration)> {
    let p = ParallelTinker::new(TinkerConfig::default(), n).expect("valid config");
    batches
        .iter()
        .map(|b| {
            let t0 = Instant::now();
            p.apply_batch(b);
            (b.len() as u64, t0.elapsed())
        })
        .collect()
}

fn run_parallel_stinger(batches: &[EdgeBatch], n: usize) -> Vec<(u64, Duration)> {
    let mut p = ParallelStinger::new(StingerConfig::default(), n).expect("valid config");
    batches
        .iter()
        .map(|b| {
            let t0 = Instant::now();
            p.apply_batch(b);
            (b.len() as u64, t0.elapsed())
        })
        .collect()
}

/// Runs the multicore insertion comparison.
pub fn run(args: &Args) -> Table {
    let spec = hollywood(args.scale_factor);
    let batches = dataset_batches(&spec, args.batches, false);
    let total_ops: u64 = batches.iter().map(|b| b.len() as u64).sum();

    let mut t = Table::new(
        "fig10_multicore",
        &format!("Update throughput (Medges/s) vs cores, {} ({} edges)", spec.name, total_ops),
        &["cores", "GT_total", "GT_first", "GT_last", "ST_total", "ST_first", "ST_last"],
    );
    for &n in &args.threads {
        let gt = run_parallel_tinker(&batches, n);
        let st = run_parallel_stinger(&batches, n);
        let gt_total = meps(total_ops, gt.iter().map(|x| x.1).sum());
        let st_total = meps(total_ops, st.iter().map(|x| x.1).sum());
        let (gf, gl) = first_last(&gt);
        let (sf, sl) = first_last(&st);
        t.push_row(vec![n.to_string(), f3(gt_total), f3(gf), f3(gl), f3(st_total), f3(sf), f3(sl)]);
    }
    t
}
