//! Analytics scaling companion to Fig. 10: BFS and PageRank throughput
//! vs. shard (worker-thread) count over the sharded GAS engine, on the
//! Hollywood-2009 RMAT stand-in.
//!
//! Like the update-side Fig. 10, absolute scaling flattens when the host
//! has fewer cores than shards; the per-shard timing columns expose the
//! partition balance either way. Alongside the TSV the run emits
//! `BENCH_parallel_gas.json` for machine consumption.

use std::time::{Duration, Instant};

use gtinker_core::GraphTinker;
use gtinker_engine::{algorithms::Bfs, algorithms::PageRank, Engine, ModePolicy};
use gtinker_types::EdgeBatch;

use crate::cli::Args;
use crate::experiments::common::hollywood;
use crate::report::{f3, meps, Table};

/// One shard-count measurement.
struct Sample {
    shards: usize,
    bfs_meps: f64,
    bfs_imbalance: f64,
    pagerank_meps: f64,
}

/// Ratio of the slowest shard's processing time to the mean (1.0 =
/// perfectly balanced; meaningless at one shard, reported as 1.0).
fn imbalance(totals: &[Duration]) -> f64 {
    if totals.len() < 2 {
        return 1.0;
    }
    let sum: f64 = totals.iter().map(|d| d.as_secs_f64()).sum();
    let mean = sum / totals.len() as f64;
    let max = totals.iter().map(|d| d.as_secs_f64()).fold(0.0, f64::max);
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

fn measure(g: &GraphTinker, root: u32, pr_iters: usize) -> (f64, f64, f64) {
    let mut bfs = Engine::new(Bfs::new(root), ModePolicy::AlwaysFull);
    let t0 = Instant::now();
    let report = bfs.run_from_roots(g);
    let bfs_time = t0.elapsed();
    let bfs_meps = meps(report.total_edges_processed, bfs_time);
    let bfs_imb = imbalance(&report.shard_time_totals());

    let pr = PageRank::new(0.85, pr_iters);
    let t0 = Instant::now();
    let ranks = pr.run(g);
    let pr_time = t0.elapsed();
    assert!(!ranks.is_empty());
    let pr_meps = meps(g.num_edges() * pr_iters as u64, pr_time);
    (bfs_meps, bfs_imb, pr_meps)
}

fn to_json(samples: &[Sample], edges: u64) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"parallel_gas\",\n");
    out.push_str(&format!("  \"edges\": {edges},\n  \"series\": [\n"));
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"bfs_meps\": {:.3}, \"bfs_imbalance\": {:.3}, \"pagerank_meps\": {:.3}}}{}\n",
            s.shards,
            s.bfs_meps,
            s.bfs_imbalance,
            s.pagerank_meps,
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the analytics shard-scaling sweep; also writes
/// `<out-dir>/BENCH_parallel_gas.json`.
pub fn run(args: &Args) -> Table {
    let spec = hollywood(args.scale_factor);
    let edges = spec.generate();
    let root = edges.first().map(|e| e.src).unwrap_or(0);
    let batch = EdgeBatch::inserts(&edges);
    let pr_iters = 10;

    let mut g = GraphTinker::with_defaults();
    g.apply_batch(&batch);

    let mut t = Table::new(
        "fig10_analytics",
        &format!(
            "Analytics throughput (Medges/s) vs shard count, {} ({} edges)",
            spec.name,
            edges.len()
        ),
        &["shards", "BFS_fp", "BFS_imbalance", "PageRank"],
    );
    let mut samples = Vec::new();
    for &n in &args.threads {
        g.set_analytics_shards(n);
        let (bfs_meps, bfs_imb, pagerank_meps) = measure(&g, root, pr_iters);
        t.push_row(vec![n.to_string(), f3(bfs_meps), f3(bfs_imb), f3(pagerank_meps)]);
        samples.push(Sample { shards: n, bfs_meps, bfs_imbalance: bfs_imb, pagerank_meps });
    }

    let json = to_json(&samples, edges.len() as u64);
    let path = std::path::Path::new(&args.out_dir).join("BENCH_parallel_gas.json");
    if let Err(e) =
        std::fs::create_dir_all(&args.out_dir).and_then(|()| std::fs::write(&path, json))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_of_uniform_shards_is_one() {
        let d = Duration::from_millis(5);
        assert!((imbalance(&[d, d, d]) - 1.0).abs() < 1e-9);
        assert_eq!(imbalance(&[d]), 1.0);
        assert_eq!(imbalance(&[]), 1.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let s = to_json(
            &[
                Sample { shards: 1, bfs_meps: 1.0, bfs_imbalance: 1.0, pagerank_meps: 2.0 },
                Sample { shards: 2, bfs_meps: 1.5, bfs_imbalance: 1.1, pagerank_meps: 2.5 },
            ],
            100,
        );
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
        assert_eq!(s.matches("\"shards\"").count(), 2);
        assert!(!s.contains("},\n  ]"), "no trailing comma before array close");
    }
}
