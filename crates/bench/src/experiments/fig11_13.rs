//! Figs. 11-13: processing throughput of BFS / SSSP / CC per dataset —
//! GraphTinker under the hybrid engine, under fixed FP and fixed IP, and
//! STINGER (full-processing, the paper's comparison configuration).
//!
//! After every insertion batch the analysis is re-run on the current state
//! of the graph; throughput is Σ(live edges at each analysis point) divided
//! by total analytics time, so all series share the numerator and differ
//! only in how fast their engine/store combination converges.

use crate::cli::Args;
use crate::experiments::common::{
    dataset_batches, fresh_stinger, fresh_tinker, pick_root, run_analytics, Algo, Series,
};
use crate::report::{f3, speedup, Table};
use gtinker_datasets::scaled_datasets;

/// Runs one algorithm's figure across all datasets.
pub fn run(args: &Args, algo: Algo) -> Table {
    let fig = match algo {
        Algo::Bfs => "fig11_bfs",
        Algo::Sssp => "fig12_sssp",
        Algo::Cc => "fig13_cc",
    };
    let mut t = Table::new(
        fig,
        &format!(
            "{} processing throughput (Medges/s) per dataset, scale factor {}",
            algo.name(),
            args.scale_factor
        ),
        &[
            "dataset",
            "GT_hybrid",
            "GT_hybridDA",
            "GT_FP",
            "GT_IP",
            "STINGER_FP",
            "best_hyb_vs_FP",
            "best_hyb_vs_IP",
            "best_hyb_vs_STINGER",
        ],
    );
    for spec in scaled_datasets(args.scale_factor) {
        let batches = dataset_batches(&spec, args.batches, algo.needs_symmetry());
        let root = pick_root(&batches);

        let hybrid = run_analytics(fresh_tinker(), &batches, algo, Series::Hybrid, root);
        let da = run_analytics(fresh_tinker(), &batches, algo, Series::DegreeAware, root);
        let fp = run_analytics(fresh_tinker(), &batches, algo, Series::FullProcessing, root);
        let ip = run_analytics(fresh_tinker(), &batches, algo, Series::Incremental, root);
        let st = run_analytics(fresh_stinger(), &batches, algo, Series::FullProcessing, root);

        let h = hybrid.throughput_meps().max(da.throughput_meps());
        t.push_row(vec![
            spec.name.to_string(),
            f3(hybrid.throughput_meps()),
            f3(da.throughput_meps()),
            f3(fp.throughput_meps()),
            f3(ip.throughput_meps()),
            f3(st.throughput_meps()),
            speedup(h / fp.throughput_meps()),
            speedup(h / ip.throughput_meps()),
            speedup(h / st.throughput_meps()),
        ]);
    }
    t
}
