//! Fig. 14: edge-deletion throughput vs. amount deleted on RMAT_2M_32M —
//! GraphTinker delete-only, GraphTinker delete-and-compact, and STINGER.
//! The graph is fully loaded first, then deleted in batches until empty.

use std::time::Instant;

use gtinker_types::{DeleteMode, TinkerConfig};

use crate::cli::Args;
use crate::experiments::common::{fresh_stinger, fresh_tinker_with, rmat_2m_32m, DynStore};
use crate::report::{f3, meps, Table};
use gtinker_datasets::{deletion_batches, insertion_batches};

/// Runs the deletion-throughput comparison.
pub fn run(args: &Args) -> Table {
    let spec = rmat_2m_32m(args.scale_factor);
    let edges = spec.generate();
    let load = insertion_batches(&edges, (edges.len() / args.batches).max(1));
    let dels = deletion_batches(&edges, (edges.len() / args.batches).max(1), 77);

    let mut t = Table::new(
        "fig14_delete",
        &format!(
            "Deletion throughput (Medges/s) vs edges deleted, {} ({} distinct edges)",
            spec.name,
            dels.iter().map(|b| b.len()).sum::<usize>()
        ),
        &["batch", "cum_deleted", "GT_delete_only", "GT_compact", "STINGER"],
    );

    let mut gt_tomb =
        fresh_tinker_with(TinkerConfig::default().delete_mode(DeleteMode::DeleteOnly));
    let mut gt_comp =
        fresh_tinker_with(TinkerConfig::default().delete_mode(DeleteMode::DeleteAndCompact));
    let mut st = fresh_stinger();
    for b in &load {
        gt_tomb.apply(b);
        gt_comp.apply(b);
        st.apply(b);
    }

    let mut cum = 0u64;
    for (i, b) in dels.iter().enumerate() {
        let ops = b.len() as u64;
        let t0 = Instant::now();
        gt_tomb.apply(b);
        let d_tomb = t0.elapsed();
        let t0 = Instant::now();
        gt_comp.apply(b);
        let d_comp = t0.elapsed();
        let t0 = Instant::now();
        st.apply(b);
        let d_st = t0.elapsed();
        cum += ops;
        t.push_row(vec![
            (i + 1).to_string(),
            cum.to_string(),
            f3(meps(ops, d_tomb)),
            f3(meps(ops, d_comp)),
            f3(meps(ops, d_st)),
        ]);
    }
    assert_eq!(gt_tomb.num_edges(), 0, "delete stream must empty the database");
    assert_eq!(gt_comp.num_edges(), 0);
    assert_eq!(st.num_edges(), 0);
    t
}
