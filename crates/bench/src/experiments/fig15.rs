//! Fig. 15: BFS throughput (FP mode) as edges are deleted from
//! RMAT_2M_32M — the analytics-side cost of tombstoning vs compaction.
//!
//! Delete-only leaves the structure (and its CAL) full-sized, so each FP
//! stream pays for the dead space while yielding ever fewer live edges;
//! delete-and-compact shrinks both, keeping throughput stable. STINGER's
//! chains never shrink either.

use std::time::Instant;

use gtinker_engine::{algorithms::Bfs, Engine, GraphStore, ModePolicy};
use gtinker_types::{DeleteMode, TinkerConfig};

use crate::cli::Args;
use crate::experiments::common::{fresh_stinger, fresh_tinker_with, rmat_2m_32m, DynStore};
use crate::report::{f3, meps, Table};
use gtinker_datasets::{deletion_batches, insertion_batches, top_degree_vertices};

fn bfs_fp_throughput<S: GraphStore + Sync>(store: &S, root: u32) -> f64 {
    let mut engine = Engine::new(Bfs::new(root), ModePolicy::AlwaysFull);
    let t0 = Instant::now();
    let report = engine.run_from_roots(store);
    meps(report.total_edges_processed, t0.elapsed())
}

/// Runs the BFS-under-deletion comparison.
pub fn run(args: &Args) -> Table {
    let spec = rmat_2m_32m(args.scale_factor);
    let edges = spec.generate();
    let root = top_degree_vertices(&edges, 1)[0];
    let load = insertion_batches(&edges, (edges.len() / args.batches).max(1));
    let dels = deletion_batches(&edges, (edges.len() / args.batches).max(1), 78);

    let mut gt_tomb =
        fresh_tinker_with(TinkerConfig::default().delete_mode(DeleteMode::DeleteOnly));
    let mut gt_comp =
        fresh_tinker_with(TinkerConfig::default().delete_mode(DeleteMode::DeleteAndCompact));
    let mut st = fresh_stinger();
    for b in &load {
        gt_tomb.apply(b);
        gt_comp.apply(b);
        st.apply(b);
    }

    let mut t = Table::new(
        "fig15_bfs_after_delete",
        &format!("BFS (FP) processing throughput (Medges/s) vs edges deleted, {}", spec.name),
        &["batch", "cum_deleted", "live_edges", "GT_delete_only", "GT_compact", "STINGER"],
    );
    let mut cum = 0u64;
    for (i, b) in dels.iter().enumerate() {
        gt_tomb.apply(b);
        gt_comp.apply(b);
        st.apply(b);
        cum += b.len() as u64;
        if gt_tomb.num_edges() == 0 {
            break; // nothing left to analyze
        }
        t.push_row(vec![
            (i + 1).to_string(),
            cum.to_string(),
            gt_tomb.num_edges().to_string(),
            f3(bfs_fp_throughput(&gt_tomb, root)),
            f3(bfs_fp_throughput(&gt_comp, root)),
            f3(bfs_fp_throughput(&st, root)),
        ]);
    }
    t
}
