//! Fig. 16: average BFS / SSSP / CC processing throughput on RMAT_2M_32M
//! while edge deletions are performed — delete-and-compact vs delete-only
//! vs STINGER.

use std::time::{Duration, Instant};

use gtinker_engine::{
    algorithms::{Bfs, Cc, Sssp},
    Engine, GasProgram, GraphStore, ModePolicy,
};
use gtinker_types::{DeleteMode, TinkerConfig};

use crate::cli::Args;
use crate::experiments::common::{fresh_stinger, fresh_tinker_with, rmat_2m_32m, Algo, DynStore};
use crate::report::{f3, meps, Table};
use gtinker_datasets::{deletion_batches, insertion_batches, top_degree_vertices};

fn fp_run<S: GraphStore + Sync, P: GasProgram>(store: &S, program: P) -> (u64, Duration) {
    let mut engine = Engine::new(program, ModePolicy::AlwaysFull);
    let t0 = Instant::now();
    let report = engine.run_from_roots(store);
    (report.total_edges_processed, t0.elapsed())
}

fn fp_by_algo<S: GraphStore + Sync>(store: &S, algo: Algo, root: u32) -> (u64, Duration) {
    match algo {
        Algo::Bfs => fp_run(store, Bfs::new(root)),
        Algo::Sssp => fp_run(store, Sssp::new(root)),
        Algo::Cc => fp_run(store, Cc::new()),
    }
}

/// Runs the deletion-analytics average-throughput comparison.
pub fn run(args: &Args) -> Table {
    let spec = rmat_2m_32m(args.scale_factor);
    let edges = spec.generate();
    let root = top_degree_vertices(&edges, 1)[0];
    let load = insertion_batches(&edges, (edges.len() / args.batches).max(1));
    let dels = deletion_batches(&edges, (edges.len() / args.batches).max(1), 79);

    let mut t = Table::new(
        "fig16_delete_analytics",
        &format!("Average processing throughput (Medges/s) under deletions, {}", spec.name),
        &["algorithm", "GT_compact", "GT_delete_only", "STINGER"],
    );

    for algo in [Algo::Bfs, Algo::Sssp, Algo::Cc] {
        let mut gt_tomb =
            fresh_tinker_with(TinkerConfig::default().delete_mode(DeleteMode::DeleteOnly));
        let mut gt_comp =
            fresh_tinker_with(TinkerConfig::default().delete_mode(DeleteMode::DeleteAndCompact));
        let mut st = fresh_stinger();
        for b in &load {
            gt_tomb.apply(b);
            gt_comp.apply(b);
            st.apply(b);
        }
        let mut acc = [(0u64, Duration::ZERO); 3];
        for b in &dels {
            gt_tomb.apply(b);
            gt_comp.apply(b);
            st.apply(b);
            if gt_tomb.num_edges() == 0 {
                break;
            }
            for (slot, run) in acc.iter_mut().zip([
                fp_by_algo(&gt_comp, algo, root),
                fp_by_algo(&gt_tomb, algo, root),
                fp_by_algo(&st, algo, root),
            ]) {
                slot.0 += run.0;
                slot.1 += run.1;
            }
        }
        t.push_row(vec![
            algo.name().to_string(),
            f3(meps(acc[0].0, acc[0].1)),
            f3(meps(acc[1].0, acc[1].1)),
            f3(meps(acc[2].0, acc[2].1)),
        ]);
    }
    t
}
