//! Fig. 17: effect of PAGEWIDTH (16/32/64/128/256) on insertion throughput,
//! Hollywood-2009. Larger pages widen the per-block hash range, cutting RHH
//! collisions and branch-outs, so insertion gets faster and more stable.

use gtinker_types::TinkerConfig;

use crate::cli::Args;
use crate::experiments::common::{dataset_batches, fresh_tinker_with, hollywood, timed_inserts};
use crate::report::{f3, meps, Table};

/// PAGEWIDTHs swept by Figs. 17-18.
pub const PAGEWIDTHS: [usize; 5] = [16, 32, 64, 128, 256];

/// Runs the PAGEWIDTH insertion sweep.
pub fn run(args: &Args) -> Table {
    let spec = hollywood(args.scale_factor);
    let batches = dataset_batches(&spec, args.batches, false);

    let series: Vec<Vec<(u64, std::time::Duration)>> = PAGEWIDTHS
        .iter()
        .map(|&pw| {
            let mut g = fresh_tinker_with(TinkerConfig::with_pagewidth(pw));
            timed_inserts(&mut g, &batches)
        })
        .collect();

    let mut t = Table::new(
        "fig17_pagewidth_insert",
        &format!("Insertion throughput (Medges/s) per PAGEWIDTH, {}", spec.name),
        &["batch", "PW16", "PW32", "PW64", "PW128", "PW256"],
    );
    for i in 0..batches.len() {
        let mut row = vec![(i + 1).to_string()];
        for s in &series {
            row.push(f3(meps(s[i].0, s[i].1)));
        }
        t.push_row(row);
    }
    let mut row = vec!["total".to_string()];
    for s in &series {
        let ops: u64 = s.iter().map(|x| x.0).sum();
        let dur: std::time::Duration = s.iter().map(|x| x.1).sum();
        row.push(f3(meps(ops, dur)));
    }
    t.push_row(row);
    t
}
