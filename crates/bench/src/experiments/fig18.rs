//! Fig. 18: effect of PAGEWIDTH on BFS throughput in incremental-processing
//! mode (the mode that reads the EdgeblockArray directly). Smaller pages
//! pack live edges denser, so per-vertex retrieval touches fewer dead
//! cells and analytics gets faster — the inverse of Fig. 17's trend.

use std::time::Instant;

use gtinker_engine::{algorithms::Bfs, Engine, ModePolicy};
use gtinker_types::TinkerConfig;

use crate::cli::Args;
use crate::experiments::common::{dataset_batches, fresh_tinker_with, hollywood, DynStore};
use crate::experiments::fig17::PAGEWIDTHS;
use crate::report::{f3, meps, Table};
use gtinker_datasets::top_degree_vertices;

/// Runs the PAGEWIDTH analytics sweep.
pub fn run(args: &Args) -> Table {
    let spec = hollywood(args.scale_factor);
    let edges = spec.generate();
    let root = top_degree_vertices(&edges, 1)[0];
    let batches = dataset_batches(&spec, args.batches, false);

    let mut t = Table::new(
        "fig18_pagewidth_bfs",
        &format!("BFS (IP mode) throughput (Medges/s) per PAGEWIDTH, {}", spec.name),
        &["pagewidth", "bfs_meps", "edges_processed", "iterations"],
    );
    for &pw in &PAGEWIDTHS {
        let mut g = fresh_tinker_with(TinkerConfig::with_pagewidth(pw));
        for b in &batches {
            g.apply(b);
        }
        let mut engine = Engine::new(Bfs::new(root), ModePolicy::AlwaysIncremental);
        let t0 = Instant::now();
        let report = engine.run_from_roots(&g);
        let dur = t0.elapsed();
        t.push_row(vec![
            pw.to_string(),
            f3(meps(report.total_edges_processed, dur)),
            report.total_edges_processed.to_string(),
            report.num_iterations().to_string(),
        ]);
    }
    t
}
