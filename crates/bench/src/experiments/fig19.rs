//! Fig. 19: choice of optimal PAGEWIDTH — total elapsed time for mixed
//! update/analytics workloads, averaged over update:analytics ratios, per
//! dataset and PAGEWIDTH.
//!
//! Following the paper: for each (dataset, PAGEWIDTH, ratio u:a), the edge
//! stream is inserted in batches and intercepted `u` times; each
//! interception runs `a` BFS analyses, each from a different root drawn
//! from the dataset's 20 highest-degree vertices. The reported number is
//! the total elapsed time (updates + analytics) averaged across the ratios.

use std::time::Instant;

use gtinker_engine::{algorithms::Bfs, Engine, ModePolicy};
use gtinker_types::TinkerConfig;

use crate::cli::Args;
use crate::experiments::common::{dataset_batches, fresh_tinker_with, DynStore};
use crate::report::Table;
use gtinker_datasets::{scaled_datasets, top_degree_vertices, DatasetKind};

/// PAGEWIDTHs swept by Fig. 19 (extends Figs. 17-18's set down to 8).
pub const PAGEWIDTHS_19: [usize; 6] = [8, 16, 32, 64, 128, 256];

/// Update:analytics ratios; the paper sweeps 1:10 through 10:1.
pub const RATIOS: [(usize, usize); 5] = [(1, 10), (1, 4), (1, 1), (4, 1), (10, 1)];

fn one_experiment(
    batches: &[gtinker_types::EdgeBatch],
    roots: &[u32],
    pw: usize,
    interceptions: usize,
    analytics_per_stop: usize,
) -> f64 {
    let mut g = fresh_tinker_with(TinkerConfig::with_pagewidth(pw));
    let stops = interceptions.clamp(1, batches.len());
    let every = batches.len().div_ceil(stops);
    let mut root_idx = 0usize;
    let t0 = Instant::now();
    for (i, b) in batches.iter().enumerate() {
        g.apply(b);
        if (i + 1) % every == 0 || i + 1 == batches.len() {
            for _ in 0..analytics_per_stop {
                let root = roots[root_idx % roots.len()];
                root_idx += 1;
                let mut engine = Engine::new(Bfs::new(root), ModePolicy::hybrid());
                engine.run_from_roots(&g);
            }
        }
    }
    t0.elapsed().as_secs_f64() * 1e3
}

/// Runs the optimal-PAGEWIDTH sweep; cells are mean elapsed milliseconds
/// across ratios (lower is better).
pub fn run(args: &Args) -> Table {
    let datasets: Vec<_> = scaled_datasets(args.scale_factor)
        .into_iter()
        .filter(|d| d.kind == DatasetKind::Rmat && d.name.starts_with("RMAT"))
        .collect();

    let mut t = Table::new(
        "fig19_pagewidth_optimal",
        &format!("Mean elapsed ms across update:analytics ratios {:?} (lower is better)", RATIOS),
        &["dataset", "PW8", "PW16", "PW32", "PW64", "PW128", "PW256"],
    );
    for spec in &datasets {
        let edges = spec.generate();
        let roots = top_degree_vertices(&edges, 20);
        let batches = dataset_batches(spec, args.batches, false);
        let mut row = vec![spec.name.to_string()];
        for &pw in &PAGEWIDTHS_19 {
            let mut total_ms = 0.0;
            for &(u, a) in &RATIOS {
                total_ms += one_experiment(&batches, &roots, pw, u, a);
            }
            row.push(format!("{:.1}", total_ms / RATIOS.len() as f64));
        }
        t.push_row(row);
    }
    t
}
