//! Degree-adaptive tier benchmark (no paper counterpart; acceptance gate
//! for the hybrid vertex representation): insert throughput, memory per
//! edge, and analytics latency of the adaptive layout vs the fixed RHH
//! geometry, on a hub-heavy Zipf stream and on a uniform stream.
//!
//! The adaptive layout should win on the skewed stream (the degree-1..4
//! tail skips edgeblock allocation entirely; hubs trade hash probing for a
//! sorted gallop) and must not lose more than noise on the uniform stream,
//! where almost every vertex sits in the edgeblock tier and the only cost
//! is the per-insert tier dispatch.
//!
//! All configurations run with the CAL disabled: CAL-on streaming is
//! identical across tiers by construction (the CAL is tier-transparent),
//! so disabling it makes the analytics comparison exercise the per-tier
//! adjacency walks and the bytes/edge comparison count only adjacency
//! structure.
//!
//! Alongside the TSV the run emits `BENCH_adaptive.json`; the acceptance
//! criteria are `skew_adaptive_meps >= skew_fixed_meps`,
//! `adaptive_bytes_per_edge <= fixed_bytes_per_edge`, and
//! `uniform_adaptive_meps` within 5 % of `uniform_fixed_meps`.

use std::time::Instant;

use gtinker_core::GraphTinker;
use gtinker_datasets::{dataset_by_name, SourceSkewConfig};
use gtinker_engine::{algorithms::Bfs, Engine, ModePolicy};
use gtinker_types::{Edge, EdgeBatch, TinkerConfig};

use crate::cli::Args;
use crate::report::{f3, meps, Table};

/// Batch size for the ingest stream.
const OPS_PER_BATCH: usize = 10_000;

/// Interleaved trials per configuration; the best of each side is kept.
const REPS: usize = 3;

/// The fixed-geometry reference configuration (CAL off, see module doc).
fn fixed_config() -> TinkerConfig {
    TinkerConfig::default().cal(false)
}

/// The adaptive configuration under test (same geometry, tiers on).
fn adaptive_config() -> TinkerConfig {
    fixed_config().adaptive()
}

fn slice_batches(edges: &[Edge]) -> Vec<EdgeBatch> {
    edges.chunks(OPS_PER_BATCH).map(EdgeBatch::inserts).collect()
}

/// Ingests all batches into a fresh store, returning Medges/s.
fn measure_insert(config: TinkerConfig, batches: &[EdgeBatch], ops: u64) -> f64 {
    let mut g = GraphTinker::new(config).expect("valid bench config");
    let t0 = Instant::now();
    for b in batches {
        g.apply_batch(b);
    }
    meps(ops, t0.elapsed())
}

/// Best-of-[`REPS`] interleaved: `(fixed_meps, adaptive_meps)`.
fn sample_insert(batches: &[EdgeBatch], ops: u64) -> (f64, f64) {
    let (mut fixed, mut adaptive) = (0.0f64, 0.0f64);
    for _ in 0..REPS {
        fixed = fixed.max(measure_insert(fixed_config(), batches, ops));
        adaptive = adaptive.max(measure_insert(adaptive_config(), batches, ops));
    }
    (fixed, adaptive)
}

/// Builds a store once and reports `(bytes_per_edge, bfs_ms, store)`.
fn build_and_probe(
    config: TinkerConfig,
    batches: &[EdgeBatch],
    root: u32,
) -> (f64, f64, GraphTinker) {
    let mut g = GraphTinker::new(config).expect("valid bench config");
    for b in batches {
        g.apply_batch(b);
    }
    let st = g.structure_stats();
    let bpe = st.memory_bytes as f64 / st.live_edges.max(1) as f64;
    let mut best_ms = f64::INFINITY;
    for _ in 0..REPS {
        let mut e = Engine::new(Bfs::new(root), ModePolicy::AlwaysFull);
        let t0 = Instant::now();
        e.run_from_roots(&g);
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (bpe, best_ms, g)
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    ops: u64,
    skew: (f64, f64),
    uniform: (f64, f64),
    bytes_per_edge: (f64, f64),
    bfs_ms: (f64, f64),
    tiers: (usize, usize, usize, u64),
) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"adaptive_tiers\",\n");
    out.push_str(&format!("  \"ops\": {ops},\n"));
    out.push_str(&format!("  \"reps\": {REPS},\n"));
    out.push_str(&format!("  \"skew_fixed_meps\": {:.3},\n", skew.0));
    out.push_str(&format!("  \"skew_adaptive_meps\": {:.3},\n", skew.1));
    out.push_str(&format!("  \"uniform_fixed_meps\": {:.3},\n", uniform.0));
    out.push_str(&format!("  \"uniform_adaptive_meps\": {:.3},\n", uniform.1));
    out.push_str(&format!("  \"fixed_bytes_per_edge\": {:.3},\n", bytes_per_edge.0));
    out.push_str(&format!("  \"adaptive_bytes_per_edge\": {:.3},\n", bytes_per_edge.1));
    out.push_str(&format!("  \"bfs_fixed_ms\": {:.3},\n", bfs_ms.0));
    out.push_str(&format!("  \"bfs_adaptive_ms\": {:.3},\n", bfs_ms.1));
    out.push_str(&format!("  \"tier_inline_vertices\": {},\n", tiers.0));
    out.push_str(&format!("  \"tier_blocks_vertices\": {},\n", tiers.1));
    out.push_str(&format!("  \"tier_hub_vertices\": {},\n", tiers.2));
    out.push_str(&format!("  \"tier_promotions\": {}\n", tiers.3));
    out.push_str("}\n");
    out
}

/// Runs the adaptive-tier benchmark; also writes
/// `<out-dir>/BENCH_adaptive.json`.
pub fn run(args: &Args) -> Table {
    let skew_spec = dataset_by_name("Zipf_SourceSkew", args.scale_factor).expect("catalog dataset");
    let skew_edges = skew_spec.generate();
    let skew_batches = slice_batches(&skew_edges);
    let skew_ops = skew_edges.len() as u64;

    // Uniform control: same size, theta 0 (every source equally likely).
    let uniform_edges = SourceSkewConfig {
        num_vertices: skew_spec.vertices,
        num_edges: skew_spec.edges,
        theta: 0.0,
        seed: skew_spec.seed,
        max_weight: 64,
    }
    .generate();
    let uniform_batches = slice_batches(&uniform_edges);

    let mut t = Table::new(
        "fig_adaptive",
        &format!(
            "Degree-adaptive tiers vs fixed geometry: insert Medges/s, bytes/edge, \
             BFS latency ({}, {} ops, best of {REPS} interleaved trials)",
            skew_spec.name, skew_ops
        ),
        &["workload", "config", "insert_meps", "bytes_per_edge", "bfs_ms"],
    );

    let skew = sample_insert(&skew_batches, skew_ops);
    let uniform = sample_insert(&uniform_batches, skew_ops);

    // A root with edges: the most frequent Zipf rank always has some.
    let root = skew_edges.first().map(|e| e.src).unwrap_or(0);
    let (fixed_bpe, fixed_bfs, _) = build_and_probe(fixed_config(), &skew_batches, root);
    let (adaptive_bpe, adaptive_bfs, ga) = build_and_probe(adaptive_config(), &skew_batches, root);
    let st = ga.structure_stats();
    assert!(
        st.tier_inline_vertices + st.tier_hub_vertices > 0,
        "the skewed stream must exercise the non-default tiers"
    );

    t.push_row(vec!["zipf_skew".into(), "fixed".into(), f3(skew.0), f3(fixed_bpe), f3(fixed_bfs)]);
    t.push_row(vec![
        "zipf_skew".into(),
        "adaptive".into(),
        f3(skew.1),
        f3(adaptive_bpe),
        f3(adaptive_bfs),
    ]);
    t.push_row(vec!["uniform".into(), "fixed".into(), f3(uniform.0), "-".into(), "-".into()]);
    t.push_row(vec!["uniform".into(), "adaptive".into(), f3(uniform.1), "-".into(), "-".into()]);

    let json = to_json(
        skew_ops,
        skew,
        uniform,
        (fixed_bpe, adaptive_bpe),
        (fixed_bfs, adaptive_bfs),
        (
            st.tier_inline_vertices,
            st.tier_blocks_vertices,
            st.tier_hub_vertices,
            st.tier_promotions,
        ),
    );
    let path = std::path::Path::new(&args.out_dir).join("BENCH_adaptive.json");
    if let Err(e) =
        std::fs::create_dir_all(&args.out_dir).and_then(|()| std::fs::write(&path, json))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_the_gate_fields() {
        let s = to_json(1_000, (5.0, 6.0), (7.0, 7.0), (30.0, 20.0), (1.5, 1.2), (10, 20, 3, 25));
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
        assert!(s.contains("\"skew_adaptive_meps\": 6.000"));
        assert!(s.contains("\"adaptive_bytes_per_edge\": 20.000"));
        assert!(s.contains("\"uniform_fixed_meps\": 7.000"));
        assert!(s.contains("\"tier_hub_vertices\": 3"));
    }

    #[test]
    fn tiny_end_to_end_run() {
        let dir = std::env::temp_dir().join(format!("gtinker_fig_adaptive_{}", std::process::id()));
        let args = Args {
            scale_factor: 8192,
            batches: 4,
            threads: vec![1],
            out_dir: dir.to_string_lossy().into_owned(),
        };
        let t = run(&args);
        let rendered = t.render();
        assert!(rendered.contains("zipf_skew"));
        assert!(rendered.contains("adaptive"));
        let json = std::fs::read_to_string(dir.join("BENCH_adaptive.json")).unwrap();
        assert!(json.contains("\"skew_adaptive_meps\""));
        assert!(json.contains("\"tier_promotions\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
