//! Incremental analytics under churn (no paper counterpart — the paper's
//! incremental model, §II.B, is monotone-only and silently recomputes on
//! deletions): four restart strategies replay the same 1k-op churn stream
//! over the same store and re-solve BFS and CC after every batch.
//!
//! * **cold** — full-processing static recompute from the roots
//!   (`AlwaysFull` + `StaticRecompute`): the floor everything is measured
//!   against.
//! * **hybrid** — the paper's inference-box hybrid, still recomputing from
//!   scratch each batch (`hybrid` + `StaticRecompute`).
//! * **monotone** — the paper's incremental-compute model: continues from
//!   the previous fixpoint on insert-only batches, but any batch with a
//!   deletion falls back to a counted cold recompute
//!   (`engine_delete_fallbacks`) — and every churn batch here has
//!   deletions, which is the point.
//! * **repair** — delta-driven invalidate-and-repair: tag the witness
//!   cone broken by the batch, re-seed it from its still-valid boundary,
//!   and run the ordinary frontier machinery to fixpoint.
//!
//! Alongside the TSV the run emits `BENCH_incremental.json` with the
//! cold and repair per-batch p99 latencies (regression-gated) and the
//! steady-state mean speedups (informational; the CI smoke asserts the
//! headline >= 10x at its pinned scale).

use std::time::Instant;

use gtinker_core::GraphTinker;
use gtinker_engine::{
    algorithms::{Bfs, Cc},
    dynamic::symmetrize,
    DynamicRunner, Engine, IncrementalState, ModePolicy, RestartPolicy,
};
use gtinker_types::{EdgeBatch, TinkerConfig};

use crate::cli::Args;
use crate::experiments::common::hollywood;
use crate::report::Table;

/// Operations per churn batch (the issue's 1k-op batches).
const OPS_PER_BATCH: usize = 1000;

/// Fraction of the dataset pre-loaded before the churn stream starts.
const BASE_FRACTION: f64 = 0.75;

/// Deletes per batch: ~30% of the ops, hitting live base edges.
const DELETE_EVERY: usize = 3;

struct Workload {
    /// Pre-loaded graph (one big insert batch).
    base: EdgeBatch,
    /// The churn stream: mixed insert/delete batches of `OPS_PER_BATCH`.
    churn: Vec<EdgeBatch>,
    /// BFS root: the highest-degree base vertex.
    root: u32,
}

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

/// Splits the dataset into a base load plus `n_batches` churn batches:
/// inserts drawn from the held-out tail, every `DELETE_EVERY`-th op a
/// delete of a seeded-random base edge (live at churn start, so the
/// deletes genuinely break witness trees).
fn workload(args: &Args, sym: bool) -> Workload {
    let spec = hollywood(args.scale_factor);
    let edges = spec.generate();
    let split = ((edges.len() as f64 * BASE_FRACTION) as usize).max(1).min(edges.len());
    let (base, tail) = edges.split_at(split);
    let root = gtinker_datasets::top_degree_vertices(base, 1).first().copied().unwrap_or(0);

    let n_batches = args.batches.max(2);
    let mut churn = Vec::with_capacity(n_batches);
    let mut x = 0x1CEB00D8u64;
    let mut tail_i = 0usize;
    for _ in 0..n_batches {
        let mut b = EdgeBatch::new();
        for i in 0..OPS_PER_BATCH {
            if (i + 1) % DELETE_EVERY == 0 {
                x = lcg(x);
                let victim = base[(x >> 33) as usize % base.len()];
                b.push_delete(victim.src, victim.dst);
            } else {
                // Cycle the tail if the stream outruns it (tiny scales).
                let e = if tail.is_empty() {
                    x = lcg(x);
                    base[(x >> 33) as usize % base.len()]
                } else {
                    let e = tail[tail_i % tail.len()];
                    tail_i += 1;
                    e
                };
                b.push_insert(e);
            }
        }
        churn.push(if sym { symmetrize(&b) } else { b });
    }
    let base = if sym { symmetrize(&EdgeBatch::inserts(base)) } else { EdgeBatch::inserts(base) };
    Workload { base, churn, root }
}

#[derive(Clone, Copy)]
struct Series {
    name: &'static str,
    policy: ModePolicy,
    restart: RestartPolicy,
    repair: bool,
}

const SERIES: [Series; 4] = [
    Series {
        name: "cold",
        policy: ModePolicy::AlwaysFull,
        restart: RestartPolicy::StaticRecompute,
        repair: false,
    },
    Series {
        name: "hybrid",
        policy: ModePolicy::Hybrid { threshold: 0.02 },
        restart: RestartPolicy::StaticRecompute,
        repair: false,
    },
    Series {
        name: "monotone",
        policy: ModePolicy::Hybrid { threshold: 0.02 },
        restart: RestartPolicy::Incremental,
        repair: false,
    },
    Series {
        name: "repair",
        policy: ModePolicy::Hybrid { threshold: 0.02 },
        restart: RestartPolicy::Incremental,
        repair: true,
    },
];

struct Sample {
    mean_us: f64,
    p99_us: f64,
}

fn percentile_us(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// Replays the workload under one series; returns per-batch re-solve
/// stats and (for a final sanity check) the fixpoint values.
fn run_series<P>(program: P, w: &Workload, s: Series) -> (Sample, Vec<P::Value>)
where
    P: IncrementalState + Copy,
{
    let mut g = GraphTinker::new(TinkerConfig::default()).expect("store");
    let mut runner = DynamicRunner::new(program, s.policy, s.restart);
    runner.set_repair(s.repair);
    g.apply_batch(&w.base);
    // Warmup solve on the base graph: witness forest and (for the repair
    // series) the transpose bootstrap are paid here, off the clock —
    // steady-state is what the figure is about.
    runner.after_batch(&g, &w.base);
    let mut times_us = Vec::with_capacity(w.churn.len());
    for b in &w.churn {
        g.apply_batch(b);
        let t0 = Instant::now();
        runner.after_batch(&g, b);
        times_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let mean_us = times_us.iter().sum::<f64>() / times_us.len().max(1) as f64;
    times_us.sort_unstable_by(f64::total_cmp);
    let p99_us = percentile_us(&times_us, 0.99);
    (Sample { mean_us, p99_us }, runner.engine().values().to_vec())
}

/// Cold fixpoint on the store as it stands after the whole stream.
fn final_cold<P: IncrementalState + Copy>(program: P, w: &Workload) -> Vec<P::Value> {
    let mut g = GraphTinker::new(TinkerConfig::default()).expect("store");
    g.apply_batch(&w.base);
    for b in &w.churn {
        g.apply_batch(b);
    }
    let mut e = Engine::new(program, ModePolicy::hybrid());
    e.run_from_roots(&g);
    e.values().to_vec()
}

struct AlgoResult {
    samples: Vec<(&'static str, Sample)>,
    speedup_vs_cold: f64,
    /// Mean invalidated-cone size per repaired batch (from the
    /// `engine_repair_invalidated` counter delta).
    mean_cone: f64,
    /// Mean repair-run iterations per repaired batch.
    mean_iters: f64,
}

fn run_algo<P>(program: P, w: &Workload, label: &str) -> AlgoResult
where
    P: IncrementalState + Copy,
    P::Value: PartialEq + std::fmt::Debug,
{
    let want = final_cold(program, w);
    let mut samples = Vec::new();
    let mut cold_mean = 0.0;
    let mut repair_mean = 0.0;
    let mut mean_cone = 0.0;
    let mut mean_iters = 0.0;
    for s in SERIES {
        let m = gtinker_core::metrics::global();
        let (inv0, it0) = (m.engine_repair_invalidated.get(), m.engine_repair_iters.get());
        let (sample, values) = run_series(program, w, s);
        assert_eq!(values, want, "{label}/{}: final state diverged from cold fixpoint", s.name);
        if s.name == "cold" {
            cold_mean = sample.mean_us;
        }
        if s.name == "repair" {
            repair_mean = sample.mean_us;
            let n = w.churn.len().max(1) as f64;
            mean_cone = (m.engine_repair_invalidated.get() - inv0) as f64 / n;
            mean_iters = (m.engine_repair_iters.get() - it0) as f64 / n;
        }
        samples.push((s.name, sample));
    }
    AlgoResult {
        samples,
        speedup_vs_cold: cold_mean / repair_mean.max(1e-9),
        mean_cone,
        mean_iters,
    }
}

fn find<'a>(r: &'a AlgoResult, name: &str) -> &'a Sample {
    &r.samples.iter().find(|(n, _)| *n == name).expect("series present").1
}

fn to_json(args: &Args, n_batches: usize, bfs: &AlgoResult, cc: &AlgoResult) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"incremental\",\n");
    out.push_str(&format!("  \"scale_factor\": {},\n", args.scale_factor));
    out.push_str(&format!("  \"batches\": {n_batches},\n"));
    out.push_str(&format!("  \"ops_per_batch\": {OPS_PER_BATCH},\n"));
    for (algo, r) in [("bfs", bfs), ("cc", cc)] {
        // Gated: cold (no cold-path regression) and repair (the tentpole).
        out.push_str(&format!("  \"cold_{algo}_batch_p99_us\": {:.1},\n", find(r, "cold").p99_us));
        out.push_str(&format!(
            "  \"repair_{algo}_batch_p99_us\": {:.1},\n",
            find(r, "repair").p99_us
        ));
        // Informational: means for every series plus the headline ratio.
        for s in SERIES {
            out.push_str(&format!(
                "  \"{}_{algo}_batch_mean\": {:.1},\n",
                s.name,
                find(r, s.name).mean_us
            ));
        }
        out.push_str(&format!("  \"{algo}_speedup_vs_cold\": {:.2},\n", r.speedup_vs_cold));
        out.push_str(&format!("  \"{algo}_mean_cone\": {:.1},\n", r.mean_cone));
        out.push_str(&format!("  \"{algo}_mean_repair_iters\": {:.1},\n", r.mean_iters));
    }
    let fallbacks = gtinker_core::metrics::global().engine_delete_fallbacks.get();
    out.push_str(&format!("  \"delete_fallbacks_observed\": {fallbacks}\n"));
    out.push_str("}\n");
    out
}

/// Runs the incremental-analytics benchmark; also writes
/// `<out-dir>/BENCH_incremental.json`.
pub fn run(args: &Args) -> Table {
    let bfs_w = workload(args, false);
    let cc_w = workload(args, true);
    let bfs = run_algo(Bfs::new(bfs_w.root), &bfs_w, "bfs");
    let cc = run_algo(Cc::new(), &cc_w, "cc");

    let mut t = Table::new(
        "fig_incremental",
        &format!(
            "Incremental analytics under churn: per-batch re-solve time, {} churn batches of \
             {} ops ({} deletes each), scale factor {}",
            bfs_w.churn.len(),
            OPS_PER_BATCH,
            OPS_PER_BATCH / DELETE_EVERY,
            args.scale_factor
        ),
        &["algo", "series", "mean_us", "p99_us", "speedup_vs_cold"],
    );
    for (algo, r) in [("bfs", &bfs), ("cc", &cc)] {
        let cold_mean = find(r, "cold").mean_us;
        for (name, s) in &r.samples {
            t.push_row(vec![
                algo.into(),
                (*name).into(),
                format!("{:.1}", s.mean_us),
                format!("{:.1}", s.p99_us),
                format!("{:.2}", cold_mean / s.mean_us.max(1e-9)),
            ]);
        }
    }

    let json = to_json(args, bfs_w.churn.len(), &bfs, &cc);
    let path = std::path::Path::new(&args.out_dir).join("BENCH_incremental.json");
    if let Err(e) =
        std::fs::create_dir_all(&args.out_dir).and_then(|()| std::fs::write(&path, json))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile_us(&[], 0.99), 0.0);
        assert_eq!(percentile_us(&[5.0], 0.99), 5.0);
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_us(&s, 0.0), 1.0);
        assert_eq!(percentile_us(&s, 1.0), 4.0);
    }

    #[test]
    fn workload_shape_is_sound() {
        let args = Args { scale_factor: 4096, batches: 3, ..Args::default() };
        let w = workload(&args, false);
        assert_eq!(w.churn.len(), 3);
        for b in &w.churn {
            assert_eq!(b.len(), OPS_PER_BATCH);
            assert!(b.iter().any(|op| matches!(op, gtinker_types::UpdateOp::Delete { .. })));
        }
        let ws = workload(&args, true);
        assert_eq!(ws.churn[0].len(), OPS_PER_BATCH * 2, "symmetrized batches double");
    }

    #[test]
    fn tiny_end_to_end_run() {
        let dir = std::env::temp_dir().join(format!("gtinker_fig_incr_out_{}", std::process::id()));
        let args = Args {
            scale_factor: 4096,
            batches: 3,
            threads: vec![1],
            out_dir: dir.to_string_lossy().into_owned(),
        };
        let t = run(&args);
        let rendered = t.render();
        assert!(rendered.contains("repair"));
        assert!(rendered.contains("monotone"));
        let json =
            std::fs::read_to_string(dir.join("BENCH_incremental.json")).expect("json written");
        assert!(json.contains("repair_bfs_batch_p99_us"));
        assert!(json.contains("cold_cc_batch_p99_us"));
        assert!(json.contains("bfs_speedup_vs_cold"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
