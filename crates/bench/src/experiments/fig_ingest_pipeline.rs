//! Ingestion-pipeline throughput (no paper counterpart — the paper's
//! ingest loop is spawn-per-batch): Meps vs shard count for the three
//! parallel apply paths — per-batch thread spawning, the persistent
//! [`ShardPool`](gtinker_core::ShardPool) workers, and the pooled workers
//! with pipelined (submit/flush) batch overlap — plus the durable path,
//! serial vs WAL-overlapped group commit.
//!
//! The stream is sliced into many *small* batches (~1000 ops) so the
//! per-batch fixed costs the pipeline removes (thread spawn/join, WAL
//! stalls) are visible rather than amortized away by giant batches.
//!
//! Alongside the TSV the run emits `BENCH_ingest_pipeline.json`.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use gtinker_core::ParallelTinker;
use gtinker_persist::{DurableTinker, SyncPolicy, WalOptions};
use gtinker_types::{Edge, EdgeBatch, TinkerConfig};

use crate::cli::Args;
use crate::experiments::common::hollywood;
use crate::report::{f3, meps, Table};

/// Batch size for the sliced stream: small enough that per-batch fixed
/// costs dominate, large enough that each shard sees real work.
const OPS_PER_BATCH: usize = 1000;

/// The shard counts compared (the acceptance point is 4).
const SHARDS: &[usize] = &[1, 2, 4];

struct ShardSample {
    shards: usize,
    spawn_meps: f64,
    pooled_meps: f64,
    pipelined_meps: f64,
}

struct DurableSample {
    inline_meps: f64,
    pipelined_meps: f64,
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gtinker_bench_ingest_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn slice_batches(edges: &[Edge]) -> Vec<EdgeBatch> {
    edges.chunks(OPS_PER_BATCH).map(EdgeBatch::inserts).collect()
}

fn fresh(n: usize) -> ParallelTinker {
    ParallelTinker::new(TinkerConfig::default(), n).expect("parallel store")
}

fn measure_spawn(batches: &[EdgeBatch], ops: u64, n: usize) -> f64 {
    let g = fresh(n);
    let t0 = Instant::now();
    for b in batches {
        g.apply_batch_spawn(b);
    }
    meps(ops, t0.elapsed())
}

fn measure_pooled(batches: &[EdgeBatch], ops: u64, n: usize) -> f64 {
    let g = fresh(n);
    let t0 = Instant::now();
    for b in batches {
        g.apply_batch(b);
    }
    meps(ops, t0.elapsed())
}

fn measure_pipelined(batches: &[Arc<EdgeBatch>], ops: u64, n: usize) -> f64 {
    let g = fresh(n);
    let t0 = Instant::now();
    for b in batches {
        g.submit_shared(Arc::clone(b));
    }
    g.flush();
    meps(ops, t0.elapsed())
}

fn measure_durable(batches: &[EdgeBatch], ops: u64, pipelined: bool) -> f64 {
    let dir = scratch(if pipelined { "dur_pipe" } else { "dur_inline" });
    let opts = WalOptions { sync: SyncPolicy::EveryN(8), ..WalOptions::default() };
    let (mut d, _) = DurableTinker::open(&dir, TinkerConfig::default(), opts).expect("open");
    d.set_pipelined(pipelined).expect("mode switch");
    let t0 = Instant::now();
    for b in batches {
        d.apply_batch(b).expect("durable apply");
    }
    d.sync().expect("sync");
    let rate = meps(ops, t0.elapsed());
    drop(d);
    let _ = std::fs::remove_dir_all(&dir);
    rate
}

fn to_json(ops: u64, n_batches: usize, shards: &[ShardSample], durable: &DurableSample) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"ingest_pipeline\",\n");
    out.push_str(&format!("  \"ops\": {ops},\n"));
    out.push_str(&format!("  \"batches\": {n_batches},\n"));
    out.push_str(&format!("  \"ops_per_batch\": {OPS_PER_BATCH},\n"));
    out.push_str("  \"shards\": [\n");
    for (i, s) in shards.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"spawn_meps\": {:.3}, \"pooled_meps\": {:.3}, \
             \"pipelined_meps\": {:.3}}}{}\n",
            s.shards,
            s.spawn_meps,
            s.pooled_meps,
            s.pipelined_meps,
            if i + 1 == shards.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    if let Some(at4) = shards.iter().find(|s| s.shards == 4).or_else(|| shards.last()) {
        let base = at4.spawn_meps.max(1e-9);
        out.push_str(&format!(
            "  \"speedup_pooled_vs_spawn_at_{}\": {:.3},\n",
            at4.shards,
            at4.pooled_meps / base
        ));
        out.push_str(&format!(
            "  \"speedup_pipelined_vs_spawn_at_{}\": {:.3},\n",
            at4.shards,
            at4.pipelined_meps / base
        ));
    }
    out.push_str(&format!(
        "  \"durable\": {{\"inline_meps\": {:.3}, \"pipelined_meps\": {:.3}, \
         \"overlap_speedup\": {:.3}}}\n",
        durable.inline_meps,
        durable.pipelined_meps,
        durable.pipelined_meps / durable.inline_meps.max(1e-9)
    ));
    out.push_str("}\n");
    out
}

/// Runs the ingestion-pipeline benchmark; also writes
/// `<out-dir>/BENCH_ingest_pipeline.json`.
pub fn run(args: &Args) -> Table {
    let spec = hollywood(args.scale_factor);
    let edges = spec.generate();
    let batches = slice_batches(&edges);
    let shared: Vec<Arc<EdgeBatch>> = batches.iter().map(|b| Arc::new(b.clone())).collect();
    let ops = edges.len() as u64;

    let mut t = Table::new(
        "fig_ingest_pipeline",
        &format!(
            "Ingestion pipeline: Medges/s, spawn-per-batch vs persistent pool vs pipelined \
             ({}, {} ops in {} batches of {})",
            spec.name,
            ops,
            batches.len(),
            OPS_PER_BATCH
        ),
        &["shards", "spawn_meps", "pooled_meps", "pipelined_meps", "pooled_vs_spawn"],
    );

    let mut samples = Vec::new();
    for &n in SHARDS {
        let spawn = measure_spawn(&batches, ops, n);
        let pooled = measure_pooled(&batches, ops, n);
        let pipelined = measure_pipelined(&shared, ops, n);
        t.push_row(vec![
            n.to_string(),
            f3(spawn),
            f3(pooled),
            f3(pipelined),
            format!("{}x", f3(pooled / spawn.max(1e-9))),
        ]);
        samples.push(ShardSample {
            shards: n,
            spawn_meps: spawn,
            pooled_meps: pooled,
            pipelined_meps: pipelined,
        });
    }

    let durable = DurableSample {
        inline_meps: measure_durable(&batches, ops, false),
        pipelined_meps: measure_durable(&batches, ops, true),
    };
    t.push_row(vec![
        "durable".into(),
        "-".into(),
        f3(durable.inline_meps),
        f3(durable.pipelined_meps),
        format!("{}x overlap", f3(durable.pipelined_meps / durable.inline_meps.max(1e-9))),
    ]);

    let json = to_json(ops, batches.len(), &samples, &durable);
    let path = std::path::Path::new(&args.out_dir).join("BENCH_ingest_pipeline.json");
    if let Err(e) =
        std::fs::create_dir_all(&args.out_dir).and_then(|()| std::fs::write(&path, json))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let s = to_json(
            4000,
            4,
            &[
                ShardSample { shards: 1, spawn_meps: 1.0, pooled_meps: 1.5, pipelined_meps: 1.6 },
                ShardSample { shards: 4, spawn_meps: 1.0, pooled_meps: 2.0, pipelined_meps: 2.5 },
            ],
            &DurableSample { inline_meps: 0.8, pipelined_meps: 1.2 },
        );
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
        assert!(s.contains("\"speedup_pooled_vs_spawn_at_4\": 2.000"));
        assert!(s.contains("\"speedup_pipelined_vs_spawn_at_4\": 2.500"));
        assert!(s.contains("\"overlap_speedup\": 1.500"));
        assert!(!s.contains("},\n  ]"), "no trailing comma before array close");
    }

    #[test]
    fn tiny_end_to_end_run() {
        let dir =
            std::env::temp_dir().join(format!("gtinker_fig_ingest_out_{}", std::process::id()));
        let args = Args {
            scale_factor: 4096,
            batches: 4,
            threads: vec![1],
            out_dir: dir.to_string_lossy().into_owned(),
        };
        let t = run(&args);
        assert!(t.render().contains("durable"));
        assert!(dir.join("BENCH_ingest_pipeline.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
