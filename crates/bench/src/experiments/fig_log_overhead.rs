//! Overhead of the structured logging layer (no paper counterpart;
//! acceptance gate for the request-scoped observability PR): pooled
//! 4-shard ingest throughput with the per-batch debug log record enabled
//! vs the logger runtime-disabled.
//!
//! The log site under test is [`gtinker_core::ShardPool`]'s dispatch
//! record (`msg="batch dispatched" seq=.. ops=..`), the densest record
//! the ingest path produces: one formatted key=value line per batch. The
//! batch size here is deliberately small so records fire often relative
//! to the work they describe. The enabled side runs at `debug` level
//! with the in-memory capture sink on (drained every trial), so the
//! measurement covers the level check, formatting, and sink handoff
//! without timing a terminal; the disabled side sets the level to `off`,
//! reducing every site to one relaxed atomic load. The compile-time
//! `log` feature gate — whose off state is an empty inline body — is
//! proven separately by the log-off build check in CI.
//!
//! Each rep times the two configurations back to back and alternates
//! which side goes first, so allocator warm-up and frequency drift hit
//! both sides equally; the gated number is the **median per-pair
//! overhead**, which a single slow trial cannot move. Alongside the TSV
//! the run emits `BENCH_log_overhead.json` with an `overhead_pct` field;
//! the acceptance criterion is < 5 % on the pooled ingest path, and
//! `lines_captured` must be nonzero (proof the instrumentation actually
//! fired on the enabled side).

use std::time::Instant;

use gtinker_core::{log, ParallelTinker};
use gtinker_types::{Edge, EdgeBatch, TinkerConfig};

use crate::cli::Args;
use crate::experiments::common::hollywood;
use crate::report::{f3, meps, Table};

/// Batch size for the ingest stream: small enough that the per-batch log
/// record fires often relative to the work it brackets (a deliberately
/// adversarial setting for the logger).
const OPS_PER_BATCH: usize = 1_000;

/// Back-to-back (enabled, disabled) pairs; the median pair overhead is
/// the gated number. Generous because the acceptance box is small (a
/// single CPU time-slices the five pool threads, so individual trials
/// are scheduler-noisy).
const REPS: usize = 15;

/// Shard count for the pooled path (matches the acceptance workload).
const SHARDS: usize = 4;

struct Sample {
    /// Best enabled-side throughput across the pairs (reporting only).
    enabled_meps: f64,
    /// Best disabled-side throughput across the pairs (reporting only).
    disabled_meps: f64,
    /// Median of the per-pair `(off - on) / off` ratios, in percent.
    /// Negative values are measurement noise (enabled ran faster).
    overhead_pct: f64,
}

/// Median of an unsorted slice (mean of the middle two when even).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN overheads"));
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn slice_batches(edges: &[Edge]) -> Vec<EdgeBatch> {
    edges.chunks(OPS_PER_BATCH).map(EdgeBatch::inserts).collect()
}

fn measure_pooled(batches: &[EdgeBatch], ops: u64) -> f64 {
    let g = ParallelTinker::new(TinkerConfig::default(), SHARDS).expect("parallel store");
    let t0 = Instant::now();
    for b in batches {
        g.apply_batch(b);
    }
    meps(ops, t0.elapsed())
}

/// Runs [`REPS`] back-to-back (logger-off, debug-level) pairs after one
/// untimed warm-up, alternating which side goes first so monotonic
/// machine drift cancels within each pair; the gated overhead is the
/// median of the per-pair ratios. Returns the sample plus the record
/// count from the last enabled trial. Restores the default level (warn)
/// and turns the capture sink off.
fn sample(mut measure: impl FnMut() -> f64) -> (Sample, u64) {
    fn enabled(measure: &mut impl FnMut() -> f64, lines: &mut u64) -> f64 {
        log::set_max_level(Some(log::Level::Debug));
        log::set_capture(true);
        let meps = measure();
        *lines = log::drain_capture().len() as u64;
        meps
    }
    fn disabled(measure: &mut impl FnMut() -> f64) -> f64 {
        log::set_max_level(None);
        measure()
    }

    let mut lines = 0u64;
    let _warmup = disabled(&mut measure);
    let mut s = Sample { enabled_meps: 0.0, disabled_meps: 0.0, overhead_pct: 0.0 };
    let mut pairs = [0.0f64; REPS];
    for (rep, pair) in pairs.iter_mut().enumerate() {
        let (off, on) = if rep % 2 == 0 {
            let off = disabled(&mut measure);
            (off, enabled(&mut measure, &mut lines))
        } else {
            let on = enabled(&mut measure, &mut lines);
            (disabled(&mut measure), on)
        };
        s.disabled_meps = s.disabled_meps.max(off);
        s.enabled_meps = s.enabled_meps.max(on);
        *pair = (off - on) / off.max(1e-9) * 100.0;
    }
    s.overhead_pct = median(&mut pairs);
    log::set_capture(false);
    log::set_max_level(Some(log::Level::Warn));
    (s, lines)
}

fn to_json(ops: u64, s: &Sample, lines_captured: u64) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"log_overhead\",\n");
    out.push_str(&format!("  \"ops\": {ops},\n"));
    out.push_str(&format!("  \"ops_per_batch\": {OPS_PER_BATCH},\n"));
    out.push_str(&format!("  \"reps\": {REPS},\n"));
    out.push_str(&format!("  \"enabled_meps\": {:.3},\n", s.enabled_meps));
    out.push_str(&format!("  \"disabled_meps\": {:.3},\n", s.disabled_meps));
    out.push_str(&format!("  \"overhead_pct\": {:.3},\n", s.overhead_pct));
    out.push_str(&format!("  \"lines_captured\": {lines_captured}\n"));
    out.push_str("}\n");
    out
}

/// Runs the log-overhead benchmark; also writes
/// `<out-dir>/BENCH_log_overhead.json`.
pub fn run(args: &Args) -> Table {
    let spec = hollywood(args.scale_factor);
    let edges = spec.generate();
    let batches = slice_batches(&edges);
    let ops = edges.len() as u64;

    let mut t = Table::new(
        "fig_log_overhead",
        &format!(
            "Structured-log overhead: pooled {SHARDS}-shard ingest Medges/s at debug \
             level vs logger off ({}, {} ops, median of {REPS} paired trials)",
            spec.name, ops
        ),
        &["path", "enabled_meps", "disabled_meps", "overhead_pct", "lines_captured"],
    );

    let (s, lines_captured) = sample(|| measure_pooled(&batches, ops));

    t.push_row(vec![
        format!("pooled{SHARDS}"),
        f3(s.enabled_meps),
        f3(s.disabled_meps),
        format!("{:.2}%", s.overhead_pct),
        lines_captured.to_string(),
    ]);

    let json = to_json(ops, &s, lines_captured);
    let path = std::path::Path::new(&args.out_dir).join("BENCH_log_overhead.json");
    if let Err(e) =
        std::fs::create_dir_all(&args.out_dir).and_then(|()| std::fs::write(&path, json))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let sample = Sample { enabled_meps: 9.5, disabled_meps: 10.0, overhead_pct: 5.0 };
        let s = to_json(80_000, &sample, 80);
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
        assert!(s.contains("\"benchmark\": \"log_overhead\""));
        assert!(s.contains("\"overhead_pct\": 5.000"));
        assert!(s.contains("\"lines_captured\": 80"));
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut odd = [1.0, 50.0, -2.0, 0.5, 1.5];
        assert_eq!(median(&mut odd), 1.0);
        let mut even = [4.0, 2.0];
        assert_eq!(median(&mut even), 3.0);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn tiny_end_to_end_run() {
        let _g = crate::experiments::common::OBS_TEST_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("gtinker_fig_log_out_{}", std::process::id()));
        let args = Args {
            scale_factor: 4096,
            batches: 4,
            threads: vec![1],
            out_dir: dir.to_string_lossy().into_owned(),
        };
        let t = run(&args);
        assert_eq!(log::max_level(), Some(log::Level::Warn), "run must restore the level");
        let rendered = t.render();
        assert!(rendered.contains("pooled4"), "got: {rendered}");
        assert!(dir.join("BENCH_log_overhead.json").exists());
        // The pooled ingest dispatches at least one batch per shard, so
        // the enabled side must have captured records.
        let json = std::fs::read_to_string(dir.join("BENCH_log_overhead.json")).unwrap();
        let lines: u64 = json
            .split("\"lines_captured\": ")
            .nth(1)
            .unwrap()
            .split(char::is_whitespace)
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(lines > 0, "enabled trial must capture log records: {json}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
