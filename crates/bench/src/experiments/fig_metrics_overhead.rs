//! Overhead of the hot-path metric instrumentation (no paper counterpart;
//! acceptance gate for the observability layer): ingest throughput with the
//! metric registry collecting vs runtime-disabled, on the sequential
//! single-store path (every insert crosses the RHH/SGH/tinker hooks) and on
//! the pooled 4-shard path (adds the pool queue/claim hooks).
//!
//! Both configurations run in one binary by toggling the registry's runtime
//! flag ([`gtinker_core::metrics::set_enabled`]); the compile-time `metrics`
//! feature gate (whose off state is a true zero-cost no-op) is covered
//! separately by the metrics-off build check in CI. Trials interleave
//! disabled/enabled and take the best of each so allocator warm-up and CPU
//! frequency drift do not bias one side.
//!
//! Alongside the TSV the run emits `BENCH_metrics_overhead.json` with an
//! `overhead_pct` field; the acceptance criterion is < 5 % on the
//! sequential ingest hot path.

use std::time::Instant;

use gtinker_core::{metrics, GraphTinker, ParallelTinker};
use gtinker_types::{Edge, EdgeBatch, TinkerConfig};

use crate::cli::Args;
use crate::experiments::common::hollywood;
use crate::report::{f3, meps, Table};

/// Batch size for the ingest stream: large enough that per-batch fixed
/// costs vanish and the per-insert hook cost dominates the measurement.
const OPS_PER_BATCH: usize = 10_000;

/// Interleaved trials per configuration; the best of each side is compared.
const REPS: usize = 5;

struct Sample {
    enabled_meps: f64,
    disabled_meps: f64,
}

impl Sample {
    /// Relative throughput cost of collecting: `(off - on) / off`, in
    /// percent. Negative values are measurement noise (enabled ran faster).
    fn overhead_pct(&self) -> f64 {
        (self.disabled_meps - self.enabled_meps) / self.disabled_meps.max(1e-9) * 100.0
    }
}

fn slice_batches(edges: &[Edge]) -> Vec<EdgeBatch> {
    edges.chunks(OPS_PER_BATCH).map(EdgeBatch::inserts).collect()
}

fn measure_sequential(batches: &[EdgeBatch], ops: u64) -> f64 {
    let mut g = GraphTinker::with_defaults();
    let t0 = Instant::now();
    for b in batches {
        g.apply_batch(b);
    }
    meps(ops, t0.elapsed())
}

fn measure_pooled(batches: &[EdgeBatch], ops: u64, shards: usize) -> f64 {
    let g = ParallelTinker::new(TinkerConfig::default(), shards).expect("parallel store");
    let t0 = Instant::now();
    for b in batches {
        g.apply_batch(b);
    }
    meps(ops, t0.elapsed())
}

/// Best-of-[`REPS`] for one measurement function, interleaving the
/// disabled and enabled trials. Restores collection to enabled.
fn sample(mut measure: impl FnMut() -> f64) -> Sample {
    let mut s = Sample { enabled_meps: 0.0, disabled_meps: 0.0 };
    for _ in 0..REPS {
        metrics::set_enabled(false);
        s.disabled_meps = s.disabled_meps.max(measure());
        metrics::set_enabled(true);
        s.enabled_meps = s.enabled_meps.max(measure());
    }
    s
}

fn to_json(ops: u64, seq: &Sample, pooled: &Sample, samples_recorded: u64) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"metrics_overhead\",\n");
    out.push_str(&format!("  \"ops\": {ops},\n"));
    out.push_str(&format!("  \"ops_per_batch\": {OPS_PER_BATCH},\n"));
    out.push_str(&format!("  \"reps\": {REPS},\n"));
    out.push_str(&format!("  \"seq_enabled_meps\": {:.3},\n", seq.enabled_meps));
    out.push_str(&format!("  \"seq_disabled_meps\": {:.3},\n", seq.disabled_meps));
    out.push_str(&format!("  \"overhead_pct\": {:.3},\n", seq.overhead_pct()));
    out.push_str(&format!("  \"pooled_enabled_meps\": {:.3},\n", pooled.enabled_meps));
    out.push_str(&format!("  \"pooled_disabled_meps\": {:.3},\n", pooled.disabled_meps));
    out.push_str(&format!("  \"pooled_overhead_pct\": {:.3},\n", pooled.overhead_pct()));
    out.push_str(&format!("  \"samples_recorded\": {samples_recorded}\n"));
    out.push_str("}\n");
    out
}

/// Runs the metrics-overhead benchmark; also writes
/// `<out-dir>/BENCH_metrics_overhead.json`.
pub fn run(args: &Args) -> Table {
    let spec = hollywood(args.scale_factor);
    let edges = spec.generate();
    let batches = slice_batches(&edges);
    let ops = edges.len() as u64;

    let mut t = Table::new(
        "fig_metrics_overhead",
        &format!(
            "Metric instrumentation overhead: Medges/s with collection on vs off \
             ({}, {} ops, best of {REPS} interleaved trials)",
            spec.name, ops
        ),
        &["path", "enabled_meps", "disabled_meps", "overhead_pct"],
    );

    let seq = sample(|| measure_sequential(&batches, ops));
    // Snapshot right after an enabled sequential run: proves the hooks
    // actually collected (a zero here would mean we measured nothing).
    let samples_recorded = metrics::global().snapshot().rhh_probe.count();
    let pooled = sample(|| measure_pooled(&batches, ops, 4));
    metrics::set_enabled(true);

    for (name, s) in [("sequential", &seq), ("pooled4", &pooled)] {
        t.push_row(vec![
            name.into(),
            f3(s.enabled_meps),
            f3(s.disabled_meps),
            format!("{:.2}%", s.overhead_pct()),
        ]);
    }

    let json = to_json(ops, &seq, &pooled, samples_recorded);
    let path = std::path::Path::new(&args.out_dir).join("BENCH_metrics_overhead.json");
    if let Err(e) =
        std::fs::create_dir_all(&args.out_dir).and_then(|()| std::fs::write(&path, json))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let s = to_json(
            80_000,
            &Sample { enabled_meps: 9.5, disabled_meps: 10.0 },
            &Sample { enabled_meps: 20.0, disabled_meps: 20.0 },
            80_000,
        );
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
        assert!(s.contains("\"overhead_pct\": 5.000"));
        assert!(s.contains("\"pooled_overhead_pct\": 0.000"));
        assert!(s.contains("\"samples_recorded\": 80000"));
    }

    #[test]
    fn tiny_end_to_end_run() {
        let _g = crate::experiments::common::OBS_TEST_LOCK.lock().unwrap();
        let dir =
            std::env::temp_dir().join(format!("gtinker_fig_metrics_out_{}", std::process::id()));
        let args = Args {
            scale_factor: 4096,
            batches: 4,
            threads: vec![1],
            out_dir: dir.to_string_lossy().into_owned(),
        };
        let t = run(&args);
        assert!(metrics::enabled(), "run must leave collection enabled");
        assert!(t.render().contains("sequential"));
        assert!(dir.join("BENCH_metrics_overhead.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
