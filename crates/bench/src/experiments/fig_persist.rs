//! Durability costs (no paper counterpart — the paper's GraphTinker is
//! memory-only): snapshot write/load bandwidth, WAL append throughput per
//! sync policy, and recovery time as a function of how much log must be
//! replayed, on the Hollywood-2009 RMAT stand-in.
//!
//! Alongside the TSV the run emits `BENCH_persist.json`.

use std::path::PathBuf;
use std::time::Instant;

use gtinker_core::GraphTinker;
use gtinker_persist::{
    load_tinker_snapshot, recover_tinker, write_tinker_snapshot, SyncPolicy, WalOptions, WalWriter,
};
use gtinker_types::{EdgeBatch, TinkerConfig};

use crate::cli::Args;
use crate::experiments::common::{dataset_batches, hollywood};
use crate::report::{f3, meps, Table};

struct SnapshotSample {
    bytes: u64,
    write_ms: f64,
    load_ms: f64,
    write_mbps: f64,
    load_mbps: f64,
}

struct AppendSample {
    policy: &'static str,
    ms: f64,
    meps: f64,
}

struct RecoverySample {
    records: u64,
    ops: u64,
    ms: f64,
    meps: f64,
}

fn mbps(bytes: u64, secs: f64) -> f64 {
    if secs == 0.0 {
        0.0
    } else {
        bytes as f64 / secs / 1e6
    }
}

/// A scratch directory under the system temp dir, fresh for this run.
fn scratch(tag: &str) -> PathBuf {
    let d =
        std::env::temp_dir().join(format!("gtinker_bench_persist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn measure_snapshot(g: &GraphTinker) -> SnapshotSample {
    let dir = scratch("snap");
    let t0 = Instant::now();
    let path = write_tinker_snapshot(&dir, g, 0).expect("snapshot write");
    let write_secs = t0.elapsed().as_secs_f64();
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let t0 = Instant::now();
    let (back, _) = load_tinker_snapshot(&path).expect("snapshot load");
    let load_secs = t0.elapsed().as_secs_f64();
    assert_eq!(back.num_edges(), g.num_edges(), "snapshot must restore every edge");
    let _ = std::fs::remove_dir_all(&dir);
    SnapshotSample {
        bytes,
        write_ms: write_secs * 1e3,
        load_ms: load_secs * 1e3,
        write_mbps: mbps(bytes, write_secs),
        load_mbps: mbps(bytes, load_secs),
    }
}

fn measure_append(batches: &[EdgeBatch], policy: SyncPolicy, label: &'static str) -> AppendSample {
    let dir = scratch(label);
    let opts = WalOptions { sync: policy, ..WalOptions::default() };
    let (mut wal, _) = WalWriter::open(&dir, opts).expect("wal open");
    let ops: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let t0 = Instant::now();
    for b in batches {
        wal.append(b).expect("wal append");
    }
    wal.sync().expect("wal sync");
    let dur = t0.elapsed();
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    AppendSample { policy: label, ms: dur.as_secs_f64() * 1e3, meps: meps(ops, dur) }
}

fn measure_recovery(batches: &[EdgeBatch], records: usize) -> RecoverySample {
    let dir = scratch(&format!("rec{records}"));
    let opts = WalOptions { sync: SyncPolicy::Never, ..WalOptions::default() };
    let (mut wal, _) = WalWriter::open(&dir, opts).expect("wal open");
    let mut ops = 0u64;
    for b in &batches[..records] {
        wal.append(b).expect("wal append");
        ops += b.len() as u64;
    }
    wal.sync().expect("wal sync");
    drop(wal);
    let t0 = Instant::now();
    let (g, report) = recover_tinker(&dir, TinkerConfig::default()).expect("recover");
    let dur = t0.elapsed();
    assert_eq!(report.replayed_records, records as u64);
    assert!(g.num_edges() > 0 || ops == 0);
    let _ = std::fs::remove_dir_all(&dir);
    RecoverySample {
        records: records as u64,
        ops,
        ms: dur.as_secs_f64() * 1e3,
        meps: meps(ops, dur),
    }
}

fn to_json(
    edges: u64,
    snap: &SnapshotSample,
    appends: &[AppendSample],
    recoveries: &[RecoverySample],
) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"persist\",\n");
    out.push_str(&format!("  \"edges\": {edges},\n"));
    out.push_str(&format!(
        "  \"snapshot\": {{\"bytes\": {}, \"write_mbps\": {:.3}, \"load_mbps\": {:.3}}},\n",
        snap.bytes, snap.write_mbps, snap.load_mbps
    ));
    out.push_str("  \"wal_append_meps\": {");
    for (i, a) in appends.iter().enumerate() {
        out.push_str(&format!(
            "\"{}\": {:.3}{}",
            a.policy,
            a.meps,
            if i + 1 == appends.len() { "" } else { ", " }
        ));
    }
    out.push_str("},\n  \"recovery\": [\n");
    for (i, r) in recoveries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"records\": {}, \"ops\": {}, \"ms\": {:.3}, \"meps\": {:.3}}}{}\n",
            r.records,
            r.ops,
            r.ms,
            r.meps,
            if i + 1 == recoveries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the durability benchmark; also writes `<out-dir>/BENCH_persist.json`.
pub fn run(args: &Args) -> Table {
    let spec = hollywood(args.scale_factor);
    let batches = dataset_batches(&spec, args.batches, false);
    let total_ops: u64 = batches.iter().map(|b| b.len() as u64).sum();

    let mut g = GraphTinker::with_defaults();
    for b in &batches {
        g.apply_batch(b);
    }

    let mut t = Table::new(
        "fig_persist",
        &format!(
            "Durability: snapshot MB/s, WAL append Medges/s, recovery vs log length \
             ({}, {} ops, {} batches)",
            spec.name,
            total_ops,
            batches.len()
        ),
        &["stage", "size", "time_ms", "throughput"],
    );

    let snap = measure_snapshot(&g);
    t.push_row(vec![
        "snapshot_write".into(),
        format!("{} B", snap.bytes),
        f3(snap.write_ms),
        format!("{} MB/s", f3(snap.write_mbps)),
    ]);
    t.push_row(vec![
        "snapshot_load".into(),
        format!("{} B", snap.bytes),
        f3(snap.load_ms),
        format!("{} MB/s", f3(snap.load_mbps)),
    ]);

    let appends = vec![
        measure_append(&batches, SyncPolicy::Never, "never"),
        measure_append(&batches, SyncPolicy::EveryN(8), "every8"),
        measure_append(&batches, SyncPolicy::EveryRecord, "always"),
    ];
    for a in &appends {
        t.push_row(vec![
            format!("wal_append[{}]", a.policy),
            format!("{total_ops} ops"),
            f3(a.ms),
            format!("{} Medges/s", f3(a.meps)),
        ]);
    }

    let mut lengths: Vec<usize> = [batches.len() / 4, batches.len() / 2, batches.len()]
        .into_iter()
        .filter(|&n| n > 0)
        .collect();
    lengths.dedup();
    let recoveries: Vec<RecoverySample> =
        lengths.iter().map(|&n| measure_recovery(&batches, n)).collect();
    for r in &recoveries {
        t.push_row(vec![
            format!("recover[{} records]", r.records),
            format!("{} ops", r.ops),
            f3(r.ms),
            format!("{} Medges/s", f3(r.meps)),
        ]);
    }

    let json = to_json(total_ops, &snap, &appends, &recoveries);
    let path = std::path::Path::new(&args.out_dir).join("BENCH_persist.json");
    if let Err(e) =
        std::fs::create_dir_all(&args.out_dir).and_then(|()| std::fs::write(&path, json))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let s = to_json(
            100,
            &SnapshotSample {
                bytes: 1200,
                write_ms: 0.1,
                load_ms: 0.1,
                write_mbps: 10.0,
                load_mbps: 20.0,
            },
            &[
                AppendSample { policy: "never", ms: 1.0, meps: 5.0 },
                AppendSample { policy: "always", ms: 5.0, meps: 1.0 },
            ],
            &[RecoverySample { records: 4, ops: 100, ms: 2.0, meps: 0.05 }],
        );
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
        assert!(s.contains("\"write_mbps\": 10.000"));
        assert!(s.contains("\"never\": 5.000, \"always\": 1.000"));
        assert!(!s.contains("},\n  ]"), "no trailing comma before array close");
    }

    #[test]
    fn tiny_end_to_end_run() {
        let dir =
            std::env::temp_dir().join(format!("gtinker_fig_persist_out_{}", std::process::id()));
        let args = Args {
            scale_factor: 4096,
            batches: 4,
            threads: vec![1],
            out_dir: dir.to_string_lossy().into_owned(),
        };
        let t = run(&args);
        assert!(t.render().contains("snapshot_write"));
        assert!(dir.join("BENCH_persist.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
