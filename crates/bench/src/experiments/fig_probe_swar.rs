//! SWAR tag-probe benchmark (no paper counterpart; acceptance gate for
//! the fingerprint-lane probe engine): point-lookup throughput, mixed
//! insert/delete churn throughput, and mean edge-cells inspected per find,
//! with tag probing on vs the seed cell-by-cell scan, on a hub-heavy Zipf
//! stream and on a uniform stream.
//!
//! Both configurations maintain tag lanes (maintenance is unconditional);
//! they differ only in the scan strategy executed, so the comparison
//! isolates the probe loop itself. The tagged engine should win on finds —
//! it touches full-width [`EdgeCell`]s only on fingerprint candidates —
//! and on churn, where every insert and delete starts with a find walk.
//! The cells-inspected ratio is measured structurally (from the store's
//! own probe counters over an identical delete sweep), so it is
//! machine-independent.
//!
//! Alongside the TSV the run emits `BENCH_probe_swar.json`; the acceptance
//! criteria are `zipf_find_tagged_meps >= 1.2 * zipf_find_seed_meps`,
//! `zipf_churn_tagged_meps >= 1.1 * zipf_churn_seed_meps`, and
//! `find_cells_seed >= 2 * find_cells_tagged`. The mean-latency fields
//! carry a `_ns` suffix so `bench_diff` gates them (inverted direction).
//!
//! [`EdgeCell`]: gtinker_core::EdgeCell

use std::collections::HashSet;
use std::time::Instant;

use gtinker_core::{GraphTinker, ProbeStats};
use gtinker_datasets::{churn_batches, dataset_by_name, SourceSkewConfig};
use gtinker_types::{Edge, EdgeBatch, TinkerConfig};

use crate::cli::Args;
use crate::report::{f3, meps, Table};

/// Batch size for the ingest / churn streams.
const OPS_PER_BATCH: usize = 10_000;

/// Interleaved trials per configuration; the best of each side is kept.
const REPS: usize = 3;

/// The engine under test: SWAR tag probing on (the default), CAL off so
/// the measurement stays on the probe structure. Wide 32-cell subblocks
/// put the store in the scan-bound regime the tag engine targets — a
/// missed subblock costs the seed engine 32 full-cell compares (512 B of
/// cell traffic) but the tagged engine four 8-byte tag loads; the default
/// 8-cell geometry hides scan cost behind pointer-chasing instead.
fn tagged_config() -> TinkerConfig {
    TinkerConfig { pagewidth: 128, subblock: 32, workblock: 8, ..TinkerConfig::default() }
        .cal(false)
}

/// The identical store flipped back to the seed scalar scan. Tag lanes are
/// still maintained, so the two differ only in the probe code they run.
fn seed_config() -> TinkerConfig {
    tagged_config().probe_tags(false)
}

fn slice_batches(edges: &[Edge]) -> Vec<EdgeBatch> {
    edges.chunks(OPS_PER_BATCH).map(EdgeBatch::inserts).collect()
}

/// Unique `(src, dst)` pairs in first-seen order: the delete sweep for the
/// structural probe-cost measurement.
fn dedup_queries(edges: &[Edge]) -> Vec<(u32, u32)> {
    let mut seen = HashSet::new();
    edges.iter().filter(|e| seen.insert((e.src, e.dst))).map(|e| (e.src, e.dst)).collect()
}

/// The timed point-lookup stream: every unique edge plus an equal number of
/// guaranteed-absent destinations (`dst + vertex_space`), shuffled with a
/// seeded xorshift so lookups don't ride the insertion-order cache
/// locality. Misses are half of real `contains_edge` traffic and the walk
/// that starts every fresh insert; they scan the whole subblock chain,
/// which is exactly where a tag lane replaces full-cell traffic.
fn lookup_stream(present: &[(u32, u32)], vertex_space: u32, seed: u64) -> Vec<(u32, u32)> {
    let mut q: Vec<(u32, u32)> = Vec::with_capacity(present.len() * 2);
    for &(s, d) in present {
        q.push((s, d));
        q.push((s, d + vertex_space));
    }
    let mut x = seed | 1;
    for i in (1..q.len()).rev() {
        // xorshift64*: deterministic, dependency-free shuffle.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        q.swap(i, (x % (i as u64 + 1)) as usize);
    }
    q
}

fn build(config: TinkerConfig, batches: &[EdgeBatch]) -> GraphTinker {
    let mut g = GraphTinker::new(config).expect("valid bench config");
    for b in batches {
        g.apply_batch(b);
    }
    g
}

/// Times one pass of point lookups; returns `(meps, mean_ns)`. The weight
/// sum is returned through the accumulator so the loop cannot be elided.
fn measure_find(g: &GraphTinker, queries: &[(u32, u32)], acc: &mut u64) -> (f64, f64) {
    let t0 = Instant::now();
    for &(s, d) in queries {
        *acc = acc.wrapping_add(g.edge_weight(s, d).unwrap_or(0) as u64);
    }
    let dur = t0.elapsed();
    (meps(queries.len() as u64, dur), dur.as_nanos() as f64 / queries.len().max(1) as f64)
}

/// Best-of-[`REPS`] interleaved find sampling over two prebuilt stores:
/// `((seed_meps, seed_ns), (tagged_meps, tagged_ns))`.
fn sample_find(
    seed: &GraphTinker,
    tagged: &GraphTinker,
    queries: &[(u32, u32)],
) -> ((f64, f64), (f64, f64)) {
    let (mut sm, mut sn, mut tm, mut tn) = (0.0f64, f64::INFINITY, 0.0f64, f64::INFINITY);
    let mut acc = 0u64;
    for _ in 0..REPS {
        let (m, n) = measure_find(seed, queries, &mut acc);
        sm = sm.max(m);
        sn = sn.min(n);
        let (m, n) = measure_find(tagged, queries, &mut acc);
        tm = tm.max(m);
        tn = tn.min(n);
    }
    // Both stores hold the same edges, so the accumulated weight sums agree;
    // consuming `acc` here keeps the lookup loops observable.
    assert!(acc > 0 || queries.is_empty(), "lookup accumulator must be live");
    ((sm, sn), (tm, tn))
}

/// Applies a mixed insert/delete stream to a fresh store; Mops/s.
fn measure_churn(config: TinkerConfig, batches: &[EdgeBatch], ops: u64) -> f64 {
    let mut g = GraphTinker::new(config).expect("valid bench config");
    let t0 = Instant::now();
    for b in batches {
        g.apply_batch(b);
    }
    meps(ops, t0.elapsed())
}

/// Best-of-[`REPS`] interleaved churn: `(seed_meps, tagged_meps)`.
fn sample_churn(batches: &[EdgeBatch], ops: u64) -> (f64, f64) {
    let (mut seed, mut tagged) = (0.0f64, 0.0f64);
    for _ in 0..REPS {
        seed = seed.max(measure_churn(seed_config(), batches, ops));
        tagged = tagged.max(measure_churn(tagged_config(), batches, ops));
    }
    (seed, tagged)
}

/// Structural probe cost: builds a store, then deletes every unique edge —
/// each delete is a find-hit through the full locate path, which the store
/// instruments — and reports mean cells inspected per find plus the
/// counters. Deterministic, so one pass suffices.
fn probe_cost(
    config: TinkerConfig,
    batches: &[EdgeBatch],
    queries: &[(u32, u32)],
) -> (f64, ProbeStats) {
    let mut g = build(config, batches);
    g.reset_stats();
    for &(s, d) in queries {
        g.delete_edge(s, d);
    }
    let st = g.stats();
    (st.cells_inspected as f64 / st.operations.max(1) as f64, st)
}

struct Side {
    find_meps: f64,
    find_ns: f64,
    churn_meps: f64,
}

fn to_json(
    ops: u64,
    zipf: (Side, Side),
    uniform: (Side, Side),
    cells: (f64, f64),
    tagged_stats: &ProbeStats,
) -> String {
    let (seed_z, tag_z) = (&zipf.0, &zipf.1);
    let (seed_u, tag_u) = (&uniform.0, &uniform.1);
    // FP rate per scanned tag lane (8 per group): the geometry-independent
    // fingerprint quality, bounded near 1/128 per occupied lane.
    let fp_pct = if tagged_stats.tag_group_scans == 0 {
        0.0
    } else {
        tagged_stats.tag_false_positives as f64 / (tagged_stats.tag_group_scans * 8) as f64 * 100.0
    };
    let mut out = String::from("{\n  \"benchmark\": \"probe_swar\",\n");
    out.push_str(&format!("  \"ops\": {ops},\n"));
    out.push_str(&format!("  \"reps\": {REPS},\n"));
    out.push_str(&format!("  \"zipf_find_seed_meps\": {:.3},\n", seed_z.find_meps));
    out.push_str(&format!("  \"zipf_find_tagged_meps\": {:.3},\n", tag_z.find_meps));
    out.push_str(&format!("  \"zipf_churn_seed_meps\": {:.3},\n", seed_z.churn_meps));
    out.push_str(&format!("  \"zipf_churn_tagged_meps\": {:.3},\n", tag_z.churn_meps));
    out.push_str(&format!("  \"uniform_find_seed_meps\": {:.3},\n", seed_u.find_meps));
    out.push_str(&format!("  \"uniform_find_tagged_meps\": {:.3},\n", tag_u.find_meps));
    out.push_str(&format!("  \"uniform_churn_seed_meps\": {:.3},\n", seed_u.churn_meps));
    out.push_str(&format!("  \"uniform_churn_tagged_meps\": {:.3},\n", tag_u.churn_meps));
    out.push_str(&format!("  \"find_seed_mean_ns\": {:.1},\n", seed_z.find_ns));
    out.push_str(&format!("  \"find_tagged_mean_ns\": {:.1},\n", tag_z.find_ns));
    out.push_str(&format!("  \"find_cells_seed\": {:.3},\n", cells.0));
    out.push_str(&format!("  \"find_cells_tagged\": {:.3},\n", cells.1));
    out.push_str(&format!("  \"find_cells_ratio\": {:.3},\n", cells.0 / cells.1.max(1e-9)));
    out.push_str(&format!("  \"tag_group_scans\": {},\n", tagged_stats.tag_group_scans));
    out.push_str(&format!("  \"tag_false_positives\": {},\n", tagged_stats.tag_false_positives));
    out.push_str(&format!("  \"tag_fp_pct\": {fp_pct:.3}\n"));
    out.push_str("}\n");
    out
}

/// Runs one workload end to end: `(seed, tagged, cells, tagged_stats)`.
fn run_workload(edges: &[Edge], churn_seed: u64) -> (Side, Side, (f64, f64), ProbeStats) {
    let batches = slice_batches(edges);
    let queries = dedup_queries(edges);
    let vertex_space = edges.iter().map(|e| e.dst).max().unwrap_or(0) + 1;
    let lookups = lookup_stream(&queries, vertex_space, churn_seed);
    let churn = churn_batches(edges, OPS_PER_BATCH, 3, churn_seed);
    let churn_ops: u64 = churn.iter().map(|b| b.len() as u64).sum();

    let seed_store = build(seed_config(), &batches);
    let tagged_store = build(tagged_config(), &batches);
    let ((seed_m, seed_n), (tag_m, tag_n)) = sample_find(&seed_store, &tagged_store, &lookups);
    drop((seed_store, tagged_store));

    let (churn_seed_m, churn_tag_m) = sample_churn(&churn, churn_ops);

    let (cells_seed, st_seed) = probe_cost(seed_config(), &batches, &queries);
    let (cells_tagged, st_tagged) = probe_cost(tagged_config(), &batches, &queries);
    assert_eq!(st_seed.tag_group_scans, 0, "seed engine must not group-scan");
    assert!(st_tagged.tag_group_scans > 0, "tagged engine never exercised the SWAR path");

    (
        Side { find_meps: seed_m, find_ns: seed_n, churn_meps: churn_seed_m },
        Side { find_meps: tag_m, find_ns: tag_n, churn_meps: churn_tag_m },
        (cells_seed, cells_tagged),
        st_tagged,
    )
}

/// Runs the SWAR probe benchmark; also writes
/// `<out-dir>/BENCH_probe_swar.json`.
pub fn run(args: &Args) -> Table {
    let spec = dataset_by_name("Zipf_SourceSkew", args.scale_factor).expect("catalog dataset");
    let zipf_edges = spec.generate();
    // Uniform control: same size, theta 0 (every source equally likely).
    let uniform_edges = SourceSkewConfig {
        num_vertices: spec.vertices,
        num_edges: spec.edges,
        theta: 0.0,
        seed: spec.seed,
        max_weight: 64,
    }
    .generate();

    let (zs, zt, zipf_cells, zt_stats) = run_workload(&zipf_edges, spec.seed);
    let (us, ut, _, _) = run_workload(&uniform_edges, spec.seed ^ 1);

    let mut t = Table::new(
        "fig_probe_swar",
        &format!(
            "SWAR tag probing vs seed scalar scan: point-lookup and churn Mops/s, \
             cells inspected per find ({}, {} edges, best of {REPS} interleaved trials)",
            spec.name,
            zipf_edges.len()
        ),
        &["workload", "engine", "find_meps", "churn_meps", "cells_per_find"],
    );
    t.push_row(vec![
        "zipf_skew".into(),
        "seed".into(),
        f3(zs.find_meps),
        f3(zs.churn_meps),
        f3(zipf_cells.0),
    ]);
    t.push_row(vec![
        "zipf_skew".into(),
        "tagged".into(),
        f3(zt.find_meps),
        f3(zt.churn_meps),
        f3(zipf_cells.1),
    ]);
    t.push_row(vec![
        "uniform".into(),
        "seed".into(),
        f3(us.find_meps),
        f3(us.churn_meps),
        "-".into(),
    ]);
    t.push_row(vec![
        "uniform".into(),
        "tagged".into(),
        f3(ut.find_meps),
        f3(ut.churn_meps),
        "-".into(),
    ]);

    let json = to_json(zipf_edges.len() as u64, (zs, zt), (us, ut), zipf_cells, &zt_stats);
    let path = std::path::Path::new(&args.out_dir).join("BENCH_probe_swar.json");
    if let Err(e) =
        std::fs::create_dir_all(&args.out_dir).and_then(|()| std::fs::write(&path, json))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn side(m: f64, n: f64, c: f64) -> Side {
        Side { find_meps: m, find_ns: n, churn_meps: c }
    }

    #[test]
    fn json_has_the_gate_fields() {
        let st =
            ProbeStats { tag_group_scans: 1_000, tag_false_positives: 8, ..Default::default() };
        let s = to_json(
            9_000,
            (side(5.0, 200.0, 8.0), side(9.0, 110.0, 9.5)),
            (side(6.0, 180.0, 8.5), side(7.0, 150.0, 9.0)),
            (24.0, 3.0),
            &st,
        );
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
        assert!(s.contains("\"zipf_find_tagged_meps\": 9.000"));
        assert!(s.contains("\"zipf_churn_seed_meps\": 8.000"));
        assert!(s.contains("\"find_tagged_mean_ns\": 110.0"));
        assert!(s.contains("\"find_cells_ratio\": 8.000"));
        assert!(s.contains("\"tag_fp_pct\": 0.100"));
    }

    #[test]
    fn tiny_end_to_end_run() {
        let dir = std::env::temp_dir().join(format!("gtinker_fig_probe_{}", std::process::id()));
        let args = Args {
            scale_factor: 8192,
            batches: 4,
            threads: vec![1],
            out_dir: dir.to_string_lossy().into_owned(),
        };
        let t = run(&args);
        let rendered = t.render();
        assert!(rendered.contains("tagged"));
        assert!(rendered.contains("zipf_skew"));
        let json = std::fs::read_to_string(dir.join("BENCH_probe_swar.json")).unwrap();
        assert!(json.contains("\"zipf_find_tagged_meps\""));
        assert!(json.contains("\"find_cells_ratio\""));
        assert!(json.contains("\"tag_group_scans\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
