//! Concurrent query serving vs pipelined ingest (no paper counterpart —
//! the paper's store is single-writer with stop-the-world reads): N reader
//! threads issue point queries against epoch-pinned snapshot views
//! ([`ParallelTinker::pin_view`]) while a pipelined writer streams small
//! batches, and we measure how much writer throughput survives.
//!
//! Three configurations:
//!
//! * **writer-only** — the pipelined writer with views enabled but no
//!   readers: the baseline Meps everything is retained against.
//! * **pinned readers** — readers pin an acked-boundary view per query
//!   (exactly what the `gtinker serve` query endpoints do); the writer
//!   never waits for them and they never drain the pipeline.
//! * **settle readers** — the pre-epoch alternative: readers query the
//!   live shards directly, which settles (drains) the pipeline on every
//!   query. Reported for contrast, outside the regression-gated fields,
//!   because its throughput collapse is the point, not a stable number.
//!
//! Alongside the TSV the run emits `BENCH_serve_concurrent.json` with
//! `writer_only_meps` / `writer_pinned_meps` (regression-gated), the
//! retained percentage, reader QPS, and read latency percentiles.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gtinker_core::ParallelTinker;
use gtinker_types::{Edge, EdgeBatch, TinkerConfig};

use crate::cli::Args;
use crate::experiments::common::hollywood;
use crate::report::{f3, meps, Table};

/// Batch size for the sliced stream: small, so the writer is genuinely
/// pipelined rather than amortizing everything into one giant apply.
const OPS_PER_BATCH: usize = 1000;

/// Shard count for every configuration (the repo's acceptance point).
const SHARDS: usize = 4;

/// Concurrent reader threads in the serving configurations.
const READERS: usize = 4;

/// Think time between queries per reader: the clients are paced (as HTTP
/// clients are), not busy-spinning — a spin loop would measure CPU
/// oversubscription, not snapshot-isolation overhead. 4 readers at
/// ~1/200us each offer roughly 10-20k QPS of sustained load.
const READER_THINK: std::time::Duration = std::time::Duration::from_micros(200);

/// One query = pin (or settle) + degree + neighbor scan of one vertex —
/// the same shape as the `gtinker serve` `/query/neighbors` endpoint.
struct ReadStats {
    queries: u64,
    latencies_ns: Vec<u64>,
    elapsed_secs: f64,
}

struct ServeSample {
    writer_meps: f64,
    reader_qps: f64,
    read_p50_us: f64,
    read_p99_us: f64,
    queries: u64,
}

fn slice_batches(edges: &[Edge]) -> Vec<Arc<EdgeBatch>> {
    edges.chunks(OPS_PER_BATCH).map(|c| Arc::new(EdgeBatch::inserts(c))).collect()
}

fn fresh() -> ParallelTinker {
    ParallelTinker::new_with_views(TinkerConfig::default(), SHARDS).expect("parallel store")
}

/// Cheap deterministic per-reader vertex picker (no shared RNG state).
fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

fn measure_writer_only(batches: &[Arc<EdgeBatch>], ops: u64) -> f64 {
    let g = fresh();
    let t0 = Instant::now();
    for b in batches {
        g.submit_shared(Arc::clone(b));
    }
    g.flush();
    meps(ops, t0.elapsed())
}

fn reader_loop(
    g: &ParallelTinker,
    done: &AtomicBool,
    vspace: u32,
    seed: u64,
    settle: bool,
) -> ReadStats {
    let mut stats = ReadStats { queries: 0, latencies_ns: Vec::new(), elapsed_secs: 0.0 };
    let mut x = lcg(0x9E37_79B9_7F4A_7C15 ^ seed);
    let started = Instant::now();
    // `|| queries == 0` guarantees at least one observation even when the
    // writer finishes before this thread gets scheduled (tiny test runs).
    while !done.load(Ordering::Acquire) || stats.queries == 0 {
        x = lcg(x);
        let v = (x >> 33) as u32 % vspace.max(1);
        let t = Instant::now();
        let mut touched = 0u64;
        if settle {
            touched += u64::from(g.out_degree(v));
            g.for_each_out_edge(v, |d, _| touched = touched.wrapping_add(u64::from(d)));
        } else if let Some(view) = g.pin_view() {
            touched += u64::from(view.out_degree(v));
            view.for_each_out_edge(v, |d, _| touched = touched.wrapping_add(u64::from(d)));
        }
        std::hint::black_box(touched);
        stats.latencies_ns.push(t.elapsed().as_nanos() as u64);
        stats.queries += 1;
        std::thread::sleep(READER_THINK);
    }
    stats.elapsed_secs = started.elapsed().as_secs_f64();
    stats
}

fn measure_concurrent(
    batches: &[Arc<EdgeBatch>],
    ops: u64,
    vspace: u32,
    settle: bool,
) -> ServeSample {
    let g = fresh();
    let done = AtomicBool::new(false);
    let (writer_meps, readers) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|r| {
                let (g, done) = (&g, &done);
                scope.spawn(move || reader_loop(g, done, vspace, r as u64 + 1, settle))
            })
            .collect();
        let t0 = Instant::now();
        for b in batches {
            g.submit_shared(Arc::clone(b));
        }
        g.flush();
        let rate = meps(ops, t0.elapsed());
        done.store(true, Ordering::Release);
        (rate, handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>())
    });

    let queries: u64 = readers.iter().map(|r| r.queries).sum();
    let wall = readers.iter().map(|r| r.elapsed_secs).fold(0.0_f64, f64::max);
    let mut lat: Vec<u64> = readers.into_iter().flat_map(|r| r.latencies_ns).collect();
    lat.sort_unstable();
    ServeSample {
        writer_meps,
        reader_qps: queries as f64 / wall.max(1e-9),
        read_p50_us: percentile_us(&lat, 0.50),
        read_p99_us: percentile_us(&lat, 0.99),
        queries,
    }
}

fn to_json(
    ops: u64,
    n_batches: usize,
    only: f64,
    pinned: &ServeSample,
    settle: &ServeSample,
) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"serve_concurrent\",\n");
    out.push_str(&format!("  \"ops\": {ops},\n"));
    out.push_str(&format!("  \"batches\": {n_batches},\n"));
    out.push_str(&format!("  \"ops_per_batch\": {OPS_PER_BATCH},\n"));
    out.push_str(&format!("  \"shards\": {SHARDS},\n"));
    out.push_str(&format!("  \"readers\": {READERS},\n"));
    out.push_str(&format!("  \"writer_only_meps\": {only:.3},\n"));
    out.push_str(&format!("  \"writer_pinned_meps\": {:.3},\n", pinned.writer_meps));
    out.push_str(&format!(
        "  \"retained_pct\": {:.1},\n",
        pinned.writer_meps / only.max(1e-9) * 100.0
    ));
    out.push_str(&format!("  \"reader_qps\": {:.1},\n", pinned.reader_qps));
    out.push_str(&format!("  \"read_p50_us\": {:.1},\n", pinned.read_p50_us));
    out.push_str(&format!("  \"read_p99_us\": {:.1},\n", pinned.read_p99_us));
    out.push_str(&format!("  \"queries\": {},\n", pinned.queries));
    // Deliberately not `_meps`-suffixed: the settle path's collapse is the
    // point of the contrast, not a number to regression-gate.
    out.push_str(&format!(
        "  \"settle_contrast\": {{\"writer_throughput\": {:.3}, \"retained_pct\": {:.1}, \
         \"reader_qps\": {:.1}, \"read_p99_us\": {:.1}}}\n",
        settle.writer_meps,
        settle.writer_meps / only.max(1e-9) * 100.0,
        settle.reader_qps,
        settle.read_p99_us
    ));
    out.push_str("}\n");
    out
}

/// Runs the concurrent-serving benchmark; also writes
/// `<out-dir>/BENCH_serve_concurrent.json`.
pub fn run(args: &Args) -> Table {
    let spec = hollywood(args.scale_factor);
    let edges = spec.generate();
    let vspace = edges.iter().map(|e| e.src.max(e.dst) + 1).max().unwrap_or(1);
    let batches = slice_batches(&edges);
    let ops = edges.len() as u64;

    let mut t = Table::new(
        "fig_serve_concurrent",
        &format!(
            "Concurrent serving: pipelined writer Meps with {READERS} readers, epoch-pinned \
             views vs settling reads ({}, {} ops in {} batches of {})",
            spec.name,
            ops,
            batches.len(),
            OPS_PER_BATCH
        ),
        &["mode", "writer_meps", "retained_pct", "reader_qps", "read_p50_us", "read_p99_us"],
    );

    let only = measure_writer_only(&batches, ops);
    let pinned = measure_concurrent(&batches, ops, vspace, false);
    let settle = measure_concurrent(&batches, ops, vspace, true);

    t.push_row(vec![
        "writer-only".into(),
        f3(only),
        "100.0".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    for (label, s) in [("pinned-readers", &pinned), ("settle-readers", &settle)] {
        t.push_row(vec![
            label.into(),
            f3(s.writer_meps),
            format!("{:.1}", s.writer_meps / only.max(1e-9) * 100.0),
            format!("{:.1}", s.reader_qps),
            format!("{:.1}", s.read_p50_us),
            format!("{:.1}", s.read_p99_us),
        ]);
    }

    let json = to_json(ops, batches.len(), only, &pinned, &settle);
    let path = std::path::Path::new(&args.out_dir).join("BENCH_serve_concurrent.json");
    if let Err(e) =
        std::fs::create_dir_all(&args.out_dir).and_then(|()| std::fs::write(&path, json))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let pinned = ServeSample {
            writer_meps: 1.8,
            reader_qps: 5000.0,
            read_p50_us: 12.0,
            read_p99_us: 85.0,
            queries: 4321,
        };
        let settle = ServeSample {
            writer_meps: 0.2,
            reader_qps: 300.0,
            read_p50_us: 900.0,
            read_p99_us: 4500.0,
            queries: 99,
        };
        let s = to_json(10_000, 10, 2.0, &pinned, &settle);
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
        assert!(s.contains("\"writer_only_meps\": 2.000"));
        assert!(s.contains("\"writer_pinned_meps\": 1.800"));
        assert!(s.contains("\"retained_pct\": 90.0"));
        assert!(s.contains("\"reader_qps\": 5000.0"));
        assert!(s.contains("\"read_p99_us\": 85.0"));
        assert!(s.contains("\"settle_contrast\""));
        assert!(!s.contains("settle_contrast\": {\"writer_meps"), "settle fields are not gated");
    }

    #[test]
    fn percentiles_on_tiny_sets() {
        assert_eq!(percentile_us(&[], 0.99), 0.0);
        assert_eq!(percentile_us(&[2_000], 0.5), 2.0);
        let sorted = [1_000, 2_000, 3_000, 4_000];
        assert_eq!(percentile_us(&sorted, 0.0), 1.0);
        assert_eq!(percentile_us(&sorted, 1.0), 4.0);
    }

    #[test]
    fn tiny_end_to_end_run() {
        let dir =
            std::env::temp_dir().join(format!("gtinker_fig_serve_out_{}", std::process::id()));
        let args = Args {
            scale_factor: 4096,
            batches: 4,
            threads: vec![1],
            out_dir: dir.to_string_lossy().into_owned(),
        };
        let t = run(&args);
        let rendered = t.render();
        assert!(rendered.contains("pinned-readers"));
        assert!(rendered.contains("settle-readers"));
        assert!(dir.join("BENCH_serve_concurrent.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
