//! Overhead of the span-tracing layer (no paper counterpart; acceptance
//! gate for the observability PR): pooled 4-shard ingest throughput with
//! trace collection on, runtime-disabled, and with *all* observability
//! runtime-disabled (trace and metrics), plus the sequential single-store
//! path for reference.
//!
//! The pooled path is the interesting one: every batch crosses the
//! dispatch instant plus a claim span and an apply span *per shard
//! worker*, so it exercises the per-event cost (one relaxed cursor bump,
//! three relaxed stores) at the highest span rate the pipeline produces.
//! The configurations toggle the runtime flags in one binary
//! ([`gtinker_core::trace::set_enabled`]); the compile-time `trace`
//! feature gate — whose off state is an empty inline body — is proven
//! separately by the trace-off build check in CI.
//!
//! Trials interleave the configurations and take the best of each so
//! allocator warm-up and frequency drift do not bias one side. Alongside
//! the TSV the run emits `BENCH_trace_overhead.json` with an
//! `overhead_pct` field; the acceptance criterion is < 5 % on the pooled
//! ingest path (enabled vs runtime-disabled).

use std::time::Instant;

use gtinker_core::{metrics, trace, GraphTinker, ParallelTinker};
use gtinker_types::{Edge, EdgeBatch, TinkerConfig};

use crate::cli::Args;
use crate::experiments::common::hollywood;
use crate::report::{f3, meps, Table};

/// Batch size for the ingest stream: small enough that the per-batch span
/// hooks fire often relative to the work they bracket (a deliberately
/// adversarial setting for the tracer).
const OPS_PER_BATCH: usize = 5_000;

/// Interleaved trials per configuration; the best of each side is compared.
const REPS: usize = 5;

/// Shard count for the pooled path (matches the acceptance workload).
const SHARDS: usize = 4;

struct Sample {
    enabled_meps: f64,
    disabled_meps: f64,
    alloff_meps: f64,
}

impl Sample {
    /// Relative throughput cost of tracing: `(off - on) / off`, percent,
    /// against the runtime-disabled configuration. Negative values are
    /// measurement noise (enabled ran faster).
    fn overhead_pct(&self) -> f64 {
        (self.disabled_meps - self.enabled_meps) / self.disabled_meps.max(1e-9) * 100.0
    }
}

fn slice_batches(edges: &[Edge]) -> Vec<EdgeBatch> {
    edges.chunks(OPS_PER_BATCH).map(EdgeBatch::inserts).collect()
}

fn measure_sequential(batches: &[EdgeBatch], ops: u64) -> f64 {
    let mut g = GraphTinker::with_defaults();
    let t0 = Instant::now();
    for b in batches {
        g.apply_batch(b);
    }
    meps(ops, t0.elapsed())
}

fn measure_pooled(batches: &[EdgeBatch], ops: u64) -> f64 {
    let g = ParallelTinker::new(TinkerConfig::default(), SHARDS).expect("parallel store");
    let t0 = Instant::now();
    for b in batches {
        g.apply_batch(b);
    }
    meps(ops, t0.elapsed())
}

/// Best-of-[`REPS`] for one measurement function across the three
/// configurations. Restores metrics collection on / tracing off (the
/// process defaults) before returning.
fn sample(mut measure: impl FnMut() -> f64) -> Sample {
    let mut s = Sample { enabled_meps: 0.0, disabled_meps: 0.0, alloff_meps: 0.0 };
    for _ in 0..REPS {
        trace::set_enabled(false);
        metrics::set_enabled(false);
        s.alloff_meps = s.alloff_meps.max(measure());
        metrics::set_enabled(true);
        s.disabled_meps = s.disabled_meps.max(measure());
        trace::set_enabled(true);
        s.enabled_meps = s.enabled_meps.max(measure());
    }
    trace::set_enabled(false);
    metrics::set_enabled(true);
    s
}

fn to_json(ops: u64, seq: &Sample, pooled: &Sample, events_recorded: usize) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"trace_overhead\",\n");
    out.push_str(&format!("  \"ops\": {ops},\n"));
    out.push_str(&format!("  \"ops_per_batch\": {OPS_PER_BATCH},\n"));
    out.push_str(&format!("  \"reps\": {REPS},\n"));
    out.push_str(&format!("  \"shards\": {SHARDS},\n"));
    out.push_str(&format!("  \"pooled_enabled_meps\": {:.3},\n", pooled.enabled_meps));
    out.push_str(&format!("  \"pooled_disabled_meps\": {:.3},\n", pooled.disabled_meps));
    out.push_str(&format!("  \"pooled_alloff_meps\": {:.3},\n", pooled.alloff_meps));
    out.push_str(&format!("  \"overhead_pct\": {:.3},\n", pooled.overhead_pct()));
    out.push_str(&format!("  \"seq_enabled_meps\": {:.3},\n", seq.enabled_meps));
    out.push_str(&format!("  \"seq_disabled_meps\": {:.3},\n", seq.disabled_meps));
    out.push_str(&format!("  \"seq_alloff_meps\": {:.3},\n", seq.alloff_meps));
    out.push_str(&format!("  \"seq_overhead_pct\": {:.3},\n", seq.overhead_pct()));
    out.push_str(&format!("  \"events_recorded\": {events_recorded}\n"));
    out.push_str("}\n");
    out
}

/// Runs the trace-overhead benchmark; also writes
/// `<out-dir>/BENCH_trace_overhead.json`.
pub fn run(args: &Args) -> Table {
    let spec = hollywood(args.scale_factor);
    let edges = spec.generate();
    let batches = slice_batches(&edges);
    let ops = edges.len() as u64;

    let mut t = Table::new(
        "fig_trace_overhead",
        &format!(
            "Span-tracing overhead: Medges/s with tracing on vs runtime-off vs all \
             observability off ({}, {} ops, best of {REPS} interleaved trials)",
            spec.name, ops
        ),
        &["path", "enabled_meps", "disabled_meps", "alloff_meps", "overhead_pct"],
    );

    let pooled = sample(|| measure_pooled(&batches, ops));
    // Dump right after the last enabled pooled run: proves the spans
    // actually recorded (zero events would mean we measured nothing).
    let events_recorded = trace::dump().events.len();
    trace::clear();
    let seq = sample(|| measure_sequential(&batches, ops));

    for (name, s) in [("pooled4", &pooled), ("sequential", &seq)] {
        t.push_row(vec![
            name.into(),
            f3(s.enabled_meps),
            f3(s.disabled_meps),
            f3(s.alloff_meps),
            format!("{:.2}%", s.overhead_pct()),
        ]);
    }

    let json = to_json(ops, &seq, &pooled, events_recorded);
    let path = std::path::Path::new(&args.out_dir).join("BENCH_trace_overhead.json");
    if let Err(e) =
        std::fs::create_dir_all(&args.out_dir).and_then(|()| std::fs::write(&path, json))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let s = to_json(
            80_000,
            &Sample { enabled_meps: 10.0, disabled_meps: 10.0, alloff_meps: 10.0 },
            &Sample { enabled_meps: 9.5, disabled_meps: 10.0, alloff_meps: 10.5 },
            1234,
        );
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
        assert!(s.contains("\"overhead_pct\": 5.000"));
        assert!(s.contains("\"seq_overhead_pct\": 0.000"));
        assert!(s.contains("\"events_recorded\": 1234"));
    }

    #[test]
    fn tiny_end_to_end_run() {
        let _g = crate::experiments::common::OBS_TEST_LOCK.lock().unwrap();
        let dir =
            std::env::temp_dir().join(format!("gtinker_fig_trace_out_{}", std::process::id()));
        let args = Args {
            scale_factor: 4096,
            batches: 4,
            threads: vec![1],
            out_dir: dir.to_string_lossy().into_owned(),
        };
        let t = run(&args);
        assert!(!trace::enabled(), "run must leave tracing off");
        assert!(metrics::enabled(), "run must leave metrics collection on");
        assert!(t.render().contains("pooled4"));
        assert!(dir.join("BENCH_trace_overhead.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
