//! Geometry ablation: subblock and workblock sizes.
//!
//! The paper fixes (PAGEWIDTH, subblock, workblock) = (64, 8, 4) after
//! tuning and sweeps only PAGEWIDTH in its figures; this experiment fills
//! in the other two axes. Subblock size trades RHH residency (larger
//! subblocks overflow later → shallower trees) against per-visit scan cost;
//! workblock size trades retrieval granularity (the paper: larger
//! workblocks raise the chance an RHH attempt completes per fetch but
//! fetch more data) — observable here through the workblocks-fetched
//! counter next to wall-clock throughput.

use std::time::Duration;

use gtinker_types::TinkerConfig;

use crate::cli::Args;
use crate::experiments::common::{dataset_batches, fresh_tinker_with, hollywood, timed_inserts};
use crate::report::{f3, meps, Table};

/// Runs the subblock × workblock sweep at PAGEWIDTH 64.
pub fn run(args: &Args) -> Table {
    let spec = hollywood(args.scale_factor);
    let batches = dataset_batches(&spec, args.batches, false);
    let total_ops: u64 = batches.iter().map(|b| b.len() as u64).sum();

    let mut t = Table::new(
        "ablation_geometry",
        &format!(
            "Insert throughput and probe cost vs subblock/workblock (PAGEWIDTH 64), {}",
            spec.name
        ),
        &[
            "subblock",
            "workblock",
            "insert_meps",
            "cells_per_op",
            "workblocks_per_op",
            "branches",
            "max_depth",
        ],
    );
    for subblock in [4usize, 8, 16, 32] {
        for workblock in [2usize, 4, 8, 16, 32] {
            if workblock > subblock {
                continue;
            }
            let cfg = TinkerConfig { subblock, workblock, ..TinkerConfig::default() };
            let mut g = fresh_tinker_with(cfg);
            let series = timed_inserts(&mut g, &batches);
            let dur: Duration = series.iter().map(|x| x.1).sum();
            let s = g.stats();
            t.push_row(vec![
                subblock.to_string(),
                workblock.to_string(),
                f3(meps(total_ops, dur)),
                f3(s.mean_probe()),
                f3(s.workblocks_fetched as f64 / s.operations as f64),
                s.branches_created.to_string(),
                s.max_depth.to_string(),
            ]);
        }
    }
    t
}
