//! Hybrid-engine prediction quality (§V.B text: "we observed up to 97%
//! correctness"). For each dataset and algorithm, run the hybrid engine,
//! then score every iteration's FP/IP decision against a cost oracle
//! calibrated from the host's measured sequential-vs-random retrieval
//! advantage.

use std::time::Instant;

use gtinker_engine::{
    algorithms::{Bfs, Cc, Sssp},
    dynamic::prediction_accuracy,
    DynamicRunner, GraphStore, IncrementalState, ModePolicy, RestartPolicy, RunReport,
};

use crate::cli::Args;
use crate::experiments::common::{dataset_batches, fresh_tinker, pick_root, Algo, DynStore};
use crate::report::{f3, Table};
use gtinker_datasets::scaled_datasets;

/// Measures how much cheaper one sequentially streamed edge is than one
/// randomly retrieved edge on this host/store (the paper's separate
/// experiments that produced `threshold = 0.02`).
pub fn measure_seq_advantage<S: GraphStore>(store: &S) -> f64 {
    let mut n = 0u64;
    let t0 = Instant::now();
    store.stream_edges(|_, _, _| n += 1);
    let seq = t0.elapsed().as_secs_f64() / n.max(1) as f64;

    let mut m = 0u64;
    let t0 = Instant::now();
    for v in 0..store.vertex_space() {
        store.for_each_out_edge(v, |_, _| m += 1);
    }
    let rnd = t0.elapsed().as_secs_f64() / m.max(1) as f64;
    (rnd / seq).max(1.0)
}

fn policy_report<P: IncrementalState>(
    batches: &[gtinker_types::EdgeBatch],
    program: P,
    policy: ModePolicy,
) -> (RunReport, gtinker_core::GraphTinker) {
    let mut store = fresh_tinker();
    let mut runner = DynamicRunner::new(program, policy, RestartPolicy::Incremental);
    let mut merged = RunReport::default();
    for b in batches {
        store.apply(b);
        merged.merge(&runner.after_batch(&store, b));
    }
    (merged, store)
}

/// Runs the prediction-accuracy report.
pub fn run(args: &Args) -> Table {
    let mut t = Table::new(
        "hybrid_accuracy",
        "Inference-box decisions vs cost oracle: paper threshold (0.02) and degree-aware extension",
        &[
            "dataset",
            "algorithm",
            "iters",
            "FP_iters",
            "IP_iters",
            "seq_advantage",
            "accuracy_pct",
            "accuracy_degree_aware_pct",
        ],
    );
    for spec in scaled_datasets(args.scale_factor) {
        for algo in [Algo::Bfs, Algo::Sssp, Algo::Cc] {
            let batches = dataset_batches(&spec, args.batches, algo.needs_symmetry());
            let root = pick_root(&batches);
            let run_with = |policy: ModePolicy| match algo {
                Algo::Bfs => policy_report(&batches, Bfs::new(root), policy),
                Algo::Sssp => policy_report(&batches, Sssp::new(root), policy),
                Algo::Cc => policy_report(&batches, Cc::new(), policy),
            };
            let (report, store) = run_with(ModePolicy::hybrid());
            let adv = measure_seq_advantage(&store);
            let acc = prediction_accuracy(&report, adv);
            let (da_report, _) = run_with(ModePolicy::DegreeAware { seq_advantage: adv });
            let da_acc = prediction_accuracy(&da_report, adv);
            let (fp, ip) = report.mode_counts();
            t.push_row(vec![
                spec.name.to_string(),
                algo.name().to_string(),
                report.num_iterations().to_string(),
                fp.to_string(),
                ip.to_string(),
                f3(adv),
                f3(100.0 * acc),
                f3(100.0 * da_acc),
            ]);
        }
    }
    t
}
