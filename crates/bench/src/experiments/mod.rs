//! One module per paper table/figure. Each exposes
//! `pub fn run(args: &Args) -> Table` (Fig. 19 returns one table too); the
//! binaries print the table and persist it as TSV, and `run_all` chains
//! them.

pub mod ablation;
pub mod cal_vs_csr;
pub mod common;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig10_analytics;
pub mod fig11_13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig_adaptive;
pub mod fig_incremental;
pub mod fig_ingest_pipeline;
pub mod fig_log_overhead;
pub mod fig_metrics_overhead;
pub mod fig_persist;
pub mod fig_probe_swar;
pub mod fig_serve_concurrent;
pub mod fig_trace_overhead;
pub mod geometry;
pub mod hybrid_accuracy;
pub mod table1;
