//! Table 1: the datasets under evaluation.

use crate::cli::Args;
use crate::report::Table;
use gtinker_datasets::scaled_datasets;

/// Prints the dataset catalog at the active scale factor alongside the
/// paper-reported sizes.
pub fn run(args: &Args) -> Table {
    let scaled = scaled_datasets(args.scale_factor);
    let paper = scaled_datasets(1);
    let mut t = Table::new(
        "table1_datasets",
        &format!("Graph datasets under evaluation (scale factor {})", args.scale_factor),
        &["dataset", "type", "paper_V", "paper_E", "scaled_V", "scaled_E", "avg_degree"],
    );
    for (s, p) in scaled.iter().zip(&paper) {
        t.push_row(vec![
            s.name.to_string(),
            format!("{:?}", s.kind),
            p.vertices.to_string(),
            p.edges.to_string(),
            s.vertices.to_string(),
            s.edges.to_string(),
            format!("{:.1}", s.avg_degree()),
        ]);
    }
    t
}
