//! Benchmark harness for the GraphTinker reproduction.
//!
//! Every table and figure of the paper's evaluation (§V) has a
//! corresponding experiment module under [`experiments`] and a thin binary
//! under `src/bin/`; `run_all` executes the full suite and appends the
//! results to `results/*.tsv`.
//!
//! All experiments honor two environment knobs (also settable as CLI
//! flags on each binary):
//!
//! * `GT_SCALE_FACTOR` (default 64) — divides every dataset's vertex and
//!   edge counts; 1 reproduces the paper-reported sizes (needs tens of GB
//!   and hours).
//! * `GT_BATCHES` (default 10) — number of update batches each stream is
//!   split into (the paper uses fixed 1 M-edge batches; at reduced scale a
//!   fixed batch count keeps every figure's x-axis shape).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod diff;
pub mod experiments;
pub mod plot;
pub mod report;

pub use cli::Args;
pub use report::Table;
