//! Terminal plotting for experiment TSVs: renders the regenerated figures
//! as ASCII line/bar charts so the paper's plots can be eyeballed without
//! leaving the terminal. Used by the `plot` binary.

/// A named numeric series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Y values, one per x position.
    pub values: Vec<f64>,
}

/// Parses a TSV produced by [`crate::report::Table::write_tsv`]: returns
/// `(caption, x labels from the first column, numeric series per remaining
/// column)`. Non-numeric cells (summary rows) terminate their row's
/// inclusion.
pub fn parse_tsv(content: &str) -> Result<(String, Vec<String>, Vec<Series>), String> {
    let mut lines = content.lines();
    let caption = lines.next().and_then(|l| l.strip_prefix("# ")).unwrap_or("").to_string();
    let header: Vec<&str> = lines.next().ok_or("missing header row")?.split('\t').collect();
    if header.len() < 2 {
        return Err("need at least two columns".into());
    }
    let mut xs = Vec::new();
    let mut series: Vec<Series> =
        header[1..].iter().map(|h| Series { name: h.to_string(), values: Vec::new() }).collect();
    for line in lines {
        let cells: Vec<&str> = line.split('\t').collect();
        if cells.len() != header.len() {
            continue;
        }
        // Keep only fully-numeric data rows (skips summary rows like
        // "degradation_pct" whose cells contain '-' or 'x' suffixes).
        let parsed: Option<Vec<f64>> = cells[1..].iter().map(|c| c.parse::<f64>().ok()).collect();
        if let Some(nums) = parsed {
            xs.push(cells[0].to_string());
            for (s, v) in series.iter_mut().zip(nums) {
                s.values.push(v);
            }
        }
    }
    Ok((caption, xs, series))
}

const GLYPHS: &[char] = &['o', '+', 'x', '*', '#', '@', '%', '&'];

/// Count-like columns that would dwarf the throughput series if plotted on
/// the same axis; `filter_series` drops them.
const COUNT_COLUMNS: &[&str] = &[
    "cum_edges",
    "cum_deleted",
    "live_edges",
    "edges",
    "edges_processed",
    "iterations",
    "iters",
    "branches",
    "max_depth",
    "paper_V",
    "paper_E",
    "scaled_V",
    "scaled_E",
    "FP_iters",
    "IP_iters",
];

/// Removes count-like metadata columns so the remaining series share a
/// meaningful y axis.
pub fn filter_series(series: Vec<Series>) -> Vec<Series> {
    series.into_iter().filter(|s| !COUNT_COLUMNS.contains(&s.name.as_str())).collect()
}

/// Renders series as a fixed-size ASCII chart with one glyph per series.
pub fn render_chart(
    caption: &str,
    xs: &[String],
    series: &[Series],
    width: usize,
    height: usize,
) -> String {
    let mut out = String::new();
    out.push_str(caption);
    out.push('\n');
    let max =
        series.iter().flat_map(|s| s.values.iter().copied()).fold(f64::NEG_INFINITY, f64::max);
    let n = xs.len();
    if n == 0 || !max.is_finite() || max <= 0.0 {
        out.push_str("(no numeric data)\n");
        return out;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (i, &v) in s.values.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let x = if n == 1 { 0 } else { i * (width - 1) / (n - 1) };
            let y = ((v / max) * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            grid[row][x] = glyph;
        }
    }
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{max:>9.2} |")
        } else if r == height - 1 {
            format!("{:>9.2} |", 0.0)
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>11}{}  ...  {}\n",
        "",
        xs.first().map(String::as_str).unwrap_or(""),
        xs.last().map(String::as_str).unwrap_or("")
    ));
    out.push_str("legend: ");
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("{}={}  ", GLYPHS[si % GLYPHS.len()], s.name));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "# caption here\n\
        batch\tGT\tSTINGER\n\
        1\t2.0\t1.0\n\
        2\t3.0\t0.5\n\
        total\t2.5\t0.7\n\
        degradation_pct\t-\t1.0\n";

    #[test]
    fn parses_numeric_rows_only() {
        let (caption, xs, series) = parse_tsv(SAMPLE).unwrap();
        assert_eq!(caption, "caption here");
        // 'total' row is numeric and kept; 'degradation_pct' has '-'.
        assert_eq!(xs, vec!["1", "2", "total"]);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].name, "GT");
        assert_eq!(series[0].values, vec![2.0, 3.0, 2.5]);
    }

    #[test]
    fn renders_with_legend_and_axes() {
        let (caption, xs, series) = parse_tsv(SAMPLE).unwrap();
        let chart = render_chart(&caption, &xs, &series, 40, 10);
        assert!(chart.contains("caption here"));
        assert!(chart.contains("o=GT"));
        assert!(chart.contains("+=STINGER"));
        assert!(chart.contains('o'));
        assert!(chart.lines().count() > 10);
    }

    #[test]
    fn filter_drops_count_columns() {
        let series = vec![
            Series { name: "cum_edges".into(), values: vec![1e6] },
            Series { name: "GT".into(), values: vec![2.0] },
        ];
        let kept = filter_series(series);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].name, "GT");
    }

    #[test]
    fn empty_data_handled() {
        let (c, xs, series) = parse_tsv("# x\na\tb\n").unwrap();
        let chart = render_chart(&c, &xs, &series, 20, 5);
        assert!(chart.contains("no numeric data"));
    }

    #[test]
    fn bad_tsv_errors() {
        assert!(parse_tsv("").is_err());
        assert!(parse_tsv("# c\nonecol\n").is_err());
    }
}
