//! Result tables: aligned console output plus TSV persistence.

use std::fs;
use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// Million edges per second.
pub fn meps(edges: u64, dur: Duration) -> f64 {
    let secs = dur.as_secs_f64();
    if secs == 0.0 {
        0.0
    } else {
        edges as f64 / secs / 1e6
    }
}

/// A simple result table: header row plus data rows of equal arity.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment identifier (used as the TSV file stem).
    pub name: String,
    /// One-line description printed above the table.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str, caption: &str, headers: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            caption: caption.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the arity does not match the headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch in table {}", self.name);
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n", self.name, self.caption));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as `<out_dir>/<name>.tsv`.
    pub fn write_tsv(&self, out_dir: &str) -> std::io::Result<()> {
        fs::create_dir_all(out_dir)?;
        let path = Path::new(out_dir).join(format!("{}.tsv", self.name));
        let mut f = fs::File::create(path)?;
        writeln!(f, "# {}", self.caption)?;
        writeln!(f, "{}", self.headers.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        Ok(())
    }
}

/// Formats a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio as `N.NNx`.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meps_math() {
        assert!((meps(2_000_000, Duration::from_secs(1)) - 2.0).abs() < 1e-9);
        assert_eq!(meps(5, Duration::from_secs(0)), 0.0);
    }

    #[test]
    fn table_renders_and_persists() {
        let mut t = Table::new("unit_test_table", "caption", &["a", "bb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("caption"));
        assert!(s.contains("bb"));
        let dir = std::env::temp_dir().join("gtinker_bench_test");
        t.write_tsv(dir.to_str().unwrap()).unwrap();
        let tsv = std::fs::read_to_string(dir.join("unit_test_table.tsv")).unwrap();
        assert!(tsv.contains("a\tbb"));
        assert!(tsv.contains("1\t2"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", "y", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(speedup(2.5), "2.50x");
    }
}
