//! Hand-rolled argument parsing for the `gtinker` CLI (no external
//! dependencies; the grammar is small and fully tested).

use std::collections::HashMap;

/// A parsed command line: subcommand, positional arguments, and
/// `--key value` / `--flag` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Parsed {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options and bare `--flag`s (value = empty string).
    pub options: HashMap<String, String>,
}

/// Options that take no value (everything else consumes the next token).
const BARE_FLAGS: &[&str] = &[
    "no-sgh",
    "no-cal",
    "compact",
    "baseline",
    "help",
    "final-snapshot",
    "pipeline",
    "stats",
    "analytics",
    "adaptive",
    "hold",
    "validate",
    "verify",
];

/// Parses a raw argument vector (excluding the program name).
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Parsed, String> {
    let mut parsed = Parsed::default();
    let mut iter = args.into_iter().peekable();
    while let Some(tok) = iter.next() {
        if let Some(key) = tok.strip_prefix("--") {
            if key.is_empty() {
                return Err("empty option name '--'".into());
            }
            if BARE_FLAGS.contains(&key) {
                parsed.options.insert(key.to_string(), String::new());
            } else {
                let value = iter.next().ok_or_else(|| format!("option --{key} expects a value"))?;
                parsed.options.insert(key.to_string(), value);
            }
        } else if parsed.command.is_empty() {
            parsed.command = tok;
        } else {
            parsed.positional.push(tok);
        }
    }
    Ok(parsed)
}

impl Parsed {
    /// Whether a bare flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// A string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A parsed numeric option with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("option --{name}: bad value '{v}'")),
        }
    }

    /// The single positional argument (e.g. an input file), if required.
    pub fn input(&self) -> Result<&str, String> {
        match self.positional.as_slice() {
            [one] => Ok(one),
            [] => Err(format!("'{}' expects an input file", self.command)),
            _ => Err(format!("'{}' expects exactly one input file", self.command)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Parsed {
        parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_command_positional_and_options() {
        let a = p(&["bfs", "edges.txt", "--root", "5", "--mode", "fp"]);
        assert_eq!(a.command, "bfs");
        assert_eq!(a.input().unwrap(), "edges.txt");
        assert_eq!(a.num::<u32>("root", 0).unwrap(), 5);
        assert_eq!(a.get("mode"), Some("fp"));
    }

    #[test]
    fn bare_flags_do_not_consume_values() {
        let a = p(&["stats", "edges.txt", "--compact", "--pagewidth", "32"]);
        assert!(a.flag("compact"));
        assert_eq!(a.num::<usize>("pagewidth", 64).unwrap(), 32);
        assert_eq!(a.input().unwrap(), "edges.txt");
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = parse(["generate".to_string(), "--out".to_string()]).unwrap_err();
        assert!(e.contains("--out"));
    }

    #[test]
    fn defaults_and_bad_numbers() {
        let a = p(&["pagerank", "f", "--iterations", "abc"]);
        assert!(a.num::<usize>("iterations", 20).is_err());
        assert_eq!(a.num::<usize>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn input_arity_errors() {
        assert!(p(&["bfs"]).input().is_err());
        assert!(p(&["bfs", "a", "b"]).input().is_err());
    }
}
