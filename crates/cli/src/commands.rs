//! Implementation of the `gtinker` subcommands.

use std::path::Path;
use std::time::Instant;

use gtinker_core::{GraphTinker, ParallelTinker};
use gtinker_datasets::{dataset_by_name, io, RmatConfig};
use gtinker_engine::{
    algorithms::{Bfs, Cc, PageRank, Sssp, TriangleCount},
    dynamic::{symmetrize, DynamicRunner, RestartPolicy},
    Engine, GasProgram, GraphStore, IncrementalState, ModePolicy,
};
use gtinker_persist::{
    list_snapshots, recover_stinger, recover_tinker, write_stinger_snapshot, write_tinker_snapshot,
    DurableTinker, SyncPolicy, WalOptions, WalWriter,
};
use gtinker_stinger::Stinger;
use gtinker_types::{DeleteMode, Edge, EdgeBatch, StingerConfig, TinkerConfig, UpdateOp};

use crate::args::Parsed;

/// Top-level help text.
pub const USAGE: &str = "\
gtinker — the GraphTinker dynamic-graph store (IPDPS 2019 reproduction)

USAGE:
  gtinker generate (--dataset NAME | --rmat-scale N --edges M) [--seed S]
                   [--scale-factor F] --out FILE
  gtinker stats FILE|WALDIR [--format text|json|prom] [--pagewidth N]
                [--no-sgh] [--no-cal] [--compact] [--adaptive]
  gtinker bfs FILE --root R [--mode hybrid|da|fp|ip] [--shards N]
              [--restart static|incremental] [--churn-every K]
              [--batch N] [--verify]
  gtinker sssp FILE --root R [options as bfs]
  gtinker cc FILE [--mode hybrid|da|fp|ip] [--shards N]
             [--restart static|incremental] [--churn-every K]
             [--batch N] [--verify]
  gtinker pagerank FILE [--iterations N] [--top K] [--shards N]
  gtinker triangles FILE
  gtinker bench-insert FILE [--batch N] [--baseline]
  gtinker ingest FILE --wal DIR [--batch N] [--sync never|always|N]
                 [--snapshot-every K] [--final-snapshot] [--pipeline]
                 [--pool N] [--stats] [--serve HOST:PORT] [--hold]
                 [--workers N] [--slow-query-ms N]
  gtinker trace FILE --wal DIR [--out TRACE.json] [--analytics]
                [--batch N] [--pool N] [--pipeline] [--sync never|always|N]
  gtinker serve [FILE|WALDIR] [--addr HOST:PORT] [--shards N] [--workers N]
                [--slow-query-ms N]
  gtinker snapshot FILE --dir DIR [--baseline]
  gtinker recover DIR [--baseline] [--root R] [--validate]
  gtinker help

Datasets for --dataset: RMAT_1M_10M, RMAT_500K_8M, RMAT_1M_16M,
RMAT_2M_32M, Hollywood-2009, Kron_g500-logn21 (paper Table 1; scaled by
--scale-factor, default 64), plus Zipf_SourceSkew (hub-heavy Zipf
sources, the degree-adaptive tier stress stream).

--adaptive (any command that builds a GraphTinker) enables the
degree-adaptive layout: vertices with <= 4 edges stay inline in the
vertex entry, ordinary vertices use the RHH edgeblock tree, and sources
crossing 128 edges move to a dense sorted hub segment (demoted below
64). 'stats --adaptive' reports per-tier vertex counts and the
memory_*_bytes gauge family.

--restart picks how bfs/sssp/cc consume FILE: 'static' (default) loads
everything and solves one cold fixpoint; 'incremental' streams FILE
through the delta engine in --batch-op batches (default 10000),
repairing the standing result after each batch instead of re-solving —
deletions invalidate the broken witness cone, which is re-seeded from
its still-valid boundary. --churn-every K (implies --restart
incremental) turns every K-th op into a delete of a pseudo-random
earlier edge, so a plain insert-only edge list exercises the
invalidate-and-repair path end to end. --verify (any restart policy)
recomputes a cold AlwaysFull fixpoint on the final store and asserts
the standing result equals it, printing a greppable 'verify: PASS'
line.

FILE is a plain edge list: 'src dst [weight]' per line, '#' comments.
--shards N (> 1) runs the analytic over an interval-partitioned parallel
store. 'ingest' streams FILE through a write-ahead log in DIR so a crash
at any point recovers via 'gtinker recover DIR'; --pipeline overlaps WAL
I/O for batch k+1 with the in-memory apply of batch k (ack stays
WAL-first), and --pool N applies batches through N interval-partitioned
shard workers (fresh DIR only; no snapshots). 'stats' reports structure
stats plus the hot-path metric registry (probe/displacement histograms,
WAL latencies); give it a WAL DIR to profile recovery instead of a fresh
ingest, and --format json|prom for machine-readable output. 'ingest
--stats' dumps the same registry after the run.

'trace' runs the same ingest with span tracing enabled and writes the
timeline as Chrome trace-event JSON (--out, default trace.json): load it
in https://ui.perfetto.dev and each shard worker / the WAL thread / the
driver is its own track (--analytics appends a traced BFS plus a
delete/re-insert churn round through the incremental repair engine, so
'repair' spans carry per-batch cone sizes). 'serve'
(optionally after loading FILE or recovering WALDIR into --shards N
epoch-view shards) exposes /metrics (Prometheus), /healthz (build info +
live gauges), /trace (timeline JSON), /debug/vars (per-endpoint RED
windows with p50/p95/p99), /debug/requests (last completed requests with
phase timings) and — when a store is loaded — the query API /neighbors?v=
/degree?v= /query/{bfs,sssp}?src= /query/cc /query/pagerank over HTTP on
--addr (default 127.0.0.1:0, port printed at startup), answered by
--workers N request threads (default 4) from epoch-pinned snapshot
views; GET /quitquitquit from loopback shuts the server down cleanly.
Every response carries an X-Request-Id header; with tracing on, the
request's pin/engine/serialize spans in /trace carry that id as their
arg. --slow-query-ms N logs a structured warn record with a per-phase
breakdown (queue/pin/engine/serialize) for any request slower than N ms.
'ingest --serve' runs the same endpoint in-process against the live
pooled store while batches apply (snapshots unsupported, like --pool);
--hold keeps serving after the ingest finishes until /quitquitquit.

--log LEVEL (any command) sets the structured key=value log level on
stderr: error|warn|info|debug|off (default warn). Records are
line-oriented 'ts=... level=... target=... msg=\"...\" k=v' pairs.
";

/// Runs a parsed command; returns an error message on failure.
pub fn run(parsed: &Parsed) -> Result<(), String> {
    if let Some(level) = parsed.get("log") {
        if !gtinker_core::log::set_level_by_name(level) {
            return Err(format!("unknown --log level '{level}' (error|warn|info|debug|off)"));
        }
    }
    match parsed.command.as_str() {
        "generate" => generate(parsed),
        "stats" => stats(parsed),
        "bfs" => bfs(parsed),
        "sssp" => sssp(parsed),
        "cc" => cc(parsed),
        "pagerank" => pagerank(parsed),
        "triangles" => triangles(parsed),
        "bench-insert" => bench_insert(parsed),
        "ingest" => ingest(parsed),
        "trace" => trace_cmd(parsed),
        "serve" => serve_cmd(parsed),
        "snapshot" => snapshot(parsed),
        "recover" => recover(parsed),
        "help" | "" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'gtinker help')")),
    }
}

fn mode_policy(parsed: &Parsed) -> Result<ModePolicy, String> {
    match parsed.get("mode").unwrap_or("hybrid") {
        "hybrid" => Ok(ModePolicy::hybrid()),
        "da" | "degree-aware" => Ok(ModePolicy::degree_aware()),
        "fp" | "full" => Ok(ModePolicy::AlwaysFull),
        "ip" | "incremental" => Ok(ModePolicy::AlwaysIncremental),
        other => Err(format!("unknown mode '{other}' (hybrid|da|fp|ip)")),
    }
}

/// Whether `--restart incremental` (or `--churn-every`, which implies it)
/// routes this analytic through the [`DynamicRunner`] delta engine.
fn incremental_restart(parsed: &Parsed) -> Result<bool, String> {
    let churn = parsed.num("churn-every", 0usize)?;
    match parsed.get("restart") {
        None => Ok(churn > 0),
        Some("incremental") => Ok(true),
        Some("static") if churn > 0 => {
            Err("option --churn-every requires --restart incremental".into())
        }
        Some("static") => Ok(false),
        Some(other) => Err(format!("unknown restart policy '{other}' (static|incremental)")),
    }
}

/// The input edge list as an update stream: when `churn > 0`, every
/// `churn`-th op is followed by a delete of a pseudo-randomly chosen
/// earlier insert, so a plain insert-only file exercises the
/// invalidate-and-repair path.
fn churn_ops(edges: &[Edge], churn: usize) -> Vec<UpdateOp> {
    let extra = edges.len().checked_div(churn).unwrap_or(0);
    let mut ops = Vec::with_capacity(edges.len() + extra);
    let mut live: Vec<Edge> = Vec::new();
    let mut lcg: u64 = 0x9E37_79B9_7F4A_7C15;
    for (i, &e) in edges.iter().enumerate() {
        ops.push(UpdateOp::Insert(e));
        live.push(e);
        if churn > 0 && (i + 1) % churn == 0 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let victim = live.swap_remove((lcg >> 33) as usize % live.len());
            ops.push(UpdateOp::Delete { src: victim.src, dst: victim.dst });
        }
    }
    ops
}

/// Store kinds the incremental driver can feed batches into (the
/// sequential store mutates through `&mut self`, the sharded pool
/// through `&self`).
trait BatchStore: GraphStore + Sync {
    fn apply(&mut self, batch: &EdgeBatch);
}

impl BatchStore for GraphTinker {
    fn apply(&mut self, batch: &EdgeBatch) {
        self.apply_batch(batch);
    }
}

impl BatchStore for ParallelTinker {
    fn apply(&mut self, batch: &EdgeBatch) {
        ParallelTinker::apply_batch(self, batch);
    }
}

/// Streams the input through a [`DynamicRunner`] in `--batch`-op batches
/// (repairing the standing result after each) and returns the runner
/// plus the number of batches driven.
fn drive_incremental<S: BatchStore, P: IncrementalState>(
    g: &mut S,
    parsed: &Parsed,
    program: P,
    sym: bool,
) -> Result<(DynamicRunner<P>, usize), String> {
    let path = parsed.input()?;
    let edges = io::read_edge_list(path).map_err(|e| e.to_string())?;
    let ops = churn_ops(&edges, parsed.num("churn-every", 0usize)?);
    let batch_size = parsed.num("batch", 10_000usize)?.max(1);
    let mut runner = DynamicRunner::new(program, mode_policy(parsed)?, RestartPolicy::Incremental);
    let m = gtinker_core::metrics::global();
    let (cone0, iters0) = (m.engine_repair_invalidated.get(), m.engine_repair_iters.get());
    let t0 = Instant::now();
    let mut batches = 0usize;
    for chunk in ops.chunks(batch_size) {
        let mut batch = EdgeBatch::with_capacity(chunk.len());
        for &op in chunk {
            batch.push(op);
        }
        if sym {
            batch = symmetrize(&batch);
        }
        g.apply(&batch);
        runner.after_batch(&*g, &batch);
        batches += 1;
    }
    eprintln!(
        "incremental: {} ops over {batches} batches from {path} in {:.2?} \
         ({} vertices invalidated, {} repair iterations)",
        ops.len(),
        t0.elapsed(),
        m.engine_repair_invalidated.get() - cone0,
        m.engine_repair_iters.get() - iters0,
    );
    Ok((runner, batches))
}

/// `--verify`: recomputes a cold AlwaysFull fixpoint on the final store
/// and compares it vertex by vertex against the standing result. Prints
/// a greppable equality line, or fails with the first mismatch.
fn verify_against_cold<S: GraphStore + Sync, P: GasProgram + Copy>(
    g: &S,
    engine: &Engine<P>,
) -> Result<(), String> {
    let p = *engine.program();
    let mut cold = Engine::new(p, ModePolicy::AlwaysFull);
    cold.run_from_roots(g);
    let (a, b) = (engine.values(), cold.values());
    let n = a.len().max(b.len());
    for v in 0..n {
        let x = a.get(v).copied().unwrap_or_else(|| p.default_value(v as u32));
        let y = b.get(v).copied().unwrap_or_else(|| p.default_value(v as u32));
        if x != y {
            return Err(format!(
                "verify: MISMATCH at vertex {v}: standing {x:?} != cold fixpoint {y:?}"
            ));
        }
    }
    println!("verify: PASS (standing result == cold fixpoint over {n} vertices)");
    Ok(())
}

fn config(parsed: &Parsed) -> Result<TinkerConfig, String> {
    let mut cfg = TinkerConfig::with_pagewidth(parsed.num("pagewidth", 64usize)?);
    cfg.enable_sgh = !parsed.flag("no-sgh");
    cfg.enable_cal = !parsed.flag("no-cal");
    if parsed.flag("compact") {
        cfg.delete_mode = DeleteMode::DeleteAndCompact;
    }
    if parsed.flag("adaptive") {
        cfg = cfg.adaptive();
    }
    cfg.validate().map_err(|e| format!("invalid configuration: {e}"))?;
    Ok(cfg)
}

fn load_graph(parsed: &Parsed) -> Result<(GraphTinker, Vec<Edge>), String> {
    let path = parsed.input()?;
    let edges = io::read_edge_list(path).map_err(|e| e.to_string())?;
    let mut g = GraphTinker::new(config(parsed)?).map_err(|e| e.to_string())?;
    let t0 = Instant::now();
    g.apply_batch(&EdgeBatch::inserts(&edges));
    eprintln!(
        "loaded {} edges ({} live) from {path} in {:.2?}",
        edges.len(),
        g.num_edges(),
        t0.elapsed()
    );
    Ok((g, edges))
}

fn generate(parsed: &Parsed) -> Result<(), String> {
    let out = parsed.get("out").ok_or("generate requires --out FILE")?;
    let seed = parsed.num("seed", 42u64)?;
    let edges = if let Some(name) = parsed.get("dataset") {
        let sf = parsed.num("scale-factor", 64u32)?;
        let spec = dataset_by_name(name, sf)
            .ok_or_else(|| format!("unknown dataset '{name}' (see 'gtinker help')"))?;
        eprintln!(
            "generating {} at scale factor {sf}: {} vertices, {} edges",
            spec.name, spec.vertices, spec.edges
        );
        spec.generate()
    } else {
        let scale = parsed.num("rmat-scale", 0u32)?;
        if scale == 0 {
            return Err("generate requires --dataset NAME or --rmat-scale N".into());
        }
        let m = parsed.num("edges", 1u64 << (scale + 4))?;
        eprintln!("generating RMAT scale {scale} with {m} edges");
        RmatConfig::graph500(scale, m, seed).generate()
    };
    io::write_edge_list(out, &edges).map_err(|e| e.to_string())?;
    eprintln!("wrote {} edges to {out}", edges.len());
    Ok(())
}

/// `gtinker stats INPUT`: structure statistics plus the hot-path metric
/// registry accumulated while building the store. INPUT is either an edge
/// list (live ingest into a fresh store) or a WAL directory (recovery).
fn stats(parsed: &Parsed) -> Result<(), String> {
    let format = parsed.get("format").unwrap_or("text");
    if !matches!(format, "text" | "json" | "prom" | "prometheus") {
        return Err(format!("option --format: expected text|json|prom, got '{format}'"));
    }
    let input = parsed.input()?.to_string();
    // The registry is process-global; start from zero so the report
    // covers exactly the ingest/recovery performed by this command.
    gtinker_core::metrics::global().reset();
    let recovered = Path::new(&input).is_dir();
    let g = if recovered {
        let (g, report) =
            recover_tinker(Path::new(&input), config(parsed)?).map_err(|e| e.to_string())?;
        eprintln!(
            "recovered {} edges from {input} (snapshot lsn {}, {} records replayed)",
            g.num_edges(),
            report.snapshot_lsn,
            report.replayed_records
        );
        g
    } else {
        load_graph(parsed)?.0
    };
    // Refresh the memory_*_bytes gauge family from the final structure
    // state so every output format reports it.
    g.publish_memory_metrics();
    let snap = gtinker_core::metrics::global().snapshot();
    match format {
        "json" => println!("{}", stats_json(&g, &input, recovered, &snap)),
        "prom" | "prometheus" => print!("{}", snap.to_prometheus()),
        _ => {
            let st = g.structure_stats();
            let ps = g.stats();
            println!("vertices (sources): {}", st.num_sources);
            println!("vertex space      : {}", g.vertex_space());
            println!("live edges        : {}", st.live_edges);
            println!("main blocks       : {}", st.main_blocks);
            println!("overflow blocks   : {}", st.overflow_blocks);
            println!("free blocks       : {}", st.free_blocks);
            println!("tombstones        : {}", st.tombstones);
            println!("CAL blocks        : {} ({} invalid records)", st.cal_blocks, st.cal_invalid);
            println!("occupancy         : {:.3}", st.occupancy);
            println!("memory            : {:.1} MiB", st.memory_bytes as f64 / (1024.0 * 1024.0));
            if g.config().adaptive_enabled() {
                println!(
                    "tiers             : {} inline / {} blocks / {} hub vertices \
                     ({} promotions, {} demotions)",
                    st.tier_inline_vertices,
                    st.tier_blocks_vertices,
                    st.tier_hub_vertices,
                    st.tier_promotions,
                    st.tier_demotions
                );
                println!(
                    "tier memory       : inline {} B, hub {} B",
                    st.inline_bytes, st.hub_bytes
                );
            }
            println!("mean probe        : {:.2} cells/op", ps.mean_probe());
            println!("mean tree depth   : {:.3}", g.mean_depth());
            let hist = g.depth_histogram();
            for (d, n) in hist.iter().enumerate() {
                println!("  depth {d}: {n} edges");
            }
            println!("-- hot-path metrics (this run) --");
            let (rp50, rp95, rp99) = snap.rhh_probe.quantiles();
            println!(
                "rhh placements    : {} (mean probe {:.2}, p50/p95/p99 {rp50}/{rp95}/{rp99}, \
                 max <= {}, {} displacements, {} overflows)",
                snap.rhh_probe.count(),
                snap.rhh_probe.mean_approx(),
                snap.rhh_probe.max_bound(),
                snap.rhh_displacements,
                snap.rhh_overflows
            );
            let (sp50, sp95, sp99) = snap.sgh_probe.quantiles();
            println!(
                "sgh placements    : {} (mean probe {:.2}, p50/p95/p99 {sp50}/{sp95}/{sp99}, \
                 {} grows)",
                snap.sgh_probe.count(),
                snap.sgh_probe.mean_approx(),
                snap.sgh_grows
            );
            println!(
                "ops               : {} inserts, {} updates, {} deletes, {} delete misses",
                snap.tinker_inserts,
                snap.tinker_updates,
                snap.tinker_deletes,
                snap.tinker_delete_misses
            );
            println!(
                "branch-outs       : {} (wal: {} appends, {} syncs; {} snapshots)",
                snap.tinker_branch_depth.count(),
                snap.wal_appends,
                snap.wal_syncs,
                snap.snapshot_writes
            );
            if snap.wal_appends > 0 {
                let (ap50, ap95, ap99) = snap.wal_append_ns.quantiles();
                let (yp50, yp95, yp99) = snap.wal_sync_ns.quantiles();
                println!(
                    "wal latency (ns)  : append p50/p95/p99 {ap50}/{ap95}/{ap99}, \
                     sync p50/p95/p99 {yp50}/{yp95}/{yp99}"
                );
            }
        }
    }
    Ok(())
}

/// Renders `gtinker stats` output as one JSON object: structure stats as
/// scalar fields (one per line, sed/grep-friendly) plus the full metric
/// registry under `"metrics"`.
fn stats_json(
    g: &GraphTinker,
    input: &str,
    recovered: bool,
    snap: &gtinker_core::MetricsSnapshot,
) -> String {
    let st = g.structure_stats();
    let ps = g.stats();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"input\": \"{}\",\n", input.replace('\\', "/").replace('"', "'")));
    out.push_str(&format!("  \"recovered\": {recovered},\n"));
    out.push_str(&format!("  \"live_edges\": {},\n", st.live_edges));
    out.push_str(&format!("  \"num_sources\": {},\n", st.num_sources));
    out.push_str(&format!("  \"vertex_space\": {},\n", g.vertex_space()));
    out.push_str(&format!("  \"main_blocks\": {},\n", st.main_blocks));
    out.push_str(&format!("  \"overflow_blocks\": {},\n", st.overflow_blocks));
    out.push_str(&format!("  \"free_blocks\": {},\n", st.free_blocks));
    out.push_str(&format!("  \"tombstones\": {},\n", st.tombstones));
    out.push_str(&format!("  \"cal_blocks\": {},\n", st.cal_blocks));
    out.push_str(&format!("  \"cal_invalid\": {},\n", st.cal_invalid));
    out.push_str(&format!("  \"occupancy\": {:.6},\n", st.occupancy));
    out.push_str(&format!("  \"memory_bytes\": {},\n", st.memory_bytes));
    out.push_str(&format!("  \"tier_inline_vertices\": {},\n", st.tier_inline_vertices));
    out.push_str(&format!("  \"tier_blocks_vertices\": {},\n", st.tier_blocks_vertices));
    out.push_str(&format!("  \"tier_hub_vertices\": {},\n", st.tier_hub_vertices));
    out.push_str(&format!("  \"tier_promotions\": {},\n", st.tier_promotions));
    out.push_str(&format!("  \"tier_demotions\": {},\n", st.tier_demotions));
    out.push_str(&format!("  \"inline_bytes\": {},\n", st.inline_bytes));
    out.push_str(&format!("  \"hub_bytes\": {},\n", st.hub_bytes));
    out.push_str(&format!("  \"mean_probe\": {:.6},\n", ps.mean_probe()));
    out.push_str(&format!("  \"mean_depth\": {:.6},\n", g.mean_depth()));
    // Indent the metrics object to nest under this one.
    let metrics = snap.to_json().replace('\n', "\n  ");
    out.push_str(&format!("  \"metrics\": {metrics}\n"));
    out.push('}');
    out
}

/// Number of shards requested via `--shards` (1 = single store).
fn shards(parsed: &Parsed) -> Result<usize, String> {
    let n = parsed.num("shards", 1usize)?;
    if n == 0 {
        return Err("option --shards: must be at least 1".into());
    }
    Ok(n)
}

/// Loads the input edge list into an interval-partitioned parallel store
/// of `n` shards (symmetrizing first when `sym` is set, for the
/// undirected analytics).
fn load_parallel(parsed: &Parsed, n: usize, sym: bool) -> Result<ParallelTinker, String> {
    let path = parsed.input()?;
    let edges = io::read_edge_list(path).map_err(|e| e.to_string())?;
    let mut batch = EdgeBatch::inserts(&edges);
    if sym {
        batch = symmetrize(&batch);
    }
    let g = ParallelTinker::new(config(parsed)?, n).map_err(|e| e.to_string())?;
    let t0 = Instant::now();
    g.apply_batch(&batch);
    eprintln!(
        "loaded {} ops into {n} shards ({} live) from {path} in {:.2?}",
        batch.len(),
        g.num_edges(),
        t0.elapsed()
    );
    Ok(g)
}

fn bfs(parsed: &Parsed) -> Result<(), String> {
    if incremental_restart(parsed)? {
        return match shards(parsed)? {
            1 => {
                let mut g = GraphTinker::new(config(parsed)?).map_err(|e| e.to_string())?;
                bfs_incremental(&mut g, parsed)
            }
            n => {
                let mut g = ParallelTinker::new(config(parsed)?, n).map_err(|e| e.to_string())?;
                bfs_incremental(&mut g, parsed)
            }
        };
    }
    match shards(parsed)? {
        1 => bfs_on(&load_graph(parsed)?.0, parsed),
        n => bfs_on(&load_parallel(parsed, n, false)?, parsed),
    }
}

fn bfs_on<S: GraphStore + Sync>(g: &S, parsed: &Parsed) -> Result<(), String> {
    let root = parsed.num("root", 0u32)?;
    let mut e = Engine::new(Bfs::new(root), mode_policy(parsed)?);
    let t0 = Instant::now();
    let r = e.run_from_roots(g);
    let reached = e.values().iter().filter(|&&v| v != u32::MAX).count();
    let max_level = e.values().iter().filter(|&&v| v != u32::MAX).max().copied().unwrap_or(0);
    let (fp, ip) = r.mode_counts();
    println!(
        "BFS from {root}: {reached} reached, eccentricity {max_level}, \
         {} iterations ({fp} FP / {ip} IP) in {:.2?}",
        r.num_iterations(),
        t0.elapsed()
    );
    if parsed.flag("verify") {
        verify_against_cold(g, &e)?;
    }
    Ok(())
}

fn bfs_incremental<S: BatchStore>(g: &mut S, parsed: &Parsed) -> Result<(), String> {
    let root = parsed.num("root", 0u32)?;
    let t0 = Instant::now();
    let (runner, batches) = drive_incremental(g, parsed, Bfs::new(root), false)?;
    let e = runner.engine();
    let reached = e.values().iter().filter(|&&v| v != u32::MAX).count();
    let max_level = e.values().iter().filter(|&&v| v != u32::MAX).max().copied().unwrap_or(0);
    println!(
        "BFS from {root}: {reached} reached, eccentricity {max_level}, \
         {batches} incremental batches in {:.2?}",
        t0.elapsed()
    );
    if parsed.flag("verify") {
        verify_against_cold(&*g, e)?;
    }
    Ok(())
}

fn sssp(parsed: &Parsed) -> Result<(), String> {
    if incremental_restart(parsed)? {
        return match shards(parsed)? {
            1 => {
                let mut g = GraphTinker::new(config(parsed)?).map_err(|e| e.to_string())?;
                sssp_incremental(&mut g, parsed)
            }
            n => {
                let mut g = ParallelTinker::new(config(parsed)?, n).map_err(|e| e.to_string())?;
                sssp_incremental(&mut g, parsed)
            }
        };
    }
    match shards(parsed)? {
        1 => sssp_on(&load_graph(parsed)?.0, parsed),
        n => sssp_on(&load_parallel(parsed, n, false)?, parsed),
    }
}

fn sssp_on<S: GraphStore + Sync>(g: &S, parsed: &Parsed) -> Result<(), String> {
    let root = parsed.num("root", 0u32)?;
    let mut e = Engine::new(Sssp::new(root), mode_policy(parsed)?);
    let t0 = Instant::now();
    let r = e.run_from_roots(g);
    let reached: Vec<u32> = e.values().iter().copied().filter(|&v| v != u32::MAX).collect();
    let max = reached.iter().max().copied().unwrap_or(0);
    println!(
        "SSSP from {root}: {} reached, max distance {max}, {} iterations in {:.2?}",
        reached.len(),
        r.num_iterations(),
        t0.elapsed()
    );
    if parsed.flag("verify") {
        verify_against_cold(g, &e)?;
    }
    Ok(())
}

fn sssp_incremental<S: BatchStore>(g: &mut S, parsed: &Parsed) -> Result<(), String> {
    let root = parsed.num("root", 0u32)?;
    let t0 = Instant::now();
    let (runner, batches) = drive_incremental(g, parsed, Sssp::new(root), false)?;
    let e = runner.engine();
    let reached: Vec<u32> = e.values().iter().copied().filter(|&v| v != u32::MAX).collect();
    let max = reached.iter().max().copied().unwrap_or(0);
    println!(
        "SSSP from {root}: {} reached, max distance {max}, {batches} incremental batches \
         in {:.2?}",
        reached.len(),
        t0.elapsed()
    );
    if parsed.flag("verify") {
        verify_against_cold(&*g, e)?;
    }
    Ok(())
}

fn cc(parsed: &Parsed) -> Result<(), String> {
    if incremental_restart(parsed)? {
        return match shards(parsed)? {
            1 => {
                let mut g = GraphTinker::new(config(parsed)?).map_err(|e| e.to_string())?;
                cc_incremental(&mut g, parsed)
            }
            n => {
                let mut g = ParallelTinker::new(config(parsed)?, n).map_err(|e| e.to_string())?;
                cc_incremental(&mut g, parsed)
            }
        };
    }
    match shards(parsed)? {
        1 => {
            let path = parsed.input()?;
            let edges = io::read_edge_list(path).map_err(|e| e.to_string())?;
            let mut g = GraphTinker::new(config(parsed)?).map_err(|e| e.to_string())?;
            g.apply_batch(&symmetrize(&EdgeBatch::inserts(&edges)));
            cc_on(&g, parsed)
        }
        n => cc_on(&load_parallel(parsed, n, true)?, parsed),
    }
}

fn cc_on<S: GraphStore + Sync>(g: &S, parsed: &Parsed) -> Result<(), String> {
    let mut e = Engine::new(Cc::new(), mode_policy(parsed)?);
    let t0 = Instant::now();
    let r = e.run_from_roots(g);
    let mut labels: Vec<u32> = e.values().to_vec();
    labels.sort_unstable();
    labels.dedup();
    println!(
        "CC: {} components over {} vertices, {} iterations in {:.2?}",
        labels.len(),
        e.values().len(),
        r.num_iterations(),
        t0.elapsed()
    );
    if parsed.flag("verify") {
        verify_against_cold(g, &e)?;
    }
    Ok(())
}

fn cc_incremental<S: BatchStore>(g: &mut S, parsed: &Parsed) -> Result<(), String> {
    let t0 = Instant::now();
    let (runner, batches) = drive_incremental(g, parsed, Cc::new(), true)?;
    let e = runner.engine();
    let mut labels: Vec<u32> = e.values().to_vec();
    labels.sort_unstable();
    labels.dedup();
    println!(
        "CC: {} components over {} vertices, {batches} incremental batches in {:.2?}",
        labels.len(),
        e.values().len(),
        t0.elapsed()
    );
    if parsed.flag("verify") {
        verify_against_cold(&*g, e)?;
    }
    Ok(())
}

fn pagerank(parsed: &Parsed) -> Result<(), String> {
    match shards(parsed)? {
        1 => pagerank_on(&load_graph(parsed)?.0, parsed),
        n => pagerank_on(&load_parallel(parsed, n, false)?, parsed),
    }
}

fn pagerank_on<S: GraphStore + Sync>(g: &S, parsed: &Parsed) -> Result<(), String> {
    let iterations = parsed.num("iterations", 20usize)?;
    let k = parsed.num("top", 10usize)?;
    let pr = PageRank::new(0.85, iterations);
    let t0 = Instant::now();
    let top = pr.top_k(g, k);
    println!("PageRank ({iterations} iterations) in {:.2?}; top {k}:", t0.elapsed());
    for (v, rank) in top {
        println!("  vertex {v:>10}  {rank:.6}");
    }
    Ok(())
}

fn triangles(parsed: &Parsed) -> Result<(), String> {
    let path = parsed.input()?;
    let edges = io::read_edge_list(path).map_err(|e| e.to_string())?;
    let mut g = GraphTinker::new(config(parsed)?).map_err(|e| e.to_string())?;
    g.apply_batch(&symmetrize(&EdgeBatch::inserts(&edges)));
    let t0 = Instant::now();
    let n = TriangleCount::new().count(&g);
    println!("{n} triangles ({} edges, symmetrized) in {:.2?}", g.num_edges(), t0.elapsed());
    Ok(())
}

fn bench_insert(parsed: &Parsed) -> Result<(), String> {
    let path = parsed.input()?;
    let edges = io::read_edge_list(path).map_err(|e| e.to_string())?;
    let batch_size = parsed.num("batch", 1_000_000usize)?;
    let batches: Vec<EdgeBatch> = edges.chunks(batch_size.max(1)).map(EdgeBatch::inserts).collect();

    let mut g = GraphTinker::new(config(parsed)?).map_err(|e| e.to_string())?;
    let t0 = Instant::now();
    for b in &batches {
        g.apply_batch(b);
    }
    let gt_dur = t0.elapsed();
    println!(
        "GraphTinker: {} edges in {:.2?} ({:.3} Medges/s), mean probe {:.2}",
        edges.len(),
        gt_dur,
        edges.len() as f64 / gt_dur.as_secs_f64() / 1e6,
        g.stats().mean_probe()
    );
    if parsed.flag("baseline") {
        let mut s = Stinger::with_defaults();
        let t0 = Instant::now();
        for b in &batches {
            s.apply_batch(b);
        }
        let st_dur = t0.elapsed();
        println!(
            "STINGER    : {} edges in {:.2?} ({:.3} Medges/s), mean probe {:.2}",
            edges.len(),
            st_dur,
            edges.len() as f64 / st_dur.as_secs_f64() / 1e6,
            s.stats().mean_probe()
        );
        println!("speedup    : {:.2}x", st_dur.as_secs_f64() / gt_dur.as_secs_f64());
    }
    Ok(())
}

/// `--sync never|always|N` → a WAL [`SyncPolicy`].
fn sync_policy(parsed: &Parsed) -> Result<SyncPolicy, String> {
    match parsed.get("sync").unwrap_or("always") {
        "never" => Ok(SyncPolicy::Never),
        "always" | "record" => Ok(SyncPolicy::EveryRecord),
        n => n
            .parse::<u64>()
            .map(SyncPolicy::EveryN)
            .map_err(|_| format!("option --sync: expected never|always|N, got '{n}'")),
    }
}

fn ingest(parsed: &Parsed) -> Result<(), String> {
    let path = parsed.input()?;
    let dir = parsed.get("wal").ok_or("ingest requires --wal DIR")?;
    let batch_size = parsed.num("batch", 100_000usize)?.max(1);
    let snapshot_every = parsed.num("snapshot-every", 0u64)?;
    let opts = WalOptions { sync: sync_policy(parsed)?, ..WalOptions::default() };
    let edges = io::read_edge_list(path).map_err(|e| e.to_string())?;
    let pool = parsed.num("pool", 1usize)?;
    if pool == 0 {
        return Err("option --pool: must be at least 1".into());
    }
    // Live query + telemetry endpoint for the duration of the ingest.
    // Serving routes through the pooled store (even at --pool 1) so the
    // query API reads epoch-pinned views of the very store being fed.
    if let Some(addr) = parsed.get("serve") {
        let listener = crate::serve::bind(addr)?;
        return ingest_pooled(
            parsed,
            Path::new(dir),
            &edges,
            batch_size,
            pool,
            opts,
            Some(listener),
        );
    }
    if pool > 1 {
        return ingest_pooled(parsed, Path::new(dir), &edges, batch_size, pool, opts, None);
    }
    let (mut d, report) =
        DurableTinker::open(Path::new(dir), config(parsed)?, opts).map_err(|e| e.to_string())?;
    if parsed.flag("pipeline") {
        d.set_pipelined(true).map_err(|e| e.to_string())?;
    }
    if report.next_lsn > 0 {
        eprintln!(
            "recovered {} edges at lsn {} ({} records replayed)",
            d.store().num_edges(),
            report.next_lsn,
            report.replayed_records
        );
    }
    let t0 = Instant::now();
    let mut batches = 0u64;
    for chunk in edges.chunks(batch_size) {
        gtinker_core::trace::instant(gtinker_core::SpanId::IngestBatch, batches);
        d.apply_batch(&EdgeBatch::inserts(chunk)).map_err(|e| e.to_string())?;
        batches += 1;
        if snapshot_every > 0 && batches.is_multiple_of(snapshot_every) {
            let p = d.snapshot().map_err(|e| e.to_string())?;
            eprintln!("snapshot at lsn {}: {}", d.next_lsn(), p.display());
        }
    }
    d.sync().map_err(|e| e.to_string())?;
    if parsed.flag("final-snapshot") {
        let p = d.snapshot().map_err(|e| e.to_string())?;
        eprintln!("final snapshot: {}", p.display());
    }
    let dur = t0.elapsed();
    println!(
        "ingested {} edges in {batches} batches in {dur:.2?} \
         ({:.3} Medges/s durable), {} live, next lsn {}",
        edges.len(),
        edges.len() as f64 / dur.as_secs_f64() / 1e6,
        d.store().num_edges(),
        d.next_lsn()
    );
    if parsed.flag("stats") {
        d.store().publish_memory_metrics();
        print!("{}", gtinker_core::metrics::global().snapshot().to_prometheus());
    }
    Ok(())
}

/// `ingest --pool N` (and any `ingest --serve`): WAL-first logging with
/// batches applied across `n` interval-partitioned shard workers. With
/// `--pipeline`, the apply of batch k overlaps the WAL append of batch
/// k+1 (every batch is still logged before it is handed to the pool).
/// 'gtinker recover' replays the resulting log into a single store, so
/// pooled ingest requires a fresh directory and does not support
/// snapshots. With a serve listener, the store is built with epoch views
/// and shared with the HTTP workers, so `/query/*` runs against pinned
/// snapshots while batches keep applying; `--hold` keeps serving after
/// the ingest finishes until `/quitquitquit`.
fn ingest_pooled(
    parsed: &Parsed,
    dir: &Path,
    edges: &[Edge],
    batch_size: usize,
    pool: usize,
    opts: WalOptions,
    serve_listener: Option<std::net::TcpListener>,
) -> Result<(), String> {
    if parsed.num("snapshot-every", 0u64)? > 0 || parsed.flag("final-snapshot") {
        return Err("--pool/--serve ingest does not support snapshots (drop \
                    --snapshot-every/--final-snapshot)"
            .to_string());
    }
    let (mut wal, _) = WalWriter::open(dir, opts).map_err(|e| e.to_string())?;
    if wal.next_lsn() > 0 || !list_snapshots(dir).map_err(|e| e.to_string())?.is_empty() {
        return Err("--pool requires a fresh --wal DIR (existing state cannot be resumed into \
                    a sharded store; rerun without --pool)"
            .to_string());
    }
    let serving = serve_listener.is_some();
    let g = std::sync::Arc::new(
        if serving {
            ParallelTinker::new_with_views(config(parsed)?, pool)
        } else {
            ParallelTinker::new(config(parsed)?, pool)
        }
        .map_err(|e| e.to_string())?,
    );
    let workers = parsed.num("workers", crate::serve::DEFAULT_WORKERS)?.max(1);
    let slow_query_ms = slow_query_ms(parsed)?;
    let server = serve_listener.map(|listener| {
        let ctx = crate::serve::ServeCtx::with_options(
            Instant::now(),
            Some(std::sync::Arc::clone(&g)),
            slow_query_ms,
        );
        crate::serve::spawn(listener, ctx, workers)
    });
    let pipelined = parsed.flag("pipeline");
    let t0 = Instant::now();
    let mut batches = 0u64;
    for chunk in edges.chunks(batch_size) {
        gtinker_core::trace::instant(gtinker_core::SpanId::IngestBatch, batches);
        let batch = EdgeBatch::inserts(chunk);
        wal.append(&batch).map_err(|e| e.to_string())?;
        if pipelined {
            g.submit_shared(std::sync::Arc::new(batch));
        } else {
            g.apply_batch(&batch);
        }
        batches += 1;
    }
    if pipelined {
        g.flush();
    }
    wal.sync().map_err(|e| e.to_string())?;
    let dur = t0.elapsed();
    println!(
        "ingested {} edges in {batches} batches across {pool} shards{} in {dur:.2?} \
         ({:.3} Medges/s durable), {} live, next lsn {}",
        edges.len(),
        if pipelined { " (pipelined)" } else { "" },
        edges.len() as f64 / dur.as_secs_f64() / 1e6,
        g.num_edges(),
        wal.next_lsn()
    );
    if parsed.flag("stats") {
        g.publish_memory_metrics();
        print!("{}", gtinker_core::metrics::global().snapshot().to_prometheus());
    }
    if let Some(server) = server {
        if parsed.flag("hold") {
            eprintln!(
                "ingest done; serving queries on http://{} until GET /quitquitquit",
                server.addr()
            );
            server.join();
        } else {
            server.shutdown();
        }
    }
    Ok(())
}

/// `gtinker trace FILE --wal DIR`: the same durable ingest as `ingest`,
/// run with span tracing enabled, then exported as a Chrome trace-event
/// timeline. With `--pool N --pipeline` the file shows the PR 3 overlap
/// directly: `wal_append` of batch k+1 on the driver track running while
/// the shard tracks apply batch k. `--analytics` appends a traced BFS so
/// the engine's process/apply phases appear too.
fn trace_cmd(parsed: &Parsed) -> Result<(), String> {
    let out = parsed.get("out").unwrap_or("trace.json").to_string();
    gtinker_core::trace::set_enabled(true);
    if !gtinker_core::trace::enabled() {
        return Err("this gtinker was built without the 'trace' feature \
                    (rebuild with default features to record timelines)"
            .into());
    }
    gtinker_core::trace::clear();
    ingest(parsed)?;
    // Snapshot the rings at the phase boundary: the analytics load's
    // branch-out instants must not evict the ingest's WAL/pool spans.
    let mut dump = gtinker_core::trace::dump();
    if parsed.flag("analytics") {
        let (mut g, edges) = load_graph(parsed)?;
        let root = parsed.num("root", 0u32)?;
        let mut runner =
            DynamicRunner::new(Bfs::new(root), mode_policy(parsed)?, RestartPolicy::Incremental);
        let r = runner.after_batch(&g, &EdgeBatch::new());
        // A delete + re-insert churn round so the timeline carries
        // 'repair' spans with real cone sizes, not just the cold solve.
        let k = edges.len().min(256);
        let pairs: Vec<_> = edges[..k].iter().map(|e| (e.src, e.dst)).collect();
        let del = EdgeBatch::deletes(&pairs);
        g.apply_batch(&del);
        runner.after_batch(&g, &del);
        let ins = EdgeBatch::inserts(&edges[..k]);
        g.apply_batch(&ins);
        runner.after_batch(&g, &ins);
        eprintln!(
            "traced BFS from {root}: {} iterations, then 2 repair batches ({k} ops each)",
            r.num_iterations()
        );
    }
    gtinker_core::trace::set_enabled(false);
    dump.merge(gtinker_core::trace::dump());
    std::fs::write(&out, dump.to_chrome_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
    let dropped: u64 = dump.threads.iter().map(|t| t.dropped).sum();
    println!(
        "trace: {} events on {} tracks -> {out}{} (open in https://ui.perfetto.dev)",
        dump.events.len(),
        dump.threads.len(),
        if dropped > 0 {
            format!(" ({dropped} oldest events evicted by ring wrap)")
        } else {
            String::new()
        }
    );
    Ok(())
}

/// `gtinker serve [FILE|WALDIR]`: loads/recovers a store (if given) into
/// an epoch-view-enabled parallel store (`--shards N`), then serves the
/// Parses `--slow-query-ms` (None = slow-query log disabled; 0 logs
/// every request, handy for smoke tests).
fn slow_query_ms(parsed: &Parsed) -> Result<Option<u64>, String> {
    match parsed.get("slow-query-ms") {
        None => Ok(None),
        Some(v) => v
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("bad --slow-query-ms: '{v}' (expected milliseconds)")),
    }
}

/// telemetry routes plus the `/query/*` API over HTTP until SIGTERM or a
/// loopback `GET /quitquitquit`.
fn serve_cmd(parsed: &Parsed) -> Result<(), String> {
    let started = Instant::now();
    let shards = parsed.num("shards", 1usize)?.max(1);
    let workers = parsed.num("workers", crate::serve::DEFAULT_WORKERS)?.max(1);
    let store = match parsed.positional.first().cloned() {
        None => None,
        Some(input) => {
            gtinker_core::metrics::global().reset();
            let edges: Vec<Edge> = if Path::new(&input).is_dir() {
                let (g, report) = recover_tinker(Path::new(&input), config(parsed)?)
                    .map_err(|e| e.to_string())?;
                eprintln!(
                    "recovered {} edges from {input} ({} records replayed)",
                    g.num_edges(),
                    report.replayed_records
                );
                let mut edges = Vec::with_capacity(g.num_edges() as usize);
                g.for_each_edge(|s, d, w| edges.push(Edge::new(s, d, w)));
                edges
            } else {
                io::read_edge_list(&input).map_err(|e| e.to_string())?
            };
            let g = ParallelTinker::new_with_views(config(parsed)?, shards)
                .map_err(|e| e.to_string())?;
            for chunk in edges.chunks(100_000) {
                g.apply_batch(&EdgeBatch::inserts(chunk));
            }
            eprintln!("serving {} edges over {shards} shard(s)", g.num_edges());
            Some(std::sync::Arc::new(g))
        }
    };
    let listener = crate::serve::bind(parsed.get("addr").unwrap_or("127.0.0.1:0"))?;
    let ctx = crate::serve::ServeCtx::with_options(started, store, slow_query_ms(parsed)?);
    crate::serve::serve_until_shutdown(listener, ctx, workers);
    eprintln!("serve: shut down cleanly");
    Ok(())
}

fn snapshot(parsed: &Parsed) -> Result<(), String> {
    let dir = parsed.get("dir").ok_or("snapshot requires --dir DIR")?;
    let dir = Path::new(dir);
    let t0 = Instant::now();
    let out = if parsed.flag("baseline") {
        let path = parsed.input()?;
        let edges = io::read_edge_list(path).map_err(|e| e.to_string())?;
        let mut s = Stinger::with_defaults();
        s.apply_batch(&EdgeBatch::inserts(&edges));
        write_stinger_snapshot(dir, &s, 0).map_err(|e| e.to_string())?
    } else {
        let (g, _) = load_graph(parsed)?;
        write_tinker_snapshot(dir, &g, 0).map_err(|e| e.to_string())?
    };
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    let dur = t0.elapsed();
    println!(
        "snapshot {} ({bytes} bytes) in {dur:.2?} ({:.1} MB/s)",
        out.display(),
        bytes as f64 / dur.as_secs_f64() / 1e6
    );
    Ok(())
}

fn recover(parsed: &Parsed) -> Result<(), String> {
    let dir = Path::new(parsed.input()?);
    let t0 = Instant::now();
    if parsed.flag("baseline") {
        let (s, report) =
            recover_stinger(dir, StingerConfig::default()).map_err(|e| e.to_string())?;
        println!(
            "recovered STINGER: {} edges, snapshot lsn {}, {} records replayed{} in {:.2?}",
            s.num_edges(),
            report.snapshot_lsn,
            report.replayed_records,
            if report.wal_truncated { " (torn tail truncated)" } else { "" },
            t0.elapsed()
        );
        return Ok(());
    }
    let (g, report) = recover_tinker(dir, config(parsed)?).map_err(|e| e.to_string())?;
    println!(
        "recovered GraphTinker: {} edges, {} sources, snapshot lsn {}{}, \
         {} records replayed{}{} in {:.2?}",
        g.num_edges(),
        g.sources().len(),
        report.snapshot_lsn,
        report.snapshot_path.as_deref().map(|p| format!(" ({})", p.display())).unwrap_or_default(),
        report.replayed_records,
        if report.wal_truncated { " (torn tail truncated)" } else { "" },
        if report.snapshots_skipped > 0 {
            format!(" ({} corrupt snapshot(s) skipped)", report.snapshots_skipped)
        } else {
            String::new()
        },
        t0.elapsed()
    );
    if parsed.flag("validate") {
        g.validate_rhh_invariants().map_err(|e| format!("RHH invariant violated: {e}"))?;
        g.validate_tag_invariants().map_err(|e| format!("tag invariant violated: {e}"))?;
        println!("validated: RHH probe distances and SWAR tag lanes consistent");
    }
    if let Some(root) = parsed.get("root") {
        let root: u32 = root.parse().map_err(|_| format!("option --root: bad value '{root}'"))?;
        let mut e = Engine::new(Bfs::new(root), mode_policy(parsed)?);
        let r = e.run_from_roots(&g);
        let reached = e.values().iter().filter(|&&v| v != u32::MAX).count();
        println!("BFS from {root}: {reached} reached, {} iterations", r.num_iterations());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn parsed(args: &[&str]) -> Parsed {
        parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn unknown_command_errors() {
        let e = run(&parsed(&["frobnicate"])).unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn help_succeeds() {
        assert!(run(&parsed(&["help"])).is_ok());
        assert!(run(&parsed(&[])).is_ok());
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(mode_policy(&parsed(&["bfs", "f"])).unwrap(), ModePolicy::hybrid());
        assert_eq!(
            mode_policy(&parsed(&["bfs", "f", "--mode", "fp"])).unwrap(),
            ModePolicy::AlwaysFull
        );
        assert!(mode_policy(&parsed(&["bfs", "f", "--mode", "x"])).is_err());
    }

    #[test]
    fn config_flags() {
        let c =
            config(&parsed(&["stats", "f", "--no-cal", "--compact", "--pagewidth", "32"])).unwrap();
        assert!(!c.enable_cal);
        assert!(c.enable_sgh);
        assert_eq!(c.pagewidth, 32);
        assert_eq!(c.delete_mode, DeleteMode::DeleteAndCompact);
        assert!(config(&parsed(&["stats", "f", "--pagewidth", "33"])).is_err());
        let c = config(&parsed(&["stats", "f", "--adaptive"])).unwrap();
        assert!(c.adaptive_enabled());
        assert!(!config(&parsed(&["stats", "f"])).unwrap().adaptive_enabled());
    }

    #[test]
    fn adaptive_stats_reports_tiers() {
        let dir = std::env::temp_dir().join("gtinker_cli_adaptive");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("g.txt");
        // One hub source (200 edges, over the promote threshold of 128),
        // a handful of inline-sized sources.
        let mut edges = String::new();
        for d in 0..200u32 {
            edges.push_str(&format!("0 {}\n", d + 10));
        }
        for s in 1..5u32 {
            edges.push_str(&format!("{s} {}\n", s + 100));
        }
        std::fs::write(&file, edges).unwrap();
        let file_s = file.to_str().unwrap();
        run(&parsed(&["stats", file_s, "--adaptive"])).unwrap();
        run(&parsed(&["stats", file_s, "--adaptive", "--format", "json"])).unwrap();
        run(&parsed(&["stats", file_s, "--adaptive", "--format", "prom"])).unwrap();
        // Analytics agree with the fixed layout on the same input.
        run(&parsed(&["bfs", file_s, "--root", "0", "--adaptive"])).unwrap();
        run(&parsed(&["cc", file_s, "--adaptive"])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn adaptive_json_has_tier_fields() {
        let mut g = GraphTinker::new(TinkerConfig::default().adaptive()).unwrap();
        g.apply_batch(&EdgeBatch::inserts(&[Edge::unit(0, 1), Edge::unit(0, 2)]));
        let snap = gtinker_core::metrics::global().snapshot();
        let s = stats_json(&g, "x", false, &snap);
        assert!(s.contains("\"tier_inline_vertices\": 1"), "{s}");
        assert!(s.contains("\"tier_hub_vertices\": 0"));
        assert!(s.contains("\"inline_bytes\""));
    }

    #[test]
    fn generate_requires_out_and_source() {
        assert!(run(&parsed(&["generate"])).unwrap_err().contains("--out"));
        assert!(run(&parsed(&["generate", "--out", "/tmp/x"])).unwrap_err().contains("--dataset"));
    }

    #[test]
    fn end_to_end_generate_stats_bfs() {
        let dir = std::env::temp_dir().join("gtinker_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("g.txt");
        let file_s = file.to_str().unwrap();
        run(&parsed(&[
            "generate",
            "--rmat-scale",
            "8",
            "--edges",
            "2000",
            "--seed",
            "7",
            "--out",
            file_s,
        ]))
        .unwrap();
        run(&parsed(&["stats", file_s])).unwrap();
        run(&parsed(&["bfs", file_s, "--root", "0"])).unwrap();
        run(&parsed(&["cc", file_s])).unwrap();
        run(&parsed(&["pagerank", file_s, "--iterations", "5", "--top", "3"])).unwrap();
        run(&parsed(&["triangles", file_s])).unwrap();
        run(&parsed(&["bench-insert", file_s, "--baseline", "--batch", "500"])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_analytics_run() {
        let dir = std::env::temp_dir().join("gtinker_cli_shards");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("g.txt");
        let file_s = file.to_str().unwrap();
        run(&parsed(&[
            "generate",
            "--rmat-scale",
            "8",
            "--edges",
            "1500",
            "--seed",
            "3",
            "--out",
            file_s,
        ]))
        .unwrap();
        run(&parsed(&["bfs", file_s, "--root", "0", "--shards", "4"])).unwrap();
        run(&parsed(&["sssp", file_s, "--root", "0", "--shards", "2"])).unwrap();
        run(&parsed(&["cc", file_s, "--shards", "3"])).unwrap();
        run(&parsed(&["pagerank", file_s, "--iterations", "3", "--shards", "2"])).unwrap();
        assert!(run(&parsed(&["bfs", file_s, "--shards", "0"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_and_churn_parsing() {
        assert!(!incremental_restart(&parsed(&["bfs", "f"])).unwrap());
        assert!(!incremental_restart(&parsed(&["bfs", "f", "--restart", "static"])).unwrap());
        assert!(incremental_restart(&parsed(&["bfs", "f", "--restart", "incremental"])).unwrap());
        assert!(incremental_restart(&parsed(&["bfs", "f", "--churn-every", "8"])).unwrap());
        let e = incremental_restart(&parsed(&[
            "bfs",
            "f",
            "--restart",
            "static",
            "--churn-every",
            "8",
        ]))
        .unwrap_err();
        assert!(e.contains("--churn-every"), "got: {e}");
        assert!(incremental_restart(&parsed(&["bfs", "f", "--restart", "sometimes"])).is_err());
    }

    #[test]
    fn churn_ops_interleave_deletes_of_earlier_inserts() {
        let edges: Vec<Edge> = (0..20).map(|i| Edge::unit(i, i + 1)).collect();
        let ops = churn_ops(&edges, 5);
        assert_eq!(ops.len(), 24, "20 inserts + 4 churn deletes");
        let mut inserted = std::collections::HashSet::new();
        for op in &ops {
            match *op {
                UpdateOp::Insert(e) => {
                    inserted.insert((e.src, e.dst));
                }
                UpdateOp::Delete { src, dst } => {
                    assert!(inserted.contains(&(src, dst)), "delete of a never-inserted edge");
                }
            }
        }
        assert_eq!(churn_ops(&edges, 0).len(), 20, "no churn without --churn-every");
    }

    #[test]
    fn incremental_analytics_verify_against_cold() {
        let dir = std::env::temp_dir().join("gtinker_cli_incremental");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("g.txt");
        let mut edges = String::new();
        for i in 0u32..600 {
            edges.push_str(&format!("{} {} {}\n", i % 53, (i * 7 + 1) % 59, i % 9 + 1));
        }
        std::fs::write(&file, edges).unwrap();
        let f = file.to_str().unwrap();
        // Every analytic, churn-heavy incremental restart, checked
        // against a cold fixpoint on the final store.
        for cmd in ["bfs", "sssp", "cc"] {
            run(&parsed(&[
                cmd,
                f,
                "--root",
                "0",
                "--restart",
                "incremental",
                "--churn-every",
                "7",
                "--batch",
                "100",
                "--verify",
            ]))
            .unwrap();
        }
        // Sharded incremental, and --verify on the static path.
        run(&parsed(&[
            "bfs",
            f,
            "--root",
            "0",
            "--shards",
            "3",
            "--restart",
            "incremental",
            "--batch",
            "150",
            "--verify",
        ]))
        .unwrap();
        run(&parsed(&["cc", f, "--verify"])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_pool_and_zero_shards_are_rejected() {
        let dir = std::env::temp_dir().join("gtinker_cli_zero");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("g.txt");
        std::fs::write(&file, "0 1\n1 2\n").unwrap();
        let file_s = file.to_str().unwrap();
        let db = dir.join("db");
        let db_s = db.to_str().unwrap();
        let e = run(&parsed(&["ingest", file_s, "--wal", db_s, "--pool", "0"])).unwrap_err();
        assert!(e.contains("--pool") && e.contains("at least 1"), "got: {e}");
        assert!(!db.exists(), "rejected ingest must not create the WAL dir");
        let e = run(&parsed(&["bfs", file_s, "--shards", "0"])).unwrap_err();
        assert!(e.contains("--shards") && e.contains("at least 1"), "got: {e}");
        for cmd in ["sssp", "cc", "pagerank"] {
            let e = run(&parsed(&[cmd, file_s, "--shards", "0"])).unwrap_err();
            assert!(e.contains("--shards"), "{cmd}: {e}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_formats_and_recovered_store() {
        let dir = std::env::temp_dir().join("gtinker_cli_statsfmt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("g.txt");
        std::fs::write(&file, "0 1\n0 2\n1 2\n2 3\n").unwrap();
        let file_s = file.to_str().unwrap();
        // All three formats over a file load.
        run(&parsed(&["stats", file_s])).unwrap();
        run(&parsed(&["stats", file_s, "--format", "json"])).unwrap();
        run(&parsed(&["stats", file_s, "--format", "prom"])).unwrap();
        let e = run(&parsed(&["stats", file_s, "--format", "xml"])).unwrap_err();
        assert!(e.contains("--format"));
        // And over a recovered WAL directory.
        let db = dir.join("db");
        let db_s = db.to_str().unwrap();
        run(&parsed(&["ingest", file_s, "--wal", db_s, "--sync", "never", "--stats"])).unwrap();
        run(&parsed(&["stats", db_s, "--format", "json"])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_json_shape() {
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&EdgeBatch::inserts(&[Edge::unit(0, 1), Edge::unit(0, 2)]));
        let snap = gtinker_core::metrics::global().snapshot();
        let s = stats_json(&g, "some/input.txt", false, &snap);
        assert!(s.starts_with("{\n") && s.ends_with('}'));
        assert!(s.contains("\"live_edges\": 2"));
        assert!(s.contains("\"recovered\": false"));
        assert!(s.contains("\"metrics\": {"));
        assert!(s.contains("\"rhh_probe\""));
    }

    #[test]
    fn sync_policy_parsing() {
        assert_eq!(sync_policy(&parsed(&["ingest", "f"])).unwrap(), SyncPolicy::EveryRecord);
        assert_eq!(
            sync_policy(&parsed(&["ingest", "f", "--sync", "never"])).unwrap(),
            SyncPolicy::Never
        );
        assert_eq!(
            sync_policy(&parsed(&["ingest", "f", "--sync", "8"])).unwrap(),
            SyncPolicy::EveryN(8)
        );
        assert!(sync_policy(&parsed(&["ingest", "f", "--sync", "sometimes"])).is_err());
    }

    #[test]
    fn end_to_end_ingest_snapshot_recover() {
        let dir = std::env::temp_dir().join("gtinker_cli_persist");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("g.txt");
        let file_s = file.to_str().unwrap();
        let db = dir.join("db");
        let db_s = db.to_str().unwrap();
        run(&parsed(&[
            "generate",
            "--rmat-scale",
            "8",
            "--edges",
            "1200",
            "--seed",
            "9",
            "--out",
            file_s,
        ]))
        .unwrap();
        run(&parsed(&[
            "ingest",
            file_s,
            "--wal",
            db_s,
            "--batch",
            "300",
            "--sync",
            "never",
            "--snapshot-every",
            "2",
        ]))
        .unwrap();
        run(&parsed(&["recover", db_s, "--root", "0", "--validate"])).unwrap();
        // A direct snapshot of the same input, both store kinds (separate
        // dirs: both would publish under the same lsn-0 name).
        let sd = dir.join("snaps");
        let sd_s = sd.to_str().unwrap();
        run(&parsed(&["snapshot", file_s, "--dir", sd_s])).unwrap();
        run(&parsed(&["recover", sd_s])).unwrap();
        let bd = dir.join("snaps_baseline");
        let bd_s = bd.to_str().unwrap();
        run(&parsed(&["snapshot", file_s, "--dir", bd_s, "--baseline"])).unwrap();
        run(&parsed(&["recover", bd_s, "--baseline"])).unwrap();
        assert!(run(&parsed(&["ingest", file_s])).unwrap_err().contains("--wal"));
        assert!(run(&parsed(&["snapshot", file_s])).unwrap_err().contains("--dir"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traced_pooled_ingest_writes_chrome_json() {
        // The trace command toggles the process-global trace flag and
        // clears the rings; serialize against serve tests that do too.
        let _g = crate::serve::OBS_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("gtinker_cli_trace");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("g.txt");
        let mut edges = String::new();
        for i in 0u32..800 {
            edges.push_str(&format!("{} {}\n", i % 97, (i * 7) % 101));
        }
        std::fs::write(&file, edges).unwrap();
        let file_s = file.to_str().unwrap();
        let db = dir.join("db");
        let out = dir.join("timeline.json");
        run(&parsed(&[
            "trace",
            file_s,
            "--wal",
            db.to_str().unwrap(),
            "--batch",
            "100",
            "--sync",
            "never",
            "--pool",
            "2",
            "--pipeline",
            "--analytics",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.starts_with("{\"displayTimeUnit\""), "not chrome trace JSON");
        assert!(json.contains("\"traceEvents\":["));
        // Driver-side WAL appends and worker-side applies share the file,
        // each worker on its own named track.
        assert!(json.contains("\"wal_append\""), "missing wal_append events");
        assert!(json.contains("\"pool_apply\""), "missing pool_apply events");
        assert!(json.contains("\"engine_process\""), "missing traced analytics");
        assert!(json.contains("\"name\":\"gtinker-shard-0\""), "missing shard track name");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_with_serve_endpoint_answers_healthz() {
        let dir = std::env::temp_dir().join("gtinker_cli_serve");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("g.txt");
        std::fs::write(&file, "0 1\n1 2\n2 3\n").unwrap();
        let db = dir.join("db");
        // Bad address is rejected before any ingest work happens.
        let e = run(&parsed(&[
            "ingest",
            file.to_str().unwrap(),
            "--wal",
            db.to_str().unwrap(),
            "--sync",
            "never",
            "--serve",
            "256.0.0.1:bad",
        ]))
        .unwrap_err();
        assert!(e.contains("bind"), "got: {e}");
        // A good ephemeral address serves for the (short) ingest lifetime.
        run(&parsed(&[
            "ingest",
            file.to_str().unwrap(),
            "--wal",
            db.to_str().unwrap(),
            "--sync",
            "never",
            "--serve",
            "127.0.0.1:0",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pipelined_and_pooled_ingest_recover() {
        let dir = std::env::temp_dir().join("gtinker_cli_pipeline");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("g.txt");
        let file_s = file.to_str().unwrap();
        run(&parsed(&[
            "generate",
            "--rmat-scale",
            "8",
            "--edges",
            "1200",
            "--seed",
            "11",
            "--out",
            file_s,
        ]))
        .unwrap();
        // Pipelined DurableTinker ingest: same log, overlapped apply.
        let db = dir.join("db_pipe");
        let db_s = db.to_str().unwrap();
        run(&parsed(&[
            "ingest",
            file_s,
            "--wal",
            db_s,
            "--batch",
            "200",
            "--sync",
            "4",
            "--pipeline",
        ]))
        .unwrap();
        run(&parsed(&["recover", db_s, "--root", "0"])).unwrap();
        // Pooled (and pooled+pipelined) ingest, recoverable the same way.
        let pooled = dir.join("db_pool");
        let pooled_s = pooled.to_str().unwrap();
        run(&parsed(&[
            "ingest",
            file_s,
            "--wal",
            pooled_s,
            "--batch",
            "200",
            "--sync",
            "never",
            "--pool",
            "3",
            "--pipeline",
        ]))
        .unwrap();
        run(&parsed(&["recover", pooled_s])).unwrap();
        // Pooled mode refuses snapshots and non-fresh directories.
        let e =
            run(&parsed(&["ingest", file_s, "--wal", pooled_s, "--pool", "2", "--final-snapshot"]))
                .unwrap_err();
        assert!(e.contains("snapshot"));
        let e = run(&parsed(&["ingest", file_s, "--wal", pooled_s, "--pool", "2"])).unwrap_err();
        assert!(e.contains("fresh"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
