//! `gtinker` — command-line front end for the GraphTinker dynamic-graph
//! store: generate datasets, inspect structure statistics, run analytics
//! (BFS / SSSP / CC / PageRank) under any engine mode, and benchmark
//! insertion against the STINGER baseline.
//!
//! Run `gtinker help` for usage.

mod args;
mod commands;
mod serve;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    if parsed.flag("help") {
        print!("{}", commands::USAGE);
        return;
    }
    if let Err(e) = commands::run(&parsed) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
