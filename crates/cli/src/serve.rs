//! A std-only HTTP/1.1 endpoint (no external crates): telemetry routes
//! answered from process-global observability state, plus — when a store
//! is attached — a query API served from epoch-pinned snapshot views.
//!
//! | route              | payload                                          |
//! |--------------------|--------------------------------------------------|
//! | `/metrics`         | the metric registry in Prometheus text format    |
//! | `/healthz`         | JSON liveness: uptime, live edges, pinned epoch  |
//! | `/trace`           | the span-trace rings as Chrome trace-event JSON  |
//! | `/neighbors?v=`    | out-edges of one vertex                          |
//! | `/degree?v=`       | out-degree of one vertex                         |
//! | `/query/bfs?src=`  | BFS from a root: reached count, eccentricity     |
//! | `/query/sssp?src=` | SSSP from a root: reached count, max distance    |
//! | `/query/cc`        | connected components count                       |
//! | `/query/pagerank`  | top-k PageRank (`?iterations=&top=`)             |
//! | `/quitquitquit`    | graceful shutdown (loopback clients only)        |
//!
//! Requests are handled by a small worker pool so a slow analytics query
//! (BFS over a large graph) does not block a `/healthz` probe. Every
//! query pins an epoch view ([`ParallelTinker::pin_view`]) instead of
//! draining the ingest pipeline: the writer keeps applying batches while
//! readers traverse a consistent acked-batch-boundary snapshot. Telemetry
//! routes read lock-free global state and never touch the store at all.
//!
//! HTTP support is deliberately minimal: one request per connection
//! (`Connection: close` on every response), request bodies ignored,
//! `GET`/`HEAD` only (anything else draws `405` with an `Allow` header).
//! That is enough for `curl`, Prometheus scrapes, and Perfetto downloads,
//! and keeps the whole server dependency-free and small enough to audit.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gtinker_core::trace::{self, SpanId};
use gtinker_core::{ParallelTinker, StoreView};
use gtinker_engine::{
    algorithms::{Bfs, Cc, PageRank, Sssp},
    Engine, ModePolicy,
};

/// Route catalogue, also used as the [`SpanId::ServeRequest`] payload so
/// traced servers show *which* endpoint was hit.
const ROUTES: &[&str] = &[
    "/healthz",
    "/metrics",
    "/trace",
    "/neighbors",
    "/degree",
    "/query/bfs",
    "/query/sssp",
    "/query/cc",
    "/query/pagerank",
];

/// Default number of request-worker threads.
pub const DEFAULT_WORKERS: usize = 4;

/// Per-connection socket timeout: a client that stalls mid-request (or
/// never reads the response) cannot wedge a worker forever.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Shared server state: the optional store queries run against, the
/// process start time for uptime, and the shutdown latch.
pub struct ServeCtx {
    store: Option<Arc<ParallelTinker>>,
    start: Instant,
    shutdown: AtomicBool,
}

impl ServeCtx {
    /// Telemetry-only context (no store: query routes answer 503).
    pub fn telemetry(start: Instant) -> Arc<Self> {
        Arc::new(ServeCtx { store: None, start, shutdown: AtomicBool::new(false) })
    }

    /// Context with a live store; queries are served from pinned views.
    /// The store must be built with views ([`ParallelTinker::new_with_views`]).
    pub fn with_store(start: Instant, store: Arc<ParallelTinker>) -> Arc<Self> {
        Arc::new(ServeCtx { store: Some(store), start, shutdown: AtomicBool::new(false) })
    }

    /// Whether graceful shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and announces the
/// resolved address on stdout — line-flushed, so scripts that pipe the
/// output can discover the port before the first request.
pub fn bind(addr: &str) -> Result<TcpListener, String> {
    let listener =
        TcpListener::bind(addr).map_err(|e| format!("serve: cannot bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| format!("serve: {e}"))?;
    println!("serving on http://{local} (/healthz /metrics /trace /query/*)");
    std::io::stdout().flush().ok();
    Ok(listener)
}

/// A running server: the acceptor thread plus its shared context.
/// Dropping the handle does NOT stop the server; call
/// [`shutdown`](Self::shutdown) or [`join`](Self::join).
pub struct ServeHandle {
    addr: SocketAddr,
    ctx: Arc<ServeCtx>,
    thread: JoinHandle<()>,
}

impl ServeHandle {
    /// The bound address (for self-connects and log lines).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the acceptor + workers to exit.
    pub fn shutdown(self) {
        self.ctx.shutdown.store(true, Ordering::Release);
        // Wake the acceptor if it is parked in accept().
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }

    /// Waits until the server shuts down on its own (`/quitquitquit`).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// Starts the server on a background thread and returns immediately.
pub fn spawn(listener: TcpListener, ctx: Arc<ServeCtx>, workers: usize) -> ServeHandle {
    let addr = listener.local_addr().expect("bound listener has an address");
    let actx = Arc::clone(&ctx);
    let thread = std::thread::Builder::new()
        .name("gtinker-serve".into())
        .spawn(move || serve_until_shutdown(listener, actx, workers))
        .expect("spawn serve acceptor");
    ServeHandle { addr, ctx, thread }
}

/// Accept loop: distributes connections to `workers` handler threads and
/// serves until shutdown is requested (`/quitquitquit` from a loopback
/// client, or [`ServeHandle::shutdown`]). Per-connection errors are
/// logged and skipped — a dropped scrape must not kill the server.
pub fn serve_until_shutdown(listener: TcpListener, ctx: Arc<ServeCtx>, workers: usize) {
    let addr = listener.local_addr().expect("bound listener has an address");
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut handles = Vec::with_capacity(workers.max(1));
    for w in 0..workers.max(1) {
        let rx = Arc::clone(&rx);
        let ctx = Arc::clone(&ctx);
        let handle = std::thread::Builder::new()
            .name(format!("gtinker-http-{w}"))
            .spawn(move || worker_loop(rx, ctx, addr))
            .expect("spawn http worker");
        handles.push(handle);
    }
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if ctx.is_shutdown() {
                    break;
                }
                // A send can only fail if every worker panicked; drop the
                // connection rather than poisoning the acceptor.
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) => {
                if ctx.is_shutdown() {
                    break;
                }
                eprintln!("serve: accept failed: {e}");
            }
        }
    }
    drop(tx);
    for h in handles {
        let _ = h.join();
    }
}

/// Request-worker body: pull connections off the shared queue until the
/// acceptor hangs up.
fn worker_loop(rx: Arc<Mutex<Receiver<TcpStream>>>, ctx: Arc<ServeCtx>, addr: SocketAddr) {
    loop {
        let stream = match rx.lock().expect("serve queue poisoned").recv() {
            Ok(s) => s,
            Err(_) => return,
        };
        if let Err(e) = handle_connection(stream, &ctx, addr) {
            eprintln!("serve: request failed: {e}");
        }
    }
}

/// Reads one request, writes one response, closes the connection.
fn handle_connection(stream: TcpStream, ctx: &ServeCtx, addr: SocketAddr) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let peer = stream.peer_addr().ok();
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the remaining headers so well-behaved clients see a clean
    // close instead of a reset mid-send.
    let mut line = String::new();
    while reader.read_line(&mut line)? > 2 {
        line.clear();
    }
    let mut stream = reader.into_inner();

    let mut words = request_line.split_whitespace();
    let method = words.next().unwrap_or("");
    let target = words.next().unwrap_or("");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let head_only = method == "HEAD";
    if !head_only && method != "GET" {
        return respond(
            &mut stream,
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
            false,
        );
    }

    trace::instant(
        SpanId::ServeRequest,
        ROUTES.iter().position(|&r| r == path).map(|i| i as u64 + 1).unwrap_or(0),
    );

    if path == "/quitquitquit" {
        // Shutdown is local-only: refuse anything not from loopback.
        if !peer.is_some_and(|p| p.ip().is_loopback()) {
            return respond(
                &mut stream,
                403,
                "text/plain; charset=utf-8",
                "shutdown is loopback-only\n",
                head_only,
            );
        }
        let r =
            respond(&mut stream, 200, "text/plain; charset=utf-8", "shutting down\n", head_only);
        ctx.shutdown.store(true, Ordering::Release);
        // Wake the acceptor so it notices the latch.
        let _ = TcpStream::connect(addr);
        return r;
    }

    let (status, ctype, body) = route(path, query, ctx);
    respond(&mut stream, status, ctype, &body, head_only)
}

/// Computes the response for one path (pure, easily testable).
fn route(path: &str, query: &str, ctx: &ServeCtx) -> (u16, &'static str, String) {
    match path {
        "/healthz" => (200, "application/json", healthz_json(ctx)),
        "/metrics" => (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            gtinker_core::metrics::global().snapshot().to_prometheus(),
        ),
        "/trace" => (200, "application/json", trace::dump().to_chrome_json()),
        "/neighbors" | "/degree" | "/query/bfs" | "/query/sssp" | "/query/cc"
        | "/query/pagerank" => query_route(path, query, ctx),
        "/" => (
            200,
            "text/plain; charset=utf-8",
            "gtinker: /healthz /metrics /trace /neighbors?v= /degree?v= \
             /query/{bfs,sssp}?src= /query/cc /query/pagerank\n"
                .to_string(),
        ),
        _ => (404, "text/plain; charset=utf-8", "not found (try / for the route list)\n".into()),
    }
}

/// Dispatches one store-backed query against a freshly pinned epoch view.
fn query_route(path: &str, query: &str, ctx: &ServeCtx) -> (u16, &'static str, String) {
    let Some(store) = ctx.store.as_deref() else {
        return (503, "application/json", "{\"error\":\"no store attached\"}\n".into());
    };
    let Some(view) = store.pin_view() else {
        return (503, "application/json", "{\"error\":\"store built without views\"}\n".into());
    };
    let m = gtinker_core::metrics::global();
    m.serve_queries.inc();
    let t = gtinker_core::metrics::timer();
    let out = match path {
        "/neighbors" => neighbors_json(&view, query),
        "/degree" => degree_json(&view, query),
        "/query/bfs" => bfs_json(&view, query),
        "/query/sssp" => sssp_json(&view, query),
        "/query/cc" => cc_json(&view),
        "/query/pagerank" => pagerank_json(&view, query),
        _ => unreachable!("query_route called for non-query path"),
    };
    m.serve_query_ns.record_since(t);
    match out {
        Ok(body) => (200, "application/json", body),
        Err(msg) => (400, "application/json", format!("{{\"error\":\"{msg}\"}}\n")),
    }
}

/// `?key=value` lookup in a raw query string.
fn param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|kv| match kv.split_once('=') {
        Some((k, v)) if k == key => Some(v),
        _ => None,
    })
}

fn num_param<T: std::str::FromStr>(query: &str, key: &str, default: T) -> Result<T, String> {
    match param(query, key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad {key}: '{v}'")),
    }
}

fn required_u32(query: &str, key: &str) -> Result<u32, String> {
    param(query, key)
        .ok_or_else(|| format!("missing ?{key}="))?
        .parse()
        .map_err(|_| format!("bad {key}"))
}

fn neighbors_json(view: &StoreView<'_>, query: &str) -> Result<String, String> {
    let v = required_u32(query, "v")?;
    let mut out = Vec::new();
    view.for_each_out_edge(v, |d, w| out.push(format!("[{d},{w}]")));
    Ok(format!(
        "{{\"v\":{v},\"epoch\":{},\"degree\":{},\"neighbors\":[{}]}}\n",
        view.epoch(),
        out.len(),
        out.join(",")
    ))
}

fn degree_json(view: &StoreView<'_>, query: &str) -> Result<String, String> {
    let v = required_u32(query, "v")?;
    Ok(format!("{{\"v\":{v},\"epoch\":{},\"degree\":{}}}\n", view.epoch(), view.out_degree(v)))
}

fn bfs_json(view: &StoreView<'_>, query: &str) -> Result<String, String> {
    let src = required_u32(query, "src")?;
    let mut e = Engine::new(Bfs::new(src), ModePolicy::hybrid());
    let r = e.run_from_roots(view);
    let reached = e.values().iter().filter(|&&v| v != u32::MAX).count();
    let ecc = e.values().iter().filter(|&&v| v != u32::MAX).max().copied().unwrap_or(0);
    Ok(format!(
        "{{\"src\":{src},\"epoch\":{},\"reached\":{reached},\"eccentricity\":{ecc},\
         \"iterations\":{},\"edges_processed\":{}}}\n",
        view.epoch(),
        r.num_iterations(),
        r.total_edges_processed,
    ))
}

fn sssp_json(view: &StoreView<'_>, query: &str) -> Result<String, String> {
    let src = required_u32(query, "src")?;
    let mut e = Engine::new(Sssp::new(src), ModePolicy::hybrid());
    let r = e.run_from_roots(view);
    let reached: Vec<u32> = e.values().iter().copied().filter(|&v| v != u32::MAX).collect();
    let max_dist = reached.iter().max().copied().unwrap_or(0);
    Ok(format!(
        "{{\"src\":{src},\"epoch\":{},\"reached\":{},\"max_distance\":{max_dist},\
         \"iterations\":{}}}\n",
        view.epoch(),
        reached.len(),
        r.num_iterations(),
    ))
}

fn cc_json(view: &StoreView<'_>) -> Result<String, String> {
    let mut e = Engine::new(Cc::new(), ModePolicy::hybrid());
    let r = e.run_from_roots(view);
    let mut labels: Vec<u32> = e.values().to_vec();
    labels.sort_unstable();
    labels.dedup();
    // Isolated label space includes never-touched vertices (u32::MAX).
    let components = labels.iter().filter(|&&l| l != u32::MAX).count();
    Ok(format!(
        "{{\"epoch\":{},\"components\":{components},\"vertices\":{},\"iterations\":{}}}\n",
        view.epoch(),
        e.values().len(),
        r.num_iterations(),
    ))
}

fn pagerank_json(view: &StoreView<'_>, query: &str) -> Result<String, String> {
    let iterations: usize = num_param(query, "iterations", 10)?;
    let k: usize = num_param(query, "top", 10)?;
    let pr = PageRank::new(0.85, iterations);
    let top = pr.top_k(view, k);
    let ranks: Vec<String> = top.iter().map(|(v, score)| format!("[{v},{score:.6}]")).collect();
    Ok(format!(
        "{{\"epoch\":{},\"iterations\":{iterations},\"top\":[{}]}}\n",
        view.epoch(),
        ranks.join(",")
    ))
}

/// Liveness JSON. With a store attached, live edges and the epoch come
/// from a pinned view (exact, barrier-free). Without one, live edges fall
/// back to the hot-path counters (inserts − deletes) — NOT `num_edges()`,
/// which is a pipeline barrier on a pooled store, and a health probe must
/// never stall ingest.
fn healthz_json(ctx: &ServeCtx) -> String {
    let m = gtinker_core::metrics::global();
    let (live_edges, epoch) = match ctx.store.as_deref().and_then(|s| s.pin_view()) {
        Some(view) => (view.num_edges(), view.epoch() as i64),
        None => (m.tinker_inserts.get().saturating_sub(m.tinker_deletes.get()), -1),
    };
    format!(
        "{{\"status\":\"ok\",\"uptime_s\":{:.3},\"live_edges\":{},\"live_vertices\":{},\
         \"epoch\":{},\"trace_enabled\":{}}}\n",
        ctx.start.elapsed().as_secs_f64(),
        live_edges,
        m.sgh_sources.get().max(0),
        epoch,
        trace::enabled(),
    )
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    ctype: &str,
    body: &str,
    head_only: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    // 405 advertises what IS allowed, per RFC 9110 §15.5.6.
    let allow = if status == 405 { "Allow: GET, HEAD\r\n" } else { "" };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\n\
         Content-Length: {}\r\n{allow}Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    if !head_only {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtinker_types::{Edge, EdgeBatch};
    use std::io::Read;
    use std::net::TcpStream;

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        c.read_to_string(&mut out).unwrap();
        out
    }

    /// Spins up a full server (acceptor + workers), runs `f` against it,
    /// then shuts it down gracefully via the handle.
    fn with_server(ctx: Arc<ServeCtx>, f: impl FnOnce(SocketAddr)) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = spawn(listener, ctx, 2);
        let addr = handle.addr();
        f(addr);
        handle.shutdown();
    }

    fn get_at(addr: SocketAddr, path: &str) -> String {
        request(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
    }

    /// One telemetry-only round-trip.
    fn get(path: &str) -> String {
        let mut out = String::new();
        with_server(ServeCtx::telemetry(Instant::now()), |addr| out = get_at(addr, path));
        out
    }

    fn store_ctx() -> Arc<ServeCtx> {
        let store = ParallelTinker::new_with_views(Default::default(), 2).unwrap();
        store.apply_batch(&EdgeBatch::inserts(&[
            Edge::new(0, 1, 5),
            Edge::new(1, 2, 3),
            Edge::new(0, 2, 7),
        ]));
        ServeCtx::with_store(Instant::now(), Arc::new(store))
    }

    #[test]
    fn healthz_is_json_with_gauges() {
        let r = get("/healthz");
        assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
        assert!(r.contains("Content-Type: application/json"));
        assert!(r.contains("\"status\":\"ok\""));
        assert!(r.contains("\"live_edges\":"));
        assert!(r.contains("\"live_vertices\":"));
        assert!(r.contains("\"uptime_s\":"));
    }

    #[test]
    fn metrics_renders_prometheus() {
        let r = get("/metrics");
        assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
        assert!(r.contains("gtinker_tinker_inserts"), "got: {r}");
    }

    #[test]
    fn trace_route_is_chrome_json() {
        let r = get("/trace");
        assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
        let body = r.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.starts_with("{\"displayTimeUnit\""), "got: {body}");
        assert!(body.contains("\"traceEvents\":["));
    }

    #[test]
    fn unknown_route_is_404_and_root_lists_routes() {
        assert!(get("/nope").starts_with("HTTP/1.1 404"));
        let r = get("/");
        assert!(r.starts_with("HTTP/1.1 200"));
        assert!(r.contains("/query/"));
    }

    #[test]
    fn non_get_is_405_with_allow_and_connection_close() {
        with_server(ServeCtx::telemetry(Instant::now()), |addr| {
            for method in ["POST", "PUT", "DELETE", "PATCH"] {
                let out = request(addr, &format!("{method} /metrics HTTP/1.1\r\nHost: x\r\n\r\n"));
                assert!(out.starts_with("HTTP/1.1 405"), "{method} got: {out}");
                assert!(out.contains("Allow: GET, HEAD"), "{method} missing Allow: {out}");
                assert!(out.contains("Connection: close"), "{method} must close: {out}");
            }
        });
    }

    #[test]
    fn head_omits_body_and_closes() {
        with_server(ServeCtx::telemetry(Instant::now()), |addr| {
            let out = request(addr, "HEAD /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
            assert!(out.starts_with("HTTP/1.1 200"), "got: {out}");
            assert!(
                out.trim_end().ends_with("Connection: close"),
                "HEAD must omit the body: {out}"
            );
        });
    }

    #[test]
    fn query_strings_are_ignored_in_telemetry_routing() {
        let r = get("/healthz?probe=1");
        assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
        assert!(r.contains("\"status\":\"ok\""));
    }

    #[test]
    fn query_routes_answer_503_without_a_store() {
        for path in ["/query/bfs?src=0", "/neighbors?v=0", "/degree?v=0", "/query/cc"] {
            let r = get(path);
            assert!(r.starts_with("HTTP/1.1 503"), "{path} got: {r}");
            assert!(r.contains("no store attached"), "{path} got: {r}");
        }
    }

    #[test]
    fn query_routes_serve_pinned_views() {
        with_server(store_ctx(), |addr| {
            let r = get_at(addr, "/degree?v=0");
            assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
            assert!(r.contains("\"degree\":2"), "got: {r}");
            assert!(r.contains("\"epoch\":1"), "got: {r}");

            let r = get_at(addr, "/neighbors?v=0");
            assert!(r.contains("\"neighbors\":["), "got: {r}");
            assert!(r.contains("[1,5]") && r.contains("[2,7]"), "got: {r}");

            let r = get_at(addr, "/query/bfs?src=0");
            assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
            assert!(r.contains("\"reached\":3"), "got: {r}");
            assert!(r.contains("\"eccentricity\":1"), "got: {r}");

            let r = get_at(addr, "/query/sssp?src=0");
            assert!(r.contains("\"reached\":3"), "got: {r}");
            // 0→1→2 via weight 5+3=8 vs direct 7: SSSP takes 7.
            assert!(r.contains("\"max_distance\":7"), "got: {r}");

            let r = get_at(addr, "/query/cc");
            assert!(r.contains("\"components\":1"), "got: {r}");

            let r = get_at(addr, "/query/pagerank?iterations=5&top=2");
            assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
            assert!(r.contains("\"top\":[["), "got: {r}");
        });
    }

    #[test]
    fn bad_and_missing_params_are_400() {
        with_server(store_ctx(), |addr| {
            for path in ["/query/bfs", "/query/bfs?src=banana", "/neighbors", "/degree?v=-3"] {
                let r = get_at(addr, path);
                assert!(r.starts_with("HTTP/1.1 400"), "{path} got: {r}");
                assert!(r.contains("\"error\""), "{path} got: {r}");
            }
        });
    }

    #[test]
    fn healthz_reports_exact_counts_and_epoch_with_store() {
        with_server(store_ctx(), |addr| {
            let r = get_at(addr, "/healthz");
            assert!(r.contains("\"live_edges\":3"), "got: {r}");
            assert!(r.contains("\"epoch\":1"), "got: {r}");
        });
    }

    #[test]
    fn quitquitquit_stops_the_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = spawn(listener, ServeCtx::telemetry(Instant::now()), 2);
        let addr = handle.addr();
        let out = request(addr, "GET /quitquitquit HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200"), "got: {out}");
        assert!(out.contains("shutting down"), "got: {out}");
        // join (not shutdown): the quit route alone must stop the server.
        handle.join();
    }
}
