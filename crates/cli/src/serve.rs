//! A std-only HTTP/1.1 endpoint (no external crates): telemetry routes
//! answered from process-global observability state, plus — when a store
//! is attached — a query API served from epoch-pinned snapshot views.
//!
//! | route              | payload                                          |
//! |--------------------|--------------------------------------------------|
//! | `/metrics`         | the metric registry in Prometheus text format    |
//! | `/healthz`         | JSON liveness: build info, uptime, acked seq     |
//! | `/trace`           | the span-trace rings as Chrome trace-event JSON  |
//! | `/debug/vars`      | live server vars + per-endpoint RED windows      |
//! | `/debug/requests`  | ring of the last completed request summaries     |
//! | `/neighbors?v=`    | out-edges of one vertex                          |
//! | `/degree?v=`       | out-degree of one vertex                         |
//! | `/query/bfs?src=`  | BFS from a root: reached count, eccentricity     |
//! | `/query/sssp?src=` | SSSP from a root: reached count, max distance    |
//! | `/query/cc`        | connected components count                       |
//! | `/query/pagerank`  | top-k PageRank (`?iterations=&top=`)             |
//! | `/quitquitquit`    | graceful shutdown (loopback clients only)        |
//!
//! Requests are handled by a small worker pool so a slow analytics query
//! (BFS over a large graph) does not block a `/healthz` probe. Every
//! query pins an epoch view ([`ParallelTinker::pin_view`]) instead of
//! draining the ingest pipeline: the writer keeps applying batches while
//! readers traverse a consistent acked-batch-boundary snapshot. Telemetry
//! routes read lock-free global state and never touch the store at all.
//!
//! # Request-scoped observability
//!
//! Every request is minted a process-unique `RequestId`, echoed in the
//! `X-Request-Id` response header. The id rides the thread context
//! ([`trace::set_thread_ctx`]) for the duration of the request, so the
//! trace spans recorded underneath it — `serve_request`, `epoch_pin`,
//! `engine_process`/`engine_apply`, `serve_serialize` — all carry the id
//! as their `args.v` payload: grep the `/trace` dump for one id and you
//! have that request's full timeline. On top of that the server keeps
//! per-endpoint RED stats (request/error counters plus a sliding-window
//! latency histogram, surfaced with p50/p95/p99 at `/debug/vars`), a ring
//! of completed request summaries (`/debug/requests`), and a
//! threshold-gated slow-query log record with a per-phase breakdown
//! (queue-wait / pin / engine / serialize) in the structured key=value
//! format of [`gtinker_core::log`].
//!
//! # HTTP support
//!
//! Deliberately minimal: `GET`/`HEAD` only (anything else draws `405`
//! with an `Allow` header and closes), request bodies ignored. A client
//! that sends `Connection: keep-alive` may reuse the connection for up to
//! [`MAX_KEEPALIVE_REQUESTS`] requests with a [`KEEPALIVE_IDLE`] idle
//! timeout between them; everyone else gets the classic
//! one-request-per-connection `Connection: close` behaviour. That is
//! enough for `curl`, Prometheus scrapes, and Perfetto downloads, and
//! keeps the whole server dependency-free and small enough to audit.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gtinker_core::log;
use gtinker_core::metrics::{Counter, WindowedHistogram};
use gtinker_core::trace::{self, SpanId};
use gtinker_core::{ParallelTinker, StoreView};
use gtinker_engine::{
    algorithms::{Bfs, Cc, PageRank, Sssp},
    Engine, ModePolicy,
};

/// Route catalogue; each entry owns one [`EndpointStats`] slot (the extra
/// trailing slot aggregates unmatched paths as `other`).
const ROUTES: &[&str] = &[
    "/healthz",
    "/metrics",
    "/trace",
    "/debug/vars",
    "/debug/requests",
    "/neighbors",
    "/degree",
    "/query/bfs",
    "/query/sssp",
    "/query/cc",
    "/query/pagerank",
];

/// Default number of request-worker threads.
pub const DEFAULT_WORKERS: usize = 4;

/// Per-connection socket timeout: a client that stalls mid-request (or
/// never reads the response) cannot wedge a worker forever.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Idle timeout between requests on a kept-alive connection (shorter than
/// [`IO_TIMEOUT`]: an idle client holds no interesting state).
const KEEPALIVE_IDLE: Duration = Duration::from_secs(5);

/// Requests served on one connection before the server forces a close (a
/// fairness valve: one chatty client cannot monopolise a worker forever).
pub const MAX_KEEPALIVE_REQUESTS: u64 = 100;

/// How many completed request summaries `/debug/requests` retains.
const REQUEST_RING: usize = 64;

/// Sliding-window rotation cadence for the per-endpoint latency
/// histograms; with [`gtinker_core::metrics::WINDOW_SLOTS`] baselines the
/// `/debug/vars` quantiles cover roughly the last minute.
const WINDOW_ROTATE_SECS: u64 = 10;

/// Crate version, baked in at compile time.
const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Git hash injected via the `GTINKER_GIT_HASH` env var at compile time
/// (ci.sh exports it); "unknown" for plain `cargo build`.
const GIT_HASH: &str = match option_env!("GTINKER_GIT_HASH") {
    Some(h) => h,
    None => "unknown",
};

/// Process-unique request id source (starts at 1 so 0 means "no request"
/// in the trace thread context).
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// RED (rate / errors / duration) stats for one endpoint.
struct EndpointStats {
    requests: Counter,
    errors: Counter,
    latency_ns: WindowedHistogram,
}

impl EndpointStats {
    const fn new() -> Self {
        EndpointStats {
            requests: Counter::new(),
            errors: Counter::new(),
            latency_ns: WindowedHistogram::new(),
        }
    }
}

/// Stats slot for paths not in [`ROUTES`] (404s, `/`, `/quitquitquit`).
const OTHER_ENDPOINT: usize = ROUTES.len();

static ENDPOINT_STATS: [EndpointStats; ROUTES.len() + 1] =
    [const { EndpointStats::new() }; ROUTES.len() + 1];

/// Uptime period (in [`WINDOW_ROTATE_SECS`] units) of the last window
/// rotation; requests compare-and-swap it forward so exactly one request
/// per period pays the rotation.
static LAST_ROTATION: AtomicU64 = AtomicU64::new(0);

fn endpoint_index(path: &str) -> usize {
    ROUTES.iter().position(|&r| r == path).unwrap_or(OTHER_ENDPOINT)
}

fn endpoint_name(i: usize) -> &'static str {
    ROUTES.get(i).copied().unwrap_or("other")
}

/// Rotates every endpoint's latency window when a new
/// [`WINDOW_ROTATE_SECS`] period of uptime has begun. Driven lazily from
/// the request path (no timer thread); one CAS winner per period rotates.
fn maybe_rotate_windows(ctx: &ServeCtx) {
    let period = ctx.start.elapsed().as_secs() / WINDOW_ROTATE_SECS;
    let prev = LAST_ROTATION.load(Ordering::Relaxed);
    if period > prev
        && LAST_ROTATION
            .compare_exchange(prev, period, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    {
        for s in &ENDPOINT_STATS {
            s.latency_ns.rotate();
        }
    }
}

/// One completed request, as shown by `/debug/requests`.
#[derive(Debug, Clone)]
struct RequestSummary {
    id: u64,
    path: String,
    status: u16,
    queue_us: u64,
    pin_us: u64,
    engine_us: u64,
    serialize_us: u64,
    total_us: u64,
}

/// Shared server state: the optional store queries run against, the
/// process start time for uptime, the shutdown latch, the slow-query
/// threshold, and the completed-request ring.
pub struct ServeCtx {
    store: Option<Arc<ParallelTinker>>,
    start: Instant,
    shutdown: AtomicBool,
    /// Requests slower than this (total, ns) emit a warn-level slow-query
    /// record; `u64::MAX` disables the log.
    slow_query_ns: u64,
    completed: Mutex<VecDeque<RequestSummary>>,
}

impl ServeCtx {
    /// Telemetry-only context (no store: query routes answer 503).
    #[cfg(test)]
    pub fn telemetry(start: Instant) -> Arc<Self> {
        Self::with_options(start, None, None)
    }

    /// Builds a context: an optional store queries run against (`None`
    /// serves telemetry only; a store must be built with views,
    /// [`ParallelTinker::new_with_views`]) plus the slow-query log
    /// threshold in milliseconds (`None` disables; `Some(0)` logs every
    /// request — handy for smoke tests).
    pub fn with_options(
        start: Instant,
        store: Option<Arc<ParallelTinker>>,
        slow_query_ms: Option<u64>,
    ) -> Arc<Self> {
        Arc::new(ServeCtx {
            store,
            start,
            shutdown: AtomicBool::new(false),
            slow_query_ns: slow_query_ms.map(|ms| ms.saturating_mul(1_000_000)).unwrap_or(u64::MAX),
            completed: Mutex::new(VecDeque::new()),
        })
    }

    /// Whether graceful shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn push_summary(&self, s: RequestSummary) {
        let mut ring = self.completed.lock().expect("request ring poisoned");
        ring.push_back(s);
        while ring.len() > REQUEST_RING {
            ring.pop_front();
        }
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and announces the
/// resolved address on stdout — line-flushed, so scripts that pipe the
/// output can discover the port before the first request.
pub fn bind(addr: &str) -> Result<TcpListener, String> {
    let listener =
        TcpListener::bind(addr).map_err(|e| format!("serve: cannot bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| format!("serve: {e}"))?;
    println!("serving on http://{local} (/healthz /metrics /trace /debug/* /query/*)");
    std::io::stdout().flush().ok();
    Ok(listener)
}

/// A running server: the acceptor thread plus its shared context.
/// Dropping the handle does NOT stop the server; call
/// [`shutdown`](Self::shutdown) or [`join`](Self::join).
pub struct ServeHandle {
    addr: SocketAddr,
    ctx: Arc<ServeCtx>,
    thread: JoinHandle<()>,
}

impl ServeHandle {
    /// The bound address (for self-connects and log lines).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the acceptor + workers to exit.
    pub fn shutdown(self) {
        self.ctx.shutdown.store(true, Ordering::Release);
        // Wake the acceptor if it is parked in accept().
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }

    /// Waits until the server shuts down on its own (`/quitquitquit`).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// Starts the server on a background thread and returns immediately.
pub fn spawn(listener: TcpListener, ctx: Arc<ServeCtx>, workers: usize) -> ServeHandle {
    let addr = listener.local_addr().expect("bound listener has an address");
    let actx = Arc::clone(&ctx);
    let thread = std::thread::Builder::new()
        .name("gtinker-serve".into())
        .spawn(move || serve_until_shutdown(listener, actx, workers))
        .expect("spawn serve acceptor");
    ServeHandle { addr, ctx, thread }
}

/// A freshly accepted connection, stamped so the first request can report
/// its queue wait (accept to worker pickup).
struct Conn {
    stream: TcpStream,
    accepted: Instant,
}

/// Accept loop: distributes connections to `workers` handler threads and
/// serves until shutdown is requested (`/quitquitquit` from a loopback
/// client, or [`ServeHandle::shutdown`]). Per-connection errors are
/// logged and skipped — a dropped scrape must not kill the server.
pub fn serve_until_shutdown(listener: TcpListener, ctx: Arc<ServeCtx>, workers: usize) {
    let addr = listener.local_addr().expect("bound listener has an address");
    let (tx, rx) = mpsc::channel::<Conn>();
    let rx = Arc::new(Mutex::new(rx));
    let mut handles = Vec::with_capacity(workers.max(1));
    for w in 0..workers.max(1) {
        let rx = Arc::clone(&rx);
        let ctx = Arc::clone(&ctx);
        let handle = std::thread::Builder::new()
            .name(format!("gtinker-http-{w}"))
            .spawn(move || worker_loop(rx, ctx, addr))
            .expect("spawn http worker");
        handles.push(handle);
    }
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if ctx.is_shutdown() {
                    break;
                }
                // A send can only fail if every worker panicked; drop the
                // connection rather than poisoning the acceptor.
                if tx.send(Conn { stream, accepted: Instant::now() }).is_err() {
                    break;
                }
            }
            Err(e) => {
                if ctx.is_shutdown() {
                    break;
                }
                log::error("serve").msg("accept failed").field_str("error", &e.to_string()).emit();
            }
        }
    }
    drop(tx);
    for h in handles {
        let _ = h.join();
    }
}

/// Request-worker body: pull connections off the shared queue until the
/// acceptor hangs up.
fn worker_loop(rx: Arc<Mutex<Receiver<Conn>>>, ctx: Arc<ServeCtx>, addr: SocketAddr) {
    loop {
        let conn = match rx.lock().expect("serve queue poisoned").recv() {
            Ok(c) => c,
            Err(_) => return,
        };
        if let Err(e) = handle_connection(conn, &ctx, addr) {
            log::error("serve").msg("connection failed").field_str("error", &e.to_string()).emit();
        }
    }
}

/// Serves one connection: a single request/response by default, or a
/// bounded request loop when the client asked for keep-alive.
fn handle_connection(conn: Conn, ctx: &ServeCtx, addr: SocketAddr) -> std::io::Result<()> {
    let Conn { stream, accepted } = conn;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let peer = stream.peer_addr().ok();
    let mut reader = BufReader::new(stream);
    let mut served: u64 = 0;
    // Only the first request on a connection waited in the accept queue.
    let mut queue_wait = accepted.elapsed();
    let result = loop {
        let mut request_line = String::new();
        match reader.read_line(&mut request_line) {
            Ok(0) => break Ok(()), // client closed between requests
            Ok(_) => {}
            // An expired keep-alive idle timeout is a normal close.
            Err(e)
                if served > 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                break Ok(());
            }
            Err(e) => break Err(e),
        }
        if request_line.trim().is_empty() {
            break Ok(());
        }
        // Drain the remaining headers, noting the Connection request.
        let mut wants_keep_alive = false;
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line)? <= 2 {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                if k.eq_ignore_ascii_case("connection") {
                    wants_keep_alive = v.trim().eq_ignore_ascii_case("keep-alive");
                }
            }
        }
        served += 1;
        match handle_request(
            reader.get_mut(),
            ctx,
            addr,
            peer,
            &request_line,
            wants_keep_alive && served < MAX_KEEPALIVE_REQUESTS,
            queue_wait,
        ) {
            Ok(true) => {
                queue_wait = Duration::ZERO;
                // Between kept-alive requests, idle out faster than the
                // in-request IO timeout.
                reader.get_ref().set_read_timeout(Some(KEEPALIVE_IDLE))?;
            }
            Ok(false) => break Ok(()),
            Err(e) => break Err(e),
        }
    };
    log::debug("serve")
        .msg("connection closed")
        .field("requests", served)
        .field_str("peer", &peer.map(|p| p.to_string()).unwrap_or_default())
        .emit();
    result
}

/// Handles one already-parsed-headers request on `stream`. Returns
/// whether the connection should stay open for another request.
#[allow(clippy::too_many_arguments)]
fn handle_request(
    stream: &mut TcpStream,
    ctx: &ServeCtx,
    addr: SocketAddr,
    peer: Option<SocketAddr>,
    request_line: &str,
    keep_alive_wanted: bool,
    queue_wait: Duration,
) -> std::io::Result<bool> {
    let started = Instant::now();
    let id = NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
    // From here until the response is written, every trace span recorded
    // on this thread (pin, engine, serialize, ...) carries this id.
    trace::set_thread_ctx(id);
    trace::instant(SpanId::ServeRequest, id);

    let mut words = request_line.split_whitespace();
    let method = words.next().unwrap_or("");
    let target = words.next().unwrap_or("");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let head_only = method == "HEAD";
    let ep = endpoint_index(path);
    ENDPOINT_STATS[ep].requests.inc();
    maybe_rotate_windows(ctx);

    let mut shutdown_after = false;
    // Non-GET methods may carry a body this server never parses, so the
    // connection position would be unknown afterwards: always close.
    let mut keep_alive = keep_alive_wanted && !ctx.is_shutdown() && (head_only || method == "GET");
    let (status, ctype, body, pin_ns) = if !head_only && method != "GET" {
        keep_alive = false;
        (405, "text/plain; charset=utf-8", "method not allowed\n".to_string(), 0)
    } else if path == "/quitquitquit" {
        keep_alive = false;
        // Shutdown is local-only: refuse anything not from loopback.
        if peer.is_some_and(|p| p.ip().is_loopback()) {
            shutdown_after = true;
            (200, "text/plain; charset=utf-8", "shutting down\n".to_string(), 0)
        } else {
            (403, "text/plain; charset=utf-8", "shutdown is loopback-only\n".to_string(), 0)
        }
    } else {
        route(path, query, ctx)
    };
    // Handler time minus the pin wait = the engine/render phase.
    let engine_ns = (started.elapsed().as_nanos() as u64).saturating_sub(pin_ns);

    let serialize_start = Instant::now();
    let write_result = {
        let _s = trace::span_arg(SpanId::ServeSerialize, id);
        respond(stream, status, ctype, &body, head_only, id, keep_alive)
    };
    let serialize_ns = serialize_start.elapsed().as_nanos() as u64;
    let queue_ns = queue_wait.as_nanos() as u64;
    let total_ns = queue_ns + started.elapsed().as_nanos() as u64;

    ENDPOINT_STATS[ep].latency_ns.record(total_ns);
    if status >= 400 {
        // RED "E": count it per endpoint and attribute it in the log.
        ENDPOINT_STATS[ep].errors.inc();
        let level = if status >= 500 { log::Level::Error } else { log::Level::Warn };
        log::record(level, "serve")
            .msg("request failed")
            .field("id", id)
            .field_str("route", path)
            .field("status", status)
            .emit();
    }
    if total_ns >= ctx.slow_query_ns {
        log::warn("serve")
            .msg("slow query")
            .field("id", id)
            .field_str("route", path)
            .field("status", status)
            .field("queue_us", queue_ns / 1_000)
            .field("pin_us", pin_ns / 1_000)
            .field("engine_us", engine_ns / 1_000)
            .field("serialize_us", serialize_ns / 1_000)
            .field("total_us", total_ns / 1_000)
            .emit();
    }
    log::info("serve")
        .msg("request")
        .field("id", id)
        .field_str("route", path)
        .field("status", status)
        .field("total_us", total_ns / 1_000)
        .emit();
    ctx.push_summary(RequestSummary {
        id,
        path: path.to_string(),
        status,
        queue_us: queue_ns / 1_000,
        pin_us: pin_ns / 1_000,
        engine_us: engine_ns / 1_000,
        serialize_us: serialize_ns / 1_000,
        total_us: total_ns / 1_000,
    });
    trace::set_thread_ctx(0);

    if shutdown_after {
        ctx.shutdown.store(true, Ordering::Release);
        // Wake the acceptor so it notices the latch.
        let _ = TcpStream::connect(addr);
    }
    write_result.map(|()| keep_alive && !shutdown_after)
}

/// Computes the response for one path. The fourth element is the epoch
/// pin wait in nanoseconds (nonzero only for store-backed routes), kept
/// separate so the slow-query log can break the phases apart.
fn route(path: &str, query: &str, ctx: &ServeCtx) -> (u16, &'static str, String, u64) {
    match path {
        "/healthz" => (200, "application/json", healthz_json(ctx), 0),
        "/metrics" => (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            gtinker_core::metrics::global().snapshot().to_prometheus(),
            0,
        ),
        "/trace" => (200, "application/json", trace::dump().to_chrome_json(), 0),
        "/debug/vars" => (200, "application/json", debug_vars_json(ctx), 0),
        "/debug/requests" => (200, "application/json", debug_requests_json(ctx), 0),
        "/neighbors" | "/degree" | "/query/bfs" | "/query/sssp" | "/query/cc"
        | "/query/pagerank" => query_route(path, query, ctx),
        "/" => (
            200,
            "text/plain; charset=utf-8",
            "gtinker: /healthz /metrics /trace /debug/vars /debug/requests \
             /neighbors?v= /degree?v= /query/{bfs,sssp}?src= /query/cc /query/pagerank\n"
                .to_string(),
            0,
        ),
        _ => (404, "text/plain; charset=utf-8", "not found (try / for the route list)\n".into(), 0),
    }
}

/// Dispatches one store-backed query against a freshly pinned epoch view.
fn query_route(path: &str, query: &str, ctx: &ServeCtx) -> (u16, &'static str, String, u64) {
    let Some(store) = ctx.store.as_deref() else {
        return (503, "application/json", "{\"error\":\"no store attached\"}\n".into(), 0);
    };
    let pin_start = Instant::now();
    let Some(view) = store.pin_view() else {
        return (503, "application/json", "{\"error\":\"store built without views\"}\n".into(), 0);
    };
    let pin_ns = pin_start.elapsed().as_nanos() as u64;
    let m = gtinker_core::metrics::global();
    m.serve_queries.inc();
    let t = gtinker_core::metrics::timer();
    let out = match path {
        "/neighbors" => neighbors_json(&view, query),
        "/degree" => degree_json(&view, query),
        "/query/bfs" => bfs_json(&view, query),
        "/query/sssp" => sssp_json(&view, query),
        "/query/cc" => cc_json(&view),
        "/query/pagerank" => pagerank_json(&view, query),
        _ => unreachable!("query_route called for non-query path"),
    };
    m.serve_query_ns.record_since(t);
    match out {
        Ok(body) => (200, "application/json", body, pin_ns),
        Err(msg) => (400, "application/json", format!("{{\"error\":\"{msg}\"}}\n"), pin_ns),
    }
}

/// `?key=value` lookup in a raw query string.
fn param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|kv| match kv.split_once('=') {
        Some((k, v)) if k == key => Some(v),
        _ => None,
    })
}

fn num_param<T: std::str::FromStr>(query: &str, key: &str, default: T) -> Result<T, String> {
    match param(query, key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad {key}: '{v}'")),
    }
}

fn required_u32(query: &str, key: &str) -> Result<u32, String> {
    param(query, key)
        .ok_or_else(|| format!("missing ?{key}="))?
        .parse()
        .map_err(|_| format!("bad {key}"))
}

fn neighbors_json(view: &StoreView<'_>, query: &str) -> Result<String, String> {
    let v = required_u32(query, "v")?;
    let mut out = Vec::new();
    view.for_each_out_edge(v, |d, w| out.push(format!("[{d},{w}]")));
    Ok(format!(
        "{{\"v\":{v},\"epoch\":{},\"degree\":{},\"neighbors\":[{}]}}\n",
        view.epoch(),
        out.len(),
        out.join(",")
    ))
}

fn degree_json(view: &StoreView<'_>, query: &str) -> Result<String, String> {
    let v = required_u32(query, "v")?;
    Ok(format!("{{\"v\":{v},\"epoch\":{},\"degree\":{}}}\n", view.epoch(), view.out_degree(v)))
}

fn bfs_json(view: &StoreView<'_>, query: &str) -> Result<String, String> {
    let src = required_u32(query, "src")?;
    let mut e = Engine::new(Bfs::new(src), ModePolicy::hybrid());
    let r = e.run_from_roots(view);
    let reached = e.values().iter().filter(|&&v| v != u32::MAX).count();
    let ecc = e.values().iter().filter(|&&v| v != u32::MAX).max().copied().unwrap_or(0);
    Ok(format!(
        "{{\"src\":{src},\"epoch\":{},\"reached\":{reached},\"eccentricity\":{ecc},\
         \"iterations\":{},\"edges_processed\":{}}}\n",
        view.epoch(),
        r.num_iterations(),
        r.total_edges_processed,
    ))
}

fn sssp_json(view: &StoreView<'_>, query: &str) -> Result<String, String> {
    let src = required_u32(query, "src")?;
    let mut e = Engine::new(Sssp::new(src), ModePolicy::hybrid());
    let r = e.run_from_roots(view);
    let reached: Vec<u32> = e.values().iter().copied().filter(|&v| v != u32::MAX).collect();
    let max_dist = reached.iter().max().copied().unwrap_or(0);
    Ok(format!(
        "{{\"src\":{src},\"epoch\":{},\"reached\":{},\"max_distance\":{max_dist},\
         \"iterations\":{}}}\n",
        view.epoch(),
        reached.len(),
        r.num_iterations(),
    ))
}

fn cc_json(view: &StoreView<'_>) -> Result<String, String> {
    let mut e = Engine::new(Cc::new(), ModePolicy::hybrid());
    let r = e.run_from_roots(view);
    let mut labels: Vec<u32> = e.values().to_vec();
    labels.sort_unstable();
    labels.dedup();
    // Isolated label space includes never-touched vertices (u32::MAX).
    let components = labels.iter().filter(|&&l| l != u32::MAX).count();
    Ok(format!(
        "{{\"epoch\":{},\"components\":{components},\"vertices\":{},\"iterations\":{}}}\n",
        view.epoch(),
        e.values().len(),
        r.num_iterations(),
    ))
}

fn pagerank_json(view: &StoreView<'_>, query: &str) -> Result<String, String> {
    let iterations: usize = num_param(query, "iterations", 10)?;
    let k: usize = num_param(query, "top", 10)?;
    let pr = PageRank::new(0.85, iterations);
    let top = pr.top_k(view, k);
    let ranks: Vec<String> = top.iter().map(|(v, score)| format!("[{v},{score:.6}]")).collect();
    Ok(format!(
        "{{\"epoch\":{},\"iterations\":{iterations},\"top\":[{}]}}\n",
        view.epoch(),
        ranks.join(",")
    ))
}

/// Escapes a string for embedding in a JSON string literal.
fn json_str(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// Liveness JSON. With a store attached, live edges and the epoch come
/// from a pinned view (exact, barrier-free). Without one, live edges fall
/// back to the hot-path counters (inserts − deletes) — NOT `num_edges()`,
/// which is a pipeline barrier on a pooled store, and a health probe must
/// never stall ingest. Build info, acked seq and backlog depth are plain
/// loads, preserving the barrier-free guarantee.
fn healthz_json(ctx: &ServeCtx) -> String {
    let m = gtinker_core::metrics::global();
    let (live_edges, epoch) = match ctx.store.as_deref().and_then(|s| s.pin_view()) {
        Some(view) => (view.num_edges(), view.epoch() as i64),
        None => (m.tinker_inserts.get().saturating_sub(m.tinker_deletes.get()), -1),
    };
    format!(
        "{{\"status\":\"ok\",\"version\":\"{}\",\"git_hash\":\"{}\",\"uptime_s\":{:.3},\
         \"live_edges\":{},\"live_vertices\":{},\"epoch\":{},\"acked_batches\":{},\
         \"backlog_depth\":{},\"trace_enabled\":{}}}\n",
        json_str(VERSION),
        json_str(GIT_HASH),
        ctx.start.elapsed().as_secs_f64(),
        live_edges,
        m.sgh_sources.get().max(0),
        epoch,
        ctx.store.as_deref().map(|s| s.acked_batches()).unwrap_or(0),
        m.epoch_backlog_depth.get().max(0),
        trace::enabled(),
    )
}

/// Live server variables: build info, ingest progress, pin/backlog state,
/// and the per-endpoint RED windows (sliding-window p50/p95/p99 over the
/// last ~[`WINDOW_ROTATE_SECS`]×[`gtinker_core::metrics::WINDOW_SLOTS`]
/// seconds). Everything here is atomic loads plus per-endpoint ring
/// locks; no store barrier, no pin.
fn debug_vars_json(ctx: &ServeCtx) -> String {
    let m = gtinker_core::metrics::global();
    let store = ctx.store.as_deref();
    let mut endpoints = Vec::with_capacity(ENDPOINT_STATS.len());
    for (i, s) in ENDPOINT_STATS.iter().enumerate() {
        let w = s.latency_ns.window();
        let (p50, p95, p99) = w.quantiles();
        endpoints.push(format!(
            "\"{}\":{{\"requests\":{},\"errors\":{},\"window\":{{\"count\":{},\
             \"p50_ns\":{p50},\"p95_ns\":{p95},\"p99_ns\":{p99}}}}}",
            json_str(endpoint_name(i)),
            s.requests.get(),
            s.errors.get(),
            w.count(),
        ));
    }
    format!(
        "{{\"version\":\"{}\",\"git_hash\":\"{}\",\"uptime_s\":{:.3},\
         \"acked_batches\":{},\"pending_batches\":{},\"backlog_depth\":{},\
         \"active_pins\":{},\"epoch_pins\":{},\"trace_enabled\":{},\"log_level\":\"{}\",\
         \"window_rotate_s\":{WINDOW_ROTATE_SECS},\"endpoints\":{{{}}}}}\n",
        json_str(VERSION),
        json_str(GIT_HASH),
        ctx.start.elapsed().as_secs_f64(),
        store.map(|s| s.acked_batches()).unwrap_or(0),
        store.map(|s| s.pending_batches()).unwrap_or(0),
        m.epoch_backlog_depth.get().max(0),
        m.epoch_active_pins.get().max(0),
        m.epoch_pins.get(),
        trace::enabled(),
        log::max_level().map(|l| l.name()).unwrap_or("off"),
        endpoints.join(","),
    )
}

/// The last-N completed request summaries, newest first.
fn debug_requests_json(ctx: &ServeCtx) -> String {
    let ring = ctx.completed.lock().expect("request ring poisoned");
    let rows: Vec<String> = ring
        .iter()
        .rev()
        .map(|r| {
            format!(
                "{{\"id\":{},\"route\":\"{}\",\"status\":{},\"queue_us\":{},\"pin_us\":{},\
                 \"engine_us\":{},\"serialize_us\":{},\"total_us\":{}}}",
                r.id,
                json_str(&r.path),
                r.status,
                r.queue_us,
                r.pin_us,
                r.engine_us,
                r.serialize_us,
                r.total_us,
            )
        })
        .collect();
    format!("{{\"count\":{},\"requests\":[{}]}}\n", rows.len(), rows.join(","))
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    ctype: &str,
    body: &str,
    head_only: bool,
    req_id: u64,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    // 405 advertises what IS allowed, per RFC 9110 §15.5.6.
    let allow = if status == 405 { "Allow: GET, HEAD\r\n" } else { "" };
    let conn = if keep_alive { "keep-alive" } else { "close" };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\n\
         Content-Length: {}\r\nX-Request-Id: {req_id}\r\n{allow}Connection: {conn}\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    if !head_only {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()
}

/// Serialises tests (across this crate's test binary) that toggle the
/// process-global trace flag or the log capture sink.
#[cfg(test)]
pub(crate) static OBS_TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use gtinker_types::{Edge, EdgeBatch};
    use std::io::Read;
    use std::net::TcpStream;

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        c.read_to_string(&mut out).unwrap();
        out
    }

    /// Spins up a full server (acceptor + workers), runs `f` against it,
    /// then shuts it down gracefully via the handle.
    fn with_server(ctx: Arc<ServeCtx>, f: impl FnOnce(SocketAddr)) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = spawn(listener, ctx, 2);
        let addr = handle.addr();
        f(addr);
        handle.shutdown();
    }

    fn get_at(addr: SocketAddr, path: &str) -> String {
        request(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
    }

    /// One telemetry-only round-trip.
    fn get(path: &str) -> String {
        let mut out = String::new();
        with_server(ServeCtx::telemetry(Instant::now()), |addr| out = get_at(addr, path));
        out
    }

    fn store_ctx() -> Arc<ServeCtx> {
        store_ctx_with(None)
    }

    fn store_ctx_with(slow_query_ms: Option<u64>) -> Arc<ServeCtx> {
        let store = ParallelTinker::new_with_views(Default::default(), 2).unwrap();
        store.apply_batch(&EdgeBatch::inserts(&[
            Edge::new(0, 1, 5),
            Edge::new(1, 2, 3),
            Edge::new(0, 2, 7),
        ]));
        ServeCtx::with_options(Instant::now(), Some(Arc::new(store)), slow_query_ms)
    }

    fn request_id(response: &str) -> u64 {
        response
            .lines()
            .find_map(|l| l.strip_prefix("X-Request-Id: "))
            .expect("response carries X-Request-Id")
            .trim()
            .parse()
            .expect("request id is decimal")
    }

    /// Reads one full HTTP response (headers + Content-Length body) off a
    /// possibly kept-alive connection.
    fn read_response(r: &mut BufReader<TcpStream>) -> String {
        let mut out = String::new();
        let mut len = 0usize;
        loop {
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            assert!(!line.is_empty(), "connection closed mid-response: {out}");
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                len = v.trim().parse().unwrap();
            }
            let done = line == "\r\n" || line == "\n";
            out.push_str(&line);
            if done {
                break;
            }
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body).unwrap();
        out.push_str(&String::from_utf8(body).unwrap());
        out
    }

    #[test]
    fn healthz_is_json_with_gauges_and_build_info() {
        let r = get("/healthz");
        assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
        assert!(r.contains("Content-Type: application/json"));
        assert!(r.contains("\"status\":\"ok\""));
        assert!(r.contains("\"live_edges\":"));
        assert!(r.contains("\"live_vertices\":"));
        assert!(r.contains("\"uptime_s\":"));
        assert!(r.contains(&format!("\"version\":\"{VERSION}\"")), "got: {r}");
        assert!(r.contains("\"git_hash\":\""), "got: {r}");
        assert!(r.contains("\"acked_batches\":"), "got: {r}");
        assert!(r.contains("\"backlog_depth\":"), "got: {r}");
    }

    #[test]
    fn metrics_renders_prometheus() {
        let r = get("/metrics");
        assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
        assert!(r.contains("gtinker_tinker_inserts"), "got: {r}");
    }

    #[test]
    fn trace_route_is_chrome_json() {
        let r = get("/trace");
        assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
        let body = r.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.starts_with("{\"displayTimeUnit\""), "got: {body}");
        assert!(body.contains("\"traceEvents\":["));
    }

    #[test]
    fn every_response_carries_a_request_id() {
        with_server(ServeCtx::telemetry(Instant::now()), |addr| {
            let a = request_id(&get_at(addr, "/healthz"));
            let b = request_id(&get_at(addr, "/metrics"));
            let c = request_id(&get_at(addr, "/nope"));
            assert!(a > 0 && b > 0 && c > 0);
            assert!(a != b && b != c && a != c, "ids must be unique: {a} {b} {c}");
        });
    }

    #[test]
    fn debug_vars_reports_endpoint_windows() {
        with_server(store_ctx(), |addr| {
            // Generate traffic: two queries and one error.
            get_at(addr, "/degree?v=0");
            get_at(addr, "/degree?v=0");
            get_at(addr, "/query/bfs");
            let r = get_at(addr, "/debug/vars");
            assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
            assert!(r.contains(&format!("\"version\":\"{VERSION}\"")), "got: {r}");
            assert!(r.contains("\"acked_batches\":1"), "got: {r}");
            assert!(r.contains("\"endpoints\":{"), "got: {r}");
            assert!(r.contains("\"/degree\":{\"requests\":"), "got: {r}");
            assert!(r.contains("\"p50_ns\":"), "got: {r}");
            assert!(r.contains("\"p95_ns\":"), "got: {r}");
            assert!(r.contains("\"p99_ns\":"), "got: {r}");
            // /query/bfs without ?src= is a 400: the error counter moved.
            assert!(r.contains("\"/query/bfs\":{\"requests\":"), "got: {r}");
            let bfs = r.split("\"/query/bfs\":").nth(1).unwrap();
            let errors: u64 = bfs
                .split("\"errors\":")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(errors >= 1, "bad bfs request must count as an error: {r}");
        });
    }

    #[test]
    fn debug_requests_lists_completed_summaries() {
        with_server(store_ctx(), |addr| {
            let first = request_id(&get_at(addr, "/degree?v=0"));
            let r = get_at(addr, "/debug/requests");
            assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
            assert!(r.contains(&format!("\"id\":{first}")), "got: {r}");
            assert!(r.contains("\"route\":\"/degree\""), "got: {r}");
            assert!(r.contains("\"queue_us\":"), "got: {r}");
            assert!(r.contains("\"pin_us\":"), "got: {r}");
            assert!(r.contains("\"engine_us\":"), "got: {r}");
            assert!(r.contains("\"serialize_us\":"), "got: {r}");
        });
    }

    #[test]
    fn unknown_route_is_404_and_root_lists_routes() {
        assert!(get("/nope").starts_with("HTTP/1.1 404"));
        let r = get("/");
        assert!(r.starts_with("HTTP/1.1 200"));
        assert!(r.contains("/query/"));
        assert!(r.contains("/debug/vars"));
    }

    #[test]
    fn non_get_is_405_with_allow_and_connection_close() {
        with_server(ServeCtx::telemetry(Instant::now()), |addr| {
            for method in ["POST", "PUT", "DELETE", "PATCH"] {
                let out = request(addr, &format!("{method} /metrics HTTP/1.1\r\nHost: x\r\n\r\n"));
                assert!(out.starts_with("HTTP/1.1 405"), "{method} got: {out}");
                assert!(out.contains("Allow: GET, HEAD"), "{method} missing Allow: {out}");
                assert!(out.contains("Connection: close"), "{method} must close: {out}");
            }
        });
    }

    #[test]
    fn head_omits_body_and_closes() {
        with_server(ServeCtx::telemetry(Instant::now()), |addr| {
            let out = request(addr, "HEAD /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
            assert!(out.starts_with("HTTP/1.1 200"), "got: {out}");
            assert!(
                out.trim_end().ends_with("Connection: close"),
                "HEAD must omit the body: {out}"
            );
        });
    }

    #[test]
    fn keep_alive_reuses_the_connection() {
        with_server(store_ctx(), |addr| {
            let c = TcpStream::connect(addr).unwrap();
            let mut w = c.try_clone().unwrap();
            let mut r = BufReader::new(c);
            w.write_all(b"GET /degree?v=0 HTTP/1.1\r\nHost: x\r\nConnection: keep-alive\r\n\r\n")
                .unwrap();
            let first = read_response(&mut r);
            assert!(first.starts_with("HTTP/1.1 200"), "got: {first}");
            assert!(first.contains("Connection: keep-alive"), "got: {first}");
            assert!(first.contains("\"degree\":2"), "got: {first}");
            // Same socket, second request: without keep-alive it closes.
            w.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let second = read_response(&mut r);
            assert!(second.starts_with("HTTP/1.1 200"), "reuse failed: {second}");
            assert!(second.contains("Connection: close"), "got: {second}");
            assert!(second.contains("\"status\":\"ok\""), "got: {second}");
            assert!(
                request_id(&second) > request_id(&first),
                "each request on the connection gets its own id"
            );
            // The server closed after the non-keep-alive response.
            let mut rest = String::new();
            r.read_to_string(&mut rest).unwrap();
            assert!(rest.is_empty(), "expected EOF, got: {rest}");
        });
    }

    #[test]
    fn slow_query_log_fires_above_threshold_and_stays_silent_below() {
        let _g = OBS_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        if !log::enabled(log::Level::Warn) {
            return; // log feature compiled out
        }
        // Threshold 0: every request is "slow" and must produce a record
        // with the full phase breakdown.
        log::set_capture(true);
        with_server(store_ctx_with(Some(0)), |addr| {
            let r = get_at(addr, "/query/bfs?src=0");
            assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
            let id = request_id(&r);
            let lines = log::drain_capture();
            let slow: Vec<&String> =
                lines.iter().filter(|l| l.contains("msg=\"slow query\"")).collect();
            assert!(!slow.is_empty(), "expected a slow-query record, got: {lines:?}");
            let line = slow
                .iter()
                .find(|l| l.contains(&format!(" id={id} ")))
                .unwrap_or_else(|| panic!("no slow-query record for id {id} in {slow:?}"));
            for key in ["queue_us=", "pin_us=", "engine_us=", "serialize_us=", "total_us="] {
                assert!(line.contains(key), "missing {key} in: {line}");
            }
            assert!(line.contains("route=\"/query/bfs\""), "got: {line}");
        });
        // Threshold far above anything local: silent.
        log::drain_capture();
        with_server(store_ctx_with(Some(3_600_000)), |addr| {
            let r = get_at(addr, "/query/bfs?src=0");
            assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
            let lines = log::drain_capture();
            assert!(
                !lines.iter().any(|l| l.contains("msg=\"slow query\"")),
                "sub-threshold request must not log: {lines:?}"
            );
        });
        log::set_capture(false);
    }

    #[test]
    fn request_errors_emit_structured_records_with_ids() {
        let _g = OBS_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        if !log::enabled(log::Level::Warn) {
            return; // log feature compiled out
        }
        log::set_capture(true);
        with_server(store_ctx(), |addr| {
            let r = get_at(addr, "/query/bfs?src=banana");
            assert!(r.starts_with("HTTP/1.1 400"), "got: {r}");
            let id = request_id(&r);
            let lines = log::drain_capture();
            let hit = lines.iter().find(|l| {
                l.contains("msg=\"request failed\"") && l.contains(&format!(" id={id} "))
            });
            assert!(hit.is_some(), "expected an error record for id {id}, got: {lines:?}");
            assert!(hit.unwrap().contains("status=400"), "got: {}", hit.unwrap());
        });
        log::set_capture(false);
    }

    #[test]
    fn request_id_locates_its_spans_in_the_trace_dump() {
        let _g = OBS_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        trace::set_enabled(true);
        if !trace::enabled() {
            return; // trace feature compiled out
        }
        let mut id = 0u64;
        with_server(store_ctx(), |addr| {
            let r = get_at(addr, "/query/bfs?src=0");
            assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
            id = request_id(&r);
        });
        trace::set_enabled(false);
        let d = trace::dump();
        let spans: std::collections::HashSet<SpanId> =
            d.events.iter().filter(|e| e.arg == id).map(|e| e.span).collect();
        for want in
            [SpanId::ServeRequest, SpanId::EpochPin, SpanId::EngineProcess, SpanId::ServeSerialize]
        {
            assert!(
                spans.contains(&want),
                "span {want:?} for request {id} missing from dump: {spans:?}"
            );
        }
    }

    #[test]
    fn query_strings_are_ignored_in_telemetry_routing() {
        let r = get("/healthz?probe=1");
        assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
        assert!(r.contains("\"status\":\"ok\""));
    }

    #[test]
    fn query_routes_answer_503_without_a_store() {
        for path in ["/query/bfs?src=0", "/neighbors?v=0", "/degree?v=0", "/query/cc"] {
            let r = get(path);
            assert!(r.starts_with("HTTP/1.1 503"), "{path} got: {r}");
            assert!(r.contains("no store attached"), "{path} got: {r}");
        }
    }

    #[test]
    fn query_routes_serve_pinned_views() {
        with_server(store_ctx(), |addr| {
            let r = get_at(addr, "/degree?v=0");
            assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
            assert!(r.contains("\"degree\":2"), "got: {r}");
            assert!(r.contains("\"epoch\":1"), "got: {r}");

            let r = get_at(addr, "/neighbors?v=0");
            assert!(r.contains("\"neighbors\":["), "got: {r}");
            assert!(r.contains("[1,5]") && r.contains("[2,7]"), "got: {r}");

            let r = get_at(addr, "/query/bfs?src=0");
            assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
            assert!(r.contains("\"reached\":3"), "got: {r}");
            assert!(r.contains("\"eccentricity\":1"), "got: {r}");

            let r = get_at(addr, "/query/sssp?src=0");
            assert!(r.contains("\"reached\":3"), "got: {r}");
            // 0→1→2 via weight 5+3=8 vs direct 7: SSSP takes 7.
            assert!(r.contains("\"max_distance\":7"), "got: {r}");

            let r = get_at(addr, "/query/cc");
            assert!(r.contains("\"components\":1"), "got: {r}");

            let r = get_at(addr, "/query/pagerank?iterations=5&top=2");
            assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
            assert!(r.contains("\"top\":[["), "got: {r}");
        });
    }

    #[test]
    fn bad_and_missing_params_are_400() {
        with_server(store_ctx(), |addr| {
            for path in ["/query/bfs", "/query/bfs?src=banana", "/neighbors", "/degree?v=-3"] {
                let r = get_at(addr, path);
                assert!(r.starts_with("HTTP/1.1 400"), "{path} got: {r}");
                assert!(r.contains("\"error\""), "{path} got: {r}");
            }
        });
    }

    #[test]
    fn healthz_reports_exact_counts_and_epoch_with_store() {
        with_server(store_ctx(), |addr| {
            let r = get_at(addr, "/healthz");
            assert!(r.contains("\"live_edges\":3"), "got: {r}");
            assert!(r.contains("\"epoch\":1"), "got: {r}");
            assert!(r.contains("\"acked_batches\":1"), "got: {r}");
        });
    }

    #[test]
    fn quitquitquit_stops_the_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = spawn(listener, ServeCtx::telemetry(Instant::now()), 2);
        let addr = handle.addr();
        let out = request(addr, "GET /quitquitquit HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200"), "got: {out}");
        assert!(out.contains("shutting down"), "got: {out}");
        // join (not shutdown): the quit route alone must stop the server.
        handle.join();
    }
}
