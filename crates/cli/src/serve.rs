//! A tiny std-only HTTP/1.1 telemetry endpoint (no external crates, no
//! thread pool): a blocking accept loop answering three read-only routes
//! from the process-global observability state.
//!
//! | route      | payload                                                |
//! |------------|--------------------------------------------------------|
//! | `/metrics` | the metric registry in Prometheus text format          |
//! | `/healthz` | JSON liveness: uptime plus live edge/vertex gauges     |
//! | `/trace`   | the span-trace rings as Chrome trace-event JSON        |
//!
//! The server exists to watch a run from outside — `gtinker serve` for a
//! recovered store, or `ingest --serve ADDR` for a live ingest — so every
//! route reads lock-free global state (relaxed counter loads, racy-tolerant
//! ring dumps) and never takes a pipeline barrier: scraping `/metrics`
//! during a pooled ingest cannot stall a shard worker.
//!
//! HTTP support is deliberately minimal: one request per connection
//! (`Connection: close`), request bodies ignored, `GET`/`HEAD` only. That
//! is enough for `curl`, Prometheus scrapes, and Perfetto downloads, and
//! keeps the whole server dependency-free and small enough to audit.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

use gtinker_core::trace::{self, SpanId};

/// Route catalogue, also used as the [`SpanId::ServeRequest`] payload so
/// traced servers show *which* endpoint was hit.
const ROUTES: &[&str] = &["/healthz", "/metrics", "/trace"];

/// Binds `addr` (use port 0 for an ephemeral port) and announces the
/// resolved address on stdout — line-flushed, so scripts that pipe the
/// output can discover the port before the first request.
pub fn bind(addr: &str) -> Result<TcpListener, String> {
    let listener =
        TcpListener::bind(addr).map_err(|e| format!("serve: cannot bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| format!("serve: {e}"))?;
    println!("serving on http://{local} (/healthz /metrics /trace)");
    std::io::stdout().flush().ok();
    Ok(listener)
}

/// Accept loop: serves until the process exits (or forever). Per-connection
/// errors are logged and skipped — a dropped scrape must not kill the
/// server.
pub fn serve_forever(listener: TcpListener, start: Instant) -> ! {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Err(e) = handle_connection(stream, start) {
                    eprintln!("serve: request failed: {e}");
                }
            }
            Err(e) => eprintln!("serve: accept failed: {e}"),
        }
    }
}

/// Answers exactly `n` requests, then returns (test harness entry point;
/// the production loop is [`serve_forever`]).
#[cfg(test)]
fn serve_n(listener: &TcpListener, start: Instant, n: usize) {
    for _ in 0..n {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Err(e) = handle_connection(stream, start) {
                    eprintln!("serve: request failed: {e}");
                }
            }
            Err(e) => eprintln!("serve: accept failed: {e}"),
        }
    }
}

/// Reads one request, writes one response, closes the connection.
fn handle_connection(stream: TcpStream, start: Instant) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the remaining headers so well-behaved clients see a clean
    // close instead of a reset mid-send.
    let mut line = String::new();
    while reader.read_line(&mut line)? > 2 {
        line.clear();
    }
    let mut stream = reader.into_inner();

    let mut words = request_line.split_whitespace();
    let method = words.next().unwrap_or("");
    let path = words.next().unwrap_or("").split('?').next().unwrap_or("");
    let head_only = method == "HEAD";
    if !head_only && method != "GET" {
        return respond(
            &mut stream,
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
            false,
        );
    }

    trace::instant(
        SpanId::ServeRequest,
        ROUTES.iter().position(|&r| r == path).map(|i| i as u64 + 1).unwrap_or(0),
    );
    let (status, ctype, body) = route(path, start);
    respond(&mut stream, status, ctype, &body, head_only)
}

/// Computes the response for one path (pure, easily testable).
fn route(path: &str, start: Instant) -> (u16, &'static str, String) {
    match path {
        "/healthz" => (200, "application/json", healthz_json(start)),
        "/metrics" => (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            gtinker_core::metrics::global().snapshot().to_prometheus(),
        ),
        "/trace" => (200, "application/json", trace::dump().to_chrome_json()),
        "/" => (
            200,
            "text/plain; charset=utf-8",
            "gtinker telemetry: /healthz /metrics /trace\n".to_string(),
        ),
        _ => {
            (404, "text/plain; charset=utf-8", "not found (try /healthz /metrics /trace)\n".into())
        }
    }
}

/// Liveness JSON. Live edges/vertices come straight from the hot-path
/// counters the workers bump in real time (inserts − deletes, and the SGH
/// new-source gauge), NOT from `num_edges()` — the latter is a pipeline
/// barrier on a pooled store, and a health probe must never stall ingest.
fn healthz_json(start: Instant) -> String {
    let m = gtinker_core::metrics::global();
    let live_edges = m.tinker_inserts.get().saturating_sub(m.tinker_deletes.get());
    format!(
        "{{\"status\":\"ok\",\"uptime_s\":{:.3},\"live_edges\":{},\"live_vertices\":{},\
         \"trace_enabled\":{}}}\n",
        start.elapsed().as_secs_f64(),
        live_edges,
        m.sgh_sources.get().max(0),
        trace::enabled(),
    )
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    ctype: &str,
    body: &str,
    head_only: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    if !head_only {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpStream;

    /// One raw round-trip against a single-request server thread.
    fn get(path: &str) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let start = Instant::now();
        let server = std::thread::spawn(move || serve_n(&listener, start, 1));
        let mut c = TcpStream::connect(addr).unwrap();
        write!(c, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        c.read_to_string(&mut out).unwrap();
        server.join().unwrap();
        out
    }

    #[test]
    fn healthz_is_json_with_gauges() {
        let r = get("/healthz");
        assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
        assert!(r.contains("Content-Type: application/json"));
        assert!(r.contains("\"status\":\"ok\""));
        assert!(r.contains("\"live_edges\":"));
        assert!(r.contains("\"live_vertices\":"));
        assert!(r.contains("\"uptime_s\":"));
    }

    #[test]
    fn metrics_renders_prometheus() {
        let r = get("/metrics");
        assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
        assert!(r.contains("gtinker_tinker_inserts"), "got: {r}");
    }

    #[test]
    fn trace_route_is_chrome_json() {
        let r = get("/trace");
        assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
        let body = r.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.starts_with("{\"displayTimeUnit\""), "got: {body}");
        assert!(body.contains("\"traceEvents\":["));
    }

    #[test]
    fn unknown_route_is_404_and_root_lists_routes() {
        assert!(get("/nope").starts_with("HTTP/1.1 404"));
        let r = get("/");
        assert!(r.starts_with("HTTP/1.1 200"));
        assert!(r.contains("/healthz /metrics /trace"));
    }

    #[test]
    fn post_is_rejected_head_omits_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let start = Instant::now();
        let server = std::thread::spawn(move || serve_n(&listener, start, 2));
        let mut c = TcpStream::connect(addr).unwrap();
        write!(c, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        c.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "got: {out}");
        let mut c = TcpStream::connect(addr).unwrap();
        write!(c, "HEAD /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        c.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200"), "got: {out}");
        assert!(out.trim_end().ends_with("Connection: close"), "HEAD must omit the body: {out}");
        server.join().unwrap();
    }

    #[test]
    fn query_strings_are_ignored_in_routing() {
        let r = get("/healthz?probe=1");
        assert!(r.starts_with("HTTP/1.1 200"), "got: {r}");
        assert!(r.contains("\"status\":\"ok\""));
    }
}
