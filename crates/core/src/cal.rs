//! The Coarse Adjacency List (CAL) EdgeblockArray.
//!
//! GraphTinker's second level of compaction (§III.B): a separate,
//! append-only copy of the live edges, organized like STINGER's adjacency
//! list *except* that several source vertices share an entry — source
//! vertices are partitioned into groups of `group_size` consecutive (dense)
//! ids, and each group owns a chain of fixed-size CAL blocks. Because
//! edges from different vertices of a group pack into the same blocks, the
//! representation stays dense even when individual degrees are small, and
//! full-processing analytics can stream it sequentially.
//!
//! Every edge in the main EdgeblockArray carries a [`CalPtr`] to its copy
//! here, so insert/update/delete reach the copy in O(1) — "this process of
//! updating the CAL EdgeblockArray does not involve traversing edges".
//! Deletion flags the copy invalid; slots are not reused (the paper's
//! semantics). [`GraphTinker::rebuild_cal`](crate::GraphTinker) can be used
//! to re-compact a CAL that has accumulated many invalid slots.

use gtinker_types::{VertexId, Weight, NIL_U32};

/// Packed pointer to a CAL record: block index in the high bits, slot within
/// the block in the low bits.
pub type CalPtr = u32;

/// One edge copy in the CAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalRecord {
    /// Original source vertex id (kept per-record because edges of several
    /// vertices share a block).
    pub src: VertexId,
    /// Destination vertex id.
    pub dst: VertexId,
    /// Edge weight.
    pub weight: Weight,
    /// Whether this copy is live; deletion flips it to `false`.
    pub valid: bool,
}

const DEAD: CalRecord = CalRecord { src: 0, dst: 0, weight: 0, valid: false };

/// The CAL EdgeblockArray: per-group chains of fixed-size record blocks.
#[derive(Debug, Clone)]
pub struct CalArray {
    /// Record arena; block `b` occupies `[b*block_size, (b+1)*block_size)`.
    records: Vec<CalRecord>,
    /// Next block in a group's chain, per block.
    next_block: Vec<u32>,
    /// Occupied slots per block (records written, valid or not).
    fill: Vec<u32>,
    /// First block of each group's chain (the paper's Logical Vertex Array,
    /// at group granularity).
    group_head: Vec<u32>,
    /// Last block of each group's chain, where appends go.
    group_tail: Vec<u32>,
    block_size: usize,
    group_size: usize,
    slot_bits: u32,
    live: u64,
}

impl CalArray {
    /// Creates an empty CAL with the given group size (source vertices per
    /// group) and block size (records per block).
    pub fn new(group_size: usize, block_size: usize) -> Self {
        assert!(group_size > 0 && block_size > 0);
        let slot_bits = usize::BITS - (block_size - 1).leading_zeros().min(usize::BITS - 1);
        let slot_bits = slot_bits.max(1);
        CalArray {
            records: Vec::new(),
            next_block: Vec::new(),
            fill: Vec::new(),
            group_head: Vec::new(),
            group_tail: Vec::new(),
            block_size,
            group_size,
            slot_bits,
            live: 0,
        }
    }

    /// Number of live (valid) edge copies.
    #[inline]
    pub fn num_live(&self) -> u64 {
        self.live
    }

    /// Number of allocated CAL blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.fill.len()
    }

    /// Number of records written but flagged invalid.
    pub fn num_invalid(&self) -> u64 {
        let written: u64 = self.fill.iter().map(|&f| f as u64).sum();
        written - self.live
    }

    /// The group a dense source id belongs to.
    #[inline]
    pub fn group_of(&self, dense_src: u32) -> usize {
        dense_src as usize / self.group_size
    }

    #[inline]
    fn pack(&self, block: u32, slot: u32) -> CalPtr {
        (block << self.slot_bits) | slot
    }

    #[inline]
    fn unpack(&self, ptr: CalPtr) -> (u32, u32) {
        (ptr >> self.slot_bits, ptr & ((1 << self.slot_bits) - 1))
    }

    fn alloc_block(&mut self) -> u32 {
        let id = self.fill.len() as u32;
        self.records.resize(self.records.len() + self.block_size, DEAD);
        self.next_block.push(NIL_U32);
        self.fill.push(0);
        id
    }

    /// Appends an edge copy for `dense_src` and returns its CAL pointer.
    ///
    /// This is the "look up the last assigned edgeblock of the group and the
    /// last unoccupied slot" path of the paper — O(1), no edge traversal.
    pub fn insert(
        &mut self,
        dense_src: u32,
        src: VertexId,
        dst: VertexId,
        weight: Weight,
    ) -> CalPtr {
        let group = self.group_of(dense_src);
        if group >= self.group_head.len() {
            self.group_head.resize(group + 1, NIL_U32);
            self.group_tail.resize(group + 1, NIL_U32);
        }
        let mut tail = self.group_tail[group];
        if tail == NIL_U32 || self.fill[tail as usize] as usize == self.block_size {
            let nb = self.alloc_block();
            if tail == NIL_U32 {
                self.group_head[group] = nb;
            } else {
                self.next_block[tail as usize] = nb;
            }
            self.group_tail[group] = nb;
            tail = nb;
        }
        let slot = self.fill[tail as usize];
        self.records[tail as usize * self.block_size + slot as usize] =
            CalRecord { src, dst, weight, valid: true };
        self.fill[tail as usize] = slot + 1;
        self.live += 1;
        self.pack(tail, slot)
    }

    /// Updates the weight of a live edge copy through its pointer.
    pub fn update_weight(&mut self, ptr: CalPtr, weight: Weight) {
        let (block, slot) = self.unpack(ptr);
        let r = &mut self.records[block as usize * self.block_size + slot as usize];
        debug_assert!(r.valid, "updating an invalidated CAL record");
        r.weight = weight;
    }

    /// Invalidates an edge copy (the paper's delete: "flagged as invalid").
    pub fn invalidate(&mut self, ptr: CalPtr) {
        let (block, slot) = self.unpack(ptr);
        let r = &mut self.records[block as usize * self.block_size + slot as usize];
        debug_assert!(r.valid, "double invalidation of a CAL record");
        r.valid = false;
        self.live -= 1;
    }

    /// Reads the record behind a pointer (diagnostics/tests).
    pub fn record(&self, ptr: CalPtr) -> CalRecord {
        let (block, slot) = self.unpack(ptr);
        self.records[block as usize * self.block_size + slot as usize]
    }

    /// Streams every live edge copy sequentially: groups in order, each
    /// group's chain in order, each block front-to-fill. This is the
    /// full-processing retrieval path — the accesses walk the record arena
    /// chain-contiguously instead of hopping per-vertex.
    pub fn for_each_edge<F: FnMut(VertexId, VertexId, Weight)>(&self, f: F) {
        self.for_each_edge_in_groups(0..self.group_head.len(), f);
    }

    /// Number of source groups currently tracked (the unit sharded
    /// streaming splits over).
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.group_head.len()
    }

    /// Streams the live edge copies of a contiguous group range, in the
    /// same order [`for_each_edge`](Self::for_each_edge) visits them.
    /// Concatenating disjoint adjacent ranges therefore reproduces the
    /// full stream exactly.
    pub fn for_each_edge_in_groups<F: FnMut(VertexId, VertexId, Weight)>(
        &self,
        groups: std::ops::Range<usize>,
        mut f: F,
    ) {
        for g in groups {
            let mut b = self.group_head[g];
            while b != NIL_U32 {
                let base = b as usize * self.block_size;
                let fill = self.fill[b as usize] as usize;
                for r in &self.records[base..base + fill] {
                    if r.valid {
                        f(r.src, r.dst, r.weight);
                    }
                }
                b = self.next_block[b as usize];
            }
        }
    }

    /// Clears the CAL to empty (used by rebuild).
    pub fn clear(&mut self) {
        self.records.clear();
        self.next_block.clear();
        self.fill.clear();
        self.group_head.clear();
        self.group_tail.clear();
        self.live = 0;
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.records.capacity() * std::mem::size_of::<CalRecord>()
            + (self.next_block.capacity() + self.fill.capacity()) * 4
            + (self.group_head.capacity() + self.group_tail.capacity()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_stream_single_group() {
        let mut cal = CalArray::new(1024, 4);
        cal.insert(0, 100, 7, 1);
        cal.insert(1, 101, 8, 2);
        cal.insert(0, 100, 9, 3);
        let mut seen = Vec::new();
        cal.for_each_edge(|s, d, w| seen.push((s, d, w)));
        assert_eq!(seen, vec![(100, 7, 1), (101, 8, 2), (100, 9, 3)]);
        assert_eq!(cal.num_live(), 3);
    }

    #[test]
    fn blocks_chain_when_full() {
        let mut cal = CalArray::new(1024, 2);
        for i in 0..7u32 {
            cal.insert(0, 0, i, 1);
        }
        assert_eq!(cal.num_blocks(), 4, "7 records at block size 2 need 4 blocks");
        let mut n = 0;
        cal.for_each_edge(|_, _, _| n += 1);
        assert_eq!(n, 7);
    }

    #[test]
    fn groups_are_streamed_in_group_order() {
        let mut cal = CalArray::new(2, 8);
        cal.insert(5, 500, 1, 1); // group 2
        cal.insert(0, 0, 2, 1); // group 0
        cal.insert(3, 300, 3, 1); // group 1
        let mut srcs = Vec::new();
        cal.for_each_edge(|s, _, _| srcs.push(s));
        assert_eq!(srcs, vec![0, 300, 500]);
    }

    #[test]
    fn invalidate_hides_record_and_updates_counts() {
        let mut cal = CalArray::new(1024, 8);
        let p0 = cal.insert(0, 0, 1, 1);
        let p1 = cal.insert(0, 0, 2, 1);
        cal.invalidate(p0);
        assert_eq!(cal.num_live(), 1);
        assert_eq!(cal.num_invalid(), 1);
        let mut seen = Vec::new();
        cal.for_each_edge(|_, d, _| seen.push(d));
        assert_eq!(seen, vec![2]);
        assert!(cal.record(p1).valid);
        assert!(!cal.record(p0).valid);
    }

    #[test]
    fn update_weight_through_pointer() {
        let mut cal = CalArray::new(1024, 8);
        let p = cal.insert(0, 0, 1, 1);
        cal.update_weight(p, 42);
        assert_eq!(cal.record(p).weight, 42);
        let mut w = 0;
        cal.for_each_edge(|_, _, weight| w = weight);
        assert_eq!(w, 42);
    }

    #[test]
    fn pointers_survive_many_blocks() {
        let mut cal = CalArray::new(64, 16);
        let mut ptrs = Vec::new();
        for i in 0..1000u32 {
            ptrs.push((i, cal.insert(i % 256, i % 256, i, i)));
        }
        for (i, p) in ptrs {
            let r = cal.record(p);
            assert_eq!((r.dst, r.weight, r.valid), (i, i, true));
        }
    }

    #[test]
    fn non_power_of_two_block_size() {
        let mut cal = CalArray::new(8, 3);
        let ptrs: Vec<_> = (0..10u32).map(|i| cal.insert(0, 0, i, i)).collect();
        for (i, &p) in ptrs.iter().enumerate() {
            assert_eq!(cal.record(p).dst, i as u32);
        }
        assert_eq!(cal.num_blocks(), 4);
    }

    #[test]
    fn clear_resets_everything() {
        let mut cal = CalArray::new(8, 4);
        cal.insert(0, 0, 1, 1);
        cal.clear();
        assert_eq!(cal.num_live(), 0);
        assert_eq!(cal.num_blocks(), 0);
        let mut n = 0;
        cal.for_each_edge(|_, _, _| n += 1);
        assert_eq!(n, 0);
    }
}
