//! The EdgeblockArray: a flat arena of fixed-width edgeblocks.
//!
//! An edgeblock is PAGEWIDTH edge-cells; it is divided into *subblocks*
//! (the branching granularity of Tree-Based Hashing) which are divided into
//! *workblocks* (the retrieval granularity of the load unit). The paper's
//! Fig. 4 hierarchy maps onto this module as:
//!
//! ```text
//! EdgeblockArray  = BlockArena            (cells: Vec<EdgeCell>)
//! edgeblock  i    = cells[i*PW .. (i+1)*PW]
//! subblock (i,s)  = cells[i*PW + s*SB .. i*PW + (s+1)*SB]
//! workblock       = SB/WB-sized chunks the inspection loop walks
//! ```
//!
//! Both the paper's *main region* (top-parent edgeblocks, one per hashed
//! source vertex) and *overflow region* (descendant edgeblocks created by
//! branch-out) are blocks in the same arena; the region distinction lives in
//! who points at a block (the vertex table vs. a parent subblock's child
//! pointer). A free list recycles blocks emptied by delete-and-compact.

use crate::swar::TAG_EMPTY;
use gtinker_types::{VertexId, Weight, NIL_U32, NIL_VERTEX};

/// Occupancy state of an edge-cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CellState {
    /// Never held an edge (or recycled by compaction).
    Empty = 0,
    /// Holds a live edge.
    Occupied = 1,
    /// Held an edge that was deleted by the delete-only mechanism; still
    /// terminates nothing (scans treat it as vacant for insertion but keep
    /// scanning for finds).
    Tombstone = 2,
}

/// The most primitive unit of the EdgeblockArray: one potential edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeCell {
    /// Destination vertex, or [`NIL_VERTEX`] if the cell is not occupied.
    pub dst: VertexId,
    /// Edge weight (meaningful only when occupied).
    pub weight: Weight,
    /// Packed pointer to this edge's copy in the CAL EdgeblockArray, or
    /// [`NIL_U32`] when CAL maintenance is disabled.
    pub cal_ptr: u32,
    /// Robin Hood probe distance: cells between this edge's initial bucket
    /// and its current position, within its subblock.
    pub probe: u8,
    /// Occupancy state.
    pub state: CellState,
}

impl EdgeCell {
    /// An empty cell.
    pub const EMPTY: EdgeCell = EdgeCell {
        dst: NIL_VERTEX,
        weight: 0,
        cal_ptr: NIL_U32,
        probe: 0,
        state: CellState::Empty,
    };

    /// Whether the cell currently holds a live edge.
    #[inline]
    pub fn is_occupied(&self) -> bool {
        self.state == CellState::Occupied
    }

    /// Whether an insertion may claim this cell (empty or tombstoned).
    #[inline]
    pub fn is_vacant(&self) -> bool {
        self.state != CellState::Occupied
    }
}

/// Handle of an edgeblock within a [`BlockArena`].
pub type BlockId = u32;

/// A flat arena of edgeblocks with per-subblock child pointers.
///
/// The arena only manages storage and topology (allocation, recycling,
/// child links, occupancy counts); the hashing policy that decides *where*
/// edges go lives in [`crate::tinker::GraphTinker`].
#[derive(Debug, Clone)]
pub struct BlockArena {
    cells: Vec<EdgeCell>,
    /// SWAR tag lane: one control byte per cell (same indexing as `cells`)
    /// holding the 7-bit destination fingerprint when occupied or a vacancy
    /// sentinel ([`TAG_EMPTY`] / [`TAG_TOMBSTONE`]) otherwise, so probes can
    /// scan 8 slots per `u64` load without touching 16-byte cells.
    tags: Vec<u8>,
    /// Child block per (block, subblock): `children[b * spb + s]`, NIL_U32
    /// if the subblock has not branched out.
    children: Vec<u32>,
    /// Live (occupied) cells per block, used by compaction to decide when a
    /// block can be recycled.
    live: Vec<u32>,
    /// Parent block of each block (`NIL_U32` for top-parents), paired with
    /// the parent subblock the child hangs off. Lets compaction detach and
    /// recycle emptied blocks bottom-up without recording DFS paths.
    parent: Vec<u32>,
    parent_sub: Vec<u8>,
    /// Recycled block ids available for reuse.
    free: Vec<BlockId>,
    pagewidth: usize,
    subblock: usize,
    subblocks_per_block: usize,
}

impl BlockArena {
    /// Creates an empty arena for the given geometry.
    pub fn new(pagewidth: usize, subblock: usize) -> Self {
        assert!(pagewidth > 0 && subblock > 0 && pagewidth.is_multiple_of(subblock));
        BlockArena {
            cells: Vec::new(),
            tags: Vec::new(),
            children: Vec::new(),
            live: Vec::new(),
            parent: Vec::new(),
            parent_sub: Vec::new(),
            free: Vec::new(),
            pagewidth,
            subblock,
            subblocks_per_block: pagewidth / subblock,
        }
    }

    /// PAGEWIDTH: cells per edgeblock.
    #[inline]
    pub fn pagewidth(&self) -> usize {
        self.pagewidth
    }

    /// Cells per subblock.
    #[inline]
    pub fn subblock_len(&self) -> usize {
        self.subblock
    }

    /// Subblocks per edgeblock.
    #[inline]
    pub fn subblocks_per_block(&self) -> usize {
        self.subblocks_per_block
    }

    /// Total blocks ever allocated (including currently free ones).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.cells.len() / self.pagewidth
    }

    /// Number of blocks sitting on the free list.
    #[inline]
    pub fn num_free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Allocates a fresh (or recycled) zeroed block and returns its id.
    pub fn alloc_block(&mut self) -> BlockId {
        if let Some(id) = self.free.pop() {
            let base = id as usize * self.pagewidth;
            self.cells[base..base + self.pagewidth].fill(EdgeCell::EMPTY);
            self.tags[base..base + self.pagewidth].fill(TAG_EMPTY);
            let cbase = id as usize * self.subblocks_per_block;
            self.children[cbase..cbase + self.subblocks_per_block].fill(NIL_U32);
            self.live[id as usize] = 0;
            self.parent[id as usize] = NIL_U32;
            self.parent_sub[id as usize] = 0;
            return id;
        }
        let id = self.num_blocks() as BlockId;
        self.cells.resize(self.cells.len() + self.pagewidth, EdgeCell::EMPTY);
        self.tags.resize(self.tags.len() + self.pagewidth, TAG_EMPTY);
        self.children.resize(self.children.len() + self.subblocks_per_block, NIL_U32);
        self.live.push(0);
        self.parent.push(NIL_U32);
        self.parent_sub.push(0);
        id
    }

    /// Returns a block to the free list. The caller must have emptied it and
    /// detached it from its parent.
    pub fn free_block(&mut self, id: BlockId) {
        debug_assert_eq!(self.live[id as usize], 0, "freeing a block with live edges");
        debug_assert!(
            self.child_slots(id).iter().all(|&c| c == NIL_U32),
            "freeing a block that still has children"
        );
        self.free.push(id);
    }

    /// The cells of one block.
    #[inline]
    pub fn block(&self, id: BlockId) -> &[EdgeCell] {
        let base = id as usize * self.pagewidth;
        &self.cells[base..base + self.pagewidth]
    }

    /// The cells of one subblock of a block.
    #[inline]
    pub fn subblock_cells(&self, id: BlockId, sub: usize) -> &[EdgeCell] {
        let base = id as usize * self.pagewidth + sub * self.subblock;
        &self.cells[base..base + self.subblock]
    }

    /// Mutable cells of one subblock of a block.
    #[inline]
    pub fn subblock_cells_mut(&mut self, id: BlockId, sub: usize) -> &mut [EdgeCell] {
        let base = id as usize * self.pagewidth + sub * self.subblock;
        &mut self.cells[base..base + self.subblock]
    }

    /// The tag lane of one subblock of a block (parallel to
    /// [`Self::subblock_cells`]).
    #[inline]
    pub fn subblock_tags(&self, id: BlockId, sub: usize) -> &[u8] {
        let base = id as usize * self.pagewidth + sub * self.subblock;
        &self.tags[base..base + self.subblock]
    }

    /// The cells *and* tag lane of one subblock, mutably — insertion paths
    /// update both in lockstep.
    #[inline]
    pub fn subblock_cells_and_tags_mut(
        &mut self,
        id: BlockId,
        sub: usize,
    ) -> (&mut [EdgeCell], &mut [u8]) {
        let base = id as usize * self.pagewidth + sub * self.subblock;
        (&mut self.cells[base..base + self.subblock], &mut self.tags[base..base + self.subblock])
    }

    /// The tag lane of a whole block (diagnostics / invariant validation).
    #[inline]
    pub fn block_tags(&self, id: BlockId) -> &[u8] {
        let base = id as usize * self.pagewidth;
        &self.tags[base..base + self.pagewidth]
    }

    /// One tag byte, by (block, offset within block).
    #[inline]
    pub fn tag(&self, id: BlockId, offset: usize) -> u8 {
        self.tags[id as usize * self.pagewidth + offset]
    }

    /// Writes one tag byte. Callers keep it consistent with the cell at the
    /// same offset: fingerprint when occupied, sentinel when vacant.
    #[inline]
    pub fn set_tag(&mut self, id: BlockId, offset: usize, tag: u8) {
        self.tags[id as usize * self.pagewidth + offset] = tag;
    }

    /// One cell, by (block, offset within block).
    #[inline]
    pub fn cell(&self, id: BlockId, offset: usize) -> &EdgeCell {
        &self.cells[id as usize * self.pagewidth + offset]
    }

    /// Mutable access to one cell.
    #[inline]
    pub fn cell_mut(&mut self, id: BlockId, offset: usize) -> &mut EdgeCell {
        &mut self.cells[id as usize * self.pagewidth + offset]
    }

    /// Child block of `(id, sub)`, if any.
    #[inline]
    pub fn child(&self, id: BlockId, sub: usize) -> Option<BlockId> {
        let c = self.children[id as usize * self.subblocks_per_block + sub];
        (c != NIL_U32).then_some(c)
    }

    /// Sets the child pointer of `(id, sub)`, maintaining the child's
    /// back-link.
    #[inline]
    pub fn set_child(&mut self, id: BlockId, sub: usize, child: Option<BlockId>) {
        let slot = id as usize * self.subblocks_per_block + sub;
        let prev = self.children[slot];
        if prev != NIL_U32 {
            self.parent[prev as usize] = NIL_U32;
            self.parent_sub[prev as usize] = 0;
        }
        self.children[slot] = child.unwrap_or(NIL_U32);
        if let Some(c) = child {
            self.parent[c as usize] = id;
            self.parent_sub[c as usize] = sub as u8;
        }
    }

    /// Parent of a block as `(parent_block, parent_subblock)`, or `None` for
    /// top-parent (main region) blocks.
    #[inline]
    pub fn parent(&self, id: BlockId) -> Option<(BlockId, usize)> {
        let p = self.parent[id as usize];
        (p != NIL_U32).then(|| (p, self.parent_sub[id as usize] as usize))
    }

    /// All child slots of a block.
    #[inline]
    pub fn child_slots(&self, id: BlockId) -> &[u32] {
        let base = id as usize * self.subblocks_per_block;
        &self.children[base..base + self.subblocks_per_block]
    }

    /// Live-edge count of a block.
    #[inline]
    pub fn live_count(&self, id: BlockId) -> u32 {
        self.live[id as usize]
    }

    /// Adjusts the live-edge count of a block.
    #[inline]
    pub fn add_live(&mut self, id: BlockId, delta: i32) {
        let l = &mut self.live[id as usize];
        *l = l.checked_add_signed(delta).expect("live count underflow");
    }

    /// Collects every live edge in the subtree rooted at `top` (the block
    /// itself plus all branch-out descendants) as `(dst, weight, cal_ptr)`.
    /// Used by tier promotion/demotion to migrate a vertex's adjacency.
    pub fn collect_subtree(&self, top: BlockId) -> Vec<(VertexId, Weight, u32)> {
        let mut edges = Vec::new();
        let mut stack = vec![top];
        while let Some(b) = stack.pop() {
            for c in self.block(b) {
                if c.is_occupied() {
                    edges.push((c.dst, c.weight, c.cal_ptr));
                }
            }
            for &child in self.child_slots(b) {
                if child != NIL_U32 {
                    stack.push(child);
                }
            }
        }
        edges
    }

    /// Detaches and frees the whole subtree rooted at `top`, returning the
    /// number of blocks recycled. Live counts are zeroed; the caller owns
    /// migrating the edges out first (see [`Self::collect_subtree`]).
    pub fn free_subtree(&mut self, top: BlockId) -> usize {
        let mut freed = 0;
        let mut stack = vec![top];
        while let Some(b) = stack.pop() {
            for s in 0..self.subblocks_per_block {
                if let Some(child) = self.child(b, s) {
                    stack.push(child);
                    self.set_child(b, s, None);
                }
            }
            self.live[b as usize] = 0;
            self.free_block(b);
            freed += 1;
        }
        freed
    }

    /// Total occupied cells across the arena (O(blocks), via counters).
    pub fn total_live(&self) -> u64 {
        self.live.iter().map(|&l| l as u64).sum()
    }

    /// Number of tombstoned cells (O(cells); diagnostic only).
    pub fn count_tombstones(&self) -> usize {
        self.cells.iter().filter(|c| c.state == CellState::Tombstone).count()
    }

    /// Heap footprint of the arena in bytes (cells + topology).
    pub fn memory_bytes(&self) -> usize {
        self.cells.capacity() * std::mem::size_of::<EdgeCell>()
            + self.tags.capacity()
            + self.children.capacity() * std::mem::size_of::<u32>()
            + self.live.capacity() * std::mem::size_of::<u32>()
            + self.parent.capacity() * std::mem::size_of::<u32>()
            + self.parent_sub.capacity()
            + self.free.capacity() * std::mem::size_of::<BlockId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swar::TAG_TOMBSTONE;

    fn arena() -> BlockArena {
        BlockArena::new(64, 8)
    }

    #[test]
    fn geometry() {
        let a = arena();
        assert_eq!(a.pagewidth(), 64);
        assert_eq!(a.subblock_len(), 8);
        assert_eq!(a.subblocks_per_block(), 8);
        assert_eq!(a.num_blocks(), 0);
    }

    #[test]
    fn alloc_gives_zeroed_blocks() {
        let mut a = arena();
        let b0 = a.alloc_block();
        let b1 = a.alloc_block();
        assert_eq!((b0, b1), (0, 1));
        assert_eq!(a.num_blocks(), 2);
        assert!(a.block(b0).iter().all(|c| c.state == CellState::Empty));
        assert!(a.child_slots(b0).iter().all(|&c| c == NIL_U32));
        assert_eq!(a.live_count(b0), 0);
    }

    #[test]
    fn subblock_slicing_is_disjoint_and_complete() {
        let mut a = arena();
        let b = a.alloc_block();
        for s in 0..a.subblocks_per_block() {
            let cells = a.subblock_cells_mut(b, s);
            for c in cells.iter_mut() {
                c.dst = s as u32;
                c.state = CellState::Occupied;
            }
        }
        for s in 0..8 {
            assert!(a.subblock_cells(b, s).iter().all(|c| c.dst == s as u32));
        }
        // Whole block covered.
        assert!(a.block(b).iter().all(|c| c.is_occupied()));
    }

    #[test]
    fn child_pointers_roundtrip() {
        let mut a = arena();
        let b = a.alloc_block();
        let c = a.alloc_block();
        assert_eq!(a.child(b, 3), None);
        a.set_child(b, 3, Some(c));
        assert_eq!(a.child(b, 3), Some(c));
        a.set_child(b, 3, None);
        assert_eq!(a.child(b, 3), None);
    }

    #[test]
    fn free_list_recycles_and_rezeroes() {
        let mut a = arena();
        let b = a.alloc_block();
        a.cell_mut(b, 5).dst = 99;
        a.cell_mut(b, 5).state = CellState::Occupied;
        a.add_live(b, 1);
        // Empty it back out before freeing.
        *a.cell_mut(b, 5) = EdgeCell::EMPTY;
        a.add_live(b, -1);
        a.free_block(b);
        assert_eq!(a.num_free_blocks(), 1);
        let b2 = a.alloc_block();
        assert_eq!(b2, b, "free list should hand back the recycled id");
        assert!(a.block(b2).iter().all(|c| c.state == CellState::Empty));
        assert_eq!(a.num_free_blocks(), 0);
    }

    #[test]
    fn live_counters_track() {
        let mut a = arena();
        let b = a.alloc_block();
        a.add_live(b, 3);
        a.add_live(b, -1);
        assert_eq!(a.live_count(b), 2);
        assert_eq!(a.total_live(), 2);
    }

    #[test]
    #[should_panic(expected = "live count underflow")]
    fn live_counter_underflow_panics() {
        let mut a = arena();
        let b = a.alloc_block();
        a.add_live(b, -1);
    }

    #[test]
    fn subtree_collect_and_free() {
        let mut a = arena();
        let top = a.alloc_block();
        let mid = a.alloc_block();
        let leaf = a.alloc_block();
        a.set_child(top, 1, Some(mid));
        a.set_child(mid, 2, Some(leaf));
        for (b, off, dst) in [(top, 0, 10), (mid, 3, 20), (leaf, 7, 30)] {
            let c = a.cell_mut(b, off);
            c.dst = dst;
            c.weight = dst * 2;
            c.cal_ptr = dst + 1;
            c.state = CellState::Occupied;
            a.add_live(b, 1);
        }
        let mut edges = a.collect_subtree(top);
        edges.sort_unstable();
        assert_eq!(edges, vec![(10, 20, 11), (20, 40, 21), (30, 60, 31)]);

        assert_eq!(a.free_subtree(top), 3);
        assert_eq!(a.num_free_blocks(), 3);
        assert_eq!(a.total_live(), 0);
        // Recycled blocks come back zeroed.
        let b = a.alloc_block();
        assert!(a.block(b).iter().all(|c| c.state == CellState::Empty));
    }

    #[test]
    fn cell_state_helpers() {
        let mut c = EdgeCell::EMPTY;
        assert!(c.is_vacant());
        assert!(!c.is_occupied());
        c.state = CellState::Occupied;
        assert!(c.is_occupied());
        c.state = CellState::Tombstone;
        assert!(c.is_vacant());
    }

    #[test]
    fn memory_accounting_positive_after_alloc() {
        let mut a = arena();
        a.alloc_block();
        assert!(a.memory_bytes() >= 64 * (std::mem::size_of::<EdgeCell>() + 1));
    }

    #[test]
    fn tag_lane_starts_empty_and_tracks_writes() {
        let mut a = arena();
        let b = a.alloc_block();
        assert!(a.block_tags(b).iter().all(|&t| t == TAG_EMPTY));
        a.set_tag(b, 5, 0x2A);
        a.set_tag(b, 9, TAG_TOMBSTONE);
        assert_eq!(a.tag(b, 5), 0x2A);
        assert_eq!(a.subblock_tags(b, 0)[5], 0x2A);
        assert_eq!(a.subblock_tags(b, 1)[1], TAG_TOMBSTONE);
        let (cells, tags) = a.subblock_cells_and_tags_mut(b, 0);
        assert_eq!(cells.len(), tags.len());
        tags[3] = 0x11;
        assert_eq!(a.tag(b, 3), 0x11);
    }

    #[test]
    fn recycled_blocks_get_fresh_tag_lanes() {
        let mut a = arena();
        let b = a.alloc_block();
        a.set_tag(b, 7, 0x33);
        a.free_block(b);
        let b2 = a.alloc_block();
        assert_eq!(b2, b);
        assert!(a.block_tags(b2).iter().all(|&t| t == TAG_EMPTY));
    }
}
