//! Epoch-pinned read isolation for the shard pool.
//!
//! Every query path used to pay a full [`settle`](crate::ShardPool)
//! barrier: readers blocked until the pipeline drained, and the writer
//! stalled behind the reader's shard locks. This module removes the
//! barrier with a **dual-store deferred-apply** scheme:
//!
//! * Each shard keeps its **live store** (applied immediately, exactly as
//!   before — batch outcome counts stay exact at ack time) plus a **read
//!   replica** that lags behind at an *acked batch boundary*.
//! * Workers append `(seq, Arc<EdgeBatch>)` to a per-shard **backlog**
//!   before completing the batch's ticket. Per-shard job channels are
//!   FIFO and every worker receives every batch, so ticket completion is
//!   monotone in `seq`: when the last worker completes batch `k`, every
//!   batch `≤ k` is fully applied and fully backlogged. That worker
//!   publishes `acked = k + 1` with a single `fetch_max`.
//! * A reader **pins** an epoch: while no other pin is active it folds
//!   each shard's backlog entries with `seq < acked` into the replicas
//!   (deferred apply — this is also the reclamation point, since folded
//!   entries drop their `Arc` on the batch), then marks the epoch pinned.
//!   While any pin is active the replicas are immutable, so every reader
//!   traverses a consistent acked-batch-boundary view while the pipeline
//!   keeps applying later batches to the live stores.
//!
//! Visibility is a pure function of `acked`, and folding happens only at
//! whole-batch granularity, so a pinned view can never observe a torn
//! mid-batch state. Workers opportunistically fold their own shard when
//! its backlog grows past a threshold (and no pin is active), bounding
//! memory when the store serves no readers for a while.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};

use gtinker_types::{partition_of, EdgeBatch};

use crate::pool::ShardStore;

/// Backlog length past which a worker folds its own shard eagerly (when
/// no reader holds a pin) instead of waiting for the next pin to catch
/// the replica up. Bounds retained batch memory under write-only load.
pub const FOLD_THRESHOLD: usize = 32;

/// Reader-pin bookkeeping, guarded by the gate mutex: how many
/// [`ReadGuard`]s are live and which acked boundary the replicas sit at.
struct Gate {
    pins: usize,
    epoch: u64,
}

/// Per-shard queue of batches applied to the live store but not yet
/// folded into the read replica. Entries are `(dispatch seq, batch)`.
type Backlog = VecDeque<(u64, Arc<EdgeBatch>)>;

/// The read-isolation layer owned by a [`ShardPool`](crate::ShardPool):
/// one lagging replica and one backlog per shard, plus the shared acked
/// counter the workers publish batch boundaries through.
pub struct ViewLayer<S> {
    replicas: Vec<RwLock<S>>,
    backlogs: Vec<Mutex<Backlog>>,
    gate: Mutex<Gate>,
    /// One past the highest fully-applied batch seq (monotone; published
    /// by the last worker to complete each ticket).
    acked: AtomicU64,
}

impl<S: ShardStore> ViewLayer<S> {
    /// Builds a layer with one fresh (empty) replica per shard, or a
    /// disabled layer when `replicas` is empty.
    pub(crate) fn new(replicas: Vec<S>) -> Self {
        let n = replicas.len();
        ViewLayer {
            replicas: replicas.into_iter().map(RwLock::new).collect(),
            backlogs: (0..n).map(|_| Mutex::new(Backlog::new())).collect(),
            gate: Mutex::new(Gate { pins: 0, epoch: 0 }),
            acked: AtomicU64::new(0),
        }
    }

    /// Whether replicas exist (views were requested at pool build time).
    #[inline]
    pub fn enabled(&self) -> bool {
        !self.replicas.is_empty()
    }

    /// One past the highest acked batch seq.
    #[inline]
    pub fn acked(&self) -> u64 {
        self.acked.load(Ordering::Acquire)
    }

    /// Worker-side: records `batch` in shard `i`'s backlog. Must run
    /// before the batch's ticket completes so `acked` implies presence.
    pub(crate) fn record(&self, i: usize, seq: u64, batch: &Arc<EdgeBatch>) {
        if !self.enabled() {
            return;
        }
        let len = {
            let mut backlog = self.backlogs[i].lock().expect("backlog poisoned");
            backlog.push_back((seq, Arc::clone(batch)));
            backlog.len()
        };
        crate::metrics::global().epoch_backlog_depth.set(len as i64);
        if len > FOLD_THRESHOLD {
            // Opportunistic fold: only if no reader holds a pin right now
            // (try_lock — a worker never waits behind readers).
            if let Ok(gate) = self.gate.try_lock() {
                if gate.pins == 0 {
                    // Safe while holding the gate: no pin can start, and a
                    // per-shard fold to any boundary ≤ acked keeps the
                    // replica at a batch boundary the next pin extends.
                    self.fold_shard(i, self.acked());
                }
            }
        }
    }

    /// Worker-side: publishes that every batch with seq ≤ `seq` is fully
    /// applied (called by the last worker to complete a ticket).
    pub(crate) fn publish_acked(&self, seq: u64) {
        self.acked.fetch_max(seq + 1, Ordering::AcqRel);
    }

    /// Folds shard `i`'s backlog entries with `seq < target` into its
    /// replica, in dispatch order. Caller must guarantee no reader pin is
    /// active (the replica write lock alone would un-tear nothing: the
    /// epoch contract is that pinned replicas do not move at all).
    fn fold_shard(&self, i: usize, target: u64) {
        let n = self.replicas.len();
        let mut backlog = self.backlogs[i].lock().expect("backlog poisoned");
        if backlog.front().is_none_or(|&(seq, _)| seq >= target) {
            return;
        }
        let mut claim = EdgeBatch::new();
        let mut replica = self.replicas[i].write().expect("replica poisoned");
        let mut folded = 0u64;
        while let Some(&(seq, _)) = backlog.front() {
            if seq >= target {
                break;
            }
            let (_, batch) = backlog.pop_front().expect("front just checked");
            claim.clear();
            for &op in batch.ops() {
                if partition_of(op.src(), n) == i {
                    claim.push(op);
                }
            }
            if !claim.is_empty() {
                replica.apply_shard_batch(&claim);
            }
            folded += 1;
        }
        let m = crate::metrics::global();
        m.epoch_fold_batches.add(folded);
        m.epoch_backlog_depth.set(backlog.len() as i64);
    }

    /// Pins the current acked epoch and returns a guard for reading the
    /// replicas, or `None` when the layer is disabled. The first pin
    /// catches every replica up to `acked`; joiners share the already
    /// pinned epoch (which only ever lags `acked`, never tears).
    pub fn pin(&self) -> Option<ReadGuard<'_, S>> {
        if !self.enabled() {
            return None;
        }
        // Covers the gate wait plus any first-pin fold; the arg carries
        // the serving request id (0 outside a request) so a slow pin can
        // be attributed to the query that paid for the fold.
        let _span =
            crate::trace::span_arg(crate::trace::SpanId::EpochPin, crate::trace::thread_ctx());
        let mut gate = self.gate.lock().expect("gate poisoned");
        if gate.pins == 0 {
            let target = self.acked();
            for i in 0..self.replicas.len() {
                self.fold_shard(i, target);
            }
            gate.epoch = target;
        }
        gate.pins += 1;
        let epoch = gate.epoch;
        drop(gate);
        let m = crate::metrics::global();
        m.epoch_pins.inc();
        m.epoch_active_pins.inc();
        Some(ReadGuard { layer: self, epoch })
    }
}

impl<S> std::fmt::Debug for ViewLayer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewLayer")
            .field("shards", &self.replicas.len())
            .field("acked", &self.acked.load(Ordering::Relaxed))
            .finish()
    }
}

/// An epoch pin over the pool's read replicas: while any guard is live
/// the replicas are frozen at one acked batch boundary, so every query
/// through the guard observes exactly the graph after `epoch()` batches.
/// Dropping the last guard lets the replicas advance again.
pub struct ReadGuard<'a, S: ShardStore> {
    layer: &'a ViewLayer<S>,
    epoch: u64,
}

impl<'a, S: ShardStore> ReadGuard<'a, S> {
    /// The pinned batch boundary: this view reflects exactly the first
    /// `epoch()` submitted batches, in order.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of replica shards (same partitioning as the live pool).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.layer.replicas.len()
    }

    /// Read-locks replica `i` and runs `f` over it. No pipeline barrier:
    /// the writer keeps applying later batches to the live stores.
    pub fn with_shard<R>(&self, i: usize, f: impl FnOnce(&S) -> R) -> R {
        f(&self.layer.replicas[i].read().expect("replica poisoned"))
    }

    /// Borrows replica `i` read-locked, for callers that need a guard
    /// with its own lifetime (e.g. streaming iteration).
    pub fn shard(&self, i: usize) -> RwLockReadGuard<'a, S> {
        self.layer.replicas[i].read().expect("replica poisoned")
    }
}

impl<S: ShardStore> Drop for ReadGuard<'_, S> {
    fn drop(&mut self) {
        let mut gate = self.layer.gate.lock().expect("gate poisoned");
        gate.pins -= 1;
        crate::metrics::global().epoch_active_pins.dec();
    }
}

impl<S: ShardStore> std::fmt::Debug for ReadGuard<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadGuard").field("epoch", &self.epoch).finish()
    }
}
