//! Hash functions used by the Tree-Based Hashing and Robin Hood Hashing
//! schemes.
//!
//! The paper leaves the concrete hash functions user-defined; we use the
//! SplitMix64 finalizer, a well-studied integer mixer with full avalanche,
//! and derive the two decisions made per (destination, depth) pair —
//! *which subblock* of the edgeblock to use, and *which cell bucket* inside
//! that subblock to start Robin Hood probing from — from disjoint bit
//! ranges of a single mix so the two choices are effectively independent.

use gtinker_types::VertexId;

/// SplitMix64 finalizer: a cheap full-avalanche mixer for 64-bit integers.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-source hash, computed once per update and threaded through the SGH
/// lookup/insert pair so the hot path mixes each source id exactly once
/// (instead of once in `SghUnit::get` and again in the fresh-insert probe).
#[inline]
pub fn source_hash(src: VertexId) -> u64 {
    mix64(src as u64)
}

/// Combined per-(destination, depth) hash. The depth is folded in so that a
/// destination rehashes to a fresh subblock/bucket at every generation of
/// the branch-out tree — the paper's "rehashing is done again, and the same
/// process continues in the newly-hashed child Subblock region".
#[inline]
pub fn edge_hash(dst: VertexId, depth: u32) -> u64 {
    mix64((dst as u64) ^ ((depth as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93) << 1))
}

/// Subblock index (within an edgeblock) for `dst` at tree depth `depth`.
#[inline]
pub fn subblock_index(dst: VertexId, depth: u32, subblocks_per_block: usize) -> usize {
    debug_assert!(subblocks_per_block.is_power_of_two());
    ((edge_hash(dst, depth) >> 32) as usize) & (subblocks_per_block - 1)
}

/// Initial Robin Hood bucket (within a subblock) for `dst` at tree depth
/// `depth`.
#[inline]
pub fn cell_bucket(dst: VertexId, depth: u32, subblock_len: usize) -> usize {
    debug_assert!(subblock_len.is_power_of_two());
    (edge_hash(dst, depth) as u32 as usize) & (subblock_len - 1)
}

/// Derives both per-depth decisions from a single hash: `(subblock index,
/// RHH bucket)`. One mix per (dst, depth) on the hot path; both sizes must
/// be powers of two (enforced by `TinkerConfig::validate`).
#[inline]
pub fn subblock_and_bucket(
    dst: VertexId,
    depth: u32,
    subblocks_per_block: usize,
    subblock_len: usize,
) -> (usize, usize) {
    debug_assert!(subblocks_per_block.is_power_of_two() && subblock_len.is_power_of_two());
    split_hash(edge_hash(dst, depth), subblocks_per_block, subblock_len)
}

/// Splits an already-computed [`edge_hash`] into `(subblock index, RHH
/// bucket)` — the hoisted-hash variant of [`subblock_and_bucket`] for
/// callers that derived the depth-0 hash once per operation (alongside the
/// tag byte) and pass it down.
#[inline]
pub fn split_hash(h: u64, subblocks_per_block: usize, subblock_len: usize) -> (usize, usize) {
    (((h >> 32) as usize) & (subblocks_per_block - 1), (h as u32 as usize) & (subblock_len - 1))
}

/// 7-bit SWAR tag fingerprint from an [`edge_hash`]. Bits 57–63 are
/// disjoint from both the subblock-index bits (32..) and the bucket bits
/// (0..32) actually consumed by the geometry masks (subblock counts are
/// ≤ 256 and subblock lengths ≤ 256, so at most bits 32–39 and 0–7 are
/// used), keeping the fingerprint independent of slot placement. The high
/// bit is cleared so fingerprints never collide with the vacancy sentinels
/// in [`crate::swar`].
#[inline]
pub fn tag_of_hash(h: u64) -> u8 {
    ((h >> 57) as u8) & 0x7F
}

/// Per-destination tag byte, derived from the **depth-0** edge hash. The
/// tag is deliberately depth-independent: a displaced edge that overflows
/// into a child edgeblock keeps its tag, so branch-out and tier migration
/// move the byte instead of rehashing.
#[inline]
pub fn dst_tag(dst: VertexId) -> u8 {
    tag_of_hash(edge_hash(dst, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), 42);
        assert_ne!(mix64(0), mix64(1));
    }

    #[test]
    fn depth_changes_hash() {
        // The whole point of tree-based rehashing: the same destination must
        // land in different subblocks/buckets at different depths (with
        // overwhelming probability over many vertices).
        let mut moved = 0;
        for dst in 0..1000u32 {
            if subblock_index(dst, 0, 8) != subblock_index(dst, 1, 8) {
                moved += 1;
            }
        }
        // ~7/8 expected to move; require well over half.
        assert!(moved > 700, "only {moved}/1000 changed subblock across depths");
    }

    #[test]
    fn indices_in_range() {
        for dst in 0..10_000u32 {
            for depth in 0..4 {
                assert!(subblock_index(dst, depth, 8) < 8);
                assert!(cell_bucket(dst, depth, 8) < 8);
            }
        }
    }

    #[test]
    fn subblock_distribution_roughly_uniform() {
        let mut counts = [0usize; 8];
        for dst in 0..80_000u32 {
            counts[subblock_index(dst, 0, 8)] += 1;
        }
        let expected = 10_000.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "subblock {i} count {c} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn bucket_distribution_roughly_uniform() {
        let mut counts = [0usize; 8];
        for dst in 0..80_000u32 {
            counts[cell_bucket(dst, 0, 8)] += 1;
        }
        for &c in &counts {
            let dev = (c as f64 - 10_000.0).abs() / 10_000.0;
            assert!(dev < 0.05);
        }
    }

    #[test]
    fn tags_are_fingerprints_and_depth_stable() {
        let mut counts = [0usize; 128];
        for dst in 0..64_000u32 {
            let t = dst_tag(dst);
            assert!(t < 0x80, "tag high bit must be clear");
            assert_eq!(t, tag_of_hash(edge_hash(dst, 0)));
            counts[t as usize] += 1;
        }
        // Roughly uniform over the 128 fingerprint values.
        let expected = 500.0;
        for (t, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.25, "tag {t} count {c} deviates {dev:.3}");
        }
    }

    #[test]
    fn split_hash_matches_subblock_and_bucket() {
        for dst in 0..5_000u32 {
            for depth in 0..3 {
                assert_eq!(
                    subblock_and_bucket(dst, depth, 8, 16),
                    split_hash(edge_hash(dst, depth), 8, 16)
                );
            }
        }
    }

    #[test]
    fn subblock_and_bucket_not_correlated() {
        // Destinations sharing a subblock should still spread across buckets.
        let mut buckets = [0usize; 8];
        let mut total = 0;
        for dst in 0..200_000u32 {
            if subblock_index(dst, 0, 8) == 3 {
                buckets[cell_bucket(dst, 0, 8)] += 1;
                total += 1;
            }
        }
        let expected = total as f64 / 8.0;
        for &c in &buckets {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.1, "bucket skew within one subblock: {buckets:?}");
        }
    }
}
