//! Dense hub tier: sorted adjacency segments for high-degree vertices.
//!
//! A vertex promoted out of the RHH edgeblock tier stores its adjacency as a
//! contiguous sorted run of destination keys plus a small append-order tail
//! that absorbs inserts. Lookups first gallop over a small L1-resident fence
//! array (every 64th key), then over one 64-key window of the sorted run,
//! with a branchless binary narrowing loop finishing in a chunked 4-wide compare
//! ([`find_key_chunked`]) that the compiler autovectorizes; no per-probe
//! pointer chasing, no hash displacement. Inserts append to the tail — it is
//! scanned linearly on lookup anyway, so keeping it sorted would only add an
//! O(tail) shift across three parallel arrays per insert — and the tail is
//! sorted and merged into the main run in one backward two-pointer pass when
//! it exceeds [`TAIL_CAP`], so insertion is a push plus an amortized
//! O(degree / TAIL_CAP) share of the merge.
//!
//! The tail additionally carries a SWAR tag lane (one fingerprint byte per
//! tail entry, see [`crate::swar`]): [`HubSegment::find_tagged`] scans it
//! eight bytes per `u64` with the shared group-match primitive and touches
//! the 8-byte keys only on fingerprint candidates, replacing the seed
//! 4-wide key compare on the hot path. The seed scan is kept as
//! [`HubSegment::find`] for A/B comparison; the lane is maintained in both
//! modes.

use gtinker_types::{VertexId, Weight};

use crate::hash::dst_tag;
use crate::swar::{indices, load_padded, match_tag, GROUP};

/// Maximum unsorted-tail length before it is merged into the main run.
pub const TAIL_CAP: usize = 256;

/// Below this many candidates the gallop switches to the chunked linear scan.
pub const SCAN_WINDOW: usize = 8;

/// Every `2^FENCE_SHIFT`-th main-run key is copied into the fence array.
const FENCE_SHIFT: usize = 6;

/// Keys per fence block (64 keys = 512 B, a handful of cache lines).
const FENCE_STRIDE: usize = 1 << FENCE_SHIFT;

/// Index of the greatest fence `<= key` (0 when `key` precedes every fence),
/// with the same branchless narrowing loop as [`find_key`].
fn lower_block(fences: &[u64], key: u64) -> usize {
    let mut base = 0usize;
    let mut size = fences.len();
    while size > 1 {
        let half = size / 2;
        let mid = base + half;
        base = if fences[mid] <= key { mid } else { base };
        size -= half;
    }
    base
}

/// Branchless gallop over a sorted key slice, finishing with a chunked scan.
///
/// The narrowing step `base = if keys[mid] <= key { mid } else { base }`
/// compiles to a conditional move, so the loop runs without branch
/// mispredictions regardless of the key distribution.
pub fn find_key(keys: &[u64], key: u64) -> Option<usize> {
    let mut base = 0usize;
    let mut size = keys.len();
    while size > SCAN_WINDOW {
        let half = size / 2;
        let mid = base + half;
        base = if keys[mid] <= key { mid } else { base };
        size -= half;
    }
    find_key_chunked(&keys[base..base + size], key).map(|i| base + i)
}

/// Linear scan in explicit chunks of four, reduced to a bitmask so the
/// compiler emits a vectorized compare instead of four dependent branches.
pub fn find_key_chunked(keys: &[u64], key: u64) -> Option<usize> {
    let mut chunks = keys.chunks_exact(4);
    let mut base = 0usize;
    for c in chunks.by_ref() {
        let m = (c[0] == key) as u32
            | (((c[1] == key) as u32) << 1)
            | (((c[2] == key) as u32) << 2)
            | (((c[3] == key) as u32) << 3);
        if m != 0 {
            return Some(base + m.trailing_zeros() as usize);
        }
        base += 4;
    }
    for (i, &k) in chunks.remainder().iter().enumerate() {
        if k == key {
            return Some(base + i);
        }
    }
    None
}

/// Sorted, growable adjacency segment for one hub vertex.
///
/// Layout: `keys[0..split)` is the sorted main run, `keys[split..len)` is an
/// append-order insert tail of at most [`TAIL_CAP`] entries. `weights` and
/// `cal_ptrs` are parallel arrays carried through every reshuffle.
#[derive(Debug, Default, Clone)]
pub struct HubSegment {
    keys: Vec<u64>,
    weights: Vec<Weight>,
    cal_ptrs: Vec<u32>,
    split: usize,
    /// Every [`FENCE_STRIDE`]-th main-run key, kept contiguous and small so
    /// the first gallop stage runs over an L1-resident array instead of
    /// cache-missing through the full run; a search then only touches one
    /// 64-key window of `keys`. Rebuilt on merge/remove, never per insert.
    fences: Vec<u64>,
    /// 256-bit presence filter over the tail keys (bit `key & 255`). A fresh
    /// insert is a guaranteed miss, so most of them skip the tail scan on a
    /// clear bit instead of sweeping up to [`TAIL_CAP`] entries.
    tail_filter: [u64; 4],
    /// SWAR fingerprint lane parallel to `keys[split..]`: one
    /// [`dst_tag`] byte per tail entry, cleared on merge. Every tail slot
    /// is occupied, so no sentinel bytes appear here — the scan just
    /// bound-checks padded lanes.
    tail_tags: Vec<u8>,
}

/// Word index and bit mask of `key` in the 256-bit tail filter.
#[inline]
fn filter_slot(key: u64) -> (usize, u64) {
    let b = key & 255;
    ((b >> 6) as usize, 1u64 << (b & 63))
}

impl HubSegment {
    /// Builds a segment from an unordered edge list `(dst, weight, cal_ptr)`.
    pub fn from_edges(mut edges: Vec<(VertexId, Weight, u32)>) -> Self {
        edges.sort_unstable_by_key(|e| e.0);
        let n = edges.len();
        let mut seg = HubSegment {
            keys: Vec::with_capacity(n),
            weights: Vec::with_capacity(n),
            cal_ptrs: Vec::with_capacity(n),
            split: n,
            fences: Vec::new(),
            tail_filter: [0; 4],
            tail_tags: Vec::new(),
        };
        for (dst, w, ptr) in edges {
            seg.keys.push(dst as u64);
            seg.weights.push(w);
            seg.cal_ptrs.push(ptr);
        }
        seg.rebuild_fences();
        seg
    }

    /// Recomputes the fence array from the main run.
    fn rebuild_fences(&mut self) {
        self.fences.clear();
        let mut i = 0;
        while i < self.split {
            self.fences.push(self.keys[i]);
            i += FENCE_STRIDE;
        }
    }

    /// Number of edges held.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the segment holds no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Gallop over the sorted main run (fences first, then one window).
    #[inline]
    fn find_main(&self, key: u64) -> Option<usize> {
        if self.fences.len() > 1 {
            let start = lower_block(&self.fences, key) << FENCE_SHIFT;
            let end = (start + FENCE_STRIDE).min(self.split);
            find_key(&self.keys[start..end], key).map(|i| start + i)
        } else {
            find_key(&self.keys[..self.split], key)
        }
    }

    /// Index of `dst`, probing the main run then the tail with the seed
    /// chunked key compare (the `probe_tags = false` baseline; see
    /// [`Self::find_tagged`] for the SWAR path).
    pub fn find(&self, dst: VertexId) -> Option<usize> {
        let key = dst as u64;
        let hit = self.find_main(key);
        if hit.is_some() {
            return hit;
        }
        let (w, bit) = filter_slot(key);
        if self.tail_filter[w] & bit == 0 {
            return None;
        }
        find_key_chunked(&self.keys[self.split..], key).map(|i| self.split + i)
    }

    /// [`Self::find`] with the tail scanned through the SWAR tag lane:
    /// eight fingerprint bytes per `u64` load, full 8-byte keys touched
    /// only at candidate lanes. `tag` is the caller's hoisted
    /// [`dst_tag`]`(dst)` byte (derived once per operation in the update
    /// path).
    pub fn find_tagged(&self, dst: VertexId, tag: u8) -> Option<usize> {
        debug_assert_eq!(tag, dst_tag(dst));
        let key = dst as u64;
        let hit = self.find_main(key);
        if hit.is_some() {
            return hit;
        }
        let (w, bit) = filter_slot(key);
        if self.tail_filter[w] & bit == 0 {
            return None;
        }
        let n = self.tail_tags.len();
        let mut at = 0;
        while at < n {
            for lane in indices(match_tag(load_padded(&self.tail_tags, at), tag)) {
                let i = at + lane;
                // Padding lanes are TAG_EMPTY and cannot fingerprint-match.
                debug_assert!(i < n);
                if self.keys[self.split + i] == key {
                    return Some(self.split + i);
                }
            }
            at += GROUP;
        }
        None
    }

    /// Inserts a new edge. The caller must have checked `dst` is absent.
    pub fn insert(&mut self, dst: VertexId, weight: Weight, cal_ptr: u32) {
        self.insert_tagged(dst, weight, cal_ptr, dst_tag(dst));
    }

    /// [`Self::insert`] with the fingerprint byte precomputed by the caller.
    pub fn insert_tagged(&mut self, dst: VertexId, weight: Weight, cal_ptr: u32, tag: u8) {
        debug_assert!(self.find(dst).is_none());
        debug_assert_eq!(tag, dst_tag(dst));
        let key = dst as u64;
        let (w, bit) = filter_slot(key);
        self.tail_filter[w] |= bit;
        self.keys.push(key);
        self.weights.push(weight);
        self.cal_ptrs.push(cal_ptr);
        self.tail_tags.push(tag);
        if self.len() - self.split > TAIL_CAP {
            self.merge_tail();
        }
    }

    /// Sorts the tail, then merges it into the main run with one backward
    /// in-place two-pointer pass (the tail is first copied out, so main-run
    /// elements shift right at most once each).
    fn merge_tail(&mut self) {
        let n = self.len();
        let mut order: Vec<usize> = (self.split..n).collect();
        order.sort_unstable_by_key(|&i| self.keys[i]);
        let tail_keys: Vec<u64> = order.iter().map(|&i| self.keys[i]).collect();
        let tail_weights: Vec<Weight> = order.iter().map(|&i| self.weights[i]).collect();
        let tail_ptrs: Vec<u32> = order.iter().map(|&i| self.cal_ptrs[i]).collect();
        let mut main = self.split; // one past the next unmerged main element
        let mut tail = tail_keys.len();
        let mut out = n;
        while tail > 0 {
            out -= 1;
            if main > 0 && self.keys[main - 1] > tail_keys[tail - 1] {
                main -= 1;
                self.keys[out] = self.keys[main];
                self.weights[out] = self.weights[main];
                self.cal_ptrs[out] = self.cal_ptrs[main];
            } else {
                tail -= 1;
                self.keys[out] = tail_keys[tail];
                self.weights[out] = tail_weights[tail];
                self.cal_ptrs[out] = tail_ptrs[tail];
            }
        }
        self.split = n;
        self.tail_filter = [0; 4];
        self.tail_tags.clear();
        self.rebuild_fences();
        debug_assert!(self.keys.is_sorted());
    }

    /// Removes the edge at `idx`, returning its CAL pointer.
    ///
    /// A tail removal leaves its filter bit set — a stale bit only costs a
    /// spurious tail scan (the filter tolerates false positives, never false
    /// negatives), and the next merge clears it.
    pub fn remove(&mut self, idx: usize) -> u32 {
        self.keys.remove(idx);
        self.weights.remove(idx);
        let ptr = self.cal_ptrs.remove(idx);
        if idx < self.split {
            self.split -= 1;
            self.rebuild_fences();
        } else {
            self.tail_tags.remove(idx - self.split);
        }
        ptr
    }

    /// Checks the tail tag lane: one byte per tail entry, each the
    /// [`dst_tag`] of its key. Part of `validate_tag_invariants`.
    pub fn validate_tail_tags(&self) -> Result<(), String> {
        let tail = self.len() - self.split;
        if self.tail_tags.len() != tail {
            return Err(format!("hub tail tags {} != tail len {tail}", self.tail_tags.len()));
        }
        for (i, &t) in self.tail_tags.iter().enumerate() {
            let dst = self.keys[self.split + i] as VertexId;
            if t != dst_tag(dst) {
                return Err(format!("hub tail slot {i} (dst {dst}): tag {t:#04x}"));
            }
        }
        Ok(())
    }

    /// Destination at `idx`.
    #[inline]
    pub fn dst(&self, idx: usize) -> VertexId {
        self.keys[idx] as VertexId
    }

    /// Weight at `idx`.
    #[inline]
    pub fn weight(&self, idx: usize) -> Weight {
        self.weights[idx]
    }

    /// Overwrites the weight at `idx`.
    #[inline]
    pub fn set_weight(&mut self, idx: usize, w: Weight) {
        self.weights[idx] = w;
    }

    /// CAL pointer at `idx`.
    #[inline]
    pub fn cal_ptr(&self, idx: usize) -> u32 {
        self.cal_ptrs[idx]
    }

    /// Overwrites the CAL pointer at `idx`.
    #[inline]
    pub fn set_cal_ptr(&mut self, idx: usize, ptr: u32) {
        self.cal_ptrs[idx] = ptr;
    }

    /// Visits every edge as `(dst, weight, cal_ptr)`.
    pub fn for_each(&self, mut f: impl FnMut(VertexId, Weight, u32)) {
        for i in 0..self.len() {
            f(self.keys[i] as VertexId, self.weights[i], self.cal_ptrs[i]);
        }
    }

    /// Drains the segment into an edge list `(dst, weight, cal_ptr)`.
    pub fn into_edges(self) -> Vec<(VertexId, Weight, u32)> {
        self.keys
            .into_iter()
            .zip(self.weights)
            .zip(self.cal_ptrs)
            .map(|((k, w), p)| (k as VertexId, w, p))
            .collect()
    }

    /// Estimated heap bytes held by the segment's allocations.
    pub fn memory_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u64>()
            + self.weights.capacity() * std::mem::size_of::<Weight>()
            + self.cal_ptrs.capacity() * std::mem::size_of::<u32>()
            + self.fences.capacity() * std::mem::size_of::<u64>()
            + self.tail_tags.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_key_matches_position_on_sorted_input() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(find_key(&keys, k), Some(i));
        }
        assert_eq!(find_key(&keys, 1), None);
        assert_eq!(find_key(&keys, 3000), None);
        assert_eq!(find_key(&[], 0), None);
    }

    #[test]
    fn find_key_chunked_handles_remainders() {
        for n in 0..13 {
            let keys: Vec<u64> = (0..n).map(|i| i * 2).collect();
            for (i, &k) in keys.iter().enumerate() {
                assert_eq!(find_key_chunked(&keys, k), Some(i), "n={n}");
            }
            assert_eq!(find_key_chunked(&keys, 999), None);
        }
    }

    #[test]
    fn insert_find_remove_roundtrip() {
        let mut seg = HubSegment::from_edges(vec![(10, 1, 0), (2, 2, 1), (30, 3, 2)]);
        assert_eq!(seg.len(), 3);
        let i = seg.find(10).unwrap();
        assert_eq!((seg.dst(i), seg.weight(i), seg.cal_ptr(i)), (10, 1, 0));

        seg.insert(5, 50, 3);
        seg.insert(40, 60, 4);
        assert_eq!(seg.len(), 5);
        for d in [2, 5, 10, 30, 40] {
            assert!(seg.find(d).is_some(), "dst {d}");
        }
        assert!(seg.find(7).is_none());

        let i = seg.find(5).unwrap();
        assert_eq!(seg.remove(i), 3);
        assert!(seg.find(5).is_none());
        assert_eq!(seg.len(), 4);
    }

    #[test]
    fn tail_merge_keeps_everything_findable() {
        let mut seg = HubSegment::from_edges((0..100).map(|i| (i * 4, i, i)).collect());
        // Push well past TAIL_CAP with ids interleaved into the main run.
        for i in 0..(TAIL_CAP as u32 * 2 + 7) {
            seg.insert(i * 4 + 1, i, 100 + i);
        }
        for i in 0..100u32 {
            let at = seg.find(i * 4).unwrap();
            assert_eq!((seg.weight(at), seg.cal_ptr(at)), (i, i));
        }
        for i in 0..(TAIL_CAP as u32 * 2 + 7) {
            let at = seg.find(i * 4 + 1).unwrap();
            assert_eq!((seg.weight(at), seg.cal_ptr(at)), (i, 100 + i));
        }
        assert_eq!(seg.len(), 100 + TAIL_CAP * 2 + 7);
    }

    #[test]
    fn for_each_and_into_edges_agree() {
        let mut seg = HubSegment::from_edges(vec![(3, 30, 0), (1, 10, 1)]);
        seg.insert(2, 20, 2);
        let mut seen = Vec::new();
        seg.for_each(|d, w, p| seen.push((d, w, p)));
        let mut drained = seg.into_edges();
        drained.sort_unstable();
        seen.sort_unstable();
        assert_eq!(seen, drained);
        assert_eq!(seen, vec![(1, 10, 1), (2, 20, 2), (3, 30, 0)]);
    }

    #[test]
    fn fenced_find_covers_every_window_and_survives_removes() {
        // Main run far larger than one fence stride, odd keys absent.
        let n = FENCE_STRIDE as u32 * 10 + 13;
        let mut seg = HubSegment::from_edges((0..n).map(|i| (i * 2, i, i)).collect());
        for i in 0..n {
            assert_eq!(seg.find(i * 2), Some(i as usize), "key {}", i * 2);
            assert_eq!(seg.find(i * 2 + 1), None);
        }
        // Removing from the main run shifts every later window by one.
        let victim = seg.find(FENCE_STRIDE as u32 * 3).unwrap();
        seg.remove(victim);
        assert_eq!(seg.find(FENCE_STRIDE as u32 * 3), None);
        for i in 0..n {
            let k = i * 2;
            if k != FENCE_STRIDE as u32 * 3 {
                assert!(seg.find(k).is_some(), "key {k} lost after remove");
            }
        }
    }

    #[test]
    fn memory_bytes_nonzero_when_populated() {
        let seg = HubSegment::from_edges(vec![(1, 1, 0)]);
        assert!(seg.memory_bytes() >= 16);
    }

    #[test]
    fn tagged_find_matches_seed_through_churn() {
        let mut seg = HubSegment::from_edges((0..50).map(|i| (i * 3, i, i)).collect());
        // Grow a tail past one merge, removing from both regions along the way.
        for i in 0..(TAIL_CAP as u32 + 40) {
            seg.insert(i * 3 + 1, i, i);
            seg.validate_tail_tags().unwrap();
            if i % 17 == 0 {
                if let Some(at) = seg.find(i * 3 + 1) {
                    seg.remove(at);
                }
            }
            if i % 23 == 0 {
                if let Some(at) = seg.find((i % 50) * 3) {
                    seg.remove(at);
                }
            }
        }
        seg.validate_tail_tags().unwrap();
        for d in 0..(TAIL_CAP as u32 * 4) {
            assert_eq!(
                seg.find_tagged(d, crate::hash::dst_tag(d)),
                seg.find(d),
                "tagged/seed find diverged for {d}"
            );
        }
    }

    #[test]
    fn tail_tag_lane_tracks_removals() {
        let mut seg = HubSegment::from_edges(vec![(1, 1, 0)]);
        for d in [100u32, 200, 300, 400] {
            seg.insert(d, d, d);
        }
        // Remove from the middle of the tail; the lane must shift with it.
        let at = seg.find(200).unwrap();
        seg.remove(at);
        seg.validate_tail_tags().unwrap();
        assert!(seg.find_tagged(300, crate::hash::dst_tag(300)).is_some());
        assert!(seg.find_tagged(200, crate::hash::dst_tag(200)).is_none());
    }
}
