//! # GraphTinker
//!
//! A from-scratch Rust implementation of **GraphTinker** (Jaiyeoba &
//! Skadron, IPDPS 2019): a dynamic-graph data structure that replaces the
//! adjacency-list edgeblock chains of STINGER with a hierarchy of hashed
//! edgeblocks, combining
//!
//! * **Robin Hood Hashing** (within subblocks) to bound probe distance,
//! * **Tree-Based Hashing** ("branching out" congested subblocks into child
//!   edgeblocks in an overflow region) to grow arbitrarily while keeping the
//!   average probe distance `O(log n)` in the vertex degree,
//! * a **Scatter-Gather Hashing (SGH)** unit that densely remaps source
//!   vertex ids so only non-empty vertices occupy the main region, and
//! * a **Coarse Adjacency List (CAL)** — a compacted, sequentially
//!   streamable copy of the live edges, maintained in real time through
//!   per-edge CAL-pointers so analytics never needs a pre-processing pass.
//!
//! The crate is 100 % safe Rust: the edge store is a flat arena of
//! fixed-width blocks addressed by index, so there are no linked-list
//! pointers and no `unsafe`.
//!
//! ## Quick start
//!
//! ```
//! use gtinker_core::GraphTinker;
//! use gtinker_types::{Edge, EdgeBatch, TinkerConfig};
//!
//! let mut g = GraphTinker::new(TinkerConfig::default()).unwrap();
//! g.apply_batch(&EdgeBatch::inserts(&[
//!     Edge::unit(0, 1),
//!     Edge::unit(0, 2),
//!     Edge::unit(1, 2),
//! ]));
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.out_degree(0), 2);
//! assert!(g.contains_edge(0, 1));
//!
//! // Sequential, compacted retrieval (serves full-processing analytics):
//! let mut n = 0;
//! g.for_each_edge(|_src, _dst, _w| n += 1);
//! assert_eq!(n, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cal;
pub mod edgeblock;
pub mod epoch;
pub mod hash;
pub mod hubseg;
pub mod log;
pub mod metrics;
pub mod parallel;
pub mod pool;
pub mod rhh;
pub mod sgh;
pub mod stats;
pub mod swar;
pub mod tinker;
pub mod trace;
pub mod vertex;

pub use cal::{CalArray, CalPtr};
pub use edgeblock::{BlockArena, CellState, EdgeCell};
pub use epoch::{ReadGuard, ViewLayer};
pub use hubseg::HubSegment;
pub use metrics::{HistogramSnapshot, Metrics, MetricsSnapshot};
pub use parallel::ParallelTinker;
pub use parallel::StoreView;
pub use pool::{ShardPool, ShardStore};
pub use sgh::SghUnit;
pub use stats::{ProbeStats, StructureStats};
pub use tinker::{BatchResult, GraphTinker};
pub use trace::{SpanId, TraceDump, TraceEvent};
pub use vertex::{InlineAdj, Tier, VertexProperty, VertexPropertyArray};
