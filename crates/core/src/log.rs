//! Structured, line-oriented logging: dependency-free key=value records
//! for the serving and ingest paths.
//!
//! The [`metrics`](crate::metrics) registry aggregates (*how much*), the
//! [`trace`](crate::trace) rings time-resolve (*when*); this module
//! attributes: one greppable line per noteworthy event, carrying the
//! request id that also rides the trace spans, so a slow-query record can
//! be joined against its `/trace` timeline by a single grep.
//!
//! # Record format
//!
//! One event is one line of space-separated `key=value` tokens:
//!
//! ```text
//! ts=1723110000.123 level=warn target=serve msg="slow query" id=42 route=/query/bfs total_us=18250
//! ```
//!
//! - `ts` is wall-clock UNIX seconds with millisecond precision.
//! - `level` is one of `error`/`warn`/`info`/`debug`.
//! - `target` names the emitting subsystem (`serve`, `pool`, ...).
//! - `msg` is always double-quoted; other string values are quoted and
//!   escaped via [`Record::field_str`], numeric values are bare via
//!   [`Record::field`]. Keys are `[a-z0-9_]+`. The CI gate validates this
//!   grammar with a python regex, so it is load-bearing, not cosmetic.
//!
//! # Design
//!
//! Mirrors the two-gate pattern of `metrics`/`trace`:
//!
//! 1. The `log` cargo feature (default **on**). Off, [`Record`] is a
//!    zero-sized type and every method is an empty inline body — the true
//!    zero-cost path, covered by the log-off build check in CI.
//! 2. A runtime maximum level (one relaxed atomic load per call site),
//!    defaulting to [`Level::Warn`] so error and slow-query records are
//!    live out of the box while per-request/per-batch chatter stays off
//!    until `--log info` / `--log debug` opts in.
//!
//! A suppressed record costs one load and one branch; an emitted record
//! formats into a single `String` and writes it to the sink in one call
//! (stderr by default; a capture buffer under [`set_capture`] so tests
//! and the `fig_log_overhead` bench can observe lines without scraping a
//! child process).

#[cfg(feature = "log")]
use std::sync::atomic::{AtomicU8, Ordering};
#[cfg(feature = "log")]
use std::sync::Mutex;

/// Severity of a record, ordered: `Error < Warn < Info < Debug`. A record
/// is emitted when its level is at or above the runtime threshold (i.e.
/// numerically `<=` the configured maximum verbosity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// A request or subsystem failed.
    Error = 1,
    /// Something degraded or crossed a threshold (slow queries).
    Warn = 2,
    /// Per-request / per-connection lifecycle records.
    Info = 3,
    /// High-volume diagnostics (per-batch dispatch records).
    Debug = 4,
}

impl Level {
    /// The lowercase name used in the `level=` token.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a level name (`error`/`warn`/`info`/`debug`).
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

#[cfg(feature = "log")]
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

#[cfg(feature = "log")]
static CAPTURE: Mutex<Option<Vec<String>>> = Mutex::new(None);

/// Sets the runtime verbosity ceiling; `None` disables logging entirely.
/// A no-op when the `log` feature is compiled out. Starts at
/// [`Level::Warn`].
pub fn set_max_level(level: Option<Level>) {
    #[cfg(feature = "log")]
    MAX_LEVEL.store(level.map(|l| l as u8).unwrap_or(0), Ordering::Relaxed);
    #[cfg(not(feature = "log"))]
    let _ = level;
}

/// The current runtime verbosity ceiling (`None` = off). Always `None`
/// when the `log` feature is compiled out.
pub fn max_level() -> Option<Level> {
    #[cfg(feature = "log")]
    {
        match MAX_LEVEL.load(Ordering::Relaxed) {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            4 => Some(Level::Debug),
            _ => None,
        }
    }
    #[cfg(not(feature = "log"))]
    {
        None
    }
}

/// Applies a level by CLI name: `off` disables, otherwise one of the
/// [`Level::parse`] names. Returns `false` (and changes nothing) for an
/// unknown name.
pub fn set_level_by_name(name: &str) -> bool {
    if name == "off" {
        set_max_level(None);
        return true;
    }
    match Level::parse(name) {
        Some(l) => {
            set_max_level(Some(l));
            true
        }
        None => false,
    }
}

/// Whether a record at `level` would currently be emitted — one relaxed
/// load. Always `false` when the `log` feature is compiled out.
#[inline]
pub fn enabled(level: Level) -> bool {
    #[cfg(feature = "log")]
    {
        level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "log"))]
    {
        let _ = level;
        false
    }
}

/// Redirects emitted lines into an in-process buffer (drained by
/// [`drain_capture`]) instead of stderr. Tests and the log-overhead bench
/// use this to observe records without scraping a child process. A no-op
/// when the `log` feature is compiled out.
pub fn set_capture(on: bool) {
    #[cfg(feature = "log")]
    {
        let mut cap = CAPTURE.lock().expect("log capture poisoned");
        *cap = if on { Some(Vec::new()) } else { None };
    }
    #[cfg(not(feature = "log"))]
    let _ = on;
}

/// Takes every line captured since the last drain (empty when capture is
/// off or the feature is compiled out).
pub fn drain_capture() -> Vec<String> {
    #[cfg(feature = "log")]
    {
        let mut cap = CAPTURE.lock().expect("log capture poisoned");
        match cap.as_mut() {
            Some(lines) => std::mem::take(lines),
            None => Vec::new(),
        }
    }
    #[cfg(not(feature = "log"))]
    {
        Vec::new()
    }
}

/// A structured record under construction. Obtained from [`record`] (or
/// the [`error`]/[`warn`]/[`info`]/[`debug`] shorthands); add fields,
/// then [`emit`](Self::emit). When the record's level is suppressed every
/// method is a no-op on a `None` buffer, so building costs nothing beyond
/// the initial level check.
#[must_use = "a record does nothing until .emit()"]
#[derive(Debug)]
pub struct Record {
    #[cfg(feature = "log")]
    buf: Option<String>,
}

/// Starts a record at `level` from subsystem `target`. The `ts`, `level`
/// and `target` tokens are pre-filled; chain [`Record::msg`] and fields,
/// then [`Record::emit`].
#[inline]
pub fn record(level: Level, target: &str) -> Record {
    #[cfg(feature = "log")]
    {
        if !enabled(level) {
            return Record { buf: None };
        }
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        Record { buf: Some(format!("ts={ts:.3} level={} target={target}", level.name())) }
    }
    #[cfg(not(feature = "log"))]
    {
        let _ = (level, target);
        Record {}
    }
}

/// Shorthand for [`record`]`(Level::Error, target)`.
#[inline]
pub fn error(target: &str) -> Record {
    record(Level::Error, target)
}

/// Shorthand for [`record`]`(Level::Warn, target)`.
#[inline]
pub fn warn(target: &str) -> Record {
    record(Level::Warn, target)
}

/// Shorthand for [`record`]`(Level::Info, target)`.
#[inline]
pub fn info(target: &str) -> Record {
    record(Level::Info, target)
}

/// Shorthand for [`record`]`(Level::Debug, target)`.
#[inline]
pub fn debug(target: &str) -> Record {
    record(Level::Debug, target)
}

impl Record {
    /// Sets the quoted `msg="..."` token (conventionally right after the
    /// `target` token; call it first).
    #[inline]
    pub fn msg(self, m: &str) -> Self {
        self.field_str("msg", m)
    }

    /// Appends `key=value` with a bare (unquoted) value — use for numbers
    /// and other values with no spaces or quotes.
    #[inline]
    #[cfg_attr(not(feature = "log"), allow(unused_mut))]
    pub fn field(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        #[cfg(feature = "log")]
        if let Some(buf) = self.buf.as_mut() {
            use std::fmt::Write;
            let _ = write!(buf, " {key}={value}");
        }
        #[cfg(not(feature = "log"))]
        let _ = (key, value);
        self
    }

    /// Appends `key="value"` with the value quoted and escaped (quotes,
    /// backslashes and control characters never break the line grammar).
    #[inline]
    #[cfg_attr(not(feature = "log"), allow(unused_mut))]
    pub fn field_str(mut self, key: &str, value: &str) -> Self {
        #[cfg(feature = "log")]
        if let Some(buf) = self.buf.as_mut() {
            use std::fmt::Write;
            let _ = write!(buf, " {key}=\"");
            for c in value.chars() {
                match c {
                    '"' => buf.push_str("\\\""),
                    '\\' => buf.push_str("\\\\"),
                    c if (c as u32) < 0x20 => buf.push(' '),
                    c => buf.push(c),
                }
            }
            buf.push('"');
        }
        #[cfg(not(feature = "log"))]
        let _ = (key, value);
        self
    }

    /// Writes the finished line to the sink (stderr, or the capture
    /// buffer when [`set_capture`] is on). A suppressed record emits
    /// nothing.
    pub fn emit(self) {
        #[cfg(feature = "log")]
        if let Some(line) = self.buf {
            let mut cap = CAPTURE.lock().expect("log capture poisoned");
            match cap.as_mut() {
                Some(lines) => lines.push(line),
                None => {
                    drop(cap);
                    eprintln!("{line}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that touch the global level or capture buffer.
    #[cfg(feature = "log")]
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn level_names_round_trip() {
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(l.name()), Some(l));
        }
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    #[cfg(feature = "log")]
    fn records_are_keyvalue_lines() {
        let _g = LOCK.lock().unwrap();
        set_capture(true);
        set_max_level(Some(Level::Debug));
        info("serve")
            .msg("slow query")
            .field("id", 42)
            .field_str("route", "/query/bfs")
            .field("total_us", 18_250)
            .emit();
        let lines = drain_capture();
        set_capture(false);
        set_max_level(Some(Level::Warn));
        assert_eq!(lines.len(), 1);
        let line = &lines[0];
        assert!(line.starts_with("ts="), "got: {line}");
        assert!(line.contains(" level=info target=serve msg=\"slow query\""), "got: {line}");
        assert!(line.ends_with("id=42 route=\"/query/bfs\" total_us=18250"), "got: {line}");
    }

    #[test]
    #[cfg(feature = "log")]
    fn suppressed_levels_emit_nothing() {
        let _g = LOCK.lock().unwrap();
        set_capture(true);
        set_max_level(Some(Level::Warn));
        debug("pool").msg("hidden").emit();
        info("pool").msg("hidden too").emit();
        warn("pool").msg("visible").emit();
        error("pool").msg("visible").emit();
        let lines = drain_capture();
        set_capture(false);
        assert_eq!(lines.len(), 2, "got: {lines:?}");
        assert!(!enabled(Level::Info) && enabled(Level::Warn));
    }

    #[test]
    #[cfg(feature = "log")]
    fn off_disables_everything_and_names_parse() {
        let _g = LOCK.lock().unwrap();
        set_capture(true);
        assert!(set_level_by_name("off"));
        assert_eq!(max_level(), None);
        error("serve").msg("dropped").emit();
        assert!(drain_capture().is_empty());
        assert!(set_level_by_name("debug"));
        assert_eq!(max_level(), Some(Level::Debug));
        assert!(!set_level_by_name("verbose"));
        assert_eq!(max_level(), Some(Level::Debug), "unknown name must not change the level");
        set_capture(false);
        set_max_level(Some(Level::Warn));
    }

    #[test]
    #[cfg(feature = "log")]
    fn string_values_are_escaped() {
        let _g = LOCK.lock().unwrap();
        set_capture(true);
        set_max_level(Some(Level::Warn));
        warn("serve").msg("a\"b\\c\nd").emit();
        let lines = drain_capture();
        set_capture(false);
        assert!(lines[0].contains("msg=\"a\\\"b\\\\c d\""), "got: {}", lines[0]);
    }

    #[test]
    #[cfg(not(feature = "log"))]
    fn feature_off_is_inert() {
        set_max_level(Some(Level::Debug));
        assert_eq!(max_level(), None);
        assert!(!enabled(Level::Error));
        set_capture(true);
        error("serve").msg("x").field("k", 1).field_str("s", "v").emit();
        assert!(drain_capture().is_empty());
        assert!(set_level_by_name("debug") && !set_level_by_name("nope"));
    }
}
