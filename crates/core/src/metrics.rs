//! Process-wide observability registry: relaxed-atomic counters, gauges,
//! and fixed-bucket histograms instrumenting the hot paths of the store
//! ([`rhh`](crate::rhh) probes/displacements, [`GraphTinker`](crate::GraphTinker)
//! branch-outs and compaction work, [`SghUnit`](crate::SghUnit) remap probes,
//! [`ShardPool`](crate::ShardPool) queueing) plus the persistence and engine
//! layers in the downstream crates.
//!
//! # Design
//!
//! Everything is hand-rolled on `std::sync::atomic` — no external metric
//! crates. The hot-path cost budget is a single `Relaxed` read-modify-write
//! per event:
//!
//! - [`Counter::inc`] / [`Counter::add`] are one `fetch_add`.
//! - [`Histogram::record`] maps the value to one of [`HIST_BUCKETS`] fixed
//!   buckets (exact below [`HIST_LINEAR`], power-of-two ranges above) and
//!   does one `fetch_add` on that bucket. Count, max, and mean are *derived*
//!   from the buckets at snapshot time instead of being maintained online.
//! - [`Gauge`] tracks a balanced up/down quantity (queue depth) and is the
//!   one primitive that ignores the runtime enable flag, so increments and
//!   decrements always pair up even if collection is toggled mid-flight.
//!
//! Two independent switches control collection:
//!
//! 1. The `metrics` cargo feature (default **on**). With the feature off the
//!    primitives compile to zero-sized types whose methods are empty `#[inline]`
//!    bodies — the true zero-cost path, proven behaviour-neutral by the
//!    metrics-off parity tests and CI build check.
//! 2. A runtime flag ([`set_enabled`]) checked with one relaxed load inside
//!    each recording method. It exists so a single binary (the
//!    `fig_metrics_overhead` bench) can measure enabled-vs-disabled ingest
//!    throughput back to back.
//!
//! The registry is a process-wide static ([`global`]). [`Metrics::snapshot`]
//! materialises it into a plain-data [`MetricsSnapshot`] with hand-rolled
//! JSON ([`MetricsSnapshot::to_json`]) and Prometheus-style text
//! ([`MetricsSnapshot::to_prometheus`]) renderings.

#[cfg(feature = "metrics")]
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of buckets in every [`Histogram`].
pub const HIST_BUCKETS: usize = 40;

/// Values below this threshold get an exact bucket each; larger values fall
/// into power-of-two ranges.
pub const HIST_LINEAR: u64 = 16;

/// Maps a recorded value to its bucket index: exact for `v < HIST_LINEAR`,
/// then one bucket per power-of-two range, clamped to the last bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < HIST_LINEAR {
        v as usize
    } else {
        let bits = 64 - v.leading_zeros() as usize; // >= 5 here
        (HIST_LINEAR as usize + bits - 5).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the overflow bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i < HIST_LINEAR as usize {
        i as u64
    } else if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i - 11)) - 1
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i <= HIST_LINEAR as usize {
        i as u64
    } else {
        bucket_upper_bound(i - 1) + 1
    }
}

#[cfg(feature = "metrics")]
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether runtime collection is currently enabled. Always `false` when the
/// `metrics` feature is compiled out.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "metrics")]
    {
        ENABLED.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "metrics"))]
    {
        false
    }
}

/// Toggles runtime collection. A no-op when the `metrics` feature is
/// compiled out. Collection starts enabled.
pub fn set_enabled(on: bool) {
    #[cfg(feature = "metrics")]
    ENABLED.store(on, Ordering::Relaxed);
    #[cfg(not(feature = "metrics"))]
    let _ = on;
}

/// Starts a wall-clock timer for latency histograms, or `None` when
/// collection is off so the `Instant::now()` syscall is skipped too.
/// Pair with [`Histogram::record_since`].
#[inline]
pub fn timer() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// A monotonically increasing event count (relaxed atomic).
#[cfg(feature = "metrics")]
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

#[cfg(feature = "metrics")]
impl Counter {
    /// Creates a zeroed counter (const so it can live in a static).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one to the counter if collection is enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the counter if collection is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// No-op stand-in compiled when the `metrics` feature is off.
#[cfg(not(feature = "metrics"))]
#[derive(Debug, Default)]
pub struct Counter;

#[cfg(not(feature = "metrics"))]
impl Counter {
    /// Creates the zero-sized no-op counter.
    pub const fn new() -> Self {
        Counter
    }

    /// No-op.
    #[inline]
    pub fn inc(&self) {}

    /// No-op.
    #[inline]
    pub fn add(&self, _n: u64) {}

    /// Always zero.
    pub fn get(&self) -> u64 {
        0
    }

    /// No-op.
    pub fn reset(&self) {}
}

/// A balanced up/down quantity (e.g. in-flight batch count). Unlike
/// [`Counter`] and [`Histogram`], a gauge does **not** consult the runtime
/// enable flag: increments and decrements must pair up even if collection
/// is toggled between them, otherwise the gauge would drift permanently.
#[cfg(feature = "metrics")]
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

#[cfg(feature = "metrics")]
impl Gauge {
    /// Creates a zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Overwrites the value (used by gauges published from store state,
    /// e.g. memory footprints, rather than maintained by paired inc/dec).
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the gauge to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// No-op stand-in compiled when the `metrics` feature is off.
#[cfg(not(feature = "metrics"))]
#[derive(Debug, Default)]
pub struct Gauge;

#[cfg(not(feature = "metrics"))]
impl Gauge {
    /// Creates the zero-sized no-op gauge.
    pub const fn new() -> Self {
        Gauge
    }

    /// No-op.
    #[inline]
    pub fn inc(&self) {}

    /// No-op.
    #[inline]
    pub fn dec(&self) {}

    /// No-op.
    #[inline]
    pub fn set(&self, _v: i64) {}

    /// Always zero.
    pub fn get(&self) -> i64 {
        0
    }

    /// No-op.
    pub fn reset(&self) {}
}

/// A fixed-bucket histogram ([`HIST_BUCKETS`] buckets: exact below
/// [`HIST_LINEAR`], power-of-two ranges above). [`record`](Self::record) is a
/// single relaxed `fetch_add`; count/max/mean are derived at snapshot time.
#[cfg(feature = "metrics")]
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

#[cfg(feature = "metrics")]
impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(feature = "metrics")]
impl Histogram {
    /// Creates a zeroed histogram (const so it can live in a static).
    pub const fn new() -> Self {
        Histogram { buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS] }
    }

    /// Records one observation of `v` if collection is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the elapsed nanoseconds since `start` (from [`timer`]);
    /// a no-op when `start` is `None`.
    #[inline]
    pub fn record_since(&self, start: Option<Instant>) {
        if let Some(t) = start {
            self.record(t.elapsed().as_nanos() as u64);
        }
    }

    /// Materialises the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Resets all buckets to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// No-op stand-in compiled when the `metrics` feature is off.
#[cfg(not(feature = "metrics"))]
#[derive(Debug, Default)]
pub struct Histogram;

#[cfg(not(feature = "metrics"))]
impl Histogram {
    /// Creates the zero-sized no-op histogram.
    pub const fn new() -> Self {
        Histogram
    }

    /// No-op.
    #[inline]
    pub fn record(&self, _v: u64) {}

    /// No-op.
    #[inline]
    pub fn record_since(&self, _start: Option<Instant>) {}

    /// An all-zero snapshot (same shape as the instrumented build).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot { buckets: vec![0; HIST_BUCKETS] }
    }

    /// No-op.
    pub fn reset(&self) {}
}

/// Plain-data view of a [`Histogram`] with derived statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts, length [`HIST_BUCKETS`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Inclusive upper bound of the highest non-empty bucket — every
    /// recorded value is `<=` this. Zero when empty.
    pub fn max_bound(&self) -> u64 {
        self.buckets.iter().rposition(|&c| c > 0).map(bucket_upper_bound).unwrap_or(0)
    }

    /// Bucket-resolution quantile estimate: the inclusive upper bound of
    /// the bucket holding the `q`-quantile observation (lower bound for
    /// the open-ended overflow bucket). Exact for values below
    /// [`HIST_LINEAR`]; within one power-of-two range above it. Zero when
    /// empty.
    pub fn quantile_approx(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based: p50 of 10 samples is
        // the 5th, p99 of 10 samples is the 10th.
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return if i >= HIST_BUCKETS - 1 {
                    bucket_lower_bound(i)
                } else {
                    bucket_upper_bound(i)
                };
            }
        }
        self.max_bound()
    }

    /// `(p50, p95, p99)` via [`quantile_approx`](Self::quantile_approx).
    pub fn quantiles(&self) -> (u64, u64, u64) {
        (self.quantile_approx(0.50), self.quantile_approx(0.95), self.quantile_approx(0.99))
    }

    /// Bucket-midpoint approximation of the mean. Exact for values below
    /// [`HIST_LINEAR`]; within a factor of ~1.5 above it.
    pub fn mean_approx(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo = bucket_lower_bound(i) as f64;
            // Clamp the open-ended overflow bucket to its lower bound.
            let hi = if i >= HIST_BUCKETS - 1 { lo } else { bucket_upper_bound(i) as f64 };
            sum += c as f64 * (lo + hi) / 2.0;
        }
        sum / count as f64
    }

    /// Per-bucket saturating subtraction: the observations present in
    /// `self` but not in `baseline`. With a cumulative snapshot and an
    /// earlier baseline of the same histogram this is exact (buckets only
    /// grow), which is what gives [`WindowedHistogram`] its sliding
    /// window.
    pub fn saturating_diff(&self, baseline: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| c.saturating_sub(baseline.buckets.get(i).copied().unwrap_or(0)))
            .collect();
        HistogramSnapshot { buckets }
    }
}

/// Number of baseline snapshots a [`WindowedHistogram`] retains; together
/// with the caller's rotation cadence this bounds the window span (e.g.
/// rotating every 10 s keeps roughly the last minute of observations).
pub const WINDOW_SLOTS: usize = 6;

/// A [`Histogram`] paired with a ring of baseline [`HistogramSnapshot`]s
/// so quantiles can be reported over a sliding window instead of
/// process-lifetime.
///
/// [`record`](Self::record) stays the single relaxed `fetch_add` of the
/// underlying histogram — the ring is touched only by the (caller-paced,
/// coarse) [`rotate`](Self::rotate) and the read-side
/// [`window`](Self::window), both behind a `Mutex` that is never on the
/// hot path. `rotate()` pushes the current cumulative snapshot as a new
/// baseline and evicts beyond [`WINDOW_SLOTS`]; `window()` subtracts the
/// oldest retained baseline from the current cumulative counts, so
/// observations older than `WINDOW_SLOTS` rotations age out.
#[derive(Debug, Default)]
pub struct WindowedHistogram {
    hist: Histogram,
    baselines: Mutex<Vec<HistogramSnapshot>>,
}

impl WindowedHistogram {
    /// Creates an empty windowed histogram (const so it can live in a
    /// static).
    pub const fn new() -> Self {
        WindowedHistogram { hist: Histogram::new(), baselines: Mutex::new(Vec::new()) }
    }

    /// Records one observation of `v` (single relaxed `fetch_add`).
    #[inline]
    pub fn record(&self, v: u64) {
        self.hist.record(v);
    }

    /// Closes the current slot: the cumulative counts become the newest
    /// baseline and baselines older than [`WINDOW_SLOTS`] rotations are
    /// evicted, sliding the window forward.
    pub fn rotate(&self) {
        let snap = self.hist.snapshot();
        let mut ring = self.baselines.lock().expect("window baselines poisoned");
        ring.push(snap);
        while ring.len() > WINDOW_SLOTS {
            ring.remove(0);
        }
    }

    /// The observations recorded within the last [`WINDOW_SLOTS`]
    /// rotations (everything since startup until the first rotation).
    pub fn window(&self) -> HistogramSnapshot {
        let snap = self.hist.snapshot();
        let ring = self.baselines.lock().expect("window baselines poisoned");
        match ring.first() {
            Some(oldest) => snap.saturating_diff(oldest),
            None => snap,
        }
    }

    /// The process-lifetime cumulative snapshot (ignores the window).
    pub fn cumulative(&self) -> HistogramSnapshot {
        self.hist.snapshot()
    }
}

macro_rules! registry {
    (
        $(#[$meta:meta])* struct $Reg:ident / $Snap:ident {
            $( $(#[$fmeta:meta])* $name:ident : $kind:ident ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        pub struct $Reg {
            $( $(#[$fmeta])* pub $name : registry!(@live $kind), )*
        }

        impl $Reg {
            /// Creates a zeroed registry (const so it can live in a static).
            pub const fn new() -> Self {
                $Reg { $( $name : registry!(@new $kind), )* }
            }

            /// Materialises every metric into a plain-data snapshot.
            pub fn snapshot(&self) -> $Snap {
                $Snap { $( $name : registry!(@snap self.$name, $kind), )* }
            }

            /// Resets every metric to zero.
            pub fn reset(&self) {
                $( self.$name.reset(); )*
            }
        }

        /// Plain-data view of every metric in the registry at one instant.
        /// Renderable as JSON ([`to_json`](Self::to_json)) or
        /// Prometheus-style text ([`to_prometheus`](Self::to_prometheus)).
        #[derive(Debug, Clone, Default, PartialEq)]
        pub struct $Snap {
            $( $(#[$fmeta])* pub $name : registry!(@snapty $kind), )*
        }

        impl $Snap {
            /// Renders the snapshot as a JSON object, one `"name": value`
            /// line per scalar so shell pipelines can grep/sed fields out.
            pub fn to_json(&self) -> String {
                let mut parts: Vec<String> = Vec::new();
                $( registry!(@json parts, stringify!($name), self.$name, $kind); )*
                format!("{{\n{}\n}}", parts.join(",\n"))
            }

            /// Renders the snapshot as Prometheus-style exposition text
            /// (`gtinker_`-prefixed metric families).
            pub fn to_prometheus(&self) -> String {
                let mut out = String::new();
                $( registry!(@prom out, stringify!($name), self.$name, $kind); )*
                out
            }
        }
    };

    (@live counter) => { Counter };
    (@live gauge) => { Gauge };
    (@live histogram) => { Histogram };
    (@new counter) => { Counter::new() };
    (@new gauge) => { Gauge::new() };
    (@new histogram) => { Histogram::new() };
    (@snap $f:expr, counter) => { $f.get() };
    (@snap $f:expr, gauge) => { $f.get() };
    (@snap $f:expr, histogram) => { $f.snapshot() };
    (@snapty counter) => { u64 };
    (@snapty gauge) => { i64 };
    (@snapty histogram) => { HistogramSnapshot };
    (@json $parts:ident, $n:expr, $v:expr, counter) => {
        $parts.push(format!("  \"{}\": {}", $n, $v));
    };
    (@json $parts:ident, $n:expr, $v:expr, gauge) => {
        $parts.push(format!("  \"{}\": {}", $n, $v));
    };
    (@json $parts:ident, $n:expr, $v:expr, histogram) => {
        $parts.push(hist_json($n, &$v));
    };
    (@prom $out:ident, $n:expr, $v:expr, counter) => {
        prom_scalar(&mut $out, $n, "counter", $v as i64);
    };
    (@prom $out:ident, $n:expr, $v:expr, gauge) => {
        prom_scalar(&mut $out, $n, "gauge", $v);
    };
    (@prom $out:ident, $n:expr, $v:expr, histogram) => {
        prom_hist(&mut $out, $n, &$v);
    };
}

registry! {
    /// The full metric catalogue. Field names double as the metric names in
    /// both renderings (prefixed `gtinker_` in Prometheus text).
    struct Metrics / MetricsSnapshot {
        /// Edge-cells inspected per RHH placement: one observation per
        /// insertion attempt, recording how many full-width cells the
        /// placement touched. The unit is identical on the SWAR tagged
        /// fast path (which jumps via the tag lane and touches ~1 cell)
        /// and the seed scalar walk, so before/after distributions in
        /// `BENCH_probe_swar.json` compare directly.
        rhh_probe: histogram,
        /// Robin Hood swaps: residents displaced to seat a richer arrival.
        rhh_displacements: counter,
        /// Inserts that ran off the end of a full subblock (workblock fetch
        /// / branch-out follows).
        rhh_overflows: counter,
        /// 8-wide SWAR tag groups scanned across RHH subblock probes (one
        /// per `u64` fingerprint load). Nonzero proves the tag engine is
        /// live; together with `rhh_tag_false_positive` it prices the scan
        /// in cells-inspected terms.
        rhh_tag_group_scans: counter,
        /// Tag fingerprint candidates whose full destination compare then
        /// missed (7-bit collisions). The false-positive *rate* is this
        /// over scanned tag lanes (`rhh_tag_group_scans` × 8); the CI
        /// probe smoke bounds it at 2 %.
        rhh_tag_false_positive: counter,
        /// SGH source-remap placement probe distances: recorded when a new
        /// source is inserted (and for every key on a grow-rehash), not on
        /// lookups — the lookup path is too hot to instrument, and a key's
        /// placement probe bounds its lookup probe.
        sgh_probe: histogram,
        /// SGH table rehashes (grow + reinsert-all).
        sgh_grows: counter,
        /// Distinct source vertices registered in the SGH remap — the live
        /// vertex gauge served by the telemetry `/healthz` endpoint. A
        /// gauge (not a counter) so it ignores the runtime flag and never
        /// undercounts a toggled run.
        sgh_sources: gauge,
        /// Depth at which each tree branch-out created a child edgeblock.
        tinker_branch_depth: histogram,
        /// New edges inserted.
        tinker_inserts: counter,
        /// Weight updates to already-present edges.
        tinker_updates: counter,
        /// Edges deleted.
        tinker_deletes: counter,
        /// Deletes that found no matching edge.
        tinker_delete_misses: counter,
        /// Cells pulled toward the root by compact-mode backfill.
        tinker_backfill_moves: counter,
        /// Child edgeblocks returned to the free list by compaction.
        tinker_blocks_freed: counter,
        /// CAL array rebuilds triggered by invalid-slot accumulation.
        tinker_cal_rebuilds: counter,
        /// Batches dispatched to the shard pool.
        pool_batches: counter,
        /// Per-worker claim passes over dispatched batches.
        pool_claims: counter,
        /// Operations claimed by pool workers (sums to ops across shards).
        pool_claimed_ops: counter,
        /// `settle()` calls that actually had to wait for in-flight batches.
        pool_settle_waits: counter,
        /// In-flight (submitted, not yet reaped) pool batches right now.
        pool_queue_depth: gauge,
        /// WAL records appended.
        wal_appends: counter,
        /// WAL append latency in nanoseconds (encode + write + any sync).
        wal_append_ns: histogram,
        /// Explicit WAL data syncs.
        wal_syncs: counter,
        /// WAL sync latency in nanoseconds.
        wal_sync_ns: histogram,
        /// Snapshot files written.
        snapshot_writes: counter,
        /// Snapshot encode time in nanoseconds.
        snapshot_encode_ns: histogram,
        /// Snapshot file write+rename time in nanoseconds.
        snapshot_write_ns: histogram,
        /// Analytics engine iterations completed.
        engine_iterations: counter,
        /// Total engine gather/scatter processing time, nanoseconds.
        engine_process_ns: counter,
        /// Total engine apply-phase time, nanoseconds.
        engine_apply_ns: counter,
        /// Deletion batches that forced a cold recompute because
        /// invalidate-and-repair was unavailable (legacy monotone-only
        /// incremental mode) — never a silent fallback.
        engine_delete_fallbacks: counter,
        /// Vertices invalidated by delete-cone sweeps (tag-and-sweep over
        /// the witness forest), summed across repair batches.
        engine_repair_invalidated: counter,
        /// Engine iterations spent repairing invalidated cones.
        engine_repair_iters: counter,
        /// Active vertices currently stored in the inline tier.
        tier_inline_vertices: gauge,
        /// Active vertices currently stored in the RHH edgeblock tier.
        tier_blocks_vertices: gauge,
        /// Active vertices currently stored in the dense hub tier.
        tier_hub_vertices: gauge,
        /// Tier promotions (inline→blocks and blocks→hub).
        tier_promotions: counter,
        /// Tier demotions (hub→blocks and blocks→inline).
        tier_demotions: counter,
        /// Estimated inline-tier adjacency bytes (set from store state).
        memory_inline_bytes: gauge,
        /// Estimated edgeblock-arena bytes (set from store state).
        memory_blocks_bytes: gauge,
        /// Estimated hub-segment bytes (set from store state).
        memory_hub_bytes: gauge,
        /// Estimated CAL bytes (set from store state).
        memory_cal_bytes: gauge,
        /// Estimated total structure bytes (set from store state).
        memory_total_bytes: gauge,
        /// Epoch pins taken by readers (one per `ReadGuard`).
        epoch_pins: counter,
        /// `ReadGuard`s currently alive (replicas frozen while > 0).
        epoch_active_pins: gauge,
        /// Backlogged batches folded into read replicas (deferred apply).
        epoch_fold_batches: counter,
        /// Un-folded batches queued behind the read replicas right now.
        epoch_backlog_depth: gauge,
        /// HTTP query-API requests served (the `/query/*` family plus
        /// `/neighbors` and `/degree`).
        serve_queries: counter,
        /// End-to-end query handler latency in nanoseconds.
        serve_query_ns: histogram,
    }
}

fn hist_json(name: &str, h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
    let (p50, p95, p99) = h.quantiles();
    format!(
        "  \"{name}\": {{\"count\": {}, \"max_le\": {}, \"mean_approx\": {:.3}, \
         \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}, \
         \"buckets\": [{}]}}",
        h.count(),
        h.max_bound(),
        h.mean_approx(),
        buckets.join(", ")
    )
}

fn prom_scalar(out: &mut String, name: &str, kind: &str, v: i64) {
    out.push_str(&format!("# TYPE gtinker_{name} {kind}\ngtinker_{name} {v}\n"));
}

fn prom_hist(out: &mut String, name: &str, h: &HistogramSnapshot) {
    out.push_str(&format!("# TYPE gtinker_{name} histogram\n"));
    let mut cum = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        cum += c;
        // Only emit boundaries that carry information (non-empty bucket or
        // the first/last) to keep the exposition readable.
        if c > 0 {
            let le = if i >= HIST_BUCKETS - 1 {
                "+Inf".to_string()
            } else {
                bucket_upper_bound(i).to_string()
            };
            out.push_str(&format!("gtinker_{name}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
    }
    let count = h.count();
    out.push_str(&format!("gtinker_{name}_bucket{{le=\"+Inf\"}} {count}\n"));
    out.push_str(&format!("gtinker_{name}_sum {:.0}\n", h.mean_approx() * count as f64));
    out.push_str(&format!("gtinker_{name}_count {count}\n"));
    // Bucket-derived quantile estimates, rendered as gauges (a Prometheus
    // histogram family cannot carry quantile series itself).
    for (q, v) in [
        ("p50", h.quantile_approx(0.50)),
        ("p95", h.quantile_approx(0.95)),
        ("p99", h.quantile_approx(0.99)),
    ] {
        out.push_str(&format!("# TYPE gtinker_{name}_{q} gauge\ngtinker_{name}_{q} {v}\n"));
    }
}

static GLOBAL: Metrics = Metrics::new();

/// The process-wide metric registry that all instrumentation hooks feed.
#[inline]
pub fn global() -> &'static Metrics {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that flip the global enable flag or reset the
    /// global registry, since the rest of the suite runs in parallel.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn bucket_bounds_are_consistent() {
        for v in [0u64, 1, 5, 15, 16, 17, 31, 32, 1000, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower_bound(i) <= v, "lower({i}) <= {v}");
            assert!(v <= bucket_upper_bound(i), "{v} <= upper({i})");
        }
        // Buckets tile the axis with no gaps.
        for i in 1..HIST_BUCKETS {
            assert_eq!(bucket_lower_bound(i), bucket_upper_bound(i - 1) + 1);
        }
    }

    #[test]
    #[cfg(feature = "metrics")]
    fn histogram_derives_count_max_mean() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        let h = Histogram::new();
        for v in [0u64, 3, 3, 15, 40] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        // 40 lands in the 32..=63 bucket.
        assert_eq!(s.max_bound(), 63);
        assert!(s.max_bound() >= 40);
        // Exact values below HIST_LINEAR contribute exactly.
        assert!(s.mean_approx() > 0.0);
    }

    #[test]
    #[cfg(feature = "metrics")]
    fn disabled_records_nothing_but_gauge_still_moves() {
        let _g = LOCK.lock().unwrap();
        set_enabled(false);
        let c = Counter::new();
        let h = Histogram::new();
        let g = Gauge::new();
        c.inc();
        h.record(7);
        g.inc();
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count(), 0);
        assert_eq!(g.get(), 1);
        assert!(timer().is_none());
        set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
        assert!(timer().is_some());
    }

    #[test]
    fn quantiles_from_buckets() {
        // Empty histogram: all quantiles zero.
        assert_eq!(HistogramSnapshot { buckets: vec![0; HIST_BUCKETS] }.quantiles(), (0, 0, 0));
        // 100 observations: 90 at value 2, 9 at value 10, 1 at value 40.
        let mut buckets = vec![0u64; HIST_BUCKETS];
        buckets[bucket_index(2)] = 90;
        buckets[bucket_index(10)] = 9;
        buckets[bucket_index(40)] = 1;
        let h = HistogramSnapshot { buckets };
        let (p50, p95, p99) = h.quantiles();
        assert_eq!(p50, 2, "p50 lands in the exact value-2 bucket");
        assert_eq!(p95, 10, "rank 95 of 100 is among the nine 10s");
        // Rank 99 is still a 10; rank 100 (p100 == max) is the 40.
        assert_eq!(p99, 10);
        assert_eq!(h.quantile_approx(1.0), 63, "40 lands in the 32..=63 bucket");
        // Quantiles are monotone in q.
        assert!(p50 <= p95 && p95 <= p99);
        // Overflow bucket reports its lower bound, not u64::MAX.
        let mut top = vec![0u64; HIST_BUCKETS];
        top[HIST_BUCKETS - 1] = 5;
        let t = HistogramSnapshot { buckets: top };
        assert_eq!(t.quantile_approx(0.5), bucket_lower_bound(HIST_BUCKETS - 1));
    }

    #[test]
    fn snapshot_renders_json_and_prometheus() {
        let _g = LOCK.lock().unwrap();
        let m = Metrics::new();
        m.tinker_inserts.add(3);
        m.rhh_probe.record(2);
        m.pool_queue_depth.inc();
        let s = m.snapshot();
        let json = s.to_json();
        assert!(json.starts_with("{\n") && json.trim_end().ends_with('}'));
        let prom = s.to_prometheus();
        assert!(prom.contains("# TYPE gtinker_tinker_inserts counter"));
        assert!(prom.contains("gtinker_rhh_probe_count"));
        if cfg!(feature = "metrics") {
            assert!(json.contains("\"tinker_inserts\": 3"));
            assert!(json.contains("\"pool_queue_depth\": 1"));
            assert!(prom.contains("gtinker_tinker_inserts 3"));
        }
        m.reset();
        assert_eq!(m.snapshot().tinker_inserts, 0);
        assert_eq!(m.snapshot().pool_queue_depth, 0);
        assert_eq!(m.snapshot().rhh_probe.count(), 0);
    }

    #[test]
    fn saturating_diff_subtracts_per_bucket() {
        let mut now = vec![0u64; HIST_BUCKETS];
        let mut base = vec![0u64; HIST_BUCKETS];
        now[3] = 10;
        now[7] = 2;
        base[3] = 4;
        base[9] = 5; // never shrinks below zero
        let d = HistogramSnapshot { buckets: now }
            .saturating_diff(&HistogramSnapshot { buckets: base });
        assert_eq!(d.buckets[3], 6);
        assert_eq!(d.buckets[7], 2);
        assert_eq!(d.buckets[9], 0);
        assert_eq!(d.count(), 8);
    }

    #[test]
    #[cfg(feature = "metrics")]
    fn windowed_histogram_evicts_old_observations() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        let w = WindowedHistogram::new();
        // Before any rotation the window is the cumulative view.
        for _ in 0..10 {
            w.record(2);
        }
        assert_eq!(w.window().count(), 10);
        // One rotation: those 10 become the oldest baseline and drop out.
        w.rotate();
        assert_eq!(w.window().count(), 0);
        for _ in 0..5 {
            w.record(40);
        }
        let win = w.window();
        assert_eq!(win.count(), 5);
        assert_eq!(win.quantile_approx(0.5), 63, "old value-2 samples must not drag p50 down");
        assert_eq!(w.cumulative().count(), 15, "cumulative view keeps everything");
        // The 40s stay visible while their baseline is retained...
        for _ in 0..WINDOW_SLOTS - 1 {
            w.rotate();
            assert_eq!(w.window().count(), 5);
        }
        // ...and age out once WINDOW_SLOTS further rotations evict it.
        w.rotate();
        assert_eq!(w.window().count(), 0, "observations older than WINDOW_SLOTS rotations evict");
    }

    #[test]
    fn global_registry_is_reachable() {
        let _ = global().snapshot();
    }
}
