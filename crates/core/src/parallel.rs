//! Parallel GraphTinker: interval-partitioned instances (paper §III.D,
//! Fig. 6).
//!
//! The paper parallelizes updates by exploiting the independence of
//! different source vertices: the edge stream is partitioned into
//! *intervals* by where the source id hashes, and each interval is loaded
//! into its own GraphTinker instance on its own core. Each instance is a
//! single-writer structure, so there is no shared mutable state, no locks
//! on the hot path, and no `unsafe` — `std::thread::scope` hands each
//! worker a disjoint `&mut GraphTinker`.

use gtinker_types::{partition_of, EdgeBatch, Result, TinkerConfig, VertexId, Weight};

use crate::stats::ProbeStats;
use crate::tinker::{BatchResult, GraphTinker};

/// A set of interval-partitioned GraphTinker instances updated in parallel.
pub struct ParallelTinker {
    instances: Vec<GraphTinker>,
    /// Per-instance partition scratch reused across batches, so
    /// steady-state ingestion allocates no per-batch partition buffers.
    parts: Vec<EdgeBatch>,
}

impl ParallelTinker {
    /// Creates `n` empty instances sharing one configuration.
    pub fn new(config: TinkerConfig, n: usize) -> Result<Self> {
        assert!(n > 0, "need at least one instance");
        let mut instances = Vec::with_capacity(n);
        for _ in 0..n {
            instances.push(GraphTinker::new(config)?);
        }
        let parts = (0..n).map(|_| EdgeBatch::new()).collect();
        Ok(ParallelTinker { instances, parts })
    }

    /// Number of parallel instances (one per intended core).
    #[inline]
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    #[inline]
    fn shard(&self, src: VertexId) -> usize {
        partition_of(src, self.instances.len())
    }

    /// Applies a batch: partitions it by source interval and updates all
    /// instances concurrently on scoped threads.
    pub fn apply_batch(&mut self, batch: &EdgeBatch) -> BatchResult {
        batch.partition_into(&mut self.parts);
        let parts = &self.parts;
        let mut results = vec![BatchResult::default(); self.instances.len()];
        std::thread::scope(|scope| {
            for ((inst, part), slot) in self.instances.iter_mut().zip(parts).zip(results.iter_mut())
            {
                scope.spawn(move || {
                    *slot = inst.apply_batch(part);
                });
            }
        });
        let mut total = BatchResult::default();
        for r in results {
            total.inserted += r.inserted;
            total.updated += r.updated;
            total.deleted += r.deleted;
            total.not_found += r.not_found;
        }
        total
    }

    /// Total live edges across instances.
    pub fn num_edges(&self) -> u64 {
        self.instances.iter().map(|g| g.num_edges()).sum()
    }

    /// One past the largest vertex id seen by any instance.
    pub fn vertex_space(&self) -> u32 {
        self.instances.iter().map(|g| g.vertex_space()).max().unwrap_or(0)
    }

    /// Weight of `(src, dst)`, routed to the owning instance.
    pub fn edge_weight(&self, src: VertexId, dst: VertexId) -> Option<Weight> {
        self.instances[self.shard(src)].edge_weight(src, dst)
    }

    /// Whether `(src, dst)` is present.
    pub fn contains_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.edge_weight(src, dst).is_some()
    }

    /// Out-degree of `src`.
    pub fn out_degree(&self, src: VertexId) -> u32 {
        self.instances[self.shard(src)].out_degree(src)
    }

    /// Visits the out-edges of `src`.
    pub fn for_each_out_edge<F: FnMut(VertexId, Weight)>(&self, src: VertexId, f: F) {
        self.instances[self.shard(src)].for_each_out_edge(src, f);
    }

    /// Visits every live edge, instance by instance (each instance streams
    /// its CAL sequentially).
    pub fn for_each_edge<F: FnMut(VertexId, VertexId, Weight)>(&self, mut f: F) {
        for g in &self.instances {
            g.for_each_edge(&mut f);
        }
    }

    /// Merged probe statistics across instances.
    pub fn stats(&self) -> ProbeStats {
        let mut s = ProbeStats::default();
        for g in &self.instances {
            s.merge(&g.stats());
        }
        s
    }

    /// Clears probe statistics on all instances.
    pub fn reset_stats(&mut self) {
        for g in &mut self.instances {
            g.reset_stats();
        }
    }

    /// Immutable access to the underlying instances.
    pub fn instances(&self) -> &[GraphTinker] {
        &self.instances
    }
}

impl std::fmt::Debug for ParallelTinker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelTinker")
            .field("instances", &self.instances.len())
            .field("edges", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtinker_types::Edge;

    fn batch(n: u32) -> EdgeBatch {
        EdgeBatch::inserts(&(0..n).map(|i| Edge::new(i % 101, i % 257, i)).collect::<Vec<_>>())
    }

    #[test]
    fn parallel_matches_sequential() {
        let b = batch(5_000);
        let mut seq = GraphTinker::with_defaults();
        seq.apply_batch(&b);
        let mut par = ParallelTinker::new(Default::default(), 4).unwrap();
        let r = par.apply_batch(&b);
        assert_eq!(par.num_edges(), seq.num_edges());
        assert_eq!(r.inserted + r.updated, 5_000);

        let mut seq_edges: Vec<(u32, u32, u32)> = Vec::new();
        seq.for_each_edge(|s, d, w| seq_edges.push((s, d, w)));
        let mut par_edges: Vec<(u32, u32, u32)> = Vec::new();
        par.for_each_edge(|s, d, w| par_edges.push((s, d, w)));
        seq_edges.sort_unstable();
        par_edges.sort_unstable();
        assert_eq!(seq_edges, par_edges);
    }

    #[test]
    fn routing_queries() {
        let mut par = ParallelTinker::new(Default::default(), 3).unwrap();
        par.apply_batch(&EdgeBatch::inserts(&[
            Edge::new(10, 20, 1),
            Edge::new(10, 21, 2),
            Edge::new(99, 20, 3),
        ]));
        assert_eq!(par.edge_weight(10, 20), Some(1));
        assert_eq!(par.edge_weight(99, 20), Some(3));
        assert_eq!(par.edge_weight(99, 21), None);
        assert_eq!(par.out_degree(10), 2);
        let mut outs = Vec::new();
        par.for_each_out_edge(10, |d, _| outs.push(d));
        outs.sort_unstable();
        assert_eq!(outs, vec![20, 21]);
    }

    #[test]
    fn deletes_apply_in_parallel() {
        let mut par = ParallelTinker::new(Default::default(), 4).unwrap();
        par.apply_batch(&batch(1_000));
        let before = par.num_edges();
        let dels = EdgeBatch::deletes(&(0..500u32).map(|i| (i % 101, i % 257)).collect::<Vec<_>>());
        let r = par.apply_batch(&dels);
        assert!(r.deleted > 0);
        assert_eq!(par.num_edges(), before - r.deleted);
    }

    #[test]
    fn scratch_reuse_across_shrinking_batches_matches_sequential() {
        // Later batches are smaller than earlier ones: stale ops left in
        // the reused partition scratch would surface as phantom edges.
        let mut seq = GraphTinker::with_defaults();
        let mut par = ParallelTinker::new(Default::default(), 4).unwrap();
        for round in 0..5u32 {
            let n = 1_000 - round * 190;
            let edges: Vec<Edge> =
                (0..n).map(|i| Edge::new((i * 3 + round) % 97, i % 211, i + round)).collect();
            let b = EdgeBatch::inserts(&edges);
            seq.apply_batch(&b);
            par.apply_batch(&b);
        }
        let dels =
            EdgeBatch::deletes(&(0..300u32).map(|i| ((i * 3) % 97, i % 211)).collect::<Vec<_>>());
        seq.apply_batch(&dels);
        par.apply_batch(&dels);
        assert_eq!(par.num_edges(), seq.num_edges());
        let mut a: Vec<(u32, u32, u32)> = Vec::new();
        seq.for_each_edge(|s, d, w| a.push((s, d, w)));
        let mut b: Vec<(u32, u32, u32)> = Vec::new();
        par.for_each_edge(|s, d, w| b.push((s, d, w)));
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn stats_merge_across_instances() {
        let mut par = ParallelTinker::new(Default::default(), 2).unwrap();
        par.apply_batch(&batch(100));
        assert_eq!(par.stats().operations, 100);
        par.reset_stats();
        assert_eq!(par.stats().operations, 0);
    }

    #[test]
    fn vertex_space_is_max_over_instances() {
        let mut par = ParallelTinker::new(Default::default(), 2).unwrap();
        par.apply_batch(&EdgeBatch::inserts(&[Edge::unit(5, 777)]));
        assert_eq!(par.vertex_space(), 778);
    }
}
