//! Parallel GraphTinker: interval-partitioned instances (paper §III.D,
//! Fig. 6).
//!
//! The paper parallelizes updates by exploiting the independence of
//! different source vertices: the edge stream is partitioned into
//! *intervals* by where the source id hashes, and each interval is loaded
//! into its own GraphTinker instance on its own core. Each instance is a
//! single-writer structure, so there is no shared mutable state on the
//! per-edge path and no `unsafe`.
//!
//! Batches are applied through a persistent [`ShardPool`]: workers are
//! spawned once and fed per-shard queues, each worker claims its own
//! interval out of the shared batch (parallelizing the partition pass),
//! and the asynchronous [`submit`](ParallelTinker::submit) /
//! [`flush`](ParallelTinker::flush) pair double-buffers so batch *k+1*
//! partitions while batch *k* applies.
//! The old spawn-a-scope-per-batch strategy survives as
//! [`apply_batch_spawn`](ParallelTinker::apply_batch_spawn), the baseline
//! the `fig_ingest_pipeline` benchmark compares against.

use std::sync::{Arc, Mutex};

use gtinker_types::{partition_of, EdgeBatch, Result, TinkerConfig, VertexId, Weight};

use crate::epoch::ReadGuard;
use crate::pool::ShardPool;
use crate::stats::ProbeStats;
use crate::tinker::{BatchResult, GraphTinker};

/// A set of interval-partitioned GraphTinker instances updated in parallel
/// by a persistent worker pool.
pub struct ParallelTinker {
    pool: ShardPool<GraphTinker>,
    /// Partition scratch for the spawn-per-batch baseline, reused across
    /// batches (behind a mutex so the ingest facade stays `&self` and an
    /// `Arc<ParallelTinker>` can be shared with HTTP query workers).
    parts: Mutex<Vec<EdgeBatch>>,
}

impl ParallelTinker {
    /// Creates `n` empty instances sharing one configuration, and spawns
    /// the `n` worker threads that own them until drop.
    pub fn new(config: TinkerConfig, n: usize) -> Result<Self> {
        Self::build(config, n, false)
    }

    /// Like [`new`](Self::new), but the pool also maintains epoch-pinned
    /// read replicas, so [`pin_view`](Self::pin_view) serves barrier-free
    /// snapshot-isolated queries while ingestion keeps running.
    pub fn new_with_views(config: TinkerConfig, n: usize) -> Result<Self> {
        Self::build(config, n, true)
    }

    fn build(config: TinkerConfig, n: usize, views: bool) -> Result<Self> {
        assert!(n > 0, "need at least one instance");
        let mut instances = Vec::with_capacity(n);
        for _ in 0..n {
            instances.push(GraphTinker::new(config)?);
        }
        let parts = Mutex::new((0..n).map(|_| EdgeBatch::new()).collect());
        let pool =
            if views { ShardPool::new_with_views(instances) } else { ShardPool::new(instances) };
        Ok(ParallelTinker { pool, parts })
    }

    /// Whether this store was built with epoch-pinnable read views.
    #[inline]
    pub fn views_enabled(&self) -> bool {
        self.pool.views_enabled()
    }

    /// Pins the current acked batch boundary and returns a consistent,
    /// barrier-free [`StoreView`] over it — or `None` when the store was
    /// built without views. The writer keeps applying later batches while
    /// the view is held; see [`crate::epoch`] for the isolation contract.
    pub fn pin_view(&self) -> Option<StoreView<'_>> {
        self.pool.pin().map(|guard| StoreView { guard })
    }

    /// Number of parallel instances (one per intended core).
    #[inline]
    pub fn num_instances(&self) -> usize {
        self.pool.num_shards()
    }

    /// One past the highest fully-applied batch seq (single atomic load —
    /// safe on barrier-free paths like `/healthz` and `/debug/vars`).
    #[inline]
    pub fn acked_batches(&self) -> u64 {
        self.pool.acked_batches()
    }

    /// Number of submitted-but-unreaped batches (racy diagnostic; see
    /// [`ShardPool::pending_batches`]).
    #[inline]
    pub fn pending_batches(&self) -> usize {
        self.pool.pending_batches()
    }

    #[inline]
    fn shard(&self, src: VertexId) -> usize {
        partition_of(src, self.num_instances())
    }

    /// Applies a batch synchronously through the worker pool: every worker
    /// claims its interval from the shared batch and applies it, and the
    /// merged outcome counts are returned.
    pub fn apply_batch(&self, batch: &EdgeBatch) -> BatchResult {
        self.pool.apply(batch)
    }

    /// Queues a batch asynchronously (pipelined ingestion): the call
    /// returns as soon as the batch is staged, so the caller can prepare
    /// batch *k+1* — and the workers can claim-partition it — while batch
    /// *k* is still applying. Results are collected by [`flush`]. Queries
    /// issued before a flush barrier on the in-flight batches themselves.
    ///
    /// [`flush`]: Self::flush
    pub fn submit(&self, batch: EdgeBatch) {
        self.pool.submit(Arc::new(batch));
    }

    /// [`submit`](Self::submit) without re-owning the batch, for callers
    /// (e.g. a WAL writer) that keep a reference to it.
    pub fn submit_shared(&self, batch: Arc<EdgeBatch>) {
        self.pool.submit(batch);
    }

    /// Drains the pipeline, returning the merged outcome counts of every
    /// batch submitted since the last flush.
    pub fn flush(&self) -> BatchResult {
        self.pool.flush()
    }

    /// The pre-pool strategy, kept as a benchmark baseline: partition the
    /// batch serially, then spawn one scoped thread per non-empty
    /// interval. Pays thread creation and a single-threaded partition scan
    /// on every batch.
    pub fn apply_batch_spawn(&self, batch: &EdgeBatch) -> BatchResult {
        let mut parts = self.parts.lock().expect("parts poisoned");
        batch.partition_into(&mut parts);
        let pool = &self.pool;
        let mut results = vec![BatchResult::default(); parts.len()];
        std::thread::scope(|scope| {
            for (i, (part, slot)) in parts.iter().zip(results.iter_mut()).enumerate() {
                // Skip intervals that received nothing in this batch.
                if part.is_empty() {
                    continue;
                }
                scope.spawn(move || {
                    *slot = pool.with_shard_mut(i, |g| g.apply_batch(part));
                });
            }
        });
        let mut total = BatchResult::default();
        for r in &results {
            total.merge(r);
        }
        total
    }

    /// Total live edges across instances.
    pub fn num_edges(&self) -> u64 {
        (0..self.num_instances()).map(|i| self.pool.with_shard(i, |g| g.num_edges())).sum()
    }

    /// One past the largest vertex id seen by any instance.
    pub fn vertex_space(&self) -> u32 {
        (0..self.num_instances())
            .map(|i| self.pool.with_shard(i, |g| g.vertex_space()))
            .max()
            .unwrap_or(0)
    }

    /// Weight of `(src, dst)`, routed to the owning instance.
    pub fn edge_weight(&self, src: VertexId, dst: VertexId) -> Option<Weight> {
        self.pool.with_shard(self.shard(src), |g| g.edge_weight(src, dst))
    }

    /// Whether `(src, dst)` is present.
    pub fn contains_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.edge_weight(src, dst).is_some()
    }

    /// Out-degree of `src`.
    pub fn out_degree(&self, src: VertexId) -> u32 {
        self.pool.with_shard(self.shard(src), |g| g.out_degree(src))
    }

    /// Visits the out-edges of `src`.
    pub fn for_each_out_edge<F: FnMut(VertexId, Weight)>(&self, src: VertexId, f: F) {
        self.pool.with_shard(self.shard(src), |g| g.for_each_out_edge(src, f));
    }

    /// Visits every live edge, instance by instance (each instance streams
    /// its CAL sequentially).
    pub fn for_each_edge<F: FnMut(VertexId, VertexId, Weight)>(&self, mut f: F) {
        for i in 0..self.num_instances() {
            self.pool.with_shard(i, |g| g.for_each_edge(&mut f));
        }
    }

    /// Runs `f` over one instance read-only (shard = instance index).
    /// Replaces the old `instances()` slice accessor, which is impossible
    /// now that the worker pool shares ownership of the instances.
    pub fn with_instance<R>(&self, i: usize, f: impl FnOnce(&GraphTinker) -> R) -> R {
        self.pool.with_shard(i, f)
    }

    /// Merged probe statistics across instances.
    pub fn stats(&self) -> ProbeStats {
        let mut s = ProbeStats::default();
        for i in 0..self.num_instances() {
            self.pool.with_shard(i, |g| s.merge(&g.stats()));
        }
        s
    }

    /// Clears probe statistics on all instances.
    pub fn reset_stats(&mut self) {
        for i in 0..self.num_instances() {
            self.pool.with_shard_mut(i, |g| g.reset_stats());
        }
    }

    /// Publishes the `memory_*_bytes` gauge family summed across all
    /// instances (a per-instance publish would overwrite, not aggregate).
    pub fn publish_memory_metrics(&self) {
        let mut sums = (0usize, 0usize, 0usize, 0usize, 0usize);
        for i in 0..self.num_instances() {
            let (inline, blocks, hub, cal, total) =
                self.pool.with_shard(i, |g| g.memory_breakdown());
            sums.0 += inline;
            sums.1 += blocks;
            sums.2 += hub;
            sums.3 += cal;
            sums.4 += total;
        }
        let m = crate::metrics::global();
        m.memory_inline_bytes.set(sums.0 as i64);
        m.memory_blocks_bytes.set(sums.1 as i64);
        m.memory_hub_bytes.set(sums.2 as i64);
        m.memory_cal_bytes.set(sums.3 as i64);
        m.memory_total_bytes.set(sums.4 as i64);
    }
}

/// A pinned, snapshot-isolated view of a [`ParallelTinker`].
///
/// Obtained from [`ParallelTinker::pin_view`]; reads the pool's lagging
/// replicas at one acked batch boundary ([`epoch`](Self::epoch)) with no
/// pipeline barrier, so queries run while ingestion continues. The query
/// surface mirrors `ParallelTinker`'s read API.
pub struct StoreView<'a> {
    guard: ReadGuard<'a, GraphTinker>,
}

impl StoreView<'_> {
    /// The pinned batch boundary: exactly the first `epoch()` submitted
    /// batches are visible, in submission order.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.guard.epoch()
    }

    /// Number of replica instances (same partitioning as the live store).
    #[inline]
    pub fn num_instances(&self) -> usize {
        self.guard.num_shards()
    }

    #[inline]
    fn shard(&self, src: VertexId) -> usize {
        partition_of(src, self.num_instances())
    }

    /// Total live edges at the pinned boundary.
    pub fn num_edges(&self) -> u64 {
        (0..self.num_instances()).map(|i| self.guard.with_shard(i, |g| g.num_edges())).sum()
    }

    /// One past the largest vertex id at the pinned boundary.
    pub fn vertex_space(&self) -> u32 {
        (0..self.num_instances())
            .map(|i| self.guard.with_shard(i, |g| g.vertex_space()))
            .max()
            .unwrap_or(0)
    }

    /// Weight of `(src, dst)`, routed to the owning replica.
    pub fn edge_weight(&self, src: VertexId, dst: VertexId) -> Option<Weight> {
        self.guard.with_shard(self.shard(src), |g| g.edge_weight(src, dst))
    }

    /// Whether `(src, dst)` is present at the pinned boundary.
    pub fn contains_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.edge_weight(src, dst).is_some()
    }

    /// Out-degree of `src` at the pinned boundary.
    pub fn out_degree(&self, src: VertexId) -> u32 {
        self.guard.with_shard(self.shard(src), |g| g.out_degree(src))
    }

    /// Visits the out-edges of `src`.
    pub fn for_each_out_edge<F: FnMut(VertexId, Weight)>(&self, src: VertexId, f: F) {
        self.guard.with_shard(self.shard(src), |g| g.for_each_out_edge(src, f));
    }

    /// Visits every live edge, replica by replica (each streams its CAL).
    pub fn for_each_edge<F: FnMut(VertexId, VertexId, Weight)>(&self, mut f: F) {
        for i in 0..self.num_instances() {
            self.guard.with_shard(i, |g| g.for_each_edge(&mut f));
        }
    }

    /// Runs `f` over one replica read-only (shard = instance index).
    pub fn with_instance<R>(&self, i: usize, f: impl FnOnce(&GraphTinker) -> R) -> R {
        self.guard.with_shard(i, f)
    }
}

impl std::fmt::Debug for StoreView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreView")
            .field("epoch", &self.epoch())
            .field("instances", &self.num_instances())
            .finish()
    }
}

impl std::fmt::Debug for ParallelTinker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelTinker")
            .field("instances", &self.num_instances())
            .field("edges", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtinker_types::Edge;

    fn batch(n: u32) -> EdgeBatch {
        EdgeBatch::inserts(&(0..n).map(|i| Edge::new(i % 101, i % 257, i)).collect::<Vec<_>>())
    }

    #[test]
    fn parallel_matches_sequential() {
        let b = batch(5_000);
        let mut seq = GraphTinker::with_defaults();
        seq.apply_batch(&b);
        let par = ParallelTinker::new(Default::default(), 4).unwrap();
        let r = par.apply_batch(&b);
        assert_eq!(par.num_edges(), seq.num_edges());
        assert_eq!(r.inserted + r.updated, 5_000);

        let mut seq_edges: Vec<(u32, u32, u32)> = Vec::new();
        seq.for_each_edge(|s, d, w| seq_edges.push((s, d, w)));
        let mut par_edges: Vec<(u32, u32, u32)> = Vec::new();
        par.for_each_edge(|s, d, w| par_edges.push((s, d, w)));
        seq_edges.sort_unstable();
        par_edges.sort_unstable();
        assert_eq!(seq_edges, par_edges);
    }

    #[test]
    fn spawn_baseline_matches_pool() {
        let b = batch(4_000);
        let pooled = ParallelTinker::new(Default::default(), 4).unwrap();
        let spawned = ParallelTinker::new(Default::default(), 4).unwrap();
        assert_eq!(pooled.apply_batch(&b), spawned.apply_batch_spawn(&b));
        assert_eq!(pooled.num_edges(), spawned.num_edges());
    }

    #[test]
    fn pipelined_submit_matches_sync_apply() {
        let sync = ParallelTinker::new(Default::default(), 3).unwrap();
        let pipe = ParallelTinker::new(Default::default(), 3).unwrap();
        let mut want = BatchResult::default();
        for round in 0..8u32 {
            let b = batch(700 + round * 53);
            want.merge(&sync.apply_batch(&b));
            pipe.submit(b);
        }
        assert_eq!(pipe.flush(), want);
        assert_eq!(pipe.num_edges(), sync.num_edges());
    }

    #[test]
    fn queries_barrier_on_inflight_batches() {
        let par = ParallelTinker::new(Default::default(), 2).unwrap();
        par.submit(EdgeBatch::inserts(&[Edge::new(7, 8, 9)]));
        // No flush yet: reads must still observe the submitted batch.
        assert_eq!(par.edge_weight(7, 8), Some(9));
        assert_eq!(par.flush().inserted, 1);
    }

    #[test]
    fn routing_queries() {
        let par = ParallelTinker::new(Default::default(), 3).unwrap();
        par.apply_batch(&EdgeBatch::inserts(&[
            Edge::new(10, 20, 1),
            Edge::new(10, 21, 2),
            Edge::new(99, 20, 3),
        ]));
        assert_eq!(par.edge_weight(10, 20), Some(1));
        assert_eq!(par.edge_weight(99, 20), Some(3));
        assert_eq!(par.edge_weight(99, 21), None);
        assert_eq!(par.out_degree(10), 2);
        let mut outs = Vec::new();
        par.for_each_out_edge(10, |d, _| outs.push(d));
        outs.sort_unstable();
        assert_eq!(outs, vec![20, 21]);
    }

    #[test]
    fn deletes_apply_in_parallel() {
        let par = ParallelTinker::new(Default::default(), 4).unwrap();
        par.apply_batch(&batch(1_000));
        let before = par.num_edges();
        let dels = EdgeBatch::deletes(&(0..500u32).map(|i| (i % 101, i % 257)).collect::<Vec<_>>());
        let r = par.apply_batch(&dels);
        assert!(r.deleted > 0);
        assert_eq!(par.num_edges(), before - r.deleted);
    }

    #[test]
    fn scratch_reuse_across_shrinking_batches_matches_sequential() {
        // Later batches are smaller than earlier ones: stale ops left in
        // a reused claim scratch would surface as phantom edges.
        let mut seq = GraphTinker::with_defaults();
        let par = ParallelTinker::new(Default::default(), 4).unwrap();
        for round in 0..5u32 {
            let n = 1_000 - round * 190;
            let edges: Vec<Edge> =
                (0..n).map(|i| Edge::new((i * 3 + round) % 97, i % 211, i + round)).collect();
            let b = EdgeBatch::inserts(&edges);
            seq.apply_batch(&b);
            par.apply_batch(&b);
        }
        let dels =
            EdgeBatch::deletes(&(0..300u32).map(|i| ((i * 3) % 97, i % 211)).collect::<Vec<_>>());
        seq.apply_batch(&dels);
        par.apply_batch(&dels);
        assert_eq!(par.num_edges(), seq.num_edges());
        let mut a: Vec<(u32, u32, u32)> = Vec::new();
        seq.for_each_edge(|s, d, w| a.push((s, d, w)));
        let mut b: Vec<(u32, u32, u32)> = Vec::new();
        par.for_each_edge(|s, d, w| b.push((s, d, w)));
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn stats_merge_across_instances() {
        let mut par = ParallelTinker::new(Default::default(), 2).unwrap();
        par.apply_batch(&batch(100));
        assert_eq!(par.stats().operations, 100);
        par.reset_stats();
        assert_eq!(par.stats().operations, 0);
    }

    #[test]
    fn pin_view_requires_views() {
        let par = ParallelTinker::new(Default::default(), 2).unwrap();
        par.apply_batch(&batch(10));
        assert!(!par.views_enabled());
        assert!(par.pin_view().is_none());
    }

    #[test]
    fn pinned_view_matches_live_store_at_boundary() {
        let par = ParallelTinker::new_with_views(Default::default(), 3).unwrap();
        for round in 0..5u32 {
            par.submit(batch(400 + round * 11));
        }
        par.flush();
        let view = par.pin_view().expect("views enabled");
        assert_eq!(view.epoch(), 5);
        assert_eq!(view.num_edges(), par.num_edges());
        assert_eq!(view.vertex_space(), par.vertex_space());
        let mut live: Vec<(u32, u32, u32)> = Vec::new();
        par.for_each_edge(|s, d, w| live.push((s, d, w)));
        let mut pinned: Vec<(u32, u32, u32)> = Vec::new();
        view.for_each_edge(|s, d, w| pinned.push((s, d, w)));
        live.sort_unstable();
        pinned.sort_unstable();
        assert_eq!(live, pinned);
    }

    #[test]
    fn view_queries_do_not_drain_the_pipeline() {
        let par = ParallelTinker::new_with_views(Default::default(), 2).unwrap();
        par.apply_batch(&EdgeBatch::inserts(&[Edge::new(1, 2, 3)]));
        let view = par.pin_view().expect("views enabled");
        assert_eq!(view.edge_weight(1, 2), Some(3));
        assert_eq!(view.out_degree(1), 1);
        assert!(view.contains_edge(1, 2));
        // Writer applies more while the view is held; the view is frozen.
        par.submit(EdgeBatch::inserts(&[Edge::new(1, 9, 9)]));
        assert_eq!(view.out_degree(1), 1);
        drop(view);
        par.flush();
        let fresh = par.pin_view().expect("views enabled");
        assert_eq!(fresh.out_degree(1), 2);
    }

    #[test]
    fn vertex_space_is_max_over_instances() {
        let par = ParallelTinker::new(Default::default(), 2).unwrap();
        par.apply_batch(&EdgeBatch::inserts(&[Edge::unit(5, 777)]));
        assert_eq!(par.vertex_space(), 778);
    }
}
