//! Persistent shard worker pool for pipelined ingestion.
//!
//! [`ParallelTinker`](crate::ParallelTinker) originally spawned fresh
//! scoped threads and ran a serial partition pass for every batch, so
//! steady-state ingestion paid thread creation plus a single-threaded scan
//! on the hot path. The [`ShardPool`] keeps one long-lived worker per
//! interval shard instead:
//!
//! * **Spawned once, joined on drop.** Workers are created with the pool
//!   and fed per-shard job queues over channels; dropping the pool closes
//!   the queues, lets workers drain any queued batches, and joins them.
//! * **Claim-based partitioning.** There is no serial `partition_into`
//!   pass: every worker scans the shared batch (an `Arc<EdgeBatch>`) and
//!   claims the operations whose source hashes to its interval into a
//!   reusable scratch batch. Partitioning itself is parallelized, and a
//!   worker whose interval received nothing skips the apply entirely.
//! * **Double-buffering.** [`submit`](ShardPool::submit) is asynchronous
//!   with a bounded pipeline depth of 2: while batch *k* is being applied,
//!   batch *k+1* can already be claimed/partitioned by idle workers, and
//!   the producer can prepare batch *k+2*. [`flush`](ShardPool::flush)
//!   drains the pipeline and returns the merged outcome counts.
//!
//! Shards live in `Arc<Vec<Mutex<S>>>`: each worker locks only its own
//! shard, exactly once per non-empty batch, so the locks are uncontended
//! in steady state; queries lock on demand after a pipeline barrier.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use gtinker_types::{partition_of, EdgeBatch};

use crate::epoch::{ReadGuard, ViewLayer};
use crate::tinker::{BatchResult, GraphTinker};
use crate::trace::{self, SpanId};

/// How many batches may be in flight before [`ShardPool::submit`] blocks:
/// one applying, one staged — classic double-buffering.
pub const PIPELINE_DEPTH: usize = 2;

/// A store that can own one interval shard of a [`ShardPool`].
pub trait ShardStore: Send + Sync + 'static {
    /// Applies the claimed sub-batch for this shard, returning outcome
    /// counts (stores without per-op outcome tracking may return zeros).
    fn apply_shard_batch(&mut self, batch: &EdgeBatch) -> BatchResult;

    /// An empty store with the same configuration, used as the shard's
    /// read replica when the pool is built with epoch views.
    fn fresh_replica(&self) -> Self;
}

impl ShardStore for GraphTinker {
    fn apply_shard_batch(&mut self, batch: &EdgeBatch) -> BatchResult {
        self.apply_batch(batch)
    }

    fn fresh_replica(&self) -> Self {
        GraphTinker::new(*self.config()).expect("replica shares a validated config")
    }
}

/// Completion tracker for one submitted batch: workers decrement the
/// remaining count and fold their per-shard results in; waiters block on
/// the condvar until every shard has reported.
struct Ticket {
    state: Mutex<TicketState>,
    done: Condvar,
}

struct TicketState {
    remaining: usize,
    result: BatchResult,
}

impl Ticket {
    fn new(workers: usize) -> Self {
        Ticket {
            state: Mutex::new(TicketState { remaining: workers, result: BatchResult::default() }),
            done: Condvar::new(),
        }
    }

    /// Folds one worker's result in. `on_last` runs for the worker that
    /// makes the batch fully applied, while the ticket lock is still held
    /// — so anything it publishes (the acked epoch boundary) is visible
    /// before any `wait`er can return.
    fn complete(&self, r: BatchResult, on_last: impl FnOnce()) {
        let mut s = self.state.lock().expect("ticket state poisoned");
        s.result.merge(&r);
        s.remaining -= 1;
        if s.remaining == 0 {
            on_last();
            self.done.notify_all();
        }
    }

    fn wait(&self) -> BatchResult {
        let mut s = self.state.lock().expect("ticket state poisoned");
        while s.remaining > 0 {
            s = self.done.wait(s).expect("ticket state poisoned");
        }
        s.result
    }
}

struct Job {
    batch: Arc<EdgeBatch>,
    ticket: Arc<Ticket>,
    /// Pool-local dispatch sequence number, threaded into the trace spans
    /// so the timeline shows which batch each worker is claiming/applying
    /// (the visual proof that batch k+1 partitions while k applies).
    seq: u64,
}

#[derive(Default)]
struct Inflight {
    /// Tickets of submitted batches, oldest first.
    queue: VecDeque<Arc<Ticket>>,
    /// Merged results of batches reaped from the queue but not yet
    /// returned by [`ShardPool::flush`].
    reaped: BatchResult,
}

/// A pool of long-lived worker threads, one per interval shard.
pub struct ShardPool<S> {
    shards: Arc<Vec<Mutex<S>>>,
    txs: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    inflight: Mutex<Inflight>,
    /// Number of submitted-but-unreaped batches; lets the query-side
    /// pipeline barrier exit with one atomic load when nothing is in
    /// flight (the common case for read-heavy parallel analytics).
    pending: AtomicUsize,
    /// Dispatch sequence number carried into each job's trace spans.
    seq: AtomicU64,
    /// Epoch-pinned read replicas (disabled unless built with
    /// [`new_with_views`](Self::new_with_views)); shared with the workers
    /// so they can backlog batches and publish acked boundaries.
    views: Arc<ViewLayer<S>>,
}

fn worker_loop<S: ShardStore>(
    index: usize,
    shards: Arc<Vec<Mutex<S>>>,
    views: Arc<ViewLayer<S>>,
    rx: mpsc::Receiver<Job>,
) {
    let n = shards.len();
    let mut claim = EdgeBatch::new();
    while let Ok(job) = rx.recv() {
        {
            let _t = trace::span_arg(SpanId::PoolClaim, job.seq);
            claim.clear();
            for &op in job.batch.ops() {
                if partition_of(op.src(), n) == index {
                    claim.push(op);
                }
            }
        }
        let m = crate::metrics::global();
        m.pool_claims.inc();
        m.pool_claimed_ops.add(claim.len() as u64);
        // Empty interval: report without touching (or locking) the shard.
        let result = if claim.is_empty() {
            BatchResult::default()
        } else {
            let _t = trace::span_arg(SpanId::PoolApply, job.seq);
            shards[index].lock().expect("shard poisoned").apply_shard_batch(&claim)
        };
        // Backlog before completing: once every worker has completed seq,
        // the batch is both fully applied and fully recorded, so the last
        // completer publishes the new acked boundary.
        views.record(index, job.seq, &job.batch);
        job.ticket.complete(result, || views.publish_acked(job.seq));
    }
}

impl<S: ShardStore> ShardPool<S> {
    /// Builds a pool over the given shard stores, spawning one worker per
    /// shard. Store `i` owns interval `i` of `stores.len()`.
    pub fn new(stores: Vec<S>) -> Self {
        Self::build(stores, false)
    }

    /// Like [`new`](Self::new), but additionally maintains one read
    /// replica per shard so readers can [`pin`](Self::pin) a consistent
    /// acked-batch-boundary view without a pipeline barrier.
    pub fn new_with_views(stores: Vec<S>) -> Self {
        Self::build(stores, true)
    }

    fn build(stores: Vec<S>, with_views: bool) -> Self {
        assert!(!stores.is_empty(), "need at least one shard");
        let replicas: Vec<S> = if with_views {
            stores.iter().map(|s| s.fresh_replica()).collect()
        } else {
            Vec::new()
        };
        let views = Arc::new(ViewLayer::new(replicas));
        let shards: Arc<Vec<Mutex<S>>> = Arc::new(stores.into_iter().map(Mutex::new).collect());
        let mut txs = Vec::with_capacity(shards.len());
        let mut handles = Vec::with_capacity(shards.len());
        for i in 0..shards.len() {
            let (tx, rx) = mpsc::channel::<Job>();
            let shards = Arc::clone(&shards);
            let views = Arc::clone(&views);
            let handle = std::thread::Builder::new()
                .name(format!("gtinker-shard-{i}"))
                .spawn(move || worker_loop(i, shards, views, rx))
                .expect("spawn shard worker");
            txs.push(tx);
            handles.push(handle);
        }
        ShardPool {
            shards,
            txs,
            handles,
            inflight: Mutex::new(Inflight::default()),
            pending: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            views,
        }
    }

    /// Number of shards (= worker threads).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.txs.len()
    }

    /// Whether this pool maintains epoch-pinnable read replicas.
    #[inline]
    pub fn views_enabled(&self) -> bool {
        self.views.enabled()
    }

    /// Pins the current acked epoch for barrier-free reads; `None` when
    /// the pool was built without views. See [`ViewLayer::pin`].
    pub fn pin(&self) -> Option<ReadGuard<'_, S>> {
        self.views.pin()
    }

    /// Number of submitted batches not yet reaped (diagnostic; racy by
    /// nature — another thread may be reaping concurrently).
    #[inline]
    pub fn pending_batches(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// One past the highest fully-applied batch seq (a single atomic
    /// load; valid whether or not the pool maintains read replicas).
    #[inline]
    pub fn acked_batches(&self) -> u64 {
        self.views.acked()
    }

    /// Hands `batch` to every worker under a fresh ticket.
    fn dispatch(&self, batch: Arc<EdgeBatch>) -> Arc<Ticket> {
        crate::metrics::global().pool_batches.inc();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        trace::instant(SpanId::PoolDispatch, seq);
        crate::log::debug("pool")
            .msg("batch dispatched")
            .field("seq", seq)
            .field("ops", batch.len())
            .emit();
        let ticket = Arc::new(Ticket::new(self.txs.len()));
        for tx in &self.txs {
            let job = Job { batch: Arc::clone(&batch), ticket: Arc::clone(&ticket), seq };
            tx.send(job).expect("shard worker exited early");
        }
        ticket
    }

    /// Waits until no batch is in flight, folding finished batches into
    /// the reaped accumulator. When the queue is empty but batches are
    /// still pending, another thread holds their tickets; yield until it
    /// finishes reaping so readers never observe a half-applied pipeline.
    fn settle(&self) {
        let mut waited = false;
        let mut barrier = None;
        while self.pending.load(Ordering::Acquire) > 0 {
            if !waited {
                waited = true;
                crate::metrics::global().pool_settle_waits.inc();
                // Arg = the serving request id when a query path pays for
                // this barrier (0 on the ingest path).
                barrier = Some(trace::span_arg(SpanId::PoolSettle, trace::thread_ctx()));
            }
            let next = self.inflight.lock().expect("inflight poisoned").queue.pop_front();
            match next {
                Some(ticket) => {
                    let r = ticket.wait();
                    self.inflight.lock().expect("inflight poisoned").reaped.merge(&r);
                    self.pending.fetch_sub(1, Ordering::Release);
                    crate::metrics::global().pool_queue_depth.dec();
                }
                None => std::thread::yield_now(),
            }
        }
        // Close the barrier span (if one was opened) before readers go on.
        drop(barrier);
    }

    /// Applies one batch synchronously: the batch is claimed, partitioned
    /// and applied by all workers in parallel, and the merged outcome is
    /// returned. Any previously [`submit`](Self::submit)ted batches finish
    /// first (their results stay buffered for [`flush`](Self::flush)).
    pub fn apply(&self, batch: &EdgeBatch) -> BatchResult {
        self.settle();
        self.dispatch(Arc::new(batch.clone())).wait()
    }

    /// Queues a batch asynchronously. At most [`PIPELINE_DEPTH`] batches
    /// are in flight; beyond that, `submit` blocks on the oldest one, so
    /// batch *k+1* partitions while batch *k* applies but the producer can
    /// never run unboundedly ahead of the workers.
    pub fn submit(&self, batch: Arc<EdgeBatch>) {
        loop {
            let front = {
                let mut inflight = self.inflight.lock().expect("inflight poisoned");
                if inflight.queue.len() < PIPELINE_DEPTH {
                    break;
                }
                inflight.queue.pop_front()
            };
            if let Some(ticket) = front {
                let r = ticket.wait();
                self.inflight.lock().expect("inflight poisoned").reaped.merge(&r);
                self.pending.fetch_sub(1, Ordering::Release);
                crate::metrics::global().pool_queue_depth.dec();
            }
        }
        let ticket = self.dispatch(batch);
        let mut inflight = self.inflight.lock().expect("inflight poisoned");
        inflight.queue.push_back(ticket);
        self.pending.fetch_add(1, Ordering::Release);
        crate::metrics::global().pool_queue_depth.inc();
    }

    /// Drains the pipeline and returns the merged outcome counts of every
    /// batch submitted since the last flush.
    pub fn flush(&self) -> BatchResult {
        self.settle();
        let mut inflight = self.inflight.lock().expect("inflight poisoned");
        std::mem::take(&mut inflight.reaped)
    }

    /// Runs `f` over shard `i` read-only, after a pipeline barrier so
    /// every submitted batch is visible.
    pub fn with_shard<R>(&self, i: usize, f: impl FnOnce(&S) -> R) -> R {
        self.settle();
        f(&self.shards[i].lock().expect("shard poisoned"))
    }

    /// Runs `f` over shard `i` mutably, after a pipeline barrier.
    pub fn with_shard_mut<R>(&self, i: usize, f: impl FnOnce(&mut S) -> R) -> R {
        self.settle();
        f(&mut self.shards[i].lock().expect("shard poisoned"))
    }
}

impl<S> Drop for ShardPool<S> {
    /// Closes every job queue and joins the workers. Queued batches are
    /// still drained (channel receivers yield buffered jobs before
    /// reporting disconnection), so a pool dropped mid-stream shuts down
    /// cleanly without deadlocking or losing submitted work.
    fn drop(&mut self) {
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl<S> std::fmt::Debug for ShardPool<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool").field("shards", &self.txs.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtinker_types::Edge;

    fn pool(n: usize) -> ShardPool<GraphTinker> {
        ShardPool::new((0..n).map(|_| GraphTinker::with_defaults()).collect())
    }

    fn batch(n: u32, salt: u32) -> EdgeBatch {
        EdgeBatch::inserts(
            &(0..n).map(|i| Edge::new((i * 7 + salt) % 113, i % 251, i + 1)).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn apply_counts_match_sequential() {
        let b = batch(3_000, 0);
        let mut seq = GraphTinker::with_defaults();
        let want = seq.apply_batch(&b);
        let p = pool(4);
        let got = p.apply(&b);
        assert_eq!(got, want);
        let edges: u64 = (0..4).map(|i| p.with_shard(i, |g| g.num_edges())).sum();
        assert_eq!(edges, seq.num_edges());
    }

    #[test]
    fn submit_flush_pipeline_matches_sync_apply() {
        let p = pool(3);
        let q = pool(3);
        let mut want = BatchResult::default();
        for round in 0..10 {
            let b = batch(500, round * 31);
            want.merge(&q.apply(&b));
            p.submit(Arc::new(b));
        }
        assert_eq!(p.flush(), want);
        for i in 0..3 {
            let (a, b) = (p.with_shard(i, |g| g.num_edges()), q.with_shard(i, |g| g.num_edges()));
            assert_eq!(a, b, "shard {i} diverged");
        }
    }

    #[test]
    fn empty_shard_intervals_are_skipped() {
        // A single-source batch lands in exactly one of 8 intervals; the
        // other workers must report zero without applying anything.
        let p = pool(8);
        let b = EdgeBatch::inserts(&(0..64).map(|d| Edge::unit(42, d)).collect::<Vec<_>>());
        let r = p.apply(&b);
        assert_eq!(r.inserted, 64);
        let owner = partition_of(42, 8);
        for i in 0..8 {
            let edges = p.with_shard(i, |g| g.num_edges());
            assert_eq!(edges, if i == owner { 64 } else { 0 });
        }
    }

    #[test]
    fn drop_mid_stream_joins_cleanly() {
        let p = pool(4);
        for round in 0..6 {
            p.submit(Arc::new(batch(2_000, round * 17)));
        }
        // No flush: the pool is dropped with batches still in flight.
        drop(p);
    }

    #[test]
    fn flush_without_submissions_is_zero() {
        let p = pool(2);
        assert_eq!(p.flush(), BatchResult::default());
    }

    fn view_pool(n: usize) -> ShardPool<GraphTinker> {
        ShardPool::new_with_views((0..n).map(|_| GraphTinker::with_defaults()).collect())
    }

    #[test]
    fn pin_is_none_without_views() {
        let p = pool(2);
        assert!(!p.views_enabled());
        assert!(p.pin().is_none());
    }

    #[test]
    fn pinned_view_matches_settled_store_after_flush() {
        let p = view_pool(4);
        for round in 0..6 {
            p.submit(Arc::new(batch(800, round * 13)));
        }
        p.flush();
        let view = p.pin().expect("views enabled");
        assert_eq!(view.epoch(), 6);
        let live: u64 = (0..4).map(|i| p.with_shard(i, |g| g.num_edges())).sum();
        let pinned: u64 = (0..4).map(|i| view.with_shard(i, |g| g.num_edges())).sum();
        assert_eq!(pinned, live);
    }

    #[test]
    fn pinned_view_is_frozen_while_writer_advances() {
        let p = view_pool(3);
        p.apply(&batch(1_000, 0));
        let view = p.pin().expect("views enabled");
        assert_eq!(view.epoch(), 1);
        let before: u64 = (0..3).map(|i| view.with_shard(i, |g| g.num_edges())).sum();
        // Writer keeps going while the pin is held.
        p.apply(&batch(1_000, 7));
        let during: u64 = (0..3).map(|i| view.with_shard(i, |g| g.num_edges())).sum();
        assert_eq!(before, during, "pinned replicas must not move");
        drop(view);
        let fresh = p.pin().expect("views enabled");
        assert_eq!(fresh.epoch(), 2);
        let after: u64 = (0..3).map(|i| fresh.with_shard(i, |g| g.num_edges())).sum();
        let live: u64 = (0..3).map(|i| p.with_shard(i, |g| g.num_edges())).sum();
        assert_eq!(after, live);
    }

    #[test]
    fn concurrent_pins_share_one_epoch() {
        let p = view_pool(2);
        p.apply(&batch(500, 3));
        let a = p.pin().expect("views enabled");
        p.apply(&batch(500, 9));
        let b = p.pin().expect("views enabled");
        // b joined while a was pinned: it must see a's epoch, not a newer
        // one, so the two readers agree on the graph.
        assert_eq!(a.epoch(), b.epoch());
        let ea: u64 = (0..2).map(|i| a.with_shard(i, |g| g.num_edges())).sum();
        let eb: u64 = (0..2).map(|i| b.with_shard(i, |g| g.num_edges())).sum();
        assert_eq!(ea, eb);
    }

    #[test]
    fn backlog_folds_eagerly_without_pins() {
        use crate::epoch::FOLD_THRESHOLD;
        let p = view_pool(2);
        // Far more batches than the fold threshold, with no reader ever
        // pinning: workers must fold their own backlogs instead of
        // retaining every batch until drop.
        for round in 0..(FOLD_THRESHOLD as u32 * 4) {
            p.submit(Arc::new(batch(64, round)));
        }
        p.flush();
        let view = p.pin().expect("views enabled");
        let live: u64 = (0..2).map(|i| p.with_shard(i, |g| g.num_edges())).sum();
        let pinned: u64 = (0..2).map(|i| view.with_shard(i, |g| g.num_edges())).sum();
        assert_eq!(pinned, live);
    }

    #[test]
    fn views_survive_deletes_and_mixed_batches() {
        let p = view_pool(3);
        p.apply(&batch(1_000, 0));
        let mut mixed = EdgeBatch::new();
        for i in 0..400u32 {
            mixed.push_delete((i * 7) % 113, i % 251);
        }
        for i in 0..100u32 {
            mixed.push_insert(Edge::new(i % 113, i % 251, 9_999));
        }
        p.apply(&mixed);
        let view = p.pin().expect("views enabled");
        let live: u64 = (0..3).map(|i| p.with_shard(i, |g| g.num_edges())).sum();
        let pinned: u64 = (0..3).map(|i| view.with_shard(i, |g| g.num_edges())).sum();
        assert_eq!(pinned, live);
        assert_eq!(view.epoch(), 2);
    }
}
