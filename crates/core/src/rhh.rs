//! Robin Hood Hashing within a subblock.
//!
//! The RHH algorithm (paper §III.A, Fig. 1) keeps the *variance* of probe
//! distances low: when a floating edge meets an occupied bucket, whichever
//! of the two is currently "richer" (smaller probe distance) yields the
//! bucket, and the evicted edge continues probing. In GraphTinker the hash
//! table under RHH is one subblock; when the floating edge has probed every
//! cell of the subblock without finding a vacancy, the subblock is congested
//! and Tree-Based Hashing branches out to a child edgeblock.
//!
//! The functions here operate on a bare `&mut [EdgeCell]` (one subblock) so
//! they can be unit-tested and property-tested in isolation from the arena.

use gtinker_types::{VertexId, Weight};

use crate::edgeblock::{CellState, EdgeCell};

/// An edge not yet anchored in a cell: either a fresh insertion or an edge
/// displaced by a Robin Hood swap. The CAL pointer travels with it, so the
/// CAL copy never has to move when the main copy does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Floating {
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight.
    pub weight: Weight,
    /// CAL pointer of this edge's copy (or `NIL_U32`).
    pub cal_ptr: u32,
}

/// Result of attempting to place a floating edge into a subblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RhhOutcome {
    /// The edge (or, after swaps, *an* edge) was anchored at this offset
    /// within the subblock; every displaced edge was also re-anchored.
    Placed,
    /// The subblock is congested: after probing every cell, this edge is
    /// still floating and must branch out to the child edgeblock.
    Overflow(Floating),
}

/// Linear scan of a subblock for a live edge to `dst`.
///
/// Finds must inspect the whole subblock: tombstones do not terminate a
/// probe sequence, and delete-and-compact mode stores edges without the RHH
/// probe invariant. Vacant cells always carry the `NIL_VERTEX` sentinel in
/// `dst` (and `NIL_VERTEX` is rejected at insertion), so a single compare
/// per cell suffices. The scan runs in explicit chunks of four reduced to a
/// bitmask — four independent compares per iteration that the compiler can
/// vectorize, instead of a dependent early-exit per cell. Returns the offset
/// of the matching cell.
#[inline]
pub fn find_in_subblock(cells: &[EdgeCell], dst: VertexId) -> Option<usize> {
    debug_assert!(cells.iter().all(|c| c.is_occupied() || c.dst == gtinker_types::NIL_VERTEX));
    let mut chunks = cells.chunks_exact(4);
    let mut base = 0usize;
    for c in chunks.by_ref() {
        let m = (c[0].dst == dst) as u32
            | (((c[1].dst == dst) as u32) << 1)
            | (((c[2].dst == dst) as u32) << 2)
            | (((c[3].dst == dst) as u32) << 3);
        if m != 0 {
            return Some(base + m.trailing_zeros() as usize);
        }
        base += 4;
    }
    for (i, c) in chunks.remainder().iter().enumerate() {
        if c.dst == dst {
            return Some(base + i);
        }
    }
    None
}

/// First vacant (empty or tombstoned) offset in a subblock, probing
/// circularly from `bucket`. Used by delete-and-compact mode, where RHH is
/// disabled and insertion takes the first free slot on the probe path.
#[inline]
pub fn first_vacant(cells: &[EdgeCell], bucket: usize) -> Option<usize> {
    let n = cells.len();
    debug_assert!(n.is_power_of_two());
    (0..n).map(|i| (bucket + i) & (n - 1)).find(|&p| cells[p].is_vacant())
}

/// Robin Hood insertion of `edge` into a subblock, probing from `bucket`.
///
/// `inspected` is incremented once per cell touched, feeding the probe
/// statistics the paper reports. The loop visits at most `cells.len()`
/// positions: each step either places into a vacancy, swaps with a richer
/// resident, or moves on; after a full cycle without a vacancy the current
/// floating edge overflows to the caller for tree-based branching.
pub fn rhh_insert(
    cells: &mut [EdgeCell],
    bucket: usize,
    edge: Floating,
    inspected: &mut u64,
) -> RhhOutcome {
    let n = cells.len();
    debug_assert!(bucket < n);
    debug_assert!(n.is_power_of_two(), "subblock length must be a power of two");
    debug_assert!(n <= u8::MAX as usize + 1, "probe distance must fit in u8");
    let mask = n - 1;
    let m = crate::metrics::global();
    // Metric traffic is kept to at most one histogram record and one
    // counter add per call, no matter how long the displacement chain
    // gets: `max_anchor` tracks the largest probe distance any edge was
    // anchored at during this insertion (every anchored cell's probe is
    // covered by the chain max of *some* call, so the histogram's top
    // bucket still bounds the largest stored probe in the structure).
    let mut displacements: u64 = 0;
    let mut max_anchor: u64 = 0;
    let mut floating = edge;
    let mut probe: usize = 0;
    let mut pos = bucket;
    loop {
        if probe == n {
            m.rhh_overflows.inc();
            if displacements > 0 {
                m.rhh_probe.record(max_anchor);
                m.rhh_displacements.add(displacements);
            }
            return RhhOutcome::Overflow(floating);
        }
        *inspected += 1;
        let cell = &mut cells[pos];
        if cell.is_vacant() {
            *cell = EdgeCell {
                dst: floating.dst,
                weight: floating.weight,
                cal_ptr: floating.cal_ptr,
                probe: probe as u8,
                state: CellState::Occupied,
            };
            m.rhh_probe.record(max_anchor.max(probe as u64));
            if displacements > 0 {
                m.rhh_displacements.add(displacements);
            }
            return RhhOutcome::Placed;
        }
        if (cell.probe as usize) < probe {
            // The resident is richer: it yields the bucket and floats on.
            let displaced = Floating { dst: cell.dst, weight: cell.weight, cal_ptr: cell.cal_ptr };
            let displaced_probe = cell.probe as usize;
            *cell = EdgeCell {
                dst: floating.dst,
                weight: floating.weight,
                cal_ptr: floating.cal_ptr,
                probe: probe as u8,
                state: CellState::Occupied,
            };
            max_anchor = max_anchor.max(probe as u64);
            displacements += 1;
            floating = displaced;
            probe = displaced_probe;
        }
        pos = (pos + 1) & mask;
        probe += 1;
    }
}

/// Insertion without Robin Hood swapping: claim the first vacant cell on the
/// circular probe path from `bucket`. Used in delete-and-compact mode.
pub fn linear_insert(
    cells: &mut [EdgeCell],
    bucket: usize,
    edge: Floating,
    inspected: &mut u64,
) -> RhhOutcome {
    let n = cells.len();
    debug_assert!(n.is_power_of_two());
    let mask = n - 1;
    let m = crate::metrics::global();
    for i in 0..n {
        *inspected += 1;
        let pos = (bucket + i) & mask;
        if cells[pos].is_vacant() {
            cells[pos] = EdgeCell {
                dst: edge.dst,
                weight: edge.weight,
                cal_ptr: edge.cal_ptr,
                probe: i as u8,
                state: CellState::Occupied,
            };
            m.rhh_probe.record(i as u64);
            return RhhOutcome::Placed;
        }
    }
    m.rhh_overflows.inc();
    RhhOutcome::Overflow(edge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtinker_types::NIL_U32;

    fn fl(dst: u32) -> Floating {
        Floating { dst, weight: dst, cal_ptr: NIL_U32 }
    }

    fn empty_sub(n: usize) -> Vec<EdgeCell> {
        vec![EdgeCell::EMPTY; n]
    }

    #[test]
    fn inserts_into_empty_at_bucket() {
        let mut cells = empty_sub(8);
        let mut ins = 0;
        let out = rhh_insert(&mut cells, 3, fl(42), &mut ins);
        assert_eq!(out, RhhOutcome::Placed);
        assert_eq!(cells[3].dst, 42);
        assert_eq!(cells[3].probe, 0);
        assert_eq!(ins, 1);
    }

    #[test]
    fn probes_forward_on_collision() {
        let mut cells = empty_sub(8);
        let mut ins = 0;
        rhh_insert(&mut cells, 2, fl(1), &mut ins);
        rhh_insert(&mut cells, 2, fl(2), &mut ins);
        // Equal probe (0 vs 0): incumbent keeps the bucket, newcomer steps on.
        assert_eq!(cells[2].dst, 1);
        assert_eq!(cells[3].dst, 2);
        assert_eq!(cells[3].probe, 1);
    }

    #[test]
    fn robin_hood_swap_evicts_richer_resident() {
        // Reproduce the paper's Fig. 1 scenario: a floating edge with a
        // larger probe distance displaces a resident with a smaller one.
        let mut cells = empty_sub(8);
        let mut ins = 0;
        rhh_insert(&mut cells, 0, fl(10), &mut ins); // at 0, probe 0
        rhh_insert(&mut cells, 0, fl(11), &mut ins); // at 1, probe 1
        rhh_insert(&mut cells, 1, fl(12), &mut ins); // bucket 1 taken by probe-1 edge
                                                     // Edge 12 (probe 0 at pos 1) loses to 11 (probe 1); steps to pos 2.
        assert_eq!(cells[1].dst, 11);
        assert_eq!(cells[2].dst, 12);
        assert_eq!(cells[2].probe, 1);

        // Now an edge hashed to 0 arriving late has to walk past both and
        // eventually displaces someone poorer than it.
        rhh_insert(&mut cells, 0, fl(13), &mut ins);
        // 13: pos0 probe0 vs res probe0 -> step; pos1 probe1 vs probe1 -> step;
        // pos2 probe2 vs probe1 -> swap (12 floats, probe1); 12: pos3 empty.
        assert_eq!(cells[2].dst, 13);
        assert_eq!(cells[2].probe, 2);
        assert_eq!(cells[3].dst, 12);
        assert_eq!(cells[3].probe, 2);
    }

    #[test]
    fn wraps_around_subblock() {
        let mut cells = empty_sub(4);
        let mut ins = 0;
        for pos in 0..3 {
            rhh_insert(&mut cells, pos, fl(pos as u32), &mut ins);
        }
        rhh_insert(&mut cells, 3, fl(99), &mut ins);
        rhh_insert(&mut cells, 3, fl(100), &mut ins); // wraps to 0.. all full? no: 4 cells, 4 edges -> 5th overflows
                                                      // 4 edges fill the subblock; the fifth must overflow.
        let mut occupied = cells.iter().filter(|c| c.is_occupied()).count();
        assert_eq!(occupied, 4);
        let out = rhh_insert(&mut cells, 1, fl(101), &mut ins);
        assert!(matches!(out, RhhOutcome::Overflow(_)));
        occupied = cells.iter().filter(|c| c.is_occupied()).count();
        assert_eq!(occupied, 4, "overflow must not lose or duplicate edges");
    }

    #[test]
    fn overflow_returns_some_edge_preserving_multiset() {
        let mut cells = empty_sub(4);
        let mut ins = 0;
        let mut all: Vec<u32> = Vec::new();
        let mut overflowed: Vec<u32> = Vec::new();
        for d in 0..6u32 {
            all.push(d);
            match rhh_insert(&mut cells, (d as usize * 3) % 4, fl(d), &mut ins) {
                RhhOutcome::Placed => {}
                RhhOutcome::Overflow(f) => overflowed.push(f.dst),
            }
        }
        let mut stored: Vec<u32> =
            cells.iter().filter(|c| c.is_occupied()).map(|c| c.dst).collect();
        stored.extend(&overflowed);
        stored.sort_unstable();
        assert_eq!(stored, all, "stored + overflowed must equal inserted");
        assert_eq!(overflowed.len(), 2);
    }

    #[test]
    fn probe_invariant_holds_after_inserts() {
        // Every occupied cell's stored probe equals its circular distance
        // from the bucket it was hashed to. Track buckets externally.
        let mut cells = empty_sub(8);
        let mut ins = 0;
        let buckets: Vec<(u32, usize)> =
            (0..8).map(|d| (d as u32, (d as usize * 5 + 2) % 8)).collect();
        for &(d, b) in &buckets {
            rhh_insert(&mut cells, b, fl(d), &mut ins);
        }
        for (pos, c) in cells.iter().enumerate() {
            if c.is_occupied() {
                let b = buckets.iter().find(|&&(d, _)| d == c.dst).unwrap().1;
                let dist = (pos + 8 - b) % 8;
                assert_eq!(dist, c.probe as usize, "edge {} at pos {pos} bucket {b}", c.dst);
            }
        }
    }

    #[test]
    fn tombstone_is_reusable() {
        let mut cells = empty_sub(4);
        let mut ins = 0;
        rhh_insert(&mut cells, 0, fl(1), &mut ins);
        cells[0] = EdgeCell { state: CellState::Tombstone, ..EdgeCell::EMPTY };
        let out = rhh_insert(&mut cells, 0, fl(2), &mut ins);
        assert_eq!(out, RhhOutcome::Placed);
        assert_eq!(cells[0].dst, 2);
        assert!(cells[0].is_occupied());
    }

    #[test]
    fn find_scans_past_tombstones() {
        let mut cells = empty_sub(4);
        let mut ins = 0;
        rhh_insert(&mut cells, 0, fl(1), &mut ins);
        rhh_insert(&mut cells, 0, fl(2), &mut ins);
        // Tombstoning clears the cell back to the NIL sentinel (the delete
        // path's invariant).
        cells[0] = EdgeCell { state: CellState::Tombstone, ..EdgeCell::EMPTY };
        assert_eq!(find_in_subblock(&cells, 2), Some(1));
        assert_eq!(find_in_subblock(&cells, 1), None, "tombstoned edge must not be found");
    }

    #[test]
    fn linear_insert_takes_first_vacancy_and_overflows_when_full() {
        let mut cells = empty_sub(4);
        let mut ins = 0;
        assert_eq!(linear_insert(&mut cells, 2, fl(7), &mut ins), RhhOutcome::Placed);
        assert_eq!(cells[2].dst, 7);
        assert_eq!(linear_insert(&mut cells, 2, fl(8), &mut ins), RhhOutcome::Placed);
        assert_eq!(cells[3].dst, 8);
        assert_eq!(linear_insert(&mut cells, 2, fl(9), &mut ins), RhhOutcome::Placed);
        assert_eq!(cells[0].dst, 9, "wraps to position 0");
        assert_eq!(linear_insert(&mut cells, 2, fl(10), &mut ins), RhhOutcome::Placed);
        assert_eq!(cells[1].dst, 10);
        let out = linear_insert(&mut cells, 2, fl(11), &mut ins);
        assert_eq!(out, RhhOutcome::Overflow(fl(11)), "full subblock overflows the same edge");
    }

    #[test]
    fn inspected_counter_counts_cells_touched() {
        let mut cells = empty_sub(8);
        let mut ins = 0;
        rhh_insert(&mut cells, 0, fl(1), &mut ins);
        assert_eq!(ins, 1);
        rhh_insert(&mut cells, 0, fl(2), &mut ins);
        assert_eq!(ins, 3, "collision probe touches two cells");
    }
}
