//! Robin Hood Hashing within a subblock.
//!
//! The RHH algorithm (paper §III.A, Fig. 1) keeps the *variance* of probe
//! distances low: when a floating edge meets an occupied bucket, whichever
//! of the two is currently "richer" (smaller probe distance) yields the
//! bucket, and the evicted edge continues probing. In GraphTinker the hash
//! table under RHH is one subblock; when the floating edge has probed every
//! cell of the subblock without finding a vacancy, the subblock is congested
//! and Tree-Based Hashing branches out to a child edgeblock.
//!
//! Every subblock carries a parallel SWAR tag lane (see [`crate::swar`]):
//! one control byte per cell holding the destination's 7-bit fingerprint or
//! a vacancy sentinel. The insertion functions maintain the lane
//! unconditionally; the `*_tagged` scan variants consult it to match
//! fingerprints eight-at-a-time and touch full-width [`EdgeCell`]s only on
//! candidate hits, while the untagged variants preserve the seed scalar
//! scans for A/B comparison (`TinkerConfig::probe_tags`).
//!
//! The functions here operate on bare `&mut [EdgeCell]` / `&mut [u8]`
//! slices (one subblock) so they can be unit-tested and property-tested in
//! isolation from the arena.

use gtinker_types::{VertexId, Weight};

use crate::edgeblock::{CellState, EdgeCell};
use crate::swar::{
    self, first_index, indices, load, load_padded, low_lanes, match_tag, match_vacant, GROUP,
    TAG_TOMBSTONE,
};

/// An edge not yet anchored in a cell: either a fresh insertion or an edge
/// displaced by a Robin Hood swap. The CAL pointer travels with it, so the
/// CAL copy never has to move when the main copy does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Floating {
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight.
    pub weight: Weight,
    /// CAL pointer of this edge's copy (or `NIL_U32`).
    pub cal_ptr: u32,
}

/// Result of attempting to place a floating edge into a subblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RhhOutcome {
    /// The edge (or, after swaps, *an* edge) was anchored at this offset
    /// within the subblock; every displaced edge was also re-anchored.
    Placed,
    /// The subblock is congested: after probing every cell, this edge is
    /// still floating and must branch out to the child edgeblock.
    Overflow(Floating),
}

/// Outcome of one tagged subblock scan, with the cost accounting the probe
/// statistics need: `inspected` counts full-width cells actually compared
/// (candidates), `groups` counts `u64` tag loads, `false_positives` counts
/// candidates whose full destination then mismatched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagScan {
    /// Offset of the matching cell, if found.
    pub hit: Option<usize>,
    /// Full-width cells compared (candidate verifications).
    pub inspected: u64,
    /// 8-wide tag groups loaded.
    pub groups: u64,
    /// Candidates whose fingerprint matched but whose destination did not.
    pub false_positives: u64,
}

/// Linear scan of a subblock for a live edge to `dst`.
///
/// Finds must inspect the whole subblock: tombstones do not terminate a
/// probe sequence, and delete-and-compact mode stores edges without the RHH
/// probe invariant. Vacant cells always carry the `NIL_VERTEX` sentinel in
/// `dst` (and `NIL_VERTEX` is rejected at insertion), so a single compare
/// per cell suffices. The scan runs in explicit chunks of four reduced to a
/// bitmask — four independent compares per iteration that the compiler can
/// vectorize, instead of a dependent early-exit per cell. Returns the offset
/// of the matching cell. This is the seed scan, kept as the
/// `probe_tags = false` baseline.
#[inline]
pub fn find_in_subblock(cells: &[EdgeCell], dst: VertexId) -> Option<usize> {
    debug_assert!(cells.iter().all(|c| c.is_occupied() || c.dst == gtinker_types::NIL_VERTEX));
    let mut chunks = cells.chunks_exact(4);
    let mut base = 0usize;
    for c in chunks.by_ref() {
        let m = (c[0].dst == dst) as u32
            | (((c[1].dst == dst) as u32) << 1)
            | (((c[2].dst == dst) as u32) << 2)
            | (((c[3].dst == dst) as u32) << 3);
        if m != 0 {
            return Some(base + m.trailing_zeros() as usize);
        }
        base += 4;
    }
    for (i, c) in chunks.remainder().iter().enumerate() {
        if c.dst == dst {
            return Some(base + i);
        }
    }
    None
}

/// SWAR scan of a subblock for a live edge to `dst` with fingerprint `tag`.
///
/// Loads the tag lane eight bytes at a time and compares the full
/// destination only at lanes whose fingerprint matches, so a miss in an
/// 8-cell subblock costs one `u64` load and zero cell touches in the common
/// case. A fingerprint match can never land on a vacant lane (sentinels
/// have the high bit set, fingerprints do not — see [`crate::swar`]), so
/// candidates need no occupancy check. Like the seed scan, the whole
/// subblock is examined: tombstones terminate nothing.
#[inline]
pub fn find_in_subblock_tagged(cells: &[EdgeCell], tags: &[u8], dst: VertexId, tag: u8) -> TagScan {
    let n = cells.len();
    debug_assert_eq!(tags.len(), n);
    let mut scan = TagScan::default();
    let mut at = 0;
    while at < n {
        let group = if n - at >= GROUP { load(tags, at) } else { load_padded(tags, at) };
        scan.groups += 1;
        for lane in indices(match_tag(group, tag)) {
            let i = at + lane;
            debug_assert!(i < n, "padding lanes cannot fingerprint-match");
            scan.inspected += 1;
            if cells[i].dst == dst {
                scan.hit = Some(i);
                return scan;
            }
            scan.false_positives += 1;
        }
        at += GROUP;
    }
    scan
}

/// First vacant (empty or tombstoned) offset in a subblock, probing
/// circularly from `bucket`. Used by delete-and-compact mode, where RHH is
/// disabled and insertion takes the first free slot on the probe path. This
/// is the seed cell-walking variant; [`first_vacant_tagged`] answers the
/// same question from the tag lane.
#[inline]
pub fn first_vacant(cells: &[EdgeCell], bucket: usize) -> Option<usize> {
    let n = cells.len();
    debug_assert!(n.is_power_of_two());
    (0..n).map(|i| (bucket + i) & (n - 1)).find(|&p| cells[p].is_vacant())
}

/// First vacant offset on the circular probe path from `bucket`, read from
/// the tag lane alone (the vacancy matcher is exact, so no cell is touched).
#[inline]
pub fn first_vacant_tagged(tags: &[u8], bucket: usize) -> Option<usize> {
    let n = tags.len();
    debug_assert!(n.is_power_of_two() && bucket < n);
    if n <= GROUP {
        let v = match_vacant(load_padded(tags, 0)) & low_lanes(n);
        let after = v & !low_lanes(bucket);
        return first_index(if after != 0 { after } else { v });
    }
    // n is a multiple of GROUP: aligned groups tile the subblock exactly.
    let g0 = bucket & !(GROUP - 1);
    let lane0 = bucket - g0;
    for k in 0..n / GROUP {
        let at = (g0 + k * GROUP) & (n - 1);
        let mut v = match_vacant(load(tags, at));
        if k == 0 {
            v &= !low_lanes(lane0);
        }
        if let Some(l) = first_index(v) {
            return Some(at + l);
        }
    }
    // Wrapped all the way around: only the start group's low lanes remain.
    first_index(match_vacant(load(tags, g0)) & low_lanes(lane0)).map(|l| g0 + l)
}

/// Whether the subblock has any vacant slot, answered from the tag lane
/// (one or two `u64` tests for the default geometries). The insertion
/// walk's vacancy scout uses this instead of touching cells.
#[inline]
pub fn has_vacant_tags(tags: &[u8]) -> bool {
    let n = tags.len();
    let mut at = 0;
    while at < n {
        let avail = n - at;
        let v = if avail >= GROUP {
            match_vacant(load(tags, at))
        } else {
            match_vacant(load_padded(tags, at)) & low_lanes(avail)
        };
        if v != 0 {
            return true;
        }
        at += GROUP;
    }
    false
}

/// Robin Hood insertion of `edge` into a subblock, probing from `bucket`.
///
/// `tag` is the floating edge's fingerprint byte; the tag lane is kept in
/// lockstep with the cells through placements and displacement swaps (a
/// displaced resident takes its tag byte along), so it stays valid in both
/// scan modes. The walk itself is inherently scalar — every visited
/// resident's probe distance must be compared to maintain the Robin Hood
/// invariant — so the SWAR win on the insert path comes from the callers'
/// tagged find/vacancy pre-checks, not from this loop.
///
/// `inspected` is incremented once per cell touched, feeding the probe
/// statistics the paper reports. The loop visits at most `cells.len()`
/// positions: each step either places into a vacancy, swaps with a richer
/// resident, or moves on; after a full cycle without a vacancy the current
/// floating edge overflows to the caller for tree-based branching. The
/// `rhh_probe` histogram records the cells inspected by this placement (the
/// same unit the tagged paths record), one observation per call.
pub fn rhh_insert(
    cells: &mut [EdgeCell],
    tags: &mut [u8],
    bucket: usize,
    edge: Floating,
    tag: u8,
    inspected: &mut u64,
) -> RhhOutcome {
    let n = cells.len();
    debug_assert!(bucket < n);
    debug_assert_eq!(tags.len(), n);
    debug_assert!(n.is_power_of_two(), "subblock length must be a power of two");
    debug_assert!(n <= u8::MAX as usize + 1, "probe distance must fit in u8");
    debug_assert!(swar::tag_is_occupied(tag));
    let mask = n - 1;
    let m = crate::metrics::global();
    // Metric traffic is kept to at most one histogram record and one
    // counter add per call, no matter how long the displacement chain gets.
    let mut displacements: u64 = 0;
    let mut touched: u64 = 0;
    let mut floating = edge;
    let mut ftag = tag;
    let mut probe: usize = 0;
    let mut pos = bucket;
    loop {
        if probe == n {
            m.rhh_overflows.inc();
            m.rhh_probe.record(touched);
            if displacements > 0 {
                m.rhh_displacements.add(displacements);
            }
            return RhhOutcome::Overflow(floating);
        }
        *inspected += 1;
        touched += 1;
        let cell = &mut cells[pos];
        if cell.is_vacant() {
            *cell = EdgeCell {
                dst: floating.dst,
                weight: floating.weight,
                cal_ptr: floating.cal_ptr,
                probe: probe as u8,
                state: CellState::Occupied,
            };
            tags[pos] = ftag;
            m.rhh_probe.record(touched);
            if displacements > 0 {
                m.rhh_displacements.add(displacements);
            }
            return RhhOutcome::Placed;
        }
        if (cell.probe as usize) < probe {
            // The resident is richer: it yields the bucket and floats on,
            // carrying its tag byte with it.
            let displaced = Floating { dst: cell.dst, weight: cell.weight, cal_ptr: cell.cal_ptr };
            let displaced_probe = cell.probe as usize;
            *cell = EdgeCell {
                dst: floating.dst,
                weight: floating.weight,
                cal_ptr: floating.cal_ptr,
                probe: probe as u8,
                state: CellState::Occupied,
            };
            std::mem::swap(&mut tags[pos], &mut ftag);
            displacements += 1;
            floating = displaced;
            probe = displaced_probe;
        }
        pos = (pos + 1) & mask;
        probe += 1;
    }
}

/// Insertion without Robin Hood swapping: claim the first vacant cell on the
/// circular probe path from `bucket`, walking cells one at a time (the seed
/// scan). Used in delete-and-compact mode with `probe_tags = false`. The
/// tag lane is maintained either way.
pub fn linear_insert(
    cells: &mut [EdgeCell],
    tags: &mut [u8],
    bucket: usize,
    edge: Floating,
    tag: u8,
    inspected: &mut u64,
) -> RhhOutcome {
    let n = cells.len();
    debug_assert!(n.is_power_of_two());
    debug_assert_eq!(tags.len(), n);
    let mask = n - 1;
    let m = crate::metrics::global();
    for i in 0..n {
        *inspected += 1;
        let pos = (bucket + i) & mask;
        if cells[pos].is_vacant() {
            cells[pos] = EdgeCell {
                dst: edge.dst,
                weight: edge.weight,
                cal_ptr: edge.cal_ptr,
                probe: i as u8,
                state: CellState::Occupied,
            };
            tags[pos] = tag;
            m.rhh_probe.record(i as u64 + 1);
            return RhhOutcome::Placed;
        }
    }
    m.rhh_overflows.inc();
    m.rhh_probe.record(n as u64);
    RhhOutcome::Overflow(edge)
}

/// Tagged variant of [`linear_insert`]: jumps straight to the first vacancy
/// found in the tag lane, touching exactly one cell on success. Produces
/// the identical placement (same slot, same stored probe distance) as the
/// seed walk — the probe path is the same, only the scan is vectorized.
pub fn linear_insert_tagged(
    cells: &mut [EdgeCell],
    tags: &mut [u8],
    bucket: usize,
    edge: Floating,
    tag: u8,
    inspected: &mut u64,
) -> RhhOutcome {
    let n = cells.len();
    debug_assert!(n.is_power_of_two());
    debug_assert_eq!(tags.len(), n);
    let m = crate::metrics::global();
    match first_vacant_tagged(tags, bucket) {
        Some(pos) => {
            *inspected += 1;
            let probe = (pos + n - bucket) & (n - 1);
            cells[pos] = EdgeCell {
                dst: edge.dst,
                weight: edge.weight,
                cal_ptr: edge.cal_ptr,
                probe: probe as u8,
                state: CellState::Occupied,
            };
            tags[pos] = tag;
            m.rhh_probe.record(1);
            RhhOutcome::Placed
        }
        None => {
            m.rhh_overflows.inc();
            m.rhh_probe.record(0);
            RhhOutcome::Overflow(edge)
        }
    }
}

/// The tag byte a vacant cell must carry after a delete:
/// [`TAG_TOMBSTONE`] in delete-only mode, [`swar::TAG_EMPTY`] when the cell
/// is recycled outright.
#[inline]
pub fn vacant_tag(tombstone: bool) -> u8 {
    if tombstone {
        TAG_TOMBSTONE
    } else {
        swar::TAG_EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::dst_tag;
    use crate::swar::TAG_EMPTY;
    use gtinker_types::NIL_U32;

    fn fl(dst: u32) -> Floating {
        Floating { dst, weight: dst, cal_ptr: NIL_U32 }
    }

    fn empty_sub(n: usize) -> (Vec<EdgeCell>, Vec<u8>) {
        (vec![EdgeCell::EMPTY; n], vec![TAG_EMPTY; n])
    }

    /// Insert with the destination's real fingerprint.
    fn ins(cells: &mut [EdgeCell], tags: &mut [u8], bucket: usize, f: Floating, n: &mut u64) {
        rhh_insert(cells, tags, bucket, f, dst_tag(f.dst), n);
    }

    fn assert_tags_consistent(cells: &[EdgeCell], tags: &[u8]) {
        for (c, &t) in cells.iter().zip(tags) {
            match c.state {
                CellState::Occupied => assert_eq!(t, dst_tag(c.dst), "tag mismatch for {}", c.dst),
                CellState::Empty => assert_eq!(t, TAG_EMPTY),
                CellState::Tombstone => assert_eq!(t, TAG_TOMBSTONE),
            }
        }
    }

    #[test]
    fn inserts_into_empty_at_bucket() {
        let (mut cells, mut tags) = empty_sub(8);
        let mut n = 0;
        let out = rhh_insert(&mut cells, &mut tags, 3, fl(42), dst_tag(42), &mut n);
        assert_eq!(out, RhhOutcome::Placed);
        assert_eq!(cells[3].dst, 42);
        assert_eq!(cells[3].probe, 0);
        assert_eq!(n, 1);
        assert_tags_consistent(&cells, &tags);
    }

    #[test]
    fn probes_forward_on_collision() {
        let (mut cells, mut tags) = empty_sub(8);
        let mut n = 0;
        ins(&mut cells, &mut tags, 2, fl(1), &mut n);
        ins(&mut cells, &mut tags, 2, fl(2), &mut n);
        // Equal probe (0 vs 0): incumbent keeps the bucket, newcomer steps on.
        assert_eq!(cells[2].dst, 1);
        assert_eq!(cells[3].dst, 2);
        assert_eq!(cells[3].probe, 1);
        assert_tags_consistent(&cells, &tags);
    }

    #[test]
    fn robin_hood_swap_evicts_richer_resident() {
        // Reproduce the paper's Fig. 1 scenario: a floating edge with a
        // larger probe distance displaces a resident with a smaller one.
        let (mut cells, mut tags) = empty_sub(8);
        let mut n = 0;
        ins(&mut cells, &mut tags, 0, fl(10), &mut n); // at 0, probe 0
        ins(&mut cells, &mut tags, 0, fl(11), &mut n); // at 1, probe 1
        ins(&mut cells, &mut tags, 1, fl(12), &mut n); // bucket 1 taken by probe-1 edge
                                                       // Edge 12 (probe 0 at pos 1) loses to 11 (probe 1); steps to pos 2.
        assert_eq!(cells[1].dst, 11);
        assert_eq!(cells[2].dst, 12);
        assert_eq!(cells[2].probe, 1);

        // Now an edge hashed to 0 arriving late has to walk past both and
        // eventually displaces someone poorer than it.
        ins(&mut cells, &mut tags, 0, fl(13), &mut n);
        // 13: pos0 probe0 vs res probe0 -> step; pos1 probe1 vs probe1 -> step;
        // pos2 probe2 vs probe1 -> swap (12 floats, probe1); 12: pos3 empty.
        assert_eq!(cells[2].dst, 13);
        assert_eq!(cells[2].probe, 2);
        assert_eq!(cells[3].dst, 12);
        assert_eq!(cells[3].probe, 2);
        // Displacement chains must carry tag bytes along with the edges.
        assert_tags_consistent(&cells, &tags);
    }

    #[test]
    fn wraps_around_subblock() {
        let (mut cells, mut tags) = empty_sub(4);
        let mut n = 0;
        for pos in 0..3 {
            ins(&mut cells, &mut tags, pos, fl(pos as u32), &mut n);
        }
        ins(&mut cells, &mut tags, 3, fl(99), &mut n);
        ins(&mut cells, &mut tags, 3, fl(100), &mut n); // wraps to 0.. all full? no: 4 cells, 4 edges -> 5th overflows
                                                        // 4 edges fill the subblock; the fifth must overflow.
        let mut occupied = cells.iter().filter(|c| c.is_occupied()).count();
        assert_eq!(occupied, 4);
        let out = rhh_insert(&mut cells, &mut tags, 1, fl(101), dst_tag(101), &mut n);
        assert!(matches!(out, RhhOutcome::Overflow(_)));
        occupied = cells.iter().filter(|c| c.is_occupied()).count();
        assert_eq!(occupied, 4, "overflow must not lose or duplicate edges");
        assert_tags_consistent(&cells, &tags);
    }

    #[test]
    fn overflow_returns_some_edge_preserving_multiset() {
        let (mut cells, mut tags) = empty_sub(4);
        let mut n = 0;
        let mut all: Vec<u32> = Vec::new();
        let mut overflowed: Vec<u32> = Vec::new();
        for d in 0..6u32 {
            all.push(d);
            match rhh_insert(&mut cells, &mut tags, (d as usize * 3) % 4, fl(d), dst_tag(d), &mut n)
            {
                RhhOutcome::Placed => {}
                RhhOutcome::Overflow(f) => overflowed.push(f.dst),
            }
        }
        let mut stored: Vec<u32> =
            cells.iter().filter(|c| c.is_occupied()).map(|c| c.dst).collect();
        stored.extend(&overflowed);
        stored.sort_unstable();
        assert_eq!(stored, all, "stored + overflowed must equal inserted");
        assert_eq!(overflowed.len(), 2);
        assert_tags_consistent(&cells, &tags);
    }

    #[test]
    fn probe_invariant_holds_after_inserts() {
        // Every occupied cell's stored probe equals its circular distance
        // from the bucket it was hashed to. Track buckets externally.
        let (mut cells, mut tags) = empty_sub(8);
        let mut n = 0;
        let buckets: Vec<(u32, usize)> =
            (0..8).map(|d| (d as u32, (d as usize * 5 + 2) % 8)).collect();
        for &(d, b) in &buckets {
            ins(&mut cells, &mut tags, b, fl(d), &mut n);
        }
        for (pos, c) in cells.iter().enumerate() {
            if c.is_occupied() {
                let b = buckets.iter().find(|&&(d, _)| d == c.dst).unwrap().1;
                let dist = (pos + 8 - b) % 8;
                assert_eq!(dist, c.probe as usize, "edge {} at pos {pos} bucket {b}", c.dst);
            }
        }
    }

    #[test]
    fn tombstone_is_reusable() {
        let (mut cells, mut tags) = empty_sub(4);
        let mut n = 0;
        ins(&mut cells, &mut tags, 0, fl(1), &mut n);
        cells[0] = EdgeCell { state: CellState::Tombstone, ..EdgeCell::EMPTY };
        tags[0] = TAG_TOMBSTONE;
        let out = rhh_insert(&mut cells, &mut tags, 0, fl(2), dst_tag(2), &mut n);
        assert_eq!(out, RhhOutcome::Placed);
        assert_eq!(cells[0].dst, 2);
        assert!(cells[0].is_occupied());
        assert_tags_consistent(&cells, &tags);
    }

    #[test]
    fn find_scans_past_tombstones() {
        let (mut cells, mut tags) = empty_sub(4);
        let mut n = 0;
        ins(&mut cells, &mut tags, 0, fl(1), &mut n);
        ins(&mut cells, &mut tags, 0, fl(2), &mut n);
        // Tombstoning clears the cell back to the NIL sentinel (the delete
        // path's invariant).
        cells[0] = EdgeCell { state: CellState::Tombstone, ..EdgeCell::EMPTY };
        tags[0] = TAG_TOMBSTONE;
        assert_eq!(find_in_subblock(&cells, 2), Some(1));
        assert_eq!(find_in_subblock(&cells, 1), None, "tombstoned edge must not be found");
        // The tagged scan agrees on both.
        assert_eq!(find_in_subblock_tagged(&cells, &tags, 2, dst_tag(2)).hit, Some(1));
        assert_eq!(find_in_subblock_tagged(&cells, &tags, 1, dst_tag(1)).hit, None);
    }

    #[test]
    fn tagged_find_matches_seed_scan_and_counts_costs() {
        let (mut cells, mut tags) = empty_sub(8);
        let mut n = 0;
        for d in [5u32, 9, 13, 21] {
            ins(&mut cells, &mut tags, (d as usize) % 8, fl(d), &mut n);
        }
        for d in 0..64u32 {
            let seed = find_in_subblock(&cells, d);
            let tagged = find_in_subblock_tagged(&cells, &tags, d, dst_tag(d));
            assert_eq!(tagged.hit, seed, "scan disagreement for {d}");
            assert_eq!(tagged.groups, 1, "8-cell subblock is one group");
            // Candidate count = hits + false positives; a hit inspects the
            // matching cell, so inspected >= 1 on every hit.
            assert_eq!(tagged.inspected, tagged.false_positives + u64::from(seed.is_some()));
        }
    }

    #[test]
    fn tagged_vacancy_helpers_agree_with_cells() {
        for n in [4usize, 8, 16] {
            let (mut cells, mut tags) = empty_sub(n);
            let mut ctr = 0;
            // Fill every slot, then punch vacancies at varied offsets.
            for d in 0..n as u32 {
                linear_insert(&mut cells, &mut tags, 0, fl(d + 1), dst_tag(d + 1), &mut ctr);
            }
            assert!(!has_vacant_tags(&tags));
            assert_eq!(first_vacant_tagged(&tags, 0), None);
            for hole in [0usize, n / 2, n - 1] {
                let (mut cells, mut tags) = (cells.clone(), tags.clone());
                cells[hole] = EdgeCell { state: CellState::Tombstone, ..EdgeCell::EMPTY };
                tags[hole] = TAG_TOMBSTONE;
                assert!(has_vacant_tags(&tags));
                for bucket in 0..n {
                    assert_eq!(
                        first_vacant_tagged(&tags, bucket),
                        first_vacant(&cells, bucket),
                        "n={n} hole={hole} bucket={bucket}"
                    );
                }
            }
        }
    }

    #[test]
    fn linear_insert_takes_first_vacancy_and_overflows_when_full() {
        let (mut cells, mut tags) = empty_sub(4);
        let mut n = 0;
        let t = |d: u32| dst_tag(d);
        assert_eq!(
            linear_insert(&mut cells, &mut tags, 2, fl(7), t(7), &mut n),
            RhhOutcome::Placed
        );
        assert_eq!(cells[2].dst, 7);
        assert_eq!(
            linear_insert(&mut cells, &mut tags, 2, fl(8), t(8), &mut n),
            RhhOutcome::Placed
        );
        assert_eq!(cells[3].dst, 8);
        assert_eq!(
            linear_insert(&mut cells, &mut tags, 2, fl(9), t(9), &mut n),
            RhhOutcome::Placed
        );
        assert_eq!(cells[0].dst, 9, "wraps to position 0");
        assert_eq!(
            linear_insert(&mut cells, &mut tags, 2, fl(10), t(10), &mut n),
            RhhOutcome::Placed
        );
        assert_eq!(cells[1].dst, 10);
        let out = linear_insert(&mut cells, &mut tags, 2, fl(11), t(11), &mut n);
        assert_eq!(out, RhhOutcome::Overflow(fl(11)), "full subblock overflows the same edge");
        assert_tags_consistent(&cells, &tags);
    }

    #[test]
    fn tagged_linear_insert_places_identically_to_seed() {
        // Same stream into a seed-scanned and a tag-scanned subblock must
        // produce cell-for-cell identical layouts (same slots, same stored
        // probe distances), including through tombstone reuse.
        for sub in [4usize, 8, 16] {
            let (mut a_cells, mut a_tags) = empty_sub(sub);
            let (mut b_cells, mut b_tags) = empty_sub(sub);
            let mut ctr = 0;
            for d in 1..=(sub as u32 * 2) {
                let bucket = (d as usize * 5 + 1) % sub;
                let oa =
                    linear_insert(&mut a_cells, &mut a_tags, bucket, fl(d), dst_tag(d), &mut ctr);
                let ob = linear_insert_tagged(
                    &mut b_cells,
                    &mut b_tags,
                    bucket,
                    fl(d),
                    dst_tag(d),
                    &mut ctr,
                );
                assert_eq!(oa, ob, "outcome diverged at {d}");
                if d == sub as u32 / 2 {
                    // Tombstone one slot in both and keep going.
                    let hole = (d as usize) % sub;
                    if a_cells[hole].is_occupied() {
                        a_cells[hole] = EdgeCell { state: CellState::Tombstone, ..EdgeCell::EMPTY };
                        a_tags[hole] = TAG_TOMBSTONE;
                        b_cells[hole] = EdgeCell { state: CellState::Tombstone, ..EdgeCell::EMPTY };
                        b_tags[hole] = TAG_TOMBSTONE;
                    }
                }
            }
            assert_eq!(a_cells, b_cells, "sub={sub}");
            assert_eq!(a_tags, b_tags, "sub={sub}");
            assert_tags_consistent(&b_cells, &b_tags);
        }
    }

    #[test]
    fn inspected_counter_counts_cells_touched() {
        let (mut cells, mut tags) = empty_sub(8);
        let mut n = 0;
        ins(&mut cells, &mut tags, 0, fl(1), &mut n);
        assert_eq!(n, 1);
        ins(&mut cells, &mut tags, 0, fl(2), &mut n);
        assert_eq!(n, 3, "collision probe touches two cells");
        // The tagged linear path touches exactly the placed cell.
        let mut n2 = 0;
        linear_insert_tagged(&mut cells, &mut tags, 0, fl(3), dst_tag(3), &mut n2);
        assert_eq!(n2, 1);
    }

    #[test]
    fn vacant_tag_maps_delete_modes() {
        assert_eq!(vacant_tag(true), TAG_TOMBSTONE);
        assert_eq!(vacant_tag(false), TAG_EMPTY);
    }
}
