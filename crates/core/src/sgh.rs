//! The Scatter-Gather Hashing (SGH) unit.
//!
//! SGH is GraphTinker's first level of compaction (§III.B): every source
//! vertex id streamed into the structure is remapped, on first sight, to the
//! next unused index of the EdgeblockArray's main region. The mapping (and
//! its inverse) is maintained by the *Scatter-Gather Hashing table*, so that
//! during analytics only non-empty vertices — exactly the first
//! `len()` indices of the main region — are ever traversed.
//!
//! The table itself is a Robin-Hood open-addressing hash map specialized for
//! `u32 -> u32`, implemented here rather than borrowed from `std`: the SGH
//! lookup sits on the hot path of every single edge update, where SipHash
//! and the generic `HashMap` layout would dominate the cost the structure is
//! designed to avoid.
//!
//! The table carries a SWAR tag lane (see [`crate::swar`]): one fingerprint
//! byte per slot plus a [`GROUP`]-byte mirror of the table's head appended
//! at the tail, so a wrapping probe can always load eight contiguous tag
//! bytes. SGH never deletes, so an empty tag terminates any probe cluster
//! exactly — the tagged lookup scans eight slots per `u64` and touches a
//! full slot only on fingerprint candidates.

use gtinker_types::{VertexId, NIL_VERTEX};

use crate::hash::{mix64, tag_of_hash};
use crate::swar::{indices, load, match_empty, match_tag, GROUP, TAG_EMPTY};

/// A slot in the SGH table.
#[derive(Clone, Copy)]
struct Slot {
    /// Original (external) vertex id; NIL_VERTEX marks an empty slot.
    key: VertexId,
    /// Dense (internal) id assigned to it.
    value: u32,
    /// Robin Hood probe distance of this entry.
    probe: u16,
}

const EMPTY_SLOT: Slot = Slot { key: NIL_VERTEX, value: 0, probe: 0 };

/// Dense remapping unit: original source id <-> dense main-region index.
pub struct SghUnit {
    slots: Vec<Slot>,
    /// Tag lane: `slots.len() + GROUP` bytes, where the trailing [`GROUP`]
    /// bytes mirror the leading ones so wrapping group loads stay
    /// contiguous. Fingerprint byte when occupied, [`TAG_EMPTY`] otherwise
    /// (SGH never deletes, so there is no tombstone state).
    tags: Vec<u8>,
    /// Inverse mapping: dense id -> original id.
    reverse: Vec<VertexId>,
    mask: usize,
    /// Resize when len * 4 > capacity * 3 (load factor 0.75).
    len: usize,
    /// Scan strategy: SWAR tag groups (default) or the seed scalar probe.
    /// The lane is maintained either way.
    probe_tags: bool,
}

impl SghUnit {
    /// Creates an empty unit with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(1024)
    }

    /// Creates an empty unit sized for at least `cap` vertices.
    pub fn with_capacity(cap: usize) -> Self {
        let n = cap.next_power_of_two().max(16);
        SghUnit {
            slots: vec![EMPTY_SLOT; n],
            tags: vec![TAG_EMPTY; n + GROUP],
            reverse: Vec::new(),
            mask: n - 1,
            len: 0,
            probe_tags: true,
        }
    }

    /// Returns the unit with SWAR tag probing switched on/off (on by
    /// default; off selects the seed scalar probe for A/B comparison).
    pub fn probe_tags(mut self, enable: bool) -> Self {
        self.probe_tags = enable;
        self
    }

    /// Number of distinct source vertices hashed so far (= number of
    /// non-empty vertices in the main region).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no vertex has been hashed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes a tag byte, maintaining the wrap-around mirror.
    #[inline]
    fn set_tag(&mut self, pos: usize, tag: u8) {
        self.tags[pos] = tag;
        if pos < GROUP {
            self.tags[self.slots.len() + pos] = tag;
        }
    }

    /// Looks up the dense id for an original id, if it has been hashed.
    #[inline]
    pub fn get(&self, orig: VertexId) -> Option<u32> {
        self.get_hashed(mix64(orig as u64), orig)
    }

    /// [`get`](Self::get) with the `mix64(orig)` hash precomputed by the
    /// caller, so one mix per update covers both lookup and insert probes.
    #[inline]
    pub fn get_hashed(&self, hash: u64, orig: VertexId) -> Option<u32> {
        debug_assert_ne!(orig, NIL_VERTEX, "NIL_VERTEX is reserved");
        debug_assert_eq!(hash, mix64(orig as u64), "hash must be mix64(orig)");
        if self.probe_tags {
            return self.get_tagged(hash, orig);
        }
        let mut pos = (hash as usize) & self.mask;
        let mut probe: u16 = 0;
        loop {
            let s = &self.slots[pos];
            if s.key == orig {
                return Some(s.value);
            }
            // Robin Hood invariant: if the resident's probe distance is
            // smaller than ours would be, the key cannot be further on.
            if s.key == NIL_VERTEX || s.probe < probe {
                return None;
            }
            pos = (pos + 1) & self.mask;
            probe += 1;
        }
    }

    /// Tagged lookup: scan eight tag bytes per step from the home slot,
    /// verify fingerprint candidates against the full key, and stop at the
    /// first group containing a truly-empty slot (exact — SGH never
    /// deletes, so a probe cluster cannot span an empty slot). The mirror
    /// tail makes the unaligned wrapping loads contiguous.
    #[inline]
    fn get_tagged(&self, hash: u64, orig: VertexId) -> Option<u32> {
        let n = self.slots.len();
        let tag = tag_of_hash(hash);
        let mut at = (hash as usize) & self.mask;
        let mut scanned = 0usize;
        loop {
            let group = load(&self.tags, at);
            for lane in indices(match_tag(group, tag)) {
                let i = (at + lane) & self.mask;
                let s = &self.slots[i];
                if s.key == orig {
                    return Some(s.value);
                }
            }
            if match_empty(group) != 0 {
                return None;
            }
            at = (at + GROUP) & self.mask;
            scanned += GROUP;
            if scanned >= n {
                // Defensive: load factor 0.75 guarantees an empty slot, so
                // a full cycle without one cannot happen on a valid table.
                return None;
            }
        }
    }

    /// Returns the dense id for `orig`, assigning the next unused index on
    /// first sight (the paper's "obtaining the next unused index location in
    /// the EdgeblockArray starting from zero").
    pub fn get_or_insert(&mut self, orig: VertexId) -> u32 {
        self.get_or_insert_hashed(mix64(orig as u64), orig)
    }

    /// [`get_or_insert`](Self::get_or_insert) with the hash precomputed:
    /// the miss path reuses it for the fresh insert instead of remixing.
    pub fn get_or_insert_hashed(&mut self, hash: u64, orig: VertexId) -> u32 {
        if let Some(v) = self.get_hashed(hash, orig) {
            return v;
        }
        self.insert_absent_hashed(hash, orig)
    }

    /// Registers a source known to be absent (the caller already probed with
    /// the same `hash` and missed) and returns its new dense id. Lets the
    /// insert hot path compute the source hash exactly once per operation
    /// instead of re-probing on the miss path.
    pub fn insert_absent_hashed(&mut self, hash: u64, orig: VertexId) -> u32 {
        debug_assert!(self.get_hashed(hash, orig).is_none());
        let dense = self.reverse.len() as u32;
        self.reverse.push(orig);
        self.insert_fresh_hashed(hash, orig, dense);
        // New-source path only (not re-hit on grow-rehash): feeds the
        // live-vertex gauge of the telemetry /healthz endpoint.
        crate::metrics::global().sgh_sources.inc();
        dense
    }

    /// Original id for a dense id (panics if out of range).
    #[inline]
    pub fn original_of(&self, dense: u32) -> VertexId {
        self.reverse[dense as usize]
    }

    /// Iterates over `(dense, original)` pairs in dense order.
    pub fn iter_dense(&self) -> impl Iterator<Item = (u32, VertexId)> + '_ {
        self.reverse.iter().enumerate().map(|(d, &o)| (d as u32, o))
    }

    /// Maximum probe distance currently in the table (diagnostic).
    pub fn max_probe(&self) -> u16 {
        self.slots.iter().filter(|s| s.key != NIL_VERTEX).map(|s| s.probe).max().unwrap_or(0)
    }

    /// Checks that every tag byte matches its slot (fingerprint when
    /// occupied, [`TAG_EMPTY`] when free) and that the mirror tail agrees
    /// with the table head. Part of `validate_tag_invariants`.
    pub fn validate_tags(&self) -> Result<(), String> {
        let n = self.slots.len();
        if self.tags.len() != n + GROUP {
            return Err(format!("SGH tag lane length {} != {} + {GROUP}", self.tags.len(), n));
        }
        for (i, s) in self.slots.iter().enumerate() {
            let want =
                if s.key == NIL_VERTEX { TAG_EMPTY } else { tag_of_hash(mix64(s.key as u64)) };
            if self.tags[i] != want {
                return Err(format!(
                    "SGH slot {i} (key {}): tag {:#04x}, want {want:#04x}",
                    s.key, self.tags[i]
                ));
            }
        }
        for i in 0..GROUP {
            if self.tags[n + i] != self.tags[i] {
                return Err(format!(
                    "SGH mirror byte {i}: {:#04x} != head {:#04x}",
                    self.tags[n + i],
                    self.tags[i]
                ));
            }
        }
        Ok(())
    }

    /// Heap footprint of the table in bytes (slots + tags + reverse map).
    pub fn memory_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot>()
            + self.tags.capacity()
            + self.reverse.capacity() * std::mem::size_of::<VertexId>()
    }

    fn insert_fresh(&mut self, key: VertexId, value: u32) {
        self.insert_fresh_hashed(mix64(key as u64), key, value);
    }

    fn insert_fresh_hashed(&mut self, hash: u64, key: VertexId, value: u32) {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        self.len += 1;
        let mut floating = Slot { key, value, probe: 0 };
        let mut ftag = tag_of_hash(hash);
        // The mask may have just changed in `grow`; the hash is mask-free.
        let mut pos = (hash as usize) & self.mask;
        loop {
            if self.slots[pos].key == NIL_VERTEX {
                // Probe histogram sampled on the (rare) new-source path, so
                // the per-op lookup path stays free of atomic traffic. The
                // placement probe bounds the lookup probe of this key, and
                // rehash during `grow` re-records the whole table, keeping
                // the histogram tracking table health over time.
                crate::metrics::global().sgh_probe.record(floating.probe as u64);
                self.slots[pos] = floating;
                self.set_tag(pos, ftag);
                return;
            }
            if self.slots[pos].probe < floating.probe {
                // The displaced resident carries its tag byte with it.
                std::mem::swap(&mut self.slots[pos], &mut floating);
                let displaced_tag = self.tags[pos];
                self.set_tag(pos, ftag);
                ftag = displaced_tag;
            }
            pos = (pos + 1) & self.mask;
            floating.probe += 1;
        }
    }

    fn grow(&mut self) {
        crate::metrics::global().sgh_grows.inc();
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_cap]);
        self.tags = vec![TAG_EMPTY; new_cap + GROUP];
        self.mask = self.slots.len() - 1;
        self.len = 0;
        for s in old {
            if s.key != NIL_VERTEX {
                self.insert_fresh(s.key, s.value);
            }
        }
    }
}

impl Default for SghUnit {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SghUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SghUnit")
            .field("len", &self.len)
            .field("capacity", &self.slots.len())
            .field("max_probe", &self.max_probe())
            .field("probe_tags", &self.probe_tags)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_dense_ids_in_arrival_order() {
        let mut sgh = SghUnit::new();
        assert_eq!(sgh.get_or_insert(34), 0);
        assert_eq!(sgh.get_or_insert(22789), 1);
        assert_eq!(sgh.get_or_insert(7), 2);
        // Re-presenting an id returns the original mapping.
        assert_eq!(sgh.get_or_insert(22789), 1);
        assert_eq!(sgh.len(), 3);
    }

    #[test]
    fn reverse_mapping_roundtrips() {
        let mut sgh = SghUnit::new();
        for orig in [100u32, 5, 9_000_000, 0, 42] {
            let d = sgh.get_or_insert(orig);
            assert_eq!(sgh.original_of(d), orig);
        }
    }

    #[test]
    fn get_on_missing_returns_none() {
        let mut sgh = SghUnit::new();
        sgh.get_or_insert(1);
        assert_eq!(sgh.get(2), None);
        assert_eq!(sgh.get(1), Some(0));
    }

    #[test]
    fn survives_growth() {
        let mut sgh = SghUnit::with_capacity(16);
        for i in 0..10_000u32 {
            assert_eq!(sgh.get_or_insert(i * 3 + 1), i);
        }
        for i in 0..10_000u32 {
            assert_eq!(sgh.get(i * 3 + 1), Some(i), "lost mapping after growth");
            assert_eq!(sgh.original_of(i), i * 3 + 1);
        }
        assert_eq!(sgh.len(), 10_000);
        sgh.validate_tags().unwrap();
    }

    #[test]
    fn iter_dense_is_ordered_and_complete() {
        let mut sgh = SghUnit::new();
        let origs = [9u32, 4, 77, 12];
        for &o in &origs {
            sgh.get_or_insert(o);
        }
        let pairs: Vec<_> = sgh.iter_dense().collect();
        assert_eq!(pairs, vec![(0, 9), (1, 4), (2, 77), (3, 12)]);
    }

    #[test]
    fn probe_distances_stay_small_under_load() {
        let mut sgh = SghUnit::with_capacity(16);
        for i in 0..50_000u32 {
            sgh.get_or_insert(i.wrapping_mul(2_654_435_761));
        }
        // Robin Hood at load 0.75 keeps the max probe small; allow slack.
        assert!(sgh.max_probe() < 64, "max probe {} unexpectedly large", sgh.max_probe());
        sgh.validate_tags().unwrap();
    }

    #[test]
    fn hashed_variants_match_unhashed() {
        let mut a = SghUnit::with_capacity(16);
        let mut b = SghUnit::with_capacity(16);
        for i in 0..5_000u32 {
            let orig = i.wrapping_mul(2_654_435_761) | 1;
            let h = mix64(orig as u64);
            assert_eq!(a.get_or_insert(orig), b.get_or_insert_hashed(h, orig));
            assert_eq!(a.get(orig), b.get_hashed(h, orig));
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn tagged_and_seed_probes_agree() {
        // Same keys into a tagged and a seed-scanned unit: every present
        // and absent lookup must agree, through multiple grows (which
        // rebuild the lane) and wrap-around clusters.
        let mut tagged = SghUnit::with_capacity(16);
        let mut seed = SghUnit::with_capacity(16).probe_tags(false);
        for i in 0..20_000u32 {
            let orig = i.wrapping_mul(2_654_435_761) | 1;
            assert_eq!(tagged.get_or_insert(orig), seed.get_or_insert(orig));
        }
        for i in 0..40_000u32 {
            let orig = i.wrapping_mul(2_654_435_761) | 1;
            assert_eq!(tagged.get(orig), seed.get(orig), "lookup diverged for {orig}");
            // A key that was never inserted (even ids).
            assert_eq!(tagged.get(orig ^ 1), seed.get(orig ^ 1));
        }
        tagged.validate_tags().unwrap();
        seed.validate_tags().unwrap();
    }

    #[test]
    fn mirror_tracks_head_writes() {
        // Keys that land in the first GROUP slots must be visible through
        // the mirror (exercised by wrapping lookups near the table end).
        let mut sgh = SghUnit::with_capacity(16);
        for i in 0..12u32 {
            sgh.get_or_insert(i * 7 + 3);
        }
        sgh.validate_tags().unwrap();
        for i in 0..12u32 {
            assert!(sgh.get(i * 7 + 3).is_some());
        }
    }

    #[test]
    fn empty_unit_behaves() {
        let sgh = SghUnit::new();
        assert!(sgh.is_empty());
        assert_eq!(sgh.get(5), None);
        assert_eq!(sgh.max_probe(), 0);
        assert_eq!(sgh.iter_dense().count(), 0);
        sgh.validate_tags().unwrap();
        assert!(sgh.memory_bytes() > 0);
    }
}
