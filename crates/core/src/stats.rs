//! Probe-distance and structure statistics.
//!
//! The paper's core claims are about *probe distance* (cells traversed per
//! update) and *compaction* (how densely live edges pack in memory). These
//! counters make both directly observable, so the benchmark harness can
//! report them next to throughput and the tests can assert on them.

use serde::{Deserialize, Serialize};

/// Running counters over update operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeStats {
    /// Update operations performed (inserts + deletes + finds).
    pub operations: u64,
    /// Edge-cells inspected across all operations.
    pub cells_inspected: u64,
    /// Workblocks fetched by the load unit (cells_inspected rounded up to
    /// workblock granularity per subblock visit).
    pub workblocks_fetched: u64,
    /// Subblocks visited.
    pub subblocks_visited: u64,
    /// Branch-out events (child edgeblock created).
    pub branches_created: u64,
    /// Deepest tree level ever reached.
    pub max_depth: u32,
    /// New edges inserted (not counting weight updates).
    pub inserts: u64,
    /// Weight updates to already-present edges.
    pub updates: u64,
    /// Edges deleted.
    pub deletes: u64,
    /// Delete operations that found no matching edge.
    pub delete_misses: u64,
    /// 8-wide SWAR tag groups scanned (RHH subblock fingerprint loads).
    pub tag_group_scans: u64,
    /// Tag fingerprint matches whose full destination compare then missed.
    pub tag_false_positives: u64,
}

impl ProbeStats {
    /// Mean cells inspected per operation.
    pub fn mean_probe(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.cells_inspected as f64 / self.operations as f64
        }
    }

    /// Merges another stats block into this one (used by the parallel
    /// wrapper to aggregate per-instance counters).
    pub fn merge(&mut self, other: &ProbeStats) {
        self.operations += other.operations;
        self.cells_inspected += other.cells_inspected;
        self.workblocks_fetched += other.workblocks_fetched;
        self.subblocks_visited += other.subblocks_visited;
        self.branches_created += other.branches_created;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.inserts += other.inserts;
        self.updates += other.updates;
        self.deletes += other.deletes;
        self.delete_misses += other.delete_misses;
        self.tag_group_scans += other.tag_group_scans;
        self.tag_false_positives += other.tag_false_positives;
    }
}

/// Point-in-time snapshot of the structure's shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StructureStats {
    /// Live edges.
    pub live_edges: u64,
    /// Distinct non-empty source vertices.
    pub num_sources: usize,
    /// Edgeblocks allocated in the main region.
    pub main_blocks: usize,
    /// Edgeblocks in the overflow region (descendants).
    pub overflow_blocks: usize,
    /// Edgeblocks currently on the free list.
    pub free_blocks: usize,
    /// Tombstoned cells.
    pub tombstones: usize,
    /// CAL blocks allocated (0 when CAL is disabled).
    pub cal_blocks: usize,
    /// CAL records flagged invalid.
    pub cal_invalid: u64,
    /// Fraction of allocated edge-cells holding live edges, in `[0, 1]`.
    pub occupancy: f64,
    /// Vertices with live edges stored in the inline tier (0 on a
    /// fixed-geometry store, where tiering is disabled).
    pub tier_inline_vertices: usize,
    /// Vertices with live edges stored in the RHH edgeblock tier (0 on a
    /// fixed-geometry store — the tier counters only run when adaptive
    /// layout is enabled).
    pub tier_blocks_vertices: usize,
    /// Vertices with live edges stored in the dense hub tier.
    pub tier_hub_vertices: usize,
    /// Tier promotions performed (inline→blocks, blocks→hub).
    pub tier_promotions: u64,
    /// Tier demotions performed (hub→blocks, blocks→inline).
    pub tier_demotions: u64,
    /// Estimated heap bytes of the inline tier.
    pub inline_bytes: usize,
    /// Estimated heap bytes of the hub tier.
    pub hub_bytes: usize,
    /// Heap bytes used by the structure (cells, topology, tiers, CAL, SGH).
    pub memory_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_probe_handles_zero_ops() {
        let s = ProbeStats::default();
        assert_eq!(s.mean_probe(), 0.0);
    }

    #[test]
    fn mean_probe_divides() {
        let s = ProbeStats { operations: 4, cells_inspected: 10, ..Default::default() };
        assert!((s.mean_probe() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = ProbeStats {
            operations: 1,
            cells_inspected: 2,
            workblocks_fetched: 3,
            subblocks_visited: 4,
            branches_created: 5,
            max_depth: 2,
            inserts: 6,
            updates: 7,
            deletes: 8,
            delete_misses: 9,
            tag_group_scans: 10,
            tag_false_positives: 11,
        };
        let b = ProbeStats {
            operations: 10,
            cells_inspected: 20,
            workblocks_fetched: 30,
            subblocks_visited: 40,
            branches_created: 50,
            max_depth: 1,
            inserts: 60,
            updates: 70,
            deletes: 80,
            delete_misses: 90,
            tag_group_scans: 100,
            tag_false_positives: 110,
        };
        a.merge(&b);
        assert_eq!(a.operations, 11);
        assert_eq!(a.cells_inspected, 22);
        assert_eq!(a.workblocks_fetched, 33);
        assert_eq!(a.subblocks_visited, 44);
        assert_eq!(a.branches_created, 55);
        assert_eq!(a.max_depth, 2);
        assert_eq!(a.inserts, 66);
        assert_eq!(a.updates, 77);
        assert_eq!(a.deletes, 88);
        assert_eq!(a.delete_misses, 99);
        assert_eq!(a.tag_group_scans, 110);
        assert_eq!(a.tag_false_positives, 121);
    }
}
