//! Safe-Rust SWAR group-probe primitives over packed 1-byte slot tags.
//!
//! SwissTable-style control bytes: every slot in a probed table carries one
//! tag byte holding either a 7-bit hash fingerprint (occupied, high bit
//! clear) or a vacancy sentinel (high bit set — [`TAG_EMPTY`] for
//! never-used, [`TAG_TOMBSTONE`] for deleted). A probe loads eight tags as
//! one little-endian `u64` and answers "which bytes match this fingerprint /
//! are vacant / are empty" with three or four ALU ops, so full-width cells
//! are only touched on candidate hits. Everything here is plain integer
//! arithmetic on `u64` — no `std::simd` (unstable) and no pointer casts,
//! which keeps the crate's `#![forbid(unsafe_code)]` intact while still
//! scanning a whole cache-line's worth of tags per iteration.
//!
//! The fingerprint matcher uses the classic haszero trick on the XOR of the
//! group and a broadcast tag: `(x - 0x0101..) & !x & 0x8080..` has the high
//! bit of byte *i* set when byte *i* of `x` is zero. Borrow propagation can
//! additionally set high bits in bytes *more significant* than a true zero
//! byte (e.g. an `0x01` byte directly above a `0x00` byte), so the mask may
//! contain false positives above the first true match — callers always
//! verify candidates against the full key, so a spurious bit costs one
//! extra compare and never affects correctness. The lowest set bit is
//! always a true match. The vacancy and empty matchers are exact (pure bit
//! tests, no subtraction).

/// Tags scanned per SWAR step: one `u64` = 8 bytes.
pub const GROUP: usize = 8;

/// Tag for a never-occupied slot (high bit and all fingerprint bits set).
pub const TAG_EMPTY: u8 = 0xFF;

/// Tag for a deleted slot (high bit set, fingerprint bits clear).
pub const TAG_TOMBSTONE: u8 = 0x80;

/// Every-byte-LSB constant for the haszero trick.
const LSB: u64 = 0x0101_0101_0101_0101;

/// Every-byte-MSB constant: the "vacant" bit lane.
const MSB: u64 = 0x8080_8080_8080_8080;

/// Whether a tag byte denotes an occupied slot (fingerprint, high bit 0).
#[inline]
pub fn tag_is_occupied(tag: u8) -> bool {
    tag & 0x80 == 0
}

/// Broadcasts a byte into all eight lanes of a `u64`.
#[inline]
pub fn repeat(b: u8) -> u64 {
    (b as u64).wrapping_mul(LSB)
}

/// Loads exactly [`GROUP`] tag bytes starting at `at` (little-endian, so
/// byte index within the group == lane index in the match masks). The
/// slice must hold at least `at + GROUP` bytes.
#[inline]
pub fn load(tags: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(tags[at..at + GROUP].try_into().expect("GROUP bytes"))
}

/// Loads up to [`GROUP`] tag bytes starting at `at`, padding past the end
/// of the slice with [`TAG_EMPTY`]. Lets callers scan tables shorter than
/// a group (or a ragged tail) with the same primitives; padded lanes read
/// as empty, which match-tag never hits and vacancy scans must bound-check.
#[inline]
pub fn load_padded(tags: &[u8], at: usize) -> u64 {
    let avail = tags.len().saturating_sub(at).min(GROUP);
    let mut buf = [TAG_EMPTY; GROUP];
    buf[..avail].copy_from_slice(&tags[at..at + avail]);
    u64::from_le_bytes(buf)
}

/// Mask of candidate lanes whose tag byte equals `tag`. High bit of lane
/// *i* set → byte *i* is a candidate. May contain false positives in lanes
/// above a true match (see module docs); the lowest set lane is exact.
/// `tag` must be an occupied fingerprint (high bit clear) — sentinel bytes
/// never XOR to zero against one.
#[inline]
pub fn match_tag(group: u64, tag: u8) -> u64 {
    debug_assert!(tag_is_occupied(tag), "match_tag takes a fingerprint, not a sentinel");
    let x = group ^ repeat(tag);
    x.wrapping_sub(LSB) & !x & MSB
}

/// Mask of vacant lanes (empty **or** tombstone): exactly the high bit of
/// every sentinel byte. Exact — occupied fingerprints have the high bit
/// clear by construction.
#[inline]
pub fn match_vacant(group: u64) -> u64 {
    group & MSB
}

/// Mask of truly-empty lanes ([`TAG_EMPTY`] only, tombstones excluded).
/// Exact over the tag alphabet: it tests bits 7 *and* 6, and among legal
/// tag bytes only `0xFF` has both set (occupied tags clear bit 7;
/// `TAG_TOMBSTONE` clears bit 6). Bytes `0xC0..=0xFE` would also fire,
/// but no maintained tag lane ever contains them.
#[inline]
pub fn match_empty(group: u64) -> u64 {
    group & (group << 1) & MSB
}

/// Mask selecting the low `lanes` lanes of a match mask (all lanes when
/// `lanes >= GROUP`). Used to drop padded or out-of-window lanes from
/// vacancy scans, where the [`TAG_EMPTY`] padding would otherwise read as
/// a real empty slot.
#[inline]
pub fn low_lanes(lanes: usize) -> u64 {
    if lanes >= GROUP {
        !0
    } else {
        (1u64 << (lanes * 8)) - 1
    }
}

/// Lane index (0..8) of the lowest set bit of a match mask, if any.
#[inline]
pub fn first_index(mask: u64) -> Option<usize> {
    if mask == 0 {
        None
    } else {
        Some((mask.trailing_zeros() >> 3) as usize)
    }
}

/// Iterator over the lane indices set in a match mask, lowest first.
#[derive(Debug, Clone, Copy)]
pub struct MaskIter(u64);

impl Iterator for MaskIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let i = (self.0.trailing_zeros() >> 3) as usize;
        self.0 &= self.0 - 1;
        Some(i)
    }
}

/// Iterates the lane indices set in a match mask.
#[inline]
pub fn indices(mask: u64) -> MaskIter {
    MaskIter(mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_classes_are_disjoint() {
        assert!(!tag_is_occupied(TAG_EMPTY));
        assert!(!tag_is_occupied(TAG_TOMBSTONE));
        for fp in 0u8..0x80 {
            assert!(tag_is_occupied(fp));
        }
    }

    #[test]
    fn match_tag_finds_every_true_position() {
        for pos in 0..GROUP {
            let mut tags = [TAG_EMPTY; GROUP];
            tags[pos] = 0x2A;
            let m = match_tag(load(&tags, 0), 0x2A);
            assert!(indices(m).any(|i| i == pos), "missed lane {pos}");
            assert_eq!(first_index(m), Some(pos));
        }
    }

    #[test]
    fn match_tag_lowest_lane_is_exact_and_no_false_negatives() {
        // Adversarial group exercising the borrow-propagation false
        // positive: a 0x2B byte (target+1) directly above a true match.
        let tags = [0x2Au8, 0x2B, 0x00, 0x2A, TAG_TOMBSTONE, 0x7F, TAG_EMPTY, 0x2A];
        let m = match_tag(load(&tags, 0), 0x2A);
        let hits: Vec<usize> = indices(m).collect();
        // All true positions present...
        for want in [0, 3, 7] {
            assert!(hits.contains(&want), "missing true match {want}: {hits:?}");
        }
        // ...the lowest is exact, and any extras are verifiable supersets.
        assert_eq!(first_index(m), Some(0));
        for i in &hits {
            assert!(tags[*i] == 0x2A || *i > 0, "false positive below first true match");
        }
    }

    #[test]
    fn vacant_and_empty_masks_are_exact() {
        let tags = [0x00u8, TAG_EMPTY, 0x7F, TAG_TOMBSTONE, 0x2A, TAG_EMPTY, 0x01, TAG_TOMBSTONE];
        let g = load(&tags, 0);
        let vacant: Vec<usize> = indices(match_vacant(g)).collect();
        assert_eq!(vacant, vec![1, 3, 5, 7]);
        let empty: Vec<usize> = indices(match_empty(g)).collect();
        assert_eq!(empty, vec![1, 5]);
    }

    #[test]
    fn exhaustive_single_byte_semantics() {
        // Every *legal* tag value in lane 0 against an otherwise-occupied
        // group: the three matchers must classify lane 0 exactly. The legal
        // alphabet is fingerprints plus the two sentinels — `match_empty`
        // is only exact over that alphabet (see its docs).
        let legal = (0u8..0x80).chain([TAG_TOMBSTONE, TAG_EMPTY]);
        for t in legal {
            let tags = [t, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17];
            let g = load(&tags, 0);
            assert_eq!(match_vacant(g) & 0x80 != 0, !tag_is_occupied(t), "vacant({t:#04x})");
            assert_eq!(match_empty(g) & 0x80 != 0, t == TAG_EMPTY, "empty({t:#04x})");
            if tag_is_occupied(t) {
                assert!(match_tag(g, t) & 0x80 != 0, "self-match({t:#04x})");
            }
        }
    }

    #[test]
    fn load_padded_fills_with_empty() {
        let tags = [0x2Au8, 0x01, 0x02];
        let g = load_padded(&tags, 1);
        assert_eq!(g & 0xFF, 0x01);
        assert_eq!((g >> 8) & 0xFF, 0x02);
        for lane in 2..GROUP {
            assert_eq!((g >> (lane * 8)) & 0xFF, TAG_EMPTY as u64, "lane {lane} not padded");
        }
        // Past-the-end load is all empty.
        assert_eq!(load_padded(&tags, 3), repeat(TAG_EMPTY));
        let m = match_tag(load_padded(&tags, 0), 0x2A);
        assert_eq!(first_index(m), Some(0));
    }

    #[test]
    fn low_lanes_bounds() {
        assert_eq!(low_lanes(0), 0);
        assert_eq!(low_lanes(1), 0xFF);
        assert_eq!(low_lanes(4), 0xFFFF_FFFF);
        assert_eq!(low_lanes(8), !0);
        assert_eq!(low_lanes(99), !0);
        // Padding past a 3-tag table must not read as vacancies.
        let tags = [0x01u8, 0x02, 0x03];
        assert_eq!(match_vacant(load_padded(&tags, 0)) & low_lanes(tags.len()), 0);
    }

    #[test]
    fn mask_iteration_clears_low_bits_first() {
        let mut tags = [0x05u8; GROUP];
        tags[2] = TAG_EMPTY;
        tags[6] = TAG_EMPTY;
        let hits: Vec<usize> = indices(match_vacant(load(&tags, 0))).collect();
        assert_eq!(hits, vec![2, 6]);
        assert_eq!(first_index(0), None);
    }
}
