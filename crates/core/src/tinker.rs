//! The GraphTinker data structure: ties the EdgeblockArray, SGH unit,
//! VertexPropertyArray and CAL together (paper Figs. 2-5).
//!
//! Operation map from the paper's interface components (§III.B) to this
//! implementation:
//!
//! * **load / writeback units** — the subblock slices handed to the RHH
//!   routines; workblock-granular retrieval is accounted in [`ProbeStats`].
//! * **find-edge unit** — the internal `locate` walk (FIND mode).
//! * **insert-edge unit** — the INSERT-mode walk in
//!   [`GraphTinker::insert_edge`].
//! * **inference / interval units** — the per-depth control flow of the
//!   walks (which subblock next, when to branch out).
//! * **SGH unit** — [`crate::sgh::SghUnit`].

use gtinker_types::{
    DeleteMode, Edge, EdgeBatch, GraphError, Result, TinkerConfig, UpdateOp, VertexId, Weight,
    INLINE_CAP_MAX, NIL_U32, NIL_VERTEX,
};

use crate::cal::CalArray;
use crate::edgeblock::{BlockArena, BlockId, CellState, EdgeCell};
use crate::hash::{dst_tag, edge_hash, source_hash, split_hash, subblock_and_bucket, tag_of_hash};
use crate::hubseg::HubSegment;
use crate::rhh::{
    find_in_subblock, find_in_subblock_tagged, has_vacant_tags, linear_insert,
    linear_insert_tagged, rhh_insert, vacant_tag, Floating, RhhOutcome,
};
use crate::sgh::SghUnit;
use crate::stats::{ProbeStats, StructureStats};
use crate::swar::{TAG_EMPTY, TAG_TOMBSTONE};
use crate::vertex::{InlineAdj, Tier, VertexPropertyArray};

/// Outcome counts of applying an [`EdgeBatch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchResult {
    /// Edges newly inserted.
    pub inserted: u64,
    /// Insertions that found the edge already present (weight updated).
    pub updated: u64,
    /// Edges deleted.
    pub deleted: u64,
    /// Deletions whose target edge was absent.
    pub not_found: u64,
}

impl BatchResult {
    /// Total operations processed.
    pub fn total(&self) -> u64 {
        self.inserted + self.updated + self.deleted + self.not_found
    }

    /// Folds another result into this one (per-shard results of one batch,
    /// or per-batch results of one stream, sum componentwise).
    pub fn merge(&mut self, other: &BatchResult) {
        self.inserted += other.inserted;
        self.updated += other.updated;
        self.deleted += other.deleted;
        self.not_found += other.not_found;
    }
}

/// Cost of one FIND-mode walk; folded into [`ProbeStats`] by mutating
/// entry points.
#[derive(Debug, Clone, Copy, Default)]
struct FindCost {
    cells: u64,
    subblocks: u64,
    workblocks: u64,
    depth: u32,
    tag_groups: u64,
    tag_false_positives: u64,
}

/// The GraphTinker dynamic-graph data structure.
///
/// See the [crate docs](crate) for an overview and a usage example.
pub struct GraphTinker {
    config: TinkerConfig,
    arena: BlockArena,
    /// Top-parent edgeblock per dense source id (`NIL_U32` = none yet).
    /// This is the main region's index: with SGH enabled the array is
    /// exactly as long as the number of non-empty vertices.
    top_blocks: Vec<u32>,
    /// Dense remapping of source ids; `None` when SGH is disabled (the
    /// ablation), in which case the raw source id indexes `top_blocks`.
    sgh: Option<SghUnit>,
    props: VertexPropertyArray,
    cal: Option<CalArray>,
    stats: ProbeStats,
    live_edges: u64,
    /// One past the largest original vertex id seen (src or dst side).
    vertex_space: u32,
    /// Blocks currently serving as top-parents (main region size).
    main_blocks: usize,
    /// Logical shard count for parallel analytics streaming (see
    /// [`for_each_edge_shard`](Self::for_each_edge_shard)). Purely a read
    /// path setting; ingestion is unaffected.
    analytics_shards: usize,
    /// Cached [`TinkerConfig::adaptive_enabled`]. When false, the tier
    /// vectors below stay empty and every path takes the fixed-geometry
    /// code, byte-identical to the non-tiered structure.
    adaptive: bool,
    /// Adjacency tier per dense source (parallel to `top_blocks`).
    tiers: Vec<Tier>,
    /// Inline-tier adjacency per dense source.
    inline: Vec<InlineAdj>,
    /// Hub-segment slot per dense source (`NIL_U32` = not a hub).
    hub_of: Vec<u32>,
    /// Hub segments, indexed by `hub_of`; slots of demoted hubs are
    /// recycled through `free_hubs`.
    hubs: Vec<HubSegment>,
    free_hubs: Vec<u32>,
    /// Vertices with live edges, per tier (indexed by `Tier as usize`).
    tier_counts: [u64; 3],
    tier_promotions: u64,
    tier_demotions: u64,
}

impl GraphTinker {
    /// Creates an empty GraphTinker with the given configuration.
    pub fn new(config: TinkerConfig) -> Result<Self> {
        config.validate().map_err(GraphError::InvalidConfig)?;
        Ok(GraphTinker {
            arena: BlockArena::new(config.pagewidth, config.subblock),
            top_blocks: Vec::new(),
            sgh: config.enable_sgh.then(|| SghUnit::new().probe_tags(config.probe_tags)),
            props: VertexPropertyArray::new(),
            cal: config
                .enable_cal
                .then(|| CalArray::new(config.cal_group_size, config.cal_block_size)),
            stats: ProbeStats::default(),
            live_edges: 0,
            vertex_space: 0,
            main_blocks: 0,
            analytics_shards: 1,
            adaptive: config.adaptive_enabled(),
            tiers: Vec::new(),
            inline: Vec::new(),
            hub_of: Vec::new(),
            hubs: Vec::new(),
            free_hubs: Vec::new(),
            tier_counts: [0; 3],
            tier_promotions: 0,
            tier_demotions: 0,
            config,
        })
    }

    /// Creates a GraphTinker with the default (paper-tuned) configuration.
    pub fn with_defaults() -> Self {
        Self::new(TinkerConfig::default()).expect("default config is valid")
    }

    /// The active configuration.
    #[inline]
    pub fn config(&self) -> &TinkerConfig {
        &self.config
    }

    /// Number of live edges in the structure.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.live_edges
    }

    /// Number of distinct non-empty source vertices ever seen.
    ///
    /// (A source whose edges were all deleted still occupies its slot; the
    /// paper's SGH assigns ids monotonically and never reclaims them.)
    #[inline]
    pub fn num_sources(&self) -> usize {
        match &self.sgh {
            Some(s) => s.len(),
            None => self.top_blocks.len(),
        }
    }

    /// One past the largest original vertex id observed on either edge
    /// endpoint — the id space analytics must cover.
    #[inline]
    pub fn vertex_space(&self) -> u32 {
        self.vertex_space
    }

    /// Probe statistics accumulated since the last [`reset_stats`].
    ///
    /// [`reset_stats`]: GraphTinker::reset_stats
    #[inline]
    pub fn stats(&self) -> ProbeStats {
        self.stats
    }

    /// Clears the probe statistics.
    pub fn reset_stats(&mut self) {
        self.stats = ProbeStats::default();
    }

    #[inline]
    fn rhh_enabled(&self) -> bool {
        // The paper disables RHH under delete-and-compact to avoid the
        // edge-tracking overhead of undoing swap chains during backfill.
        self.config.delete_mode == DeleteMode::DeleteOnly
    }

    #[inline]
    fn note_vertex(&mut self, v: VertexId) {
        debug_assert_ne!(v, NIL_VERTEX, "NIL_VERTEX is reserved");
        if v >= self.vertex_space {
            self.vertex_space = v + 1;
        }
    }

    /// Dense id of a source, allocating on first sight. Takes the
    /// precomputed [`source_hash`](crate::hash::source_hash) so the update
    /// path mixes each source id exactly once.
    fn dense_of_mut(&mut self, src: VertexId, src_hash: u64) -> u32 {
        match &mut self.sgh {
            Some(sgh) => sgh.get_or_insert_hashed(src_hash, src),
            None => src,
        }
    }

    /// Original id of a dense source index.
    fn original_of(&self, dense: u32) -> VertexId {
        match &self.sgh {
            Some(sgh) => sgh.original_of(dense),
            None => dense,
        }
    }

    fn top_block(&self, dense: u32) -> Option<BlockId> {
        self.top_blocks.get(dense as usize).copied().filter(|&b| b != NIL_U32)
    }

    fn ensure_top_block(&mut self, dense: u32) -> BlockId {
        let idx = dense as usize;
        if idx >= self.top_blocks.len() {
            self.top_blocks.resize(idx + 1, NIL_U32);
        }
        if self.top_blocks[idx] == NIL_U32 {
            let b = self.arena.alloc_block();
            self.top_blocks[idx] = b;
            self.main_blocks += 1;
        }
        self.top_blocks[idx]
    }

    #[inline]
    fn workblocks_for(&self, cells: u64) -> u64 {
        let wb = self.config.workblock as u64;
        cells.div_ceil(wb)
    }

    /// FIND mode: walks the subblock chain of `top` for `dst`. Pure (no
    /// stats mutation); returns the location and the traversal cost.
    ///
    /// `h0` is the precomputed depth-0 [`edge_hash`] of `dst` — it seeds
    /// both the depth-0 bucket split and the SWAR tag, so the hot find
    /// path mixes the destination exactly once. With tag probing enabled
    /// only fingerprint-matching candidate cells are inspected; the seed
    /// path scans whole subblocks.
    fn locate(&self, top: BlockId, dst: VertexId, h0: u64) -> (Option<(BlockId, usize)>, FindCost) {
        let spb = self.arena.subblocks_per_block();
        let sublen = self.arena.subblock_len();
        let tagged = self.config.probe_tags;
        let tag = tag_of_hash(h0);
        let mut cost = FindCost::default();
        let mut block = top;
        let mut depth: u32 = 0;
        loop {
            let (sub, _) = if depth == 0 {
                split_hash(h0, spb, sublen)
            } else {
                subblock_and_bucket(dst, depth, spb, sublen)
            };
            cost.subblocks += 1;
            let cells = self.arena.subblock_cells(block, sub);
            if tagged {
                let tags = self.arena.subblock_tags(block, sub);
                let scan = find_in_subblock_tagged(cells, tags, dst, tag);
                cost.tag_groups += scan.groups;
                cost.tag_false_positives += scan.false_positives;
                cost.cells += scan.inspected;
                // The tag lane itself is one fetch; candidate cells add more.
                cost.workblocks += self.workblocks_for(scan.inspected).max(1);
                cost.depth = depth;
                if let Some(off) = scan.hit {
                    return (Some((block, sub * sublen + off)), cost);
                }
            } else if let Some(off) = find_in_subblock(cells, dst) {
                // The matching workblock and its predecessors were fetched.
                cost.cells += (off + 1) as u64;
                cost.workblocks += self.workblocks_for((off + 1) as u64);
                cost.depth = depth;
                return (Some((block, sub * sublen + off)), cost);
            } else {
                cost.cells += sublen as u64;
                cost.workblocks += self.workblocks_for(sublen as u64);
                cost.depth = depth;
            }
            match self.arena.child(block, sub) {
                Some(c) => {
                    block = c;
                    depth += 1;
                }
                None => return (None, cost),
            }
        }
    }

    fn absorb_cost(&mut self, cost: FindCost) {
        self.stats.cells_inspected += cost.cells;
        self.stats.subblocks_visited += cost.subblocks;
        self.stats.workblocks_fetched += cost.workblocks;
        self.stats.max_depth = self.stats.max_depth.max(cost.depth);
        self.stats.tag_group_scans += cost.tag_groups;
        self.stats.tag_false_positives += cost.tag_false_positives;
    }

    /// Inserts an edge; returns `true` if it was new, `false` if an existing
    /// `(src, dst)` edge had its weight updated.
    ///
    /// The FIND and INSERT modes share one walk: while FIND scans the
    /// subblock chain for the edge, it also scouts the first subblock with a
    /// vacant cell, so a miss can anchor the new edge without re-traversing
    /// the chain. RHH displacement still runs within the target subblock.
    pub fn insert_edge(&mut self, e: Edge) -> bool {
        let tags0 = (self.stats.tag_group_scans, self.stats.tag_false_positives);
        let fresh = self.insert_edge_local(e);
        let m = crate::metrics::global();
        if fresh {
            m.tinker_inserts.inc();
        } else {
            m.tinker_updates.inc();
        }
        self.flush_tag_counters(tags0);
        fresh
    }

    /// Flushes the delta of the instance tag counters since `before`
    /// (`(tag_group_scans, tag_false_positives)`) to the global metrics.
    /// Batched entry points snapshot once per batch so the instrumented
    /// ingest path pays one atomic RMW per counter per batch.
    fn flush_tag_counters(&self, before: (u64, u64)) {
        let m = crate::metrics::global();
        let groups = self.stats.tag_group_scans - before.0;
        let fps = self.stats.tag_false_positives - before.1;
        if groups > 0 {
            m.rhh_tag_group_scans.add(groups);
        }
        if fps > 0 {
            m.rhh_tag_false_positive.add(fps);
        }
    }

    /// [`insert_edge`](Self::insert_edge) minus the global metric counters:
    /// instance stats only, so `apply_batch` can flush the counters once
    /// per batch instead of paying an atomic RMW per operation.
    fn insert_edge_local(&mut self, e: Edge) -> bool {
        assert!(
            e.src != NIL_VERTEX && e.dst != NIL_VERTEX,
            "NIL_VERTEX is reserved as the empty-cell sentinel"
        );
        self.note_vertex(e.src);
        self.note_vertex(e.dst);
        self.stats.operations += 1;
        // The source hash is mixed exactly once per operation: the lookup
        // and (on a miss) the SGH registration both reuse it, on every tier.
        // The destination is likewise mixed once — its depth-0 hash seeds
        // both the depth-0 bucket split and the SWAR fingerprint.
        let src_hash = source_hash(e.src);
        let h0 = edge_hash(e.dst, 0);
        let dense = match self.dense_lookup_hashed(e.src, src_hash) {
            Some(d) => d,
            None => self.dense_insert_absent(e.src, src_hash),
        };
        if self.adaptive {
            self.ensure_tier_slots(dense);
            match self.tiers[dense as usize] {
                Tier::Inline => self.insert_inline(dense, e, h0),
                Tier::Blocks => self.insert_blocks(dense, e, h0),
                Tier::Hub => self.insert_hub(dense, e, h0),
            }
        } else {
            self.insert_blocks(dense, e, h0)
        }
    }

    /// Insert into the RHH edgeblock tier (the only tier when adaptive
    /// layout is disabled). `dense` is already resolved; `h0` is the
    /// precomputed depth-0 [`edge_hash`] of the destination.
    fn insert_blocks(&mut self, dense: u32, e: Edge, h0: u64) -> bool {
        let spb = self.arena.subblocks_per_block();
        let sublen = self.arena.subblock_len();
        let tagged = self.config.probe_tags;
        let tag = tag_of_hash(h0);

        // Existing-edge fast path: a repeat insertion of an un-displaced
        // edge sits in its home bucket of the top block's depth-0 subblock.
        // One probe settles it (weight update + CAL refresh) without the
        // full FIND walk; any miss falls through to the general path.
        if let Some(top) = self.top_block(dense) {
            let (sub, bucket) = split_hash(h0, spb, sublen);
            let cell = self.arena.subblock_cells(top, sub)[bucket];
            if cell.is_occupied() && cell.dst == e.dst {
                self.stats.subblocks_visited += 1;
                self.stats.cells_inspected += 1;
                self.stats.workblocks_fetched += 1;
                let hot = self.arena.cell_mut(top, sub * sublen + bucket);
                hot.weight = e.weight;
                let ptr = hot.cal_ptr;
                if ptr != NIL_U32 {
                    if let Some(cal) = &mut self.cal {
                        cal.update_weight(ptr, e.weight);
                    }
                }
                self.stats.updates += 1;
                return false;
            }
        }

        let top = self.ensure_top_block(dense);

        // FIND mode + vacancy scout.
        let mut block = top;
        let mut depth: u32 = 0;
        let mut candidate: Option<(BlockId, usize, usize)> = None;
        let (tail_block, tail_sub);
        loop {
            let (sub, bucket) = if depth == 0 {
                split_hash(h0, spb, sublen)
            } else {
                subblock_and_bucket(e.dst, depth, spb, sublen)
            };
            self.stats.subblocks_visited += 1;
            let hit = if tagged {
                let cells = self.arena.subblock_cells(block, sub);
                let tags = self.arena.subblock_tags(block, sub);
                let scan = find_in_subblock_tagged(cells, tags, e.dst, tag);
                self.stats.tag_group_scans += scan.groups;
                self.stats.tag_false_positives += scan.false_positives;
                self.stats.cells_inspected += scan.inspected;
                self.stats.workblocks_fetched += self.workblocks_for(scan.inspected).max(1);
                if scan.hit.is_none() && candidate.is_none() && has_vacant_tags(tags) {
                    candidate = Some((block, sub, bucket));
                }
                scan.hit
            } else {
                let cells = self.arena.subblock_cells(block, sub);
                let found = find_in_subblock(cells, e.dst);
                match found {
                    Some(off) => {
                        self.stats.cells_inspected += (off + 1) as u64;
                        self.stats.workblocks_fetched += self.workblocks_for((off + 1) as u64);
                    }
                    None => {
                        self.stats.cells_inspected += sublen as u64;
                        self.stats.workblocks_fetched += self.workblocks_for(sublen as u64);
                        if candidate.is_none() && cells.iter().any(|c| c.is_vacant()) {
                            candidate = Some((block, sub, bucket));
                        }
                    }
                }
                found
            };
            if let Some(off) = hit {
                let offset = sub * sublen + off;
                let cell = self.arena.cell_mut(block, offset);
                cell.weight = e.weight;
                let ptr = cell.cal_ptr;
                if ptr != NIL_U32 {
                    if let Some(cal) = &mut self.cal {
                        cal.update_weight(ptr, e.weight);
                    }
                }
                self.stats.updates += 1;
                return false;
            }
            match self.arena.child(block, sub) {
                Some(c) => {
                    block = c;
                    depth += 1;
                }
                None => {
                    (tail_block, tail_sub) = (block, sub);
                    break;
                }
            }
        }
        self.stats.max_depth = self.stats.max_depth.max(depth);

        // INSERT mode: append the CAL copy (O(1)), then anchor the main
        // copy — in the scouted subblock, or in a fresh branch when every
        // subblock on the path is full (Tree-Based Hashing).
        let cal_ptr = match &mut self.cal {
            Some(cal) => cal.insert(dense, e.src, e.dst, e.weight),
            None => NIL_U32,
        };
        let floating = Floating { dst: e.dst, weight: e.weight, cal_ptr };
        let rhh = self.rhh_enabled();
        let (target_block, target_sub, target_bucket) = match candidate {
            Some(c) => c,
            None => {
                let child = self.arena.alloc_block();
                self.arena.set_child(tail_block, tail_sub, Some(child));
                self.stats.branches_created += 1;
                depth += 1;
                crate::metrics::global().tinker_branch_depth.record(depth as u64);
                crate::trace::instant(crate::trace::SpanId::TinkerBranchOut, depth as u64);
                self.stats.max_depth = self.stats.max_depth.max(depth);
                let (sub, bucket) = subblock_and_bucket(e.dst, depth, spb, sublen);
                (child, sub, bucket)
            }
        };
        let mut touched = 0u64;
        let outcome = {
            let (cells, tags) = self.arena.subblock_cells_and_tags_mut(target_block, target_sub);
            if rhh {
                rhh_insert(cells, tags, target_bucket, floating, tag, &mut touched)
            } else if tagged {
                linear_insert_tagged(cells, tags, target_bucket, floating, tag, &mut touched)
            } else {
                linear_insert(cells, tags, target_bucket, floating, tag, &mut touched)
            }
        };
        self.stats.cells_inspected += touched;
        self.stats.workblocks_fetched += self.workblocks_for(touched);
        debug_assert!(
            matches!(outcome, RhhOutcome::Placed),
            "target subblock was scouted to have a vacancy"
        );
        let RhhOutcome::Placed = outcome else {
            unreachable!("scouted subblock must accept the edge")
        };
        self.arena.add_live(target_block, 1);
        self.note_insert(dense, e.src);
        if self.adaptive
            && self.config.hub_promote > 0
            && self.props.out_degree(dense) >= self.config.hub_promote
        {
            self.promote_blocks_to_hub(dense);
        }
        true
    }

    /// Insert into the inline tier; a full inline entry promotes the vertex
    /// to the edgeblock tier and retries there.
    fn insert_inline(&mut self, dense: u32, e: Edge, h0: u64) -> bool {
        let idx = dense as usize;
        // Nominal probe accounting: one 4-wide compare over the entry.
        self.stats.subblocks_visited += 1;
        self.stats.cells_inspected += INLINE_CAP_MAX as u64;
        self.stats.workblocks_fetched += 1;
        if let Some(slot) = self.inline[idx].find(e.dst) {
            self.inline[idx].weights[slot] = e.weight;
            let ptr = self.inline[idx].cal_ptrs[slot];
            if ptr != NIL_U32 {
                if let Some(cal) = &mut self.cal {
                    cal.update_weight(ptr, e.weight);
                }
            }
            self.stats.updates += 1;
            return false;
        }
        if (self.inline[idx].len as usize) < self.config.inline_cap {
            let cal_ptr = match &mut self.cal {
                Some(cal) => cal.insert(dense, e.src, e.dst, e.weight),
                None => NIL_U32,
            };
            self.inline[idx].push(e.dst, e.weight, cal_ptr);
            self.note_insert(dense, e.src);
            return true;
        }
        self.promote_inline_to_blocks(dense);
        self.insert_blocks(dense, e, h0)
    }

    /// Insert into the dense hub tier.
    fn insert_hub(&mut self, dense: u32, e: Edge, h0: u64) -> bool {
        let h = self.hub_of[dense as usize] as usize;
        let tag = tag_of_hash(h0);
        // Nominal probe accounting: the gallop narrows to a scan window
        // in the main run, plus (at most) one more over the tail.
        self.stats.subblocks_visited += 1;
        self.stats.cells_inspected += 2 * crate::hubseg::SCAN_WINDOW as u64;
        self.stats.workblocks_fetched += 1;
        let found = if self.config.probe_tags {
            self.hubs[h].find_tagged(e.dst, tag)
        } else {
            self.hubs[h].find(e.dst)
        };
        if let Some(i) = found {
            self.hubs[h].set_weight(i, e.weight);
            // Only touch the parallel cal_ptrs array when a CAL exists —
            // otherwise a weight update costs an extra cache line for
            // a pointer that is never used.
            if let Some(cal) = &mut self.cal {
                let ptr = self.hubs[h].cal_ptr(i);
                if ptr != NIL_U32 {
                    cal.update_weight(ptr, e.weight);
                }
            }
            self.stats.updates += 1;
            return false;
        }
        let cal_ptr = match &mut self.cal {
            Some(cal) => cal.insert(dense, e.src, e.dst, e.weight),
            None => NIL_U32,
        };
        self.hubs[h].insert_tagged(e.dst, e.weight, cal_ptr, tag);
        self.note_insert(dense, e.src);
        true
    }

    /// Dense id for a source known to be absent from the SGH ([`source_hash`]
    /// already computed by the caller's lookup).
    fn dense_insert_absent(&mut self, src: VertexId, src_hash: u64) -> u32 {
        match &mut self.sgh {
            Some(sgh) => sgh.insert_absent_hashed(src_hash, src),
            None => src,
        }
    }

    /// Grows the tier-tracking vectors (and `top_blocks`, which must stay
    /// the same length) to cover `dense`. Only called on the adaptive path.
    fn ensure_tier_slots(&mut self, dense: u32) {
        let n = dense as usize + 1;
        if self.tiers.len() >= n {
            return;
        }
        let starting = if self.config.inline_cap > 0 { Tier::Inline } else { Tier::Blocks };
        self.tiers.resize(n, starting);
        self.inline.resize(n, InlineAdj::EMPTY);
        self.hub_of.resize(n, NIL_U32);
        if self.top_blocks.len() < n {
            self.top_blocks.resize(n, NIL_U32);
        }
    }

    /// Registers one new live edge of `dense`: degree, live-edge count,
    /// insert stat, and (on the adaptive path) the active-vertex tier count
    /// when the vertex's first edge appears.
    fn note_insert(&mut self, dense: u32, src: VertexId) {
        let p = self.props.ensure(dense, src);
        p.out_degree += 1;
        let deg = p.out_degree;
        self.live_edges += 1;
        self.stats.inserts += 1;
        if self.adaptive && deg == 1 {
            self.tier_active(self.tiers[dense as usize], true);
        }
    }

    /// Mirror of [`note_insert`](Self::note_insert) for deletes; returns the
    /// new out-degree. (`stats.deletes` is counted by the caller, which also
    /// counts misses.)
    fn note_delete(&mut self, dense: u32) -> u32 {
        let p = self.props.get_mut(dense).expect("source with an edge has properties");
        p.out_degree -= 1;
        let deg = p.out_degree;
        self.live_edges -= 1;
        if self.adaptive && deg == 0 {
            self.tier_active(self.tiers[dense as usize], false);
        }
        deg
    }

    /// Adjusts the active-vertex count (and gauge) of a tier.
    fn tier_active(&mut self, tier: Tier, up: bool) {
        let m = crate::metrics::global();
        let g = match tier {
            Tier::Inline => &m.tier_inline_vertices,
            Tier::Blocks => &m.tier_blocks_vertices,
            Tier::Hub => &m.tier_hub_vertices,
        };
        if up {
            self.tier_counts[tier as usize] += 1;
            g.inc();
        } else {
            self.tier_counts[tier as usize] -= 1;
            g.dec();
        }
    }

    /// Moves `dense` to tier `to`, keeping the active-vertex counts honest.
    fn set_tier(&mut self, dense: u32, to: Tier) {
        let from = self.tiers[dense as usize];
        if from == to {
            return;
        }
        self.tiers[dense as usize] = to;
        if self.props.out_degree(dense) > 0 {
            self.tier_active(from, false);
            self.tier_active(to, true);
        }
    }

    /// Anchors a floating edge (CAL copy already registered) into the
    /// edgeblock subtree of `dense` without touching degree, live-edge or
    /// CAL state — the tier-migration primitive. The edge is known absent,
    /// so the walk may stop at the *first* subblock with a vacancy: FIND
    /// scans whole subblocks per depth, so an early anchor stays on the
    /// edge's lookup path.
    fn anchor_in_blocks(&mut self, dense: u32, f: Floating) {
        let spb = self.arena.subblocks_per_block();
        let sublen = self.arena.subblock_len();
        let rhh = self.rhh_enabled();
        let tagged = self.config.probe_tags;
        // Tier migration is a cold path: recomputing the fingerprint here
        // keeps the hot-path plumbing (which hoists it) uncluttered.
        let tag = dst_tag(f.dst);
        let mut block = self.ensure_top_block(dense);
        let mut depth: u32 = 0;
        let (target_block, target_sub, target_bucket) = loop {
            let (sub, bucket) = subblock_and_bucket(f.dst, depth, spb, sublen);
            let vacant = if tagged {
                has_vacant_tags(self.arena.subblock_tags(block, sub))
            } else {
                self.arena.subblock_cells(block, sub).iter().any(|c| c.is_vacant())
            };
            if vacant {
                break (block, sub, bucket);
            }
            match self.arena.child(block, sub) {
                Some(c) => {
                    block = c;
                    depth += 1;
                }
                None => {
                    let child = self.arena.alloc_block();
                    self.arena.set_child(block, sub, Some(child));
                    self.stats.branches_created += 1;
                    depth += 1;
                    crate::metrics::global().tinker_branch_depth.record(depth as u64);
                    crate::trace::instant(crate::trace::SpanId::TinkerBranchOut, depth as u64);
                    let (sub, bucket) = subblock_and_bucket(f.dst, depth, spb, sublen);
                    break (child, sub, bucket);
                }
            }
        };
        self.stats.max_depth = self.stats.max_depth.max(depth);
        let mut touched = 0u64;
        let (cells, tags) = self.arena.subblock_cells_and_tags_mut(target_block, target_sub);
        let outcome = if rhh {
            rhh_insert(cells, tags, target_bucket, f, tag, &mut touched)
        } else if tagged {
            linear_insert_tagged(cells, tags, target_bucket, f, tag, &mut touched)
        } else {
            linear_insert(cells, tags, target_bucket, f, tag, &mut touched)
        };
        let RhhOutcome::Placed = outcome else { unreachable!("vacancy was scouted") };
        self.arena.add_live(target_block, 1);
    }

    /// Inline → edgeblock promotion: re-anchors the inline slots into a
    /// fresh top block, preserving their CAL pointers.
    fn promote_inline_to_blocks(&mut self, dense: u32) {
        let _span = crate::trace::span_arg(crate::trace::SpanId::TierPromote, dense as u64);
        let adj = std::mem::replace(&mut self.inline[dense as usize], InlineAdj::EMPTY);
        self.set_tier(dense, Tier::Blocks);
        for i in 0..adj.len as usize {
            self.anchor_in_blocks(
                dense,
                Floating { dst: adj.dsts[i], weight: adj.weights[i], cal_ptr: adj.cal_ptrs[i] },
            );
        }
        self.tier_promotions += 1;
        crate::metrics::global().tier_promotions.inc();
    }

    /// Edgeblock → hub promotion: drains the whole subtree into a sorted
    /// dense segment and recycles the blocks.
    fn promote_blocks_to_hub(&mut self, dense: u32) {
        let Some(top) = self.top_block(dense) else { return };
        let _span = crate::trace::span_arg(crate::trace::SpanId::TierPromote, dense as u64);
        let edges = self.arena.collect_subtree(top);
        let freed = self.arena.free_subtree(top);
        crate::metrics::global().tinker_blocks_freed.add(freed as u64);
        self.top_blocks[dense as usize] = NIL_U32;
        self.main_blocks -= 1;
        let seg = HubSegment::from_edges(edges);
        let h = match self.free_hubs.pop() {
            Some(h) => {
                self.hubs[h as usize] = seg;
                h
            }
            None => {
                self.hubs.push(seg);
                (self.hubs.len() - 1) as u32
            }
        };
        self.hub_of[dense as usize] = h;
        self.set_tier(dense, Tier::Hub);
        self.tier_promotions += 1;
        crate::metrics::global().tier_promotions.inc();
    }

    /// Hub → edgeblock demotion (hysteresis floor crossed).
    fn demote_hub_to_blocks(&mut self, dense: u32) {
        let _span = crate::trace::span_arg(crate::trace::SpanId::TierPromote, dense as u64);
        let h = self.hub_of[dense as usize];
        let seg = std::mem::take(&mut self.hubs[h as usize]);
        self.free_hubs.push(h);
        self.hub_of[dense as usize] = NIL_U32;
        self.set_tier(dense, Tier::Blocks);
        for (dst, weight, cal_ptr) in seg.into_edges() {
            self.anchor_in_blocks(dense, Floating { dst, weight, cal_ptr });
        }
        self.tier_demotions += 1;
        crate::metrics::global().tier_demotions.inc();
    }

    /// Edgeblock → inline demotion: the remaining handful of edges moves
    /// back into the vertex entry and the subtree is recycled.
    fn demote_blocks_to_inline(&mut self, dense: u32) {
        let Some(top) = self.top_block(dense) else {
            self.set_tier(dense, Tier::Inline);
            return;
        };
        let _span = crate::trace::span_arg(crate::trace::SpanId::TierPromote, dense as u64);
        let edges = self.arena.collect_subtree(top);
        debug_assert!(edges.len() <= self.config.inline_cap);
        let freed = self.arena.free_subtree(top);
        crate::metrics::global().tinker_blocks_freed.add(freed as u64);
        self.top_blocks[dense as usize] = NIL_U32;
        self.main_blocks -= 1;
        let mut adj = InlineAdj::EMPTY;
        for (dst, weight, cal_ptr) in edges {
            adj.push(dst, weight, cal_ptr);
        }
        self.inline[dense as usize] = adj;
        self.set_tier(dense, Tier::Inline);
        self.tier_demotions += 1;
        crate::metrics::global().tier_demotions.inc();
    }

    /// Deletes the edge `(src, dst)`. Returns `true` if it existed.
    pub fn delete_edge(&mut self, src: VertexId, dst: VertexId) -> bool {
        let tags0 = (self.stats.tag_group_scans, self.stats.tag_false_positives);
        let deleted = self.delete_edge_local(src, dst);
        let m = crate::metrics::global();
        if deleted {
            m.tinker_deletes.inc();
        } else {
            m.tinker_delete_misses.inc();
        }
        self.flush_tag_counters(tags0);
        deleted
    }

    /// [`delete_edge`](Self::delete_edge) minus the global metric counters
    /// (see [`insert_edge_local`](Self::insert_edge_local)).
    fn delete_edge_local(&mut self, src: VertexId, dst: VertexId) -> bool {
        self.stats.operations += 1;
        let deleted = self.delete_edge_inner(src, dst);
        if deleted {
            self.stats.deletes += 1;
        } else {
            self.stats.delete_misses += 1;
        }
        deleted
    }

    fn delete_edge_inner(&mut self, src: VertexId, dst: VertexId) -> bool {
        // One hash per operation, shared by the SGH probe on every tier;
        // the destination hash likewise seeds bucket and tag exactly once.
        let src_hash = source_hash(src);
        let h0 = edge_hash(dst, 0);
        let Some(dense) = self.dense_lookup_hashed(src, src_hash) else { return false };
        if self.adaptive {
            return self.delete_adaptive(dense, dst, h0);
        }
        self.delete_blocks(dense, dst, h0)
    }

    /// Tier-dispatched delete, with hysteresis demotions.
    fn delete_adaptive(&mut self, dense: u32, dst: VertexId, h0: u64) -> bool {
        // A source registered by `import_sources` but never inserted through
        // the adaptive path has no tier slot (and no edges).
        if dense as usize >= self.tiers.len() {
            return false;
        }
        match self.tiers[dense as usize] {
            Tier::Inline => {
                let idx = dense as usize;
                self.stats.subblocks_visited += 1;
                self.stats.cells_inspected += INLINE_CAP_MAX as u64;
                self.stats.workblocks_fetched += 1;
                let Some(slot) = self.inline[idx].find(dst) else { return false };
                let ptr = self.inline[idx].remove(slot);
                if ptr != NIL_U32 {
                    if let Some(cal) = &mut self.cal {
                        cal.invalidate(ptr);
                    }
                }
                self.note_delete(dense);
                true
            }
            Tier::Blocks => {
                let deleted = self.delete_blocks(dense, dst, h0);
                if deleted
                    && self.config.inline_cap > 0
                    && self.props.out_degree(dense) as usize * 2 <= self.config.inline_cap
                {
                    self.demote_blocks_to_inline(dense);
                }
                deleted
            }
            Tier::Hub => {
                let h = self.hub_of[dense as usize] as usize;
                self.stats.subblocks_visited += 1;
                self.stats.cells_inspected += 2 * crate::hubseg::SCAN_WINDOW as u64;
                self.stats.workblocks_fetched += 1;
                let found = if self.config.probe_tags {
                    self.hubs[h].find_tagged(dst, tag_of_hash(h0))
                } else {
                    self.hubs[h].find(dst)
                };
                let Some(i) = found else { return false };
                let ptr = self.hubs[h].remove(i);
                if ptr != NIL_U32 {
                    if let Some(cal) = &mut self.cal {
                        cal.invalidate(ptr);
                    }
                }
                let deg = self.note_delete(dense);
                if deg < self.config.hub_demote {
                    self.demote_hub_to_blocks(dense);
                }
                true
            }
        }
    }

    /// Delete from the RHH edgeblock tier (the only tier when adaptive
    /// layout is disabled).
    fn delete_blocks(&mut self, dense: u32, dst: VertexId, h0: u64) -> bool {
        let Some(top) = self.top_block(dense) else { return false };
        let (found, cost) = self.locate(top, dst, h0);
        self.absorb_cost(cost);
        let Some((block, offset)) = found else { return false };

        let sublen = self.arena.subblock_len();
        let sub = offset / sublen;
        let tombstone = self.config.delete_mode == DeleteMode::DeleteOnly;
        let cell = self.arena.cell_mut(block, offset);
        let cal_ptr = cell.cal_ptr;
        if tombstone {
            *cell = EdgeCell { state: CellState::Tombstone, ..EdgeCell::EMPTY };
        } else {
            *cell = EdgeCell::EMPTY;
        }
        self.arena.set_tag(block, offset, vacant_tag(tombstone));
        self.arena.add_live(block, -1);
        if cal_ptr != NIL_U32 {
            if let Some(cal) = &mut self.cal {
                cal.invalidate(cal_ptr);
            }
        }
        self.note_delete(dense);

        if self.config.delete_mode == DeleteMode::DeleteAndCompact {
            self.backfill(block, sub, offset);
            self.free_upward(block);
            // Compact mode keeps the *whole* database compact, CAL included:
            // once invalidated records outnumber live ones, rebuild the CAL
            // from the main structure (amortized O(1) per delete).
            if let Some(cal) = &self.cal {
                if cal.num_invalid() > cal.num_live().max(1024) {
                    self.rebuild_cal();
                }
            }
        }
        true
    }

    /// Looks up the dense id without allocating.
    fn dense_lookup(&self, src: VertexId) -> Option<u32> {
        match &self.sgh {
            Some(sgh) => sgh.get(src),
            None => ((src as usize) < self.top_blocks.len()).then_some(src),
        }
    }

    /// [`dense_lookup`](Self::dense_lookup) with the source hash already
    /// computed by the caller.
    #[inline]
    fn dense_lookup_hashed(&self, src: VertexId, src_hash: u64) -> Option<u32> {
        match &self.sgh {
            Some(sgh) => sgh.get_hashed(src_hash, src),
            None => ((src as usize) < self.top_blocks.len()).then_some(src),
        }
    }

    /// Delete-and-compact backfill: pull an edge from the deepest block of
    /// the subtree hanging off `(block, sub)` into the freed cell at
    /// `offset`, then recycle any blocks the pull emptied. Every edge in
    /// that subtree hashed through `(block, sub)` on its way down, so the
    /// freed cell is on its FIND path and the move is invisible to lookups.
    fn backfill(&mut self, block: BlockId, sub: usize, offset: usize) {
        let Some(child) = self.arena.child(block, sub) else { return };

        // DFS for the deepest block holding at least one live edge.
        let mut best: Option<(usize, BlockId)> = None;
        let mut stack: Vec<(BlockId, usize)> = vec![(child, 0)];
        while let Some((b, depth)) = stack.pop() {
            if self.arena.live_count(b) > 0 && best.is_none_or(|(bd, _)| depth > bd) {
                best = Some((depth, b));
            }
            for s in 0..self.arena.subblocks_per_block() {
                if let Some(c) = self.arena.child(b, s) {
                    stack.push((c, depth + 1));
                }
            }
        }
        let Some((_, donor)) = best else { return };

        // Take any live cell from the donor block.
        let pw = self.arena.pagewidth();
        let donor_off = (0..pw)
            .find(|&i| self.arena.cell(donor, i).is_occupied())
            .expect("donor block advertises live edges");
        let moved = *self.arena.cell(donor, donor_off);
        *self.arena.cell_mut(donor, donor_off) = EdgeCell::EMPTY;
        self.arena.set_tag(donor, donor_off, TAG_EMPTY);
        self.arena.add_live(donor, -1);

        // Anchor it in the freed slot. Probe distances carry no meaning in
        // compact mode (finds scan whole subblocks), so store 0. The tag
        // lane follows the edge: fingerprints are depth-independent, so the
        // moved cell's tag is valid at its new depth too.
        *self.arena.cell_mut(block, offset) = EdgeCell { probe: 0, ..moved };
        self.arena.set_tag(block, offset, dst_tag(moved.dst));
        self.arena.add_live(block, 1);
        crate::metrics::global().tinker_backfill_moves.inc();

        // Recycle emptied, childless blocks bottom-up from the donor.
        self.free_upward(donor);
    }

    /// Walks up the parent chain from `start`, recycling every block that is
    /// empty and childless. Top-parent (main region) blocks are never
    /// recycled — the main region is indexed positionally by dense id.
    fn free_upward(&mut self, start: BlockId) {
        let mut b = start;
        loop {
            let Some((parent, psub)) = self.arena.parent(b) else { return };
            let childless = self.arena.child_slots(b).iter().all(|&c| c == NIL_U32);
            if self.arena.live_count(b) != 0 || !childless {
                return;
            }
            self.arena.set_child(parent, psub, None);
            self.arena.free_block(b);
            crate::metrics::global().tinker_blocks_freed.inc();
            b = parent;
        }
    }

    /// Weight of the edge `(src, dst)`, if present.
    pub fn edge_weight(&self, src: VertexId, dst: VertexId) -> Option<Weight> {
        let dense = self.dense_lookup(src)?;
        if self.adaptive {
            match self.tiers.get(dense as usize) {
                Some(Tier::Inline) => {
                    let adj = &self.inline[dense as usize];
                    return adj.find(dst).map(|i| adj.weights[i]);
                }
                Some(Tier::Hub) => {
                    let seg = &self.hubs[self.hub_of[dense as usize] as usize];
                    return seg.find(dst).map(|i| seg.weight(i));
                }
                _ => {}
            }
        }
        let top = self.top_block(dense)?;
        let (found, _) = self.locate(top, dst, edge_hash(dst, 0));
        found.map(|(b, off)| self.arena.cell(b, off).weight)
    }

    /// Whether the edge `(src, dst)` is present.
    #[inline]
    pub fn contains_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.edge_weight(src, dst).is_some()
    }

    /// Live out-degree of `src` (0 for unknown vertices).
    pub fn out_degree(&self, src: VertexId) -> u32 {
        self.dense_lookup(src).map_or(0, |d| self.props.out_degree(d))
    }

    /// Applies a batch of updates, returning outcome counts.
    ///
    /// The global op counters are flushed once per batch from the outcome
    /// counts (same totals as per-op increments, one atomic RMW per
    /// counter per batch), keeping the instrumented ingest path within the
    /// metrics-overhead budget.
    pub fn apply_batch(&mut self, batch: &EdgeBatch) -> BatchResult {
        let tags0 = (self.stats.tag_group_scans, self.stats.tag_false_positives);
        let mut r = BatchResult::default();
        for op in batch.iter() {
            match *op {
                UpdateOp::Insert(e) => {
                    if self.insert_edge_local(e) {
                        r.inserted += 1;
                    } else {
                        r.updated += 1;
                    }
                }
                UpdateOp::Delete { src, dst } => {
                    if self.delete_edge_local(src, dst) {
                        r.deleted += 1;
                    } else {
                        r.not_found += 1;
                    }
                }
            }
        }
        let m = crate::metrics::global();
        m.tinker_inserts.add(r.inserted);
        m.tinker_updates.add(r.updated);
        m.tinker_deletes.add(r.deleted);
        m.tinker_delete_misses.add(r.not_found);
        self.flush_tag_counters(tags0);
        r
    }

    /// Visits every live out-edge of `src` as `(dst, weight)`, walking the
    /// EdgeblockArray subtree of the vertex. This is the incremental-mode
    /// (random access) retrieval path.
    pub fn for_each_out_edge<F: FnMut(VertexId, Weight)>(&self, src: VertexId, mut f: F) {
        let Some(dense) = self.dense_lookup(src) else { return };
        if self.adaptive {
            match self.tiers.get(dense as usize) {
                Some(Tier::Inline) => {
                    let adj = &self.inline[dense as usize];
                    for i in 0..adj.len as usize {
                        f(adj.dsts[i], adj.weights[i]);
                    }
                    return;
                }
                Some(Tier::Hub) => {
                    self.hubs[self.hub_of[dense as usize] as usize].for_each(|d, w, _| f(d, w));
                    return;
                }
                _ => {}
            }
        }
        let Some(top) = self.top_block(dense) else { return };
        let mut stack = vec![top];
        while let Some(b) = stack.pop() {
            for cell in self.arena.block(b) {
                if cell.is_occupied() {
                    f(cell.dst, cell.weight);
                }
            }
            for &c in self.arena.child_slots(b) {
                if c != NIL_U32 {
                    stack.push(c);
                }
            }
        }
    }

    /// Visits every live edge as `(src, dst, weight)`.
    ///
    /// With CAL enabled this streams the compacted CAL EdgeblockArray
    /// sequentially (the full-processing retrieval path); with CAL disabled
    /// it falls back to scanning the main structure vertex-by-vertex, which
    /// is exactly the non-contiguous access pattern the CAL exists to avoid.
    pub fn for_each_edge<F: FnMut(VertexId, VertexId, Weight)>(&self, f: F) {
        match &self.cal {
            Some(cal) => cal.for_each_edge(f),
            None => self.for_each_edge_main(f),
        }
    }

    /// Visits every live edge by scanning the main EdgeblockArray,
    /// regardless of CAL availability (used by tests and the CAL ablation).
    pub fn for_each_edge_main<F: FnMut(VertexId, VertexId, Weight)>(&self, f: F) {
        self.for_each_edge_main_range(0..self.top_blocks.len() as u32, f);
    }

    /// Main-structure scan restricted to a contiguous dense-source range,
    /// in [`for_each_edge_main`](Self::for_each_edge_main) order.
    pub fn for_each_edge_main_range<F: FnMut(VertexId, VertexId, Weight)>(
        &self,
        dense_range: std::ops::Range<u32>,
        mut f: F,
    ) {
        for dense in dense_range {
            if self.adaptive {
                match self.tiers.get(dense as usize) {
                    Some(Tier::Inline) => {
                        let adj = &self.inline[dense as usize];
                        if adj.len > 0 {
                            let src = self.original_of(dense);
                            for i in 0..adj.len as usize {
                                f(src, adj.dsts[i], adj.weights[i]);
                            }
                        }
                        continue;
                    }
                    Some(Tier::Hub) => {
                        let seg = &self.hubs[self.hub_of[dense as usize] as usize];
                        if !seg.is_empty() {
                            let src = self.original_of(dense);
                            seg.for_each(|d, w, _| f(src, d, w));
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            let Some(top) = self.top_block(dense) else { continue };
            let src = self.original_of(dense);
            let mut stack = vec![top];
            while let Some(b) = stack.pop() {
                for cell in self.arena.block(b) {
                    if cell.is_occupied() {
                        f(src, cell.dst, cell.weight);
                    }
                }
                for &c in self.arena.child_slots(b) {
                    if c != NIL_U32 {
                        stack.push(c);
                    }
                }
            }
        }
    }

    /// Logical shard count used by the sharded analytics read path.
    #[inline]
    pub fn analytics_shards(&self) -> usize {
        self.analytics_shards
    }

    /// Sets the logical shard count for parallel analytics streaming.
    /// The edges are split into `n` balanced, contiguous intervals of the
    /// streaming order (CAL groups when the CAL is enabled, dense source
    /// ids otherwise); ingestion and point queries are unaffected.
    pub fn set_analytics_shards(&mut self, n: usize) {
        assert!(n > 0, "shard count must be positive");
        self.analytics_shards = n;
    }

    /// Streams the edges owned by one analytics shard.
    ///
    /// Concatenating shards `0..analytics_shards()` in order visits exactly
    /// the edges of [`for_each_edge`](Self::for_each_edge), in the same
    /// order — the contract parallel full-processing analytics rely on to
    /// reproduce sequential results.
    pub fn for_each_edge_shard<F: FnMut(VertexId, VertexId, Weight)>(&self, shard: usize, f: F) {
        let n = self.analytics_shards;
        match &self.cal {
            Some(cal) => {
                let r = gtinker_types::shard_range(cal.num_groups(), n, shard);
                cal.for_each_edge_in_groups(r, f);
            }
            None => {
                let r = gtinker_types::shard_range(self.top_blocks.len(), n, shard);
                self.for_each_edge_main_range(r.start as u32..r.end as u32, f);
            }
        }
    }

    /// The analytics shard owning the out-edges of `src` (vertices not in
    /// the store map to shard 0). Matches the intervals streamed by
    /// [`for_each_edge_shard`](Self::for_each_edge_shard).
    pub fn shard_of_source(&self, src: VertexId) -> usize {
        if self.analytics_shards == 1 {
            return 0;
        }
        let Some(dense) = self.dense_lookup(src) else { return 0 };
        let (index, items) = match &self.cal {
            Some(cal) => (cal.group_of(dense), cal.num_groups()),
            None => (dense as usize, self.top_blocks.len()),
        };
        if index >= items {
            // A CAL rebuild drops trailing groups whose edges were all
            // deleted; such sources own no edges, any shard serves.
            return 0;
        }
        gtinker_types::shard_of_index(index, items, self.analytics_shards)
    }

    /// Iterates the original ids of all non-empty source vertices, in SGH
    /// (arrival) order.
    pub fn sources(&self) -> Vec<VertexId> {
        match &self.sgh {
            Some(sgh) => sgh.iter_dense().map(|(_, o)| o).collect(),
            None => (0..self.top_blocks.len() as u32).filter(|&d| self.source_active(d)).collect(),
        }
    }

    /// Whether a dense slot has ever held a source (no-SGH accounting; with
    /// SGH enabled every dense id is a source by construction). Inline and
    /// hub vertices own no top block, so presence is read from the property
    /// array instead.
    fn source_active(&self, dense: u32) -> bool {
        if self.adaptive {
            if let Some(Tier::Inline | Tier::Hub) = self.tiers.get(dense as usize) {
                return self.props.get(dense).is_some_and(|p| p.original_id != NIL_VERTEX);
            }
        }
        self.top_block(dense).is_some()
    }

    /// Pre-assigns dense source ids in the given order, as if each source
    /// had streamed one edge in. Snapshot import calls this with the saved
    /// SGH arrival order before replaying the edge payload, so the restored
    /// store reproduces the original dense remapping (and therefore the
    /// original CAL grouping, shard intervals and analytics stream order).
    /// With SGH disabled the ids are their own dense index and this only
    /// widens the observed vertex space.
    pub fn import_sources(&mut self, sources: &[VertexId]) {
        for &src in sources {
            self.note_vertex(src);
            self.dense_of_mut(src, source_hash(src));
        }
    }

    /// Widens the observed vertex id space to at least `space` (one past
    /// the largest id). Snapshot import restores the space recorded at
    /// save time: endpoints of since-deleted edges are not recoverable
    /// from the live edge payload, yet analytics array sizing depends on
    /// them. Never shrinks.
    pub fn expand_vertex_space(&mut self, space: u32) {
        if space > self.vertex_space {
            self.vertex_space = space;
        }
    }

    /// Rebuilds the CAL from the live edges in the main structure,
    /// discarding accumulated invalid records and refreshing every
    /// CAL-pointer. No-op when CAL is disabled.
    pub fn rebuild_cal(&mut self) {
        if self.cal.is_none() {
            return;
        }
        crate::metrics::global().tinker_cal_rebuilds.inc();
        let mut cal = CalArray::new(self.config.cal_group_size, self.config.cal_block_size);
        for dense in 0..self.top_blocks.len() as u32 {
            let idx = dense as usize;
            if self.adaptive {
                match self.tiers.get(idx) {
                    Some(Tier::Inline) => {
                        if self.inline[idx].len > 0 {
                            let src = self.original_of(dense);
                            for i in 0..self.inline[idx].len as usize {
                                let ptr = cal.insert(
                                    dense,
                                    src,
                                    self.inline[idx].dsts[i],
                                    self.inline[idx].weights[i],
                                );
                                self.inline[idx].cal_ptrs[i] = ptr;
                            }
                        }
                        continue;
                    }
                    Some(Tier::Hub) => {
                        let h = self.hub_of[idx] as usize;
                        if !self.hubs[h].is_empty() {
                            let src = self.original_of(dense);
                            for i in 0..self.hubs[h].len() {
                                let ptr = cal.insert(
                                    dense,
                                    src,
                                    self.hubs[h].dst(i),
                                    self.hubs[h].weight(i),
                                );
                                self.hubs[h].set_cal_ptr(i, ptr);
                            }
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            let Some(top) = self.top_block(dense) else { continue };
            let src = self.original_of(dense);
            let mut stack = vec![top];
            while let Some(b) = stack.pop() {
                let pw = self.arena.pagewidth();
                for off in 0..pw {
                    let cell = *self.arena.cell(b, off);
                    if cell.is_occupied() {
                        let ptr = cal.insert(dense, src, cell.dst, cell.weight);
                        self.arena.cell_mut(b, off).cal_ptr = ptr;
                    }
                }
                for &c in self.arena.child_slots(b) {
                    if c != NIL_U32 {
                        stack.push(c);
                    }
                }
            }
        }
        self.cal = Some(cal);
    }

    /// Estimated heap bytes of the inline tier.
    fn inline_bytes(&self) -> usize {
        self.inline.capacity() * std::mem::size_of::<InlineAdj>()
    }

    /// Estimated heap bytes of the hub tier (segments + slot table).
    fn hub_bytes(&self) -> usize {
        self.hubs.iter().map(|h| h.memory_bytes()).sum::<usize>()
            + self.hubs.capacity() * std::mem::size_of::<HubSegment>()
            + self.hub_of.capacity() * 4
            + self.free_hubs.capacity() * 4
    }

    /// Point-in-time structure statistics.
    pub fn structure_stats(&self) -> StructureStats {
        let total_blocks = self.arena.num_blocks();
        let free = self.arena.num_free_blocks();
        let allocated_cells = (total_blocks - free) * self.arena.pagewidth();
        StructureStats {
            live_edges: self.live_edges,
            num_sources: self.num_sources(),
            main_blocks: self.main_blocks,
            overflow_blocks: total_blocks - free - self.main_blocks,
            free_blocks: free,
            tombstones: self.arena.count_tombstones(),
            cal_blocks: self.cal.as_ref().map_or(0, |c| c.num_blocks()),
            cal_invalid: self.cal.as_ref().map_or(0, |c| c.num_invalid()),
            occupancy: if allocated_cells == 0 {
                0.0
            } else {
                self.live_edges as f64 / allocated_cells as f64
            },
            tier_inline_vertices: self.tier_counts[Tier::Inline as usize] as usize,
            tier_blocks_vertices: self.tier_counts[Tier::Blocks as usize] as usize,
            tier_hub_vertices: self.tier_counts[Tier::Hub as usize] as usize,
            tier_promotions: self.tier_promotions,
            tier_demotions: self.tier_demotions,
            inline_bytes: self.inline_bytes(),
            hub_bytes: self.hub_bytes(),
            memory_bytes: self.arena.memory_bytes()
                + self.cal.as_ref().map_or(0, |c| c.memory_bytes())
                + self.top_blocks.capacity() * 4
                + self.tiers.capacity()
                + self.inline_bytes()
                + self.hub_bytes(),
        }
    }

    /// Publishes the `memory_*_bytes` gauge family from current structure
    /// state (estimated adjacency bytes per tier, CAL, and total). Gauges
    /// are set-from-state, so calling this again simply refreshes them.
    pub fn publish_memory_metrics(&self) {
        let m = crate::metrics::global();
        let (inline, blocks, hub, cal, total) = self.memory_breakdown();
        m.memory_inline_bytes.set(inline as i64);
        m.memory_blocks_bytes.set(blocks as i64);
        m.memory_hub_bytes.set(hub as i64);
        m.memory_cal_bytes.set(cal as i64);
        m.memory_total_bytes.set(total as i64);
    }

    /// Estimated heap bytes per component as
    /// `(inline tier, edgeblock arena, hub tier, CAL, total)`. The parallel
    /// wrapper sums these across instances before publishing gauges.
    pub fn memory_breakdown(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.inline_bytes(),
            self.arena.memory_bytes(),
            self.hub_bytes(),
            self.cal.as_ref().map_or(0, |c| c.memory_bytes()),
            self.structure_stats().memory_bytes,
        )
    }

    /// Direct access to the CAL (tests/diagnostics).
    pub fn cal(&self) -> Option<&CalArray> {
        self.cal.as_ref()
    }

    /// Histogram of live edges by tree depth: `hist[d]` = edges stored in
    /// blocks `d` generations below a top-parent. Directly exhibits the
    /// `O(log degree)` depth bound of Tree-Based Hashing (an adjacency list
    /// would put the k-th edge at "depth" `k / blocksize`).
    pub fn depth_histogram(&self) -> Vec<u64> {
        let mut hist: Vec<u64> = Vec::new();
        if self.adaptive {
            // Inline and hub adjacency is flat: everything sits at depth 0.
            let shallow: u64 = self.inline.iter().map(|a| a.len as u64).sum::<u64>()
                + self.hubs.iter().map(|h| h.len() as u64).sum::<u64>();
            if shallow > 0 {
                hist.push(shallow);
            }
        }
        for dense in 0..self.top_blocks.len() as u32 {
            let Some(top) = self.top_block(dense) else { continue };
            let mut stack = vec![(top, 0usize)];
            while let Some((b, depth)) = stack.pop() {
                if hist.len() <= depth {
                    hist.resize(depth + 1, 0);
                }
                hist[depth] += self.arena.live_count(b) as u64;
                for &c in self.arena.child_slots(b) {
                    if c != NIL_U32 {
                        stack.push((c, depth + 1));
                    }
                }
            }
        }
        hist
    }

    /// Histogram of stored Robin Hood probe distances over live edges:
    /// `hist[p]` = edges whose cell sits `p` positions from its initial
    /// bucket. RHH keeps this distribution tight (bounded by the subblock
    /// length).
    pub fn probe_histogram(&self) -> Vec<u64> {
        let mut hist = vec![0u64; self.arena.subblock_len()];
        if self.adaptive {
            // Inline and hub probes are position-exact: distance 0.
            hist[0] += self.inline.iter().map(|a| a.len as u64).sum::<u64>()
                + self.hubs.iter().map(|h| h.len() as u64).sum::<u64>();
        }
        for dense in 0..self.top_blocks.len() as u32 {
            let Some(top) = self.top_block(dense) else { continue };
            let mut stack = vec![top];
            while let Some(b) = stack.pop() {
                for cell in self.arena.block(b) {
                    if cell.is_occupied() {
                        hist[cell.probe as usize] += 1;
                    }
                }
                for &c in self.arena.child_slots(b) {
                    if c != NIL_U32 {
                        stack.push(c);
                    }
                }
            }
        }
        hist
    }

    /// Checks the Robin Hood invariants over every live cell (diagnostic /
    /// test hook; `Ok(())` immediately in delete-and-compact mode, where RHH
    /// is disabled and probe distances carry no meaning):
    ///
    /// 1. every occupied cell sits in the subblock its destination hashes to
    ///    at that depth, and its stored probe equals the circular distance
    ///    from its hash bucket;
    /// 2. the probe-path predecessor of a probe-`d > 0` cell is never truly
    ///    empty (delete-only mode leaves tombstones, so a hole before a
    ///    displaced edge would break the FIND shortcut);
    /// 3. while the structure has never deleted an edge, the full Robin
    ///    Hood ordering holds: the predecessor's probe is at least `d - 1`.
    ///    Once a delete has happened anywhere, a later insert may legally
    ///    reuse a tombstone slot ahead of a displaced cell, so strict
    ///    ordering is no longer implied — even in subblocks that are
    ///    tombstone-free *now*.
    ///
    /// Returns the first violation as an error string.
    pub fn validate_rhh_invariants(&self) -> std::result::Result<(), String> {
        if !self.rhh_enabled() {
            return Ok(());
        }
        let never_deleted = self.stats.deletes == 0;
        let spb = self.arena.subblocks_per_block();
        let sublen = self.arena.subblock_len();
        for dense in 0..self.top_blocks.len() as u32 {
            let Some(top) = self.top_block(dense) else { continue };
            let mut stack = vec![(top, 0u32)];
            while let Some((b, depth)) = stack.pop() {
                for sub in 0..spb {
                    let cells = self.arena.subblock_cells(b, sub);
                    for (pos, cell) in cells.iter().enumerate() {
                        if !cell.is_occupied() {
                            continue;
                        }
                        let (esub, ebucket) = subblock_and_bucket(cell.dst, depth, spb, sublen);
                        if esub != sub {
                            return Err(format!(
                                "edge to {} stored in subblock {sub} of block {b} at depth \
                                 {depth}, but hashes to subblock {esub}",
                                cell.dst
                            ));
                        }
                        let dist = (pos + sublen - ebucket) % sublen;
                        if dist != cell.probe as usize {
                            return Err(format!(
                                "edge to {} at offset {pos} of block {b} stores probe {} but \
                                 sits {dist} cells from bucket {ebucket}",
                                cell.dst, cell.probe
                            ));
                        }
                        if cell.probe > 0 {
                            let prev = &cells[(pos + sublen - 1) % sublen];
                            if prev.state == CellState::Empty {
                                return Err(format!(
                                    "edge to {} has probe {} but an empty predecessor in block \
                                     {b} subblock {sub}",
                                    cell.dst, cell.probe
                                ));
                            }
                            if never_deleted && (prev.probe as usize) < cell.probe as usize - 1 {
                                return Err(format!(
                                    "Robin Hood ordering violated in block {b} subblock {sub}: \
                                     probe {} follows probe {}",
                                    cell.probe, prev.probe
                                ));
                            }
                        }
                    }
                }
                for &c in self.arena.child_slots(b) {
                    if c != NIL_U32 {
                        stack.push((c, depth + 1));
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks the SWAR tag lanes against ground truth over the whole
    /// structure (diagnostic / test hook; valid in both delete modes and
    /// regardless of [`TinkerConfig::probe_tags`], because tag maintenance
    /// is unconditional):
    ///
    /// 1. every edgeblock cell's tag byte matches its state — the
    ///    destination fingerprint when occupied, [`TAG_EMPTY`] when empty,
    ///    [`TAG_TOMBSTONE`] when tombstoned;
    /// 2. the SGH slot-table tag lane (including its wrap-around mirror)
    ///    matches the resident keys;
    /// 3. every hub segment's tail-tag lane matches its unsorted tail keys.
    ///
    /// Returns the first violation as an error string.
    pub fn validate_tag_invariants(&self) -> std::result::Result<(), String> {
        let pw = self.arena.pagewidth();
        for dense in 0..self.top_blocks.len() as u32 {
            let Some(top) = self.top_block(dense) else { continue };
            let mut stack = vec![top];
            while let Some(b) = stack.pop() {
                for off in 0..pw {
                    let cell = self.arena.cell(b, off);
                    let expect = match cell.state {
                        CellState::Occupied => dst_tag(cell.dst),
                        CellState::Empty => TAG_EMPTY,
                        CellState::Tombstone => TAG_TOMBSTONE,
                    };
                    let got = self.arena.tag(b, off);
                    if got != expect {
                        return Err(format!(
                            "block {b} offset {off}: cell state {:?} (dst {}) expects tag \
                             {expect:#04x} but the lane holds {got:#04x}",
                            cell.state, cell.dst
                        ));
                    }
                }
                for &c in self.arena.child_slots(b) {
                    if c != NIL_U32 {
                        stack.push(c);
                    }
                }
            }
        }
        if let Some(sgh) = &self.sgh {
            sgh.validate_tags().map_err(|e| format!("sgh: {e}"))?;
        }
        for (h, seg) in self.hubs.iter().enumerate() {
            seg.validate_tail_tags().map_err(|e| format!("hub {h}: {e}"))?;
        }
        Ok(())
    }

    /// Mean tree depth of live edges (0 = everything in top-parents).
    pub fn mean_depth(&self) -> f64 {
        let hist = self.depth_histogram();
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = hist.iter().enumerate().map(|(d, &n)| d as u64 * n).sum();
        weighted as f64 / total as f64
    }
}

impl std::fmt::Debug for GraphTinker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphTinker")
            .field("edges", &self.live_edges)
            .field("sources", &self.num_sources())
            .field("vertex_space", &self.vertex_space)
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn tiny_config() -> TinkerConfig {
        // Small geometry so branching kicks in quickly.
        TinkerConfig { pagewidth: 16, subblock: 4, workblock: 2, ..TinkerConfig::default() }
    }

    #[test]
    fn insert_and_lookup_roundtrip() {
        let mut g = GraphTinker::with_defaults();
        assert!(g.insert_edge(Edge::new(1, 2, 10)));
        assert!(g.insert_edge(Edge::new(1, 3, 20)));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(1, 2), Some(10));
        assert_eq!(g.edge_weight(1, 3), Some(20));
        assert_eq!(g.edge_weight(1, 4), None);
        assert_eq!(g.edge_weight(2, 1), None, "edges are directed");
        assert_eq!(g.out_degree(1), 2);
    }

    #[test]
    fn reinsert_updates_weight_not_count() {
        let mut g = GraphTinker::with_defaults();
        assert!(g.insert_edge(Edge::new(5, 6, 1)));
        assert!(!g.insert_edge(Edge::new(5, 6, 99)));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_degree(5), 1);
        assert_eq!(g.edge_weight(5, 6), Some(99));
        // CAL copy tracked the weight update too.
        let mut w = 0;
        g.for_each_edge(|_, _, weight| w = weight);
        assert_eq!(w, 99);
    }

    #[test]
    fn delete_only_tombstones_and_forgets_edge() {
        let mut g = GraphTinker::with_defaults();
        g.insert_edge(Edge::new(1, 2, 1));
        g.insert_edge(Edge::new(1, 3, 1));
        assert!(g.delete_edge(1, 2));
        assert!(!g.delete_edge(1, 2), "double delete reports missing");
        assert!(!g.contains_edge(1, 2));
        assert!(g.contains_edge(1, 3));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_degree(1), 1);
        assert_eq!(g.structure_stats().tombstones, 1);
    }

    #[test]
    fn delete_missing_edge_and_missing_vertex() {
        let mut g = GraphTinker::with_defaults();
        g.insert_edge(Edge::unit(1, 2));
        assert!(!g.delete_edge(1, 99));
        assert!(!g.delete_edge(42, 1), "unknown source");
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn tombstone_slot_reused_by_insert() {
        let mut g = GraphTinker::with_defaults();
        g.insert_edge(Edge::new(1, 2, 1));
        g.delete_edge(1, 2);
        assert_eq!(g.structure_stats().tombstones, 1);
        // Reinserting the same destination probes the same bucket, so the
        // tombstoned cell is reclaimed ("the INSERT stage can also insert
        // edges into these empty slots").
        g.insert_edge(Edge::new(1, 2, 3));
        assert_eq!(g.structure_stats().tombstones, 0, "insert reclaims the tombstone");
        assert_eq!(g.edge_weight(1, 2), Some(3));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn high_degree_vertex_branches_out() {
        let mut g = GraphTinker::new(tiny_config()).unwrap();
        for d in 0..200u32 {
            g.insert_edge(Edge::unit(0, d + 1));
        }
        assert_eq!(g.num_edges(), 200);
        assert_eq!(g.out_degree(0), 200);
        let st = g.structure_stats();
        assert!(st.overflow_blocks > 0, "200 edges in 16-cell blocks must branch");
        assert!(g.stats().branches_created > 0);
        assert!(g.stats().max_depth > 0);
        // Every edge still findable.
        for d in 0..200u32 {
            assert!(g.contains_edge(0, d + 1), "lost edge (0, {})", d + 1);
        }
    }

    #[test]
    fn out_edge_iteration_matches_inserts() {
        let mut g = GraphTinker::new(tiny_config()).unwrap();
        let mut expected = BTreeMap::new();
        for d in 0..100u32 {
            g.insert_edge(Edge::new(7, d, d * 2));
            expected.insert(d, d * 2);
        }
        let mut seen = BTreeMap::new();
        g.for_each_out_edge(7, |dst, w| {
            assert!(seen.insert(dst, w).is_none(), "duplicate dst {dst}");
        });
        assert_eq!(seen, expected);
    }

    #[test]
    fn cal_stream_matches_main_scan() {
        let mut g = GraphTinker::new(tiny_config()).unwrap();
        for i in 0..500u32 {
            g.insert_edge(Edge::new(i % 37, i, i % 5 + 1));
        }
        for i in (0..500u32).step_by(3) {
            g.delete_edge(i % 37, i);
        }
        let mut from_cal: Vec<(u32, u32, u32)> = Vec::new();
        g.for_each_edge(|s, d, w| from_cal.push((s, d, w)));
        let mut from_main: Vec<(u32, u32, u32)> = Vec::new();
        g.for_each_edge_main(|s, d, w| from_main.push((s, d, w)));
        from_cal.sort_unstable();
        from_main.sort_unstable();
        assert_eq!(from_cal, from_main, "CAL and main structure diverged");
        assert_eq!(from_cal.len() as u64, g.num_edges());
    }

    #[test]
    fn delete_and_compact_shrinks_structure() {
        let cfg = TinkerConfig { delete_mode: DeleteMode::DeleteAndCompact, ..tiny_config() };
        let mut g = GraphTinker::new(cfg).unwrap();
        for d in 0..300u32 {
            g.insert_edge(Edge::unit(0, d + 1));
        }
        let before = g.structure_stats();
        assert!(before.overflow_blocks > 0);
        for d in 0..300u32 {
            assert!(g.delete_edge(0, d + 1), "edge {} should delete", d + 1);
        }
        let after = g.structure_stats();
        assert_eq!(g.num_edges(), 0);
        assert!(
            after.free_blocks > 0,
            "compaction must recycle emptied overflow blocks: {after:?}"
        );
        assert_eq!(after.overflow_blocks, 0, "all overflow blocks recycled when empty");
    }

    #[test]
    fn delete_and_compact_preserves_remaining_edges() {
        let cfg = TinkerConfig { delete_mode: DeleteMode::DeleteAndCompact, ..tiny_config() };
        let mut g = GraphTinker::new(cfg).unwrap();
        for d in 0..120u32 {
            g.insert_edge(Edge::new(3, d, d));
        }
        // Delete every other edge; compaction moves survivors around.
        for d in (0..120u32).step_by(2) {
            assert!(g.delete_edge(3, d));
        }
        for d in 0..120u32 {
            if d % 2 == 0 {
                assert!(!g.contains_edge(3, d), "deleted edge {d} still visible");
            } else {
                assert_eq!(g.edge_weight(3, d), Some(d), "survivor {d} lost or corrupted");
            }
        }
        assert_eq!(g.num_edges(), 60);
    }

    #[test]
    fn sgh_disabled_still_correct() {
        let cfg = TinkerConfig { enable_sgh: false, ..tiny_config() };
        let mut g = GraphTinker::new(cfg).unwrap();
        g.insert_edge(Edge::new(1000, 1, 5));
        g.insert_edge(Edge::new(3, 1000, 6));
        assert_eq!(g.edge_weight(1000, 1), Some(5));
        assert_eq!(g.edge_weight(3, 1000), Some(6));
        // Main region is sparse: indexed by raw id.
        assert_eq!(g.num_sources(), 1001);
        let mut edges = Vec::new();
        g.for_each_edge(|s, d, w| edges.push((s, d, w)));
        edges.sort_unstable();
        assert_eq!(edges, vec![(3, 1000, 6), (1000, 1, 5)]);
    }

    #[test]
    fn cal_disabled_falls_back_to_main_scan() {
        let cfg = TinkerConfig { enable_cal: false, ..tiny_config() };
        let mut g = GraphTinker::new(cfg).unwrap();
        for i in 0..50u32 {
            g.insert_edge(Edge::new(i % 5, i, 1));
        }
        g.delete_edge(0, 0);
        let mut n = 0;
        g.for_each_edge(|_, _, _| n += 1);
        assert_eq!(n, 49);
        assert!(g.cal().is_none());
        assert_eq!(g.structure_stats().cal_blocks, 0);
    }

    #[test]
    fn sgh_compacts_sparse_sources() {
        // The paper's example: sources 34 and 22789 should be adjacent in
        // the main region, not 22755 slots apart.
        let mut g = GraphTinker::with_defaults();
        g.insert_edge(Edge::unit(34, 1));
        g.insert_edge(Edge::unit(22789, 2));
        assert_eq!(g.num_sources(), 2);
        assert_eq!(g.sources(), vec![34, 22789]);
    }

    #[test]
    fn rebuild_cal_drops_invalid_records() {
        let mut g = GraphTinker::new(tiny_config()).unwrap();
        for i in 0..100u32 {
            g.insert_edge(Edge::new(0, i, i));
        }
        for i in 0..50u32 {
            g.delete_edge(0, i);
        }
        assert_eq!(g.cal().unwrap().num_invalid(), 50);
        g.rebuild_cal();
        assert_eq!(g.cal().unwrap().num_invalid(), 0);
        assert_eq!(g.cal().unwrap().num_live(), 50);
        // Pointers still valid: weight updates must reach the new CAL.
        g.insert_edge(Edge::new(0, 99, 12345));
        let mut found = false;
        g.for_each_edge(|_, d, w| {
            if d == 99 {
                assert_eq!(w, 12345);
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn batch_apply_counts() {
        let mut g = GraphTinker::with_defaults();
        let mut b = EdgeBatch::new();
        b.push_insert(Edge::unit(1, 2));
        b.push_insert(Edge::unit(1, 2)); // duplicate -> update
        b.push_insert(Edge::unit(2, 3));
        b.push_delete(1, 2);
        b.push_delete(9, 9); // missing
        let r = g.apply_batch(&b);
        assert_eq!(r, BatchResult { inserted: 2, updated: 1, deleted: 1, not_found: 1 });
        assert_eq!(r.total(), 5);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn vertex_space_tracks_both_endpoints() {
        let mut g = GraphTinker::with_defaults();
        assert_eq!(g.vertex_space(), 0);
        g.insert_edge(Edge::unit(3, 900));
        assert_eq!(g.vertex_space(), 901);
        g.insert_edge(Edge::unit(1000, 2));
        assert_eq!(g.vertex_space(), 1001);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut g = GraphTinker::with_defaults();
        for i in 0..100u32 {
            g.insert_edge(Edge::unit(0, i));
        }
        let s = g.stats();
        assert_eq!(s.operations, 100);
        assert!(s.cells_inspected >= 100);
        assert!(s.workblocks_fetched > 0);
        assert!(s.mean_probe() >= 1.0);
        g.reset_stats();
        assert_eq!(g.stats(), ProbeStats::default());
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = TinkerConfig { subblock: 5, ..TinkerConfig::default() };
        assert!(matches!(GraphTinker::new(cfg), Err(GraphError::InvalidConfig(_))));
    }

    #[test]
    fn occupancy_reflects_compaction() {
        // Identical inserts; tombstoning keeps blocks allocated, so
        // occupancy must be no better than with compaction.
        let mk = |mode| {
            let cfg = TinkerConfig { delete_mode: mode, ..tiny_config() };
            let mut g = GraphTinker::new(cfg).unwrap();
            for d in 0..400u32 {
                g.insert_edge(Edge::unit(0, d + 1));
            }
            for d in (0..400u32).step_by(2) {
                g.delete_edge(0, d + 1);
            }
            g
        };
        let tomb = mk(DeleteMode::DeleteOnly).structure_stats();
        let comp = mk(DeleteMode::DeleteAndCompact).structure_stats();
        assert!(
            comp.occupancy >= tomb.occupancy,
            "compacted occupancy {:.3} < tombstoned {:.3}",
            comp.occupancy,
            tomb.occupancy
        );
        assert_eq!(comp.tombstones, 0);
    }

    #[test]
    fn compact_mode_keeps_cal_bounded() {
        let cfg = TinkerConfig {
            delete_mode: DeleteMode::DeleteAndCompact,
            cal_block_size: 64,
            ..tiny_config()
        };
        let mut g = GraphTinker::new(cfg).unwrap();
        for d in 0..4_000u32 {
            g.insert_edge(Edge::unit(d % 16, d));
        }
        for d in 0..3_900u32 {
            g.delete_edge(d % 16, d);
        }
        let st = g.structure_stats();
        assert!(
            st.cal_invalid <= st.live_edges.max(1024),
            "CAL GC failed to bound invalid records: {st:?}"
        );
        // Edges still intact after rebuilds.
        for d in 3_900..4_000u32 {
            assert!(g.contains_edge(d % 16, d), "lost edge {d} across CAL GC");
        }
        let mut n = 0;
        g.for_each_edge(|_, _, _| n += 1);
        assert_eq!(n, 100);
    }

    #[test]
    fn depth_histogram_counts_all_edges_and_stays_logarithmic() {
        let mut g = GraphTinker::new(tiny_config()).unwrap();
        for d in 0..1_000u32 {
            g.insert_edge(Edge::unit(0, d + 1));
        }
        let hist = g.depth_histogram();
        assert_eq!(hist.iter().sum::<u64>(), 1_000);
        // 1000 edges in 16-cell blocks: an adjacency list would need a
        // 63-block chain; the hash tree must stay far shallower.
        assert!(hist.len() <= 16, "tree depth {} not logarithmic", hist.len());
        assert!(g.mean_depth() < 8.0, "mean depth {}", g.mean_depth());
    }

    #[test]
    fn probe_histogram_bounded_by_subblock() {
        let mut g = GraphTinker::new(tiny_config()).unwrap();
        for i in 0..2_000u32 {
            g.insert_edge(Edge::unit(i % 13, i));
        }
        let hist = g.probe_histogram();
        assert_eq!(hist.len(), 4, "probe distances bounded by subblock length");
        assert_eq!(hist.iter().sum::<u64>(), 2_000);
        // Robin Hood: short probes dominate.
        assert!(hist[0] > hist[3], "probe distribution not front-loaded: {hist:?}");
    }

    #[test]
    fn empty_structure_diagnostics() {
        let g = GraphTinker::with_defaults();
        assert!(g.depth_histogram().is_empty());
        assert_eq!(g.probe_histogram().iter().sum::<u64>(), 0);
        assert_eq!(g.mean_depth(), 0.0);
    }

    #[test]
    fn import_sources_reproduces_dense_order() {
        // Build a store whose SGH order differs from sorted id order...
        let mut orig = GraphTinker::with_defaults();
        for &(s, d) in &[(50u32, 1u32), (3, 2), (97, 3), (3, 4)] {
            orig.insert_edge(Edge::unit(s, d));
        }
        assert_eq!(orig.sources(), vec![50, 3, 97]);
        // ...then rebuild it the snapshot way: sources first, edges after,
        // in an order that would otherwise assign different dense ids.
        let mut restored = GraphTinker::with_defaults();
        restored.import_sources(&orig.sources());
        restored.insert_edge(Edge::unit(97, 3));
        restored.insert_edge(Edge::unit(3, 2));
        restored.insert_edge(Edge::unit(3, 4));
        restored.insert_edge(Edge::unit(50, 1));
        assert_eq!(restored.sources(), orig.sources());
        assert_eq!(restored.num_sources(), 3);
        // Idempotent: re-importing known sources allocates nothing new.
        restored.import_sources(&[3, 50]);
        assert_eq!(restored.num_sources(), 3);
    }

    #[test]
    fn expand_vertex_space_never_shrinks() {
        let mut g = GraphTinker::with_defaults();
        g.insert_edge(Edge::unit(1, 500));
        g.expand_vertex_space(100);
        assert_eq!(g.vertex_space(), 501, "expand must not shrink");
        g.expand_vertex_space(1_000);
        assert_eq!(g.vertex_space(), 1_000);
    }

    fn adaptive_tiny() -> TinkerConfig {
        // Tiny geometry + low thresholds so every tier transition triggers
        // within a few dozen edges.
        tiny_config().tiers(2, 12, 6)
    }

    #[test]
    fn inline_tier_avoids_block_allocation() {
        let mut g = GraphTinker::new(adaptive_tiny()).unwrap();
        g.insert_edge(Edge::new(1, 10, 7));
        g.insert_edge(Edge::new(1, 11, 8));
        let st = g.structure_stats();
        assert_eq!(st.main_blocks, 0, "small vertices must not allocate edgeblocks");
        assert_eq!(st.tier_inline_vertices, 1);
        assert_eq!(g.edge_weight(1, 10), Some(7));
        assert_eq!(g.out_degree(1), 2);
        // Weight update in place.
        assert!(!g.insert_edge(Edge::new(1, 10, 70)));
        assert_eq!(g.edge_weight(1, 10), Some(70));
        // Delete brings it back to one edge, still inline.
        assert!(g.delete_edge(1, 11));
        assert!(!g.contains_edge(1, 11));
        assert_eq!(g.structure_stats().main_blocks, 0);
    }

    #[test]
    fn inline_promotes_to_blocks_then_hub_and_back() {
        let mut g = GraphTinker::new(adaptive_tiny()).unwrap();
        // 3rd edge overflows inline_cap = 2 -> blocks tier.
        for d in 0..3u32 {
            g.insert_edge(Edge::new(5, d + 100, d));
        }
        let st = g.structure_stats();
        assert_eq!(st.tier_blocks_vertices, 1);
        assert_eq!(st.tier_inline_vertices, 0);
        assert!(st.main_blocks > 0);
        assert!(st.tier_promotions >= 1);

        // Degree 12 reaches hub_promote -> hub tier, blocks recycled.
        for d in 3..12u32 {
            g.insert_edge(Edge::new(5, d + 100, d));
        }
        let st = g.structure_stats();
        assert_eq!(st.tier_hub_vertices, 1);
        assert_eq!(st.main_blocks, 0);
        assert!(st.free_blocks > 0, "promotion must recycle the subtree");
        for d in 0..12u32 {
            assert_eq!(g.edge_weight(5, d + 100), Some(d), "edge {d} lost in promotion");
        }

        // Dropping below hub_demote = 6 falls back to blocks, then below
        // inline_cap/2 to inline.
        for d in 0..7u32 {
            assert!(g.delete_edge(5, d + 100));
        }
        let st = g.structure_stats();
        assert_eq!(st.tier_blocks_vertices, 1, "hub must demote below the floor: {st:?}");
        for d in 7..11u32 {
            assert!(g.delete_edge(5, d + 100));
        }
        let st = g.structure_stats();
        assert_eq!(st.tier_inline_vertices, 1, "blocks must demote to inline: {st:?}");
        assert!(st.tier_demotions >= 2);
        assert_eq!(g.edge_weight(5, 111), Some(11), "last survivor intact");
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn adaptive_matches_model_under_churn() {
        for mode in [DeleteMode::DeleteOnly, DeleteMode::DeleteAndCompact] {
            let cfg = TinkerConfig { delete_mode: mode, ..adaptive_tiny() };
            let mut g = GraphTinker::new(cfg).unwrap();
            let mut model: BTreeMap<(u32, u32), u32> = BTreeMap::new();
            // Skewed source distribution so a few vertices cross every
            // threshold repeatedly while most stay inline.
            for i in 0..6_000u32 {
                let src = (i * 7 % 97) * (i * 7 % 97) % 61;
                let dst = i * 13 % 211;
                if i % 4 == 3 {
                    let was = model.remove(&(src, dst)).is_some();
                    assert_eq!(g.delete_edge(src, dst), was, "delete mismatch at {i} ({mode:?})");
                } else {
                    let new = model.insert((src, dst), i).is_none();
                    assert_eq!(
                        g.insert_edge(Edge::new(src, dst, i)),
                        new,
                        "insert mismatch at {i} ({mode:?})"
                    );
                }
            }
            assert_eq!(g.num_edges() as usize, model.len());
            let mut got: Vec<(u32, u32, u32)> = Vec::new();
            g.for_each_edge(|s, d, w| got.push((s, d, w)));
            got.sort_unstable();
            let want: Vec<(u32, u32, u32)> = model.iter().map(|(&(s, d), &w)| (s, d, w)).collect();
            assert_eq!(got, want, "CAL stream diverged ({mode:?})");
            // Main-structure scan agrees too (snapshot encode path).
            let mut main: Vec<(u32, u32, u32)> = Vec::new();
            g.for_each_edge_main(|s, d, w| main.push((s, d, w)));
            main.sort_unstable();
            assert_eq!(main, want, "main scan diverged ({mode:?})");
            for src in 0..61u32 {
                let deg = model.keys().filter(|&&(s, _)| s == src).count() as u32;
                assert_eq!(g.out_degree(src), deg, "degree mismatch for {src} ({mode:?})");
            }
            let st = g.structure_stats();
            assert!(st.tier_promotions > 0, "churn must exercise promotions ({mode:?})");
            assert_eq!(
                st.tier_inline_vertices + st.tier_blocks_vertices + st.tier_hub_vertices,
                (0..61).filter(|&s| g.out_degree(s) > 0).count(),
                "tier counts must sum to active vertices ({mode:?})"
            );
        }
    }

    #[test]
    fn adaptive_histograms_count_all_edges() {
        let mut g = GraphTinker::new(adaptive_tiny()).unwrap();
        for i in 0..1_000u32 {
            g.insert_edge(Edge::unit(i % 13, i));
        }
        assert_eq!(g.depth_histogram().iter().sum::<u64>(), 1_000);
        assert_eq!(g.probe_histogram().iter().sum::<u64>(), 1_000);
        assert!(g.validate_rhh_invariants().is_ok());
    }

    #[test]
    fn adaptive_rebuild_cal_spans_all_tiers() {
        let mut g = GraphTinker::new(adaptive_tiny()).unwrap();
        // Source 0 -> hub, source 1 -> blocks, source 2 -> inline.
        for d in 0..20u32 {
            g.insert_edge(Edge::new(0, d + 1000, d));
        }
        for d in 0..5u32 {
            g.insert_edge(Edge::new(1, d + 1000, d));
        }
        g.insert_edge(Edge::new(2, 1000, 9));
        let st = g.structure_stats();
        assert_eq!(
            (st.tier_inline_vertices, st.tier_blocks_vertices, st.tier_hub_vertices),
            (1, 1, 1)
        );
        g.rebuild_cal();
        assert_eq!(g.cal().unwrap().num_invalid(), 0);
        // CAL pointers survived: weight updates land in the new CAL.
        g.insert_edge(Edge::new(0, 1001, 777));
        g.insert_edge(Edge::new(2, 1000, 888));
        let mut seen = BTreeMap::new();
        g.for_each_edge(|s, d, w| {
            seen.insert((s, d), w);
        });
        assert_eq!(seen.get(&(0, 1001)), Some(&777));
        assert_eq!(seen.get(&(2, 1000)), Some(&888));
        assert_eq!(seen.len() as u64, g.num_edges());
    }

    #[test]
    fn adaptive_sources_without_sgh() {
        let cfg = TinkerConfig { enable_sgh: false, ..adaptive_tiny() };
        let mut g = GraphTinker::new(cfg).unwrap();
        g.insert_edge(Edge::unit(3, 1)); // inline tier, no top block
        for d in 0..15u32 {
            g.insert_edge(Edge::unit(7, d + 10)); // hub tier
        }
        let mut s = g.sources();
        s.sort_unstable();
        assert_eq!(s, vec![3, 7], "inline/hub sources must be visible without SGH");
    }

    #[test]
    fn adaptive_memory_accounting_includes_tiers() {
        let mut g = GraphTinker::new(adaptive_tiny()).unwrap();
        for d in 0..40u32 {
            g.insert_edge(Edge::unit(0, d));
        }
        g.insert_edge(Edge::unit(1, 2));
        let st = g.structure_stats();
        assert!(st.hub_bytes > 0, "hub tier must be accounted: {st:?}");
        assert!(st.inline_bytes > 0);
        assert!(st.memory_bytes >= st.hub_bytes + st.inline_bytes);
        g.publish_memory_metrics();
    }

    #[test]
    fn many_sources_many_edges_consistency() {
        let mut g = GraphTinker::new(tiny_config()).unwrap();
        let mut model: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        // Mixed inserts/updates/deletes across many vertices.
        for i in 0..5_000u32 {
            let src = i * 7 % 211;
            let dst = i * 13 % 389;
            if i % 5 == 4 {
                let was = model.remove(&(src, dst)).is_some();
                assert_eq!(g.delete_edge(src, dst), was, "delete mismatch at {i}");
            } else {
                let new = model.insert((src, dst), i).is_none();
                assert_eq!(g.insert_edge(Edge::new(src, dst, i)), new, "insert mismatch at {i}");
            }
        }
        assert_eq!(g.num_edges() as usize, model.len());
        let mut got: Vec<(u32, u32, u32)> = Vec::new();
        g.for_each_edge(|s, d, w| got.push((s, d, w)));
        got.sort_unstable();
        let want: Vec<(u32, u32, u32)> = model.iter().map(|(&(s, d), &w)| (s, d, w)).collect();
        assert_eq!(got, want);
        // Degrees agree with the model.
        for src in 0..211u32 {
            let deg = model.keys().filter(|&&(s, _)| s == src).count() as u32;
            assert_eq!(g.out_degree(src), deg, "degree mismatch for {src}");
        }
    }

    /// Mixed churn on one store; returns it for post-hoc validation.
    fn churned(cfg: TinkerConfig) -> GraphTinker {
        let mut g = GraphTinker::new(cfg).unwrap();
        for i in 0..4_000u32 {
            let src = i * 7 % 97;
            let dst = i * 13 % 431;
            if i % 4 == 3 {
                g.delete_edge(src, dst);
            } else {
                g.insert_edge(Edge::new(src, dst, i));
            }
        }
        g
    }

    #[test]
    fn tag_invariants_hold_under_churn_in_both_delete_modes() {
        for mode in [DeleteMode::DeleteOnly, DeleteMode::DeleteAndCompact] {
            let g = churned(TinkerConfig { delete_mode: mode, ..tiny_config() });
            g.validate_rhh_invariants().unwrap();
            g.validate_tag_invariants().unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    #[test]
    fn tag_invariants_hold_with_probing_disabled() {
        // Tag lanes are maintained even when the scan strategy is the seed
        // scalar walk, so flipping the flag per-instance stays comparable.
        let g = churned(tiny_config().probe_tags(false));
        g.validate_tag_invariants().unwrap();
    }

    #[test]
    fn tag_invariants_hold_across_adaptive_tiers() {
        let g = churned(adaptive_tiny());
        let st = g.structure_stats();
        assert!(st.tier_promotions > 0, "churn should exercise tier moves: {st:?}");
        g.validate_tag_invariants().unwrap();
    }

    #[test]
    fn tagged_and_seed_probe_paths_agree() {
        for mode in [DeleteMode::DeleteOnly, DeleteMode::DeleteAndCompact] {
            let base = TinkerConfig { delete_mode: mode, ..tiny_config() };
            let tagged = churned(base);
            let seed = churned(base.probe_tags(false));
            assert_eq!(tagged.num_edges(), seed.num_edges(), "{mode:?}");
            let mut a: Vec<(u32, u32, u32)> = Vec::new();
            tagged.for_each_edge(|s, d, w| a.push((s, d, w)));
            let mut b: Vec<(u32, u32, u32)> = Vec::new();
            seed.for_each_edge(|s, d, w| b.push((s, d, w)));
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{mode:?}: tagged and seed probe paths diverged");
            assert!(
                tagged.stats().tag_group_scans > 0,
                "tagged store must exercise the SWAR engine"
            );
            assert_eq!(seed.stats().tag_group_scans, 0, "seed store must not");
            assert!(
                tagged.stats().cells_inspected < seed.stats().cells_inspected,
                "tag probing must inspect fewer cells ({} vs {})",
                tagged.stats().cells_inspected,
                seed.stats().cells_inspected
            );
        }
    }
}
