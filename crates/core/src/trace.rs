//! Span tracing: time-resolved observability for the ingest pipeline.
//!
//! The [`metrics`](crate::metrics) registry answers *how much* (counts,
//! latency histograms); this module answers *when*: a per-thread ring
//! buffer of timestamped begin/end/instant events whose merged stream
//! shows the PR 3 pipelining overlap — WAL append of batch *k+1* running
//! while the shard workers apply batch *k* — as parallel tracks on a
//! timeline, the same per-phase breakdown GraphTango and CuckooGraph use
//! to motivate their designs.
//!
//! # Design
//!
//! Everything is hand-rolled on `std` — no tracing crates, no `unsafe`.
//!
//! - **Per-thread rings.** The first event a thread records registers a
//!   fixed-capacity ring ([`RING_CAP`] slots) in a process-wide registry.
//!   Recording is one relaxed-atomic cursor bump plus three relaxed slot
//!   stores; there is no lock and no allocation on the hot path. When the
//!   ring wraps, the *oldest* events are overwritten — a dump always holds
//!   the newest [`RING_CAP`] events per thread.
//! - **Fixed catalogue.** Event names come from the [`SpanId`] enum, so a
//!   slot stores a byte, not a string, and the set of traceable phases is
//!   auditable in one place.
//! - **Racy-tolerant dumps.** [`dump`] reads other threads' rings with
//!   relaxed loads while they may still be recording. Each slot embeds its
//!   sequence number; a slot whose sequence does not match the expected
//!   one (it was overwritten mid-read) is skipped rather than mis-read.
//!   Dumps are diagnostics, not ground truth, and are documented as such.
//! - **Two gates**, mirroring the metrics layer: the `trace` cargo feature
//!   (default **on**; off compiles every call to an empty inline body,
//!   proven by the trace-off build check in CI) and a runtime flag that
//!   starts **disabled** — tracing is opt-in per run, unlike metrics,
//!   because a timeline is only meaningful for a deliberately traced
//!   workload.
//!
//! A [`SpanGuard`] records `Begin` on creation and `End` on drop. The
//! `End` is recorded even if the runtime flag was switched off mid-span,
//! so per-thread begin/end nesting stays balanced (the same reasoning as
//! [`Gauge`](crate::metrics::Gauge) ignoring the metrics flag).
//!
//! [`TraceDump::to_chrome_json`] renders the merged, time-sorted stream in
//! the Chrome trace-event format: load the file in
//! <https://ui.perfetto.dev> (or `chrome://tracing`) and each thread —
//! `gtinker-shard-0..n`, `gtinker-wal`, the caller — is its own track.

use std::time::Instant;

/// Capacity (events) of each per-thread ring buffer. Must be a power of
/// two; at ~24 bytes a slot a full ring is ~96 KiB.
pub const RING_CAP: usize = 4096;

/// Upper bound on registered per-thread rings; threads past the cap
/// record into a shared discard ring that never appears in dumps (a
/// backstop against unbounded registry growth from thread churn).
pub const MAX_RINGS: usize = 256;

/// The fixed catalogue of traceable phases. One variant per named span;
/// the variant's [`name`](Self::name) doubles as the event name in the
/// exported timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanId {
    /// Shard worker scanning the shared batch, claiming its interval
    /// (the parallelized partition pass).
    PoolClaim = 0,
    /// Shard worker applying its claimed sub-batch under the shard lock.
    PoolApply = 1,
    /// Query-side pipeline barrier waiting out in-flight batches.
    PoolSettle = 2,
    /// Instant: a batch was dispatched to every shard queue.
    PoolDispatch = 3,
    /// WAL record encode + write (+ policy-driven sync).
    WalAppend = 4,
    /// Explicit WAL data sync.
    WalSync = 5,
    /// Snapshot encode (store -> bytes).
    SnapshotEncode = 6,
    /// Snapshot write + atomic rename publish.
    SnapshotWrite = 7,
    /// Pipelined group commit folding the previously acked batch into the
    /// in-memory store while the WAL thread logs the next one.
    DurablePendingApply = 8,
    /// Pipelined group commit blocking for the in-flight batch's durable
    /// acknowledgement.
    DurableAckWait = 9,
    /// Engine gather/scatter processing phase of one iteration.
    EngineProcess = 10,
    /// Engine apply phase of one iteration.
    EngineApply = 11,
    /// Instant: a congested subblock branched out a child edgeblock
    /// (arg = tree depth of the new child).
    TinkerBranchOut = 12,
    /// Instant: the ingest driver handed batch `arg` to the pipeline.
    IngestBatch = 13,
    /// Instant: the telemetry server answered an HTTP request.
    ServeRequest = 14,
    /// A vertex changed adjacency tier (arg = its dense index). Covers the
    /// migration work: collecting, freeing and re-anchoring edges.
    TierPromote = 15,
    /// Invalidate-and-repair pass after a batch containing deletions
    /// (arg = size of the invalidated cone). Covers the witness sweep,
    /// boundary re-seeding, and the repair fixpoint.
    Repair = 16,
    /// Epoch pin: acquiring a read guard, including any first-pin backlog
    /// fold (arg = requesting thread's [`thread_ctx`], i.e. the serving
    /// request id, or 0 outside a request).
    EpochPin = 17,
    /// Serializing + writing one HTTP response (arg = request id).
    ServeSerialize = 18,
}

/// Every catalogue entry, for iteration in exports and tests.
pub const ALL_SPANS: [SpanId; 19] = [
    SpanId::PoolClaim,
    SpanId::PoolApply,
    SpanId::PoolSettle,
    SpanId::PoolDispatch,
    SpanId::WalAppend,
    SpanId::WalSync,
    SpanId::SnapshotEncode,
    SpanId::SnapshotWrite,
    SpanId::DurablePendingApply,
    SpanId::DurableAckWait,
    SpanId::EngineProcess,
    SpanId::EngineApply,
    SpanId::TinkerBranchOut,
    SpanId::IngestBatch,
    SpanId::ServeRequest,
    SpanId::TierPromote,
    SpanId::Repair,
    SpanId::EpochPin,
    SpanId::ServeSerialize,
];

impl SpanId {
    /// The event name shown on the exported timeline.
    pub fn name(self) -> &'static str {
        match self {
            SpanId::PoolClaim => "pool_claim",
            SpanId::PoolApply => "pool_apply",
            SpanId::PoolSettle => "pool_settle",
            SpanId::PoolDispatch => "pool_dispatch",
            SpanId::WalAppend => "wal_append",
            SpanId::WalSync => "wal_sync",
            SpanId::SnapshotEncode => "snapshot_encode",
            SpanId::SnapshotWrite => "snapshot_write",
            SpanId::DurablePendingApply => "durable_pending_apply",
            SpanId::DurableAckWait => "durable_ack_wait",
            SpanId::EngineProcess => "engine_process",
            SpanId::EngineApply => "engine_apply",
            SpanId::TinkerBranchOut => "tinker_branch_out",
            SpanId::IngestBatch => "ingest_batch",
            SpanId::ServeRequest => "serve_request",
            SpanId::TierPromote => "tier_promote",
            SpanId::Repair => "repair",
            SpanId::EpochPin => "epoch_pin",
            SpanId::ServeSerialize => "serve_serialize",
        }
    }

    fn from_u8(v: u8) -> Option<SpanId> {
        ALL_SPANS.get(v as usize).copied()
    }
}

/// What a recorded event marks: the start of a span, its end, or a point
/// occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened ([`span`] / [`span_arg`]).
    Begin,
    /// Span closed ([`SpanGuard`] drop).
    End,
    /// Point event ([`instant`]).
    Instant,
}

/// One decoded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Per-thread sequence number (monotonic within `tid`).
    pub seq: u64,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Registration id of the recording thread (index into
    /// [`TraceDump::threads`]).
    pub tid: u64,
    /// Which catalogue phase the event belongs to.
    pub span: SpanId,
    /// Begin, end, or instant.
    pub kind: EventKind,
    /// Span-specific payload (batch number, LSN, tree depth, ...).
    pub arg: u64,
}

/// Identity of one registered recording thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadInfo {
    /// Registration id, matching [`TraceEvent::tid`].
    pub tid: u64,
    /// Thread name at registration (`t<tid>` if unnamed).
    pub name: String,
    /// Events overwritten by ring wraparound (newest-kept eviction).
    pub dropped: u64,
}

/// A merged, time-sorted view of every registered ring at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceDump {
    /// Every thread that has recorded at least one event.
    pub threads: Vec<ThreadInfo>,
    /// All readable events, sorted by timestamp (ties by thread + seq).
    pub events: Vec<TraceEvent>,
}

/// Closes its span on drop. Hold it for the duration of the phase:
///
/// ```
/// use gtinker_core::trace::{self, SpanId};
/// let _guard = trace::span(SpanId::PoolApply);
/// // ... phase body ...
/// ```
#[must_use = "dropping the guard immediately makes a zero-length span"]
#[derive(Debug)]
pub struct SpanGuard {
    id: Option<SpanId>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            // Forced: the End must pair the recorded Begin even if the
            // runtime flag was toggled off mid-span.
            imp::record(EventKind::End, id, 0, true);
        }
    }
}

/// Whether runtime trace collection is currently enabled. Always `false`
/// when the `trace` feature is compiled out.
#[inline]
pub fn enabled() -> bool {
    imp::enabled()
}

/// Toggles runtime collection (starts **disabled**). A no-op when the
/// `trace` feature is compiled out.
pub fn set_enabled(on: bool) {
    imp::set_enabled(on);
}

/// Hides all previously recorded events from future dumps. Rings are kept
/// (threads keep recording into them); only the dump watermark moves.
pub fn clear() {
    imp::clear();
}

/// Opens a span on the calling thread's track; the returned guard closes
/// it on drop. Records nothing (and costs one relaxed load) when
/// collection is disabled.
#[inline]
pub fn span(id: SpanId) -> SpanGuard {
    span_arg(id, 0)
}

/// [`span`] with a payload value (batch number, LSN, ...), shown in the
/// exported timeline as `args.v`.
#[inline]
pub fn span_arg(id: SpanId, arg: u64) -> SpanGuard {
    if imp::record(EventKind::Begin, id, arg, false) {
        SpanGuard { id: Some(id) }
    } else {
        SpanGuard { id: None }
    }
}

/// Records a point event on the calling thread's track.
#[inline]
pub fn instant(id: SpanId, arg: u64) {
    imp::record(EventKind::Instant, id, arg, false);
}

/// Tags the calling thread with a request context id (0 = none). The
/// serving path sets this to the per-request `RequestId` before doing any
/// work, and instrumentation sites deep in the stack (epoch pin, pool
/// settle, engine iterations) read it back via [`thread_ctx`] to stamp
/// their span args — so every span a request touches carries the same id
/// without threading a parameter through every API. A no-op when the
/// `trace` feature is compiled out.
#[inline]
pub fn set_thread_ctx(id: u64) {
    imp::set_thread_ctx(id);
}

/// The calling thread's request context id (0 when unset, outside a
/// request, or with the `trace` feature compiled out).
#[inline]
pub fn thread_ctx() -> u64 {
    imp::thread_ctx()
}

/// Merges every registered ring into one time-sorted dump. Concurrent
/// recorders are not paused: slots overwritten mid-read are skipped, so a
/// dump taken during ingest is a consistent *sample*, not a barrier.
pub fn dump() -> TraceDump {
    imp::dump()
}

impl TraceDump {
    /// Merges `other` into this dump: events union by `(tid, seq)` and the
    /// combined stream is re-sorted; thread rows join by `tid`, keeping the
    /// larger dropped count. Lets a driver snapshot the rings at phase
    /// boundaries so a later high-rate phase (say, a branch-out-heavy bulk
    /// load) cannot evict an earlier phase's events before the final
    /// export.
    pub fn merge(&mut self, other: TraceDump) {
        for t in other.threads {
            match self.threads.iter_mut().find(|mine| mine.tid == t.tid) {
                Some(mine) => mine.dropped = mine.dropped.max(t.dropped),
                None => self.threads.push(t),
            }
        }
        let seen: std::collections::HashSet<(u64, u64)> =
            self.events.iter().map(|e| (e.tid, e.seq)).collect();
        self.events.extend(other.events.into_iter().filter(|e| !seen.contains(&(e.tid, e.seq))));
        self.events.sort_by_key(|e| (e.ts_ns, e.tid, e.seq));
    }

    /// Renders the dump in the Chrome trace-event JSON format (an object
    /// with a `traceEvents` array), loadable in Perfetto or
    /// `chrome://tracing`. Each thread is one track (`tid`), named via
    /// thread-name metadata events; span args surface as `args.v`.
    pub fn to_chrome_json(&self) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(self.events.len() + self.threads.len() + 1);
        parts.push(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"gtinker\"}}"
                .to_string(),
        );
        for t in &self.threads {
            parts.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                t.tid,
                json_escape(&t.name)
            ));
        }
        for e in &self.events {
            let ts_us = e.ts_ns as f64 / 1000.0;
            let common = format!(
                "\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3},\"name\":\"{}\"",
                e.tid,
                e.span.name()
            );
            parts.push(match e.kind {
                EventKind::Begin => {
                    format!("{{\"ph\":\"B\",{common},\"args\":{{\"v\":{}}}}}", e.arg)
                }
                EventKind::End => format!("{{\"ph\":\"E\",{common}}}"),
                EventKind::Instant => {
                    format!("{{\"ph\":\"i\",\"s\":\"t\",{common},\"args\":{{\"v\":{}}}}}", e.arg)
                }
            });
        }
        format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n", parts.join(",\n"))
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

#[cfg(feature = "trace")]
mod imp {
    use super::{EventKind, SpanId, ThreadInfo, TraceDump, TraceEvent, MAX_RINGS, RING_CAP};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    static REGISTRY: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());
    /// Overflow ring shared by threads past [`MAX_RINGS`]; never dumped.
    static DISCARD: OnceLock<Arc<ThreadRing>> = OnceLock::new();

    const SEQ_BITS: u32 = 48;
    const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;

    fn pack(seq: u64, span: SpanId, kind: EventKind) -> u64 {
        let k = match kind {
            EventKind::Begin => 0u64,
            EventKind::End => 1,
            EventKind::Instant => 2,
        };
        (k << 62) | ((span as u64) << SEQ_BITS) | (seq & SEQ_MASK)
    }

    fn unpack(meta: u64) -> (u64, Option<SpanId>, EventKind) {
        let kind = match meta >> 62 {
            0 => EventKind::Begin,
            1 => EventKind::End,
            _ => EventKind::Instant,
        };
        let span = SpanId::from_u8(((meta >> SEQ_BITS) & 0xff) as u8);
        (meta & SEQ_MASK, span, kind)
    }

    fn now_ns() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    struct ThreadRing {
        tid: u64,
        name: String,
        /// Total events ever recorded by this ring (the next slot is
        /// `cursor % RING_CAP`). Bumped with one relaxed `fetch_add`.
        cursor: AtomicU64,
        /// Dump watermark: events with `seq <` this are hidden ([`clear`]).
        cleared: AtomicU64,
        meta: Vec<AtomicU64>,
        ts: Vec<AtomicU64>,
        arg: Vec<AtomicU64>,
    }

    impl ThreadRing {
        fn new(tid: u64, name: String) -> Self {
            ThreadRing {
                tid,
                name,
                cursor: AtomicU64::new(0),
                cleared: AtomicU64::new(0),
                meta: (0..RING_CAP).map(|_| AtomicU64::new(0)).collect(),
                ts: (0..RING_CAP).map(|_| AtomicU64::new(0)).collect(),
                arg: (0..RING_CAP).map(|_| AtomicU64::new(0)).collect(),
            }
        }

        fn record(&self, kind: EventKind, span: SpanId, arg: u64) {
            let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
            let slot = (seq as usize) & (RING_CAP - 1);
            // The meta word embeds the sequence number so a concurrent
            // dump can detect (and skip) a slot it caught mid-overwrite.
            self.meta[slot].store(pack(seq, span, kind), Ordering::Relaxed);
            self.arg[slot].store(arg, Ordering::Relaxed);
            self.ts[slot].store(now_ns(), Ordering::Relaxed);
        }

        fn read_into(&self, out: &mut Vec<TraceEvent>) -> ThreadInfo {
            let cursor = self.cursor.load(Ordering::Relaxed);
            let cleared = self.cleared.load(Ordering::Relaxed);
            let start = cursor.saturating_sub(RING_CAP as u64).max(cleared);
            for seq in start..cursor {
                let slot = (seq as usize) & (RING_CAP - 1);
                let (got_seq, span, kind) = unpack(self.meta[slot].load(Ordering::Relaxed));
                // Torn read: the owner lapped this slot while we scanned.
                if got_seq != (seq & SEQ_MASK) {
                    continue;
                }
                let Some(span) = span else { continue };
                out.push(TraceEvent {
                    seq,
                    ts_ns: self.ts[slot].load(Ordering::Relaxed),
                    tid: self.tid,
                    span,
                    kind,
                    arg: self.arg[slot].load(Ordering::Relaxed),
                });
            }
            ThreadInfo {
                tid: self.tid,
                name: self.name.clone(),
                dropped: cursor.saturating_sub(RING_CAP as u64),
            }
        }
    }

    thread_local! {
        static RING: std::cell::OnceCell<Arc<ThreadRing>> =
            const { std::cell::OnceCell::new() };
        static CTX: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    #[inline]
    pub(super) fn set_thread_ctx(id: u64) {
        CTX.with(|c| c.set(id));
    }

    #[inline]
    pub(super) fn thread_ctx() -> u64 {
        CTX.with(|c| c.get())
    }

    fn register_current_thread() -> Arc<ThreadRing> {
        let mut reg = REGISTRY.lock().expect("trace registry poisoned");
        if reg.len() >= MAX_RINGS {
            return Arc::clone(
                DISCARD.get_or_init(|| Arc::new(ThreadRing::new(u64::MAX, "discard".into()))),
            );
        }
        let tid = reg.len() as u64 + 1; // tid 0 is the process metadata row
        let name =
            std::thread::current().name().map(str::to_string).unwrap_or_else(|| format!("t{tid}"));
        let ring = Arc::new(ThreadRing::new(tid, name));
        reg.push(Arc::clone(&ring));
        ring
    }

    #[inline]
    pub(super) fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    pub(super) fn set_enabled(on: bool) {
        // Pin the epoch before the first event so timestamps are
        // comparable across threads from the very first record.
        if on {
            EPOCH.get_or_init(Instant::now);
        }
        ENABLED.store(on, Ordering::Relaxed);
    }

    pub(super) fn clear() {
        let reg = REGISTRY.lock().expect("trace registry poisoned");
        for ring in reg.iter() {
            ring.cleared.store(ring.cursor.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Records one event; returns whether it was recorded. `force`
    /// bypasses the runtime flag (span End pairing).
    #[inline]
    pub(super) fn record(kind: EventKind, span: SpanId, arg: u64, force: bool) -> bool {
        if !force && !enabled() {
            return false;
        }
        RING.with(|cell| {
            let ring = cell.get_or_init(register_current_thread);
            ring.record(kind, span, arg);
        });
        true
    }

    pub(super) fn dump() -> TraceDump {
        let rings: Vec<Arc<ThreadRing>> = {
            let reg = REGISTRY.lock().expect("trace registry poisoned");
            reg.iter().map(Arc::clone).collect()
        };
        let mut d = TraceDump::default();
        for ring in &rings {
            d.threads.push(ring.read_into(&mut d.events));
        }
        d.events.sort_by_key(|e| (e.ts_ns, e.tid, e.seq));
        d
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    //! Zero-cost no-op path: every entry point is an empty inline body.
    use super::{EventKind, SpanId, TraceDump};

    #[inline]
    pub(super) fn enabled() -> bool {
        false
    }

    pub(super) fn set_enabled(_on: bool) {}

    pub(super) fn clear() {}

    #[inline]
    pub(super) fn record(_kind: EventKind, _span: SpanId, _arg: u64, _force: bool) -> bool {
        false
    }

    #[inline]
    pub(super) fn set_thread_ctx(_id: u64) {}

    #[inline]
    pub(super) fn thread_ctx() -> u64 {
        0
    }

    pub(super) fn dump() -> TraceDump {
        TraceDump::default()
    }
}

/// Starts a wall-clock timer when tracing is enabled (the [`Instant`]
/// mirror of [`metrics::timer`](crate::metrics::timer); handy for callers
/// that want both a span and a latency sample without two clock reads).
#[inline]
pub fn timer() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that flip the global enable flag or clear the
    /// global rings; the rest of the suite runs in parallel.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn my_events(d: &TraceDump) -> Vec<TraceEvent> {
        let me = std::thread::current();
        let name = me.name().unwrap_or("");
        let Some(t) = d.threads.iter().find(|t| t.name == name) else {
            return Vec::new();
        };
        d.events.iter().filter(|e| e.tid == t.tid).cloned().collect()
    }

    #[test]
    fn span_names_round_trip() {
        for (i, s) in ALL_SPANS.iter().enumerate() {
            assert_eq!(*s as usize, i);
            assert!(!s.name().is_empty());
        }
        let names: std::collections::HashSet<_> = ALL_SPANS.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), ALL_SPANS.len(), "span names must be unique");
    }

    #[test]
    #[cfg(feature = "trace")]
    fn records_begin_end_and_instant() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        clear();
        {
            let _s = span_arg(SpanId::PoolApply, 7);
            instant(SpanId::TinkerBranchOut, 3);
        }
        set_enabled(false);
        let mine = my_events(&dump());
        let kinds: Vec<(SpanId, EventKind, u64)> =
            mine.iter().map(|e| (e.span, e.kind, e.arg)).collect();
        assert_eq!(
            kinds,
            vec![
                (SpanId::PoolApply, EventKind::Begin, 7),
                (SpanId::TinkerBranchOut, EventKind::Instant, 3),
                (SpanId::PoolApply, EventKind::End, 0),
            ]
        );
        // Timestamps are monotone within a thread's track.
        assert!(mine.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    #[cfg(feature = "trace")]
    fn disabled_records_nothing_but_open_spans_still_close() {
        let _g = LOCK.lock().unwrap();
        set_enabled(false);
        clear();
        instant(SpanId::IngestBatch, 1);
        let g = span(SpanId::WalAppend);
        drop(g);
        assert!(my_events(&dump()).is_empty(), "disabled span must not record");
        // Begin recorded enabled, End after disabling: still balanced.
        set_enabled(true);
        clear();
        let g = span(SpanId::WalAppend);
        set_enabled(false);
        drop(g);
        let mine = my_events(&dump());
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].kind, EventKind::Begin);
        assert_eq!(mine[1].kind, EventKind::End);
    }

    #[test]
    #[cfg(feature = "trace")]
    fn wraparound_keeps_newest_events() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        clear();
        let total = RING_CAP as u64 + 100;
        for i in 0..total {
            instant(SpanId::IngestBatch, i);
        }
        set_enabled(false);
        let mine: Vec<TraceEvent> =
            my_events(&dump()).into_iter().filter(|e| e.span == SpanId::IngestBatch).collect();
        assert!(mine.len() <= RING_CAP);
        let args: Vec<u64> = mine.iter().map(|e| e.arg).collect();
        assert!(args.contains(&(total - 1)), "newest event must survive");
        assert!(!args.contains(&0), "oldest events must be evicted");
        // The surviving window is contiguous and ordered.
        assert!(args.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    #[cfg(feature = "trace")]
    fn clear_hides_old_events_only() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        clear();
        instant(SpanId::WalSync, 1);
        clear();
        instant(SpanId::WalSync, 2);
        set_enabled(false);
        let mine: Vec<u64> = my_events(&dump())
            .into_iter()
            .filter(|e| e.span == SpanId::WalSync)
            .map(|e| e.arg)
            .collect();
        assert_eq!(mine, vec![2]);
    }

    #[test]
    #[cfg(feature = "trace")]
    fn thread_ctx_is_per_thread_and_resettable() {
        assert_eq!(thread_ctx(), 0);
        set_thread_ctx(42);
        assert_eq!(thread_ctx(), 42);
        let other = std::thread::spawn(thread_ctx).join().unwrap();
        assert_eq!(other, 0, "ctx must not leak across threads");
        set_thread_ctx(0);
        assert_eq!(thread_ctx(), 0);
    }

    #[test]
    #[cfg(not(feature = "trace"))]
    fn feature_off_is_inert() {
        set_enabled(true);
        assert!(!enabled());
        let _s = span_arg(SpanId::PoolApply, 1);
        instant(SpanId::IngestBatch, 2);
        let d = dump();
        assert!(d.events.is_empty() && d.threads.is_empty());
        assert!(timer().is_none());
        set_thread_ctx(9);
        assert_eq!(thread_ctx(), 0);
    }

    #[test]
    fn chrome_json_shape() {
        let d = TraceDump {
            threads: vec![ThreadInfo { tid: 1, name: "gtinker-shard-0".into(), dropped: 0 }],
            events: vec![
                TraceEvent {
                    seq: 0,
                    ts_ns: 1_500,
                    tid: 1,
                    span: SpanId::PoolApply,
                    kind: EventKind::Begin,
                    arg: 4,
                },
                TraceEvent {
                    seq: 1,
                    ts_ns: 2_500,
                    tid: 1,
                    span: SpanId::PoolApply,
                    kind: EventKind::End,
                    arg: 0,
                },
                TraceEvent {
                    seq: 2,
                    ts_ns: 3_000,
                    tid: 1,
                    span: SpanId::TinkerBranchOut,
                    kind: EventKind::Instant,
                    arg: 2,
                },
            ],
        };
        let j = d.to_chrome_json();
        assert!(j.starts_with("{\"displayTimeUnit\""));
        assert!(j.contains("\"traceEvents\":["));
        assert!(j.contains("\"thread_name\""));
        assert!(j.contains("\"name\":\"gtinker-shard-0\""));
        assert!(j.contains("{\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":1.500,\"name\":\"pool_apply\",\"args\":{\"v\":4}}"));
        assert!(
            j.contains("{\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":2.500,\"name\":\"pool_apply\"}")
        );
        assert!(j.contains("\"ph\":\"i\""));
        assert!(j.trim_end().ends_with("]}"));
    }

    #[test]
    fn merge_unions_by_tid_and_seq() {
        let mk = |tid: u64, seq: u64, ts: u64| TraceEvent {
            seq,
            ts_ns: ts,
            tid,
            span: SpanId::IngestBatch,
            kind: EventKind::Instant,
            arg: seq,
        };
        let mut a = TraceDump {
            threads: vec![ThreadInfo { tid: 1, name: "main".into(), dropped: 0 }],
            events: vec![mk(1, 0, 10), mk(1, 1, 20)],
        };
        let b = TraceDump {
            threads: vec![
                ThreadInfo { tid: 1, name: "main".into(), dropped: 5 },
                ThreadInfo { tid: 2, name: "w".into(), dropped: 0 },
            ],
            // seq 1 overlaps dump `a`; seq 2 and the tid-2 event are new.
            events: vec![mk(1, 1, 20), mk(1, 2, 30), mk(2, 0, 15)],
        };
        a.merge(b);
        assert_eq!(a.threads.len(), 2);
        assert_eq!(a.threads[0].dropped, 5, "dropped joins by max");
        let keys: Vec<(u64, u64)> = a.events.iter().map(|e| (e.tid, e.seq)).collect();
        assert_eq!(keys, vec![(1, 0), (2, 0), (1, 1), (1, 2)], "deduped and time-sorted");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c d");
    }
}
