//! The VertexPropertyArray: per-vertex metadata, indexed by the (dense)
//! main-region index of the vertex.
//!
//! The paper stores "the degree, value and any flags" of each vertex here;
//! the graph engine reads degrees during inference (total degree of the
//! active set) and algorithms may use the value/flags slots as scratch
//! state that lives alongside the structure.

use gtinker_types::{VertexId, Weight, NIL_U32, NIL_VERTEX};

/// Storage tier of a vertex's adjacency in the degree-adaptive layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Tier {
    /// Small-degree: edges packed inline in the vertex entry, no edgeblock.
    Inline = 0,
    /// Mid-degree: the paper's RHH edgeblock hierarchy.
    Blocks = 1,
    /// High-degree: sorted dense segment ([`crate::hubseg::HubSegment`]).
    Hub = 2,
}

/// Fixed-width inline adjacency for the small-degree tier: up to
/// [`gtinker_types::INLINE_CAP_MAX`] edges packed into the vertex entry,
/// probed with one branchless 4-wide compare.
#[derive(Debug, Clone, Copy)]
pub struct InlineAdj {
    /// Destination per slot; empty slots hold [`NIL_VERTEX`].
    pub dsts: [VertexId; 4],
    /// Weight per slot.
    pub weights: [Weight; 4],
    /// CAL pointer per slot ([`NIL_U32`] when the CAL is disabled).
    pub cal_ptrs: [u32; 4],
    /// Number of occupied slots (always a prefix).
    pub len: u8,
}

impl InlineAdj {
    /// An inline entry with no edges.
    pub const EMPTY: InlineAdj =
        InlineAdj { dsts: [NIL_VERTEX; 4], weights: [0; 4], cal_ptrs: [NIL_U32; 4], len: 0 };

    /// Slot index of `dst`, if present. Empty slots hold [`NIL_VERTEX`] and
    /// `dst` is never the sentinel, so all four lanes compare unconditionally
    /// — one vectorizable bitmask, no length masking.
    #[inline]
    pub fn find(&self, dst: VertexId) -> Option<usize> {
        let d = self.dsts;
        let mask = (d[0] == dst) as u32
            | (((d[1] == dst) as u32) << 1)
            | (((d[2] == dst) as u32) << 2)
            | (((d[3] == dst) as u32) << 3);
        (mask != 0).then(|| mask.trailing_zeros() as usize)
    }

    /// Appends an edge. The caller must have checked capacity and absence.
    #[inline]
    pub fn push(&mut self, dst: VertexId, weight: Weight, cal_ptr: u32) {
        debug_assert!(self.find(dst).is_none());
        debug_assert!((self.len as usize) < 4);
        let i = self.len as usize;
        self.dsts[i] = dst;
        self.weights[i] = weight;
        self.cal_ptrs[i] = cal_ptr;
        self.len += 1;
    }

    /// Swap-removes the slot at `idx`, returning its CAL pointer.
    #[inline]
    pub fn remove(&mut self, idx: usize) -> u32 {
        debug_assert!(idx < self.len as usize);
        let ptr = self.cal_ptrs[idx];
        let last = self.len as usize - 1;
        self.dsts[idx] = self.dsts[last];
        self.weights[idx] = self.weights[last];
        self.cal_ptrs[idx] = self.cal_ptrs[last];
        self.dsts[last] = NIL_VERTEX;
        self.weights[last] = 0;
        self.cal_ptrs[last] = NIL_U32;
        self.len = last as u8;
        ptr
    }
}

/// Properties of one vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexProperty {
    /// The vertex's original (external) id.
    pub original_id: VertexId,
    /// Current out-degree (live edges owned by this vertex).
    pub out_degree: u32,
    /// Algorithm value slot (e.g. BFS level, CC label).
    pub value: u32,
    /// Algorithm flag slot.
    pub flags: u32,
}

impl VertexProperty {
    const EMPTY: VertexProperty =
        VertexProperty { original_id: NIL_VERTEX, out_degree: 0, value: 0, flags: 0 };
}

/// Dense array of vertex properties.
#[derive(Debug, Clone, Default)]
pub struct VertexPropertyArray {
    props: Vec<VertexProperty>,
}

impl VertexPropertyArray {
    /// Creates an empty array.
    pub fn new() -> Self {
        VertexPropertyArray { props: Vec::new() }
    }

    /// Number of slots (= allocated main-region indices).
    #[inline]
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// Whether no vertex has been registered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    /// Ensures slot `dense` exists, registering `original_id` on first
    /// touch, and returns a mutable reference to it.
    pub fn ensure(&mut self, dense: u32, original_id: VertexId) -> &mut VertexProperty {
        let idx = dense as usize;
        if idx >= self.props.len() {
            self.props.resize(idx + 1, VertexProperty::EMPTY);
        }
        let p = &mut self.props[idx];
        if p.original_id == NIL_VERTEX {
            p.original_id = original_id;
        }
        debug_assert_eq!(p.original_id, original_id, "dense slot bound to a different vertex");
        p
    }

    /// The property slot of `dense`, if allocated.
    #[inline]
    pub fn get(&self, dense: u32) -> Option<&VertexProperty> {
        self.props.get(dense as usize)
    }

    /// Mutable access to the property slot of `dense`, if allocated.
    #[inline]
    pub fn get_mut(&mut self, dense: u32) -> Option<&mut VertexProperty> {
        self.props.get_mut(dense as usize)
    }

    /// Out-degree of `dense` (0 if the slot was never allocated).
    #[inline]
    pub fn out_degree(&self, dense: u32) -> u32 {
        self.get(dense).map_or(0, |p| p.out_degree)
    }

    /// Iterates `(dense, &property)` over allocated slots.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &VertexProperty)> {
        self.props.iter().enumerate().map(|(i, p)| (i as u32, p))
    }

    /// Sum of all out-degrees (= live edge count, cross-check).
    pub fn total_degree(&self) -> u64 {
        self.props.iter().map(|p| p.out_degree as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_allocates_and_binds_original_id() {
        let mut v = VertexPropertyArray::new();
        v.ensure(3, 900).out_degree = 5;
        assert_eq!(v.len(), 4);
        assert_eq!(v.get(3).unwrap().original_id, 900);
        assert_eq!(v.out_degree(3), 5);
        // Intermediate slots exist but are unbound.
        assert_eq!(v.get(1).unwrap().original_id, NIL_VERTEX);
    }

    #[test]
    fn get_out_of_range_is_none_and_degree_zero() {
        let v = VertexPropertyArray::new();
        assert!(v.get(0).is_none());
        assert_eq!(v.out_degree(17), 0);
        assert!(v.is_empty());
    }

    #[test]
    fn ensure_is_idempotent() {
        let mut v = VertexPropertyArray::new();
        v.ensure(0, 42).out_degree = 1;
        v.ensure(0, 42).out_degree += 1;
        assert_eq!(v.out_degree(0), 2);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn inline_adj_push_find_remove() {
        let mut a = InlineAdj::EMPTY;
        assert_eq!(a.find(7), None);
        a.push(7, 70, 0);
        a.push(9, 90, 1);
        a.push(11, 110, 2);
        assert_eq!(a.len, 3);
        assert_eq!(a.find(9), Some(1));
        assert_eq!(a.find(8), None);
        // Swap-remove pulls the last slot into the hole.
        assert_eq!(a.remove(0), 0);
        assert_eq!(a.len, 2);
        assert_eq!(a.find(7), None);
        let i = a.find(11).unwrap();
        assert_eq!((a.dsts[i], a.weights[i], a.cal_ptrs[i]), (11, 110, 2));
        assert!(a.find(9).is_some());
    }

    #[test]
    fn total_degree_sums() {
        let mut v = VertexPropertyArray::new();
        v.ensure(0, 10).out_degree = 3;
        v.ensure(1, 11).out_degree = 4;
        assert_eq!(v.total_degree(), 7);
        let pairs: Vec<_> = v.iter().map(|(d, p)| (d, p.out_degree)).collect();
        assert_eq!(pairs, vec![(0, 3), (1, 4)]);
    }
}
