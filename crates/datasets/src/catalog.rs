//! Table 1's dataset catalog, with proportional laptop-scale shrinking.
//!
//! Every benchmark names datasets exactly as the paper does; a
//! `scale_factor` divides both vertex and edge counts so the whole
//! evaluation fits in the session budget (the *relative* shapes — degree
//! distributions and edge/vertex ratios — are preserved). `scale_factor=1`
//! reproduces the paper-reported sizes.

use gtinker_types::Edge;

use crate::powerlaw::{PowerLawConfig, SourceSkewConfig};
use crate::rmat::RmatConfig;

/// Which generator family backs a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Graph500 RMAT synthetic (also the Kron_g500 family).
    Rmat,
    /// Power-law stand-in for a real-world collaboration graph.
    PowerLaw,
    /// Zipf source-skew stream (hub-heavy out-degree, uniform
    /// destinations) — the adaptive-tier stress workload, not in Table 1.
    SourceSkew,
}

/// One dataset of Table 1.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Paper's dataset name.
    pub name: &'static str,
    /// Generator family.
    pub kind: DatasetKind,
    /// Vertex count after scaling.
    pub vertices: u32,
    /// Edge count after scaling.
    pub edges: u64,
    /// Generation seed (fixed per dataset for reproducibility).
    pub seed: u64,
}

impl DatasetSpec {
    /// Generates the dataset's edge list.
    pub fn generate(&self) -> Vec<Edge> {
        match self.kind {
            DatasetKind::Rmat => {
                // RMAT needs a power-of-two vertex space.
                let scale = 32 - (self.vertices.max(2) - 1).leading_zeros();
                RmatConfig::graph500(scale, self.edges, self.seed).generate()
            }
            DatasetKind::PowerLaw => PowerLawConfig {
                num_vertices: self.vertices,
                num_edges: self.edges,
                alpha: 0.6,
                seed: self.seed,
                max_weight: 64,
            }
            .generate(),
            DatasetKind::SourceSkew => SourceSkewConfig {
                num_vertices: self.vertices,
                num_edges: self.edges,
                theta: 1.0,
                seed: self.seed,
                max_weight: 64,
            }
            .generate(),
        }
    }

    /// Average degree (edges per vertex).
    pub fn avg_degree(&self) -> f64 {
        self.edges as f64 / self.vertices as f64
    }
}

/// Table 1's six datasets plus the `Zipf_SourceSkew` adaptive-tier stream,
/// shrunk by `scale_factor` (1 = paper size).
///
/// Paper-reported sizes:
///
/// | name            | vertices  | edges       |
/// |-----------------|-----------|-------------|
/// | RMAT_1M_10M     | 1,000,192 | 10,000,000  |
/// | RMAT_500K_8M    | 524,288   | 8,380,000   |
/// | RMAT_1M_16M     | 1,048,576 | 15,700,000  |
/// | RMAT_2M_32M     | 2,097,152 | 31,770,000  |
/// | Hollywood-2009  | 1,139,906 | 113,891,327 |
/// | Kron_g500-logn21| 2,097,153 | 182,082,942 |
pub fn scaled_datasets(scale_factor: u32) -> Vec<DatasetSpec> {
    let f = scale_factor.max(1);
    let v = |n: u64| (n / f as u64).max(64) as u32;
    let e = |n: u64| (n / f as u64).max(256);
    vec![
        DatasetSpec {
            name: "RMAT_1M_10M",
            kind: DatasetKind::Rmat,
            vertices: v(1_000_192),
            edges: e(10_000_000),
            seed: 101,
        },
        DatasetSpec {
            name: "RMAT_500K_8M",
            kind: DatasetKind::Rmat,
            vertices: v(524_288),
            edges: e(8_380_000),
            seed: 102,
        },
        DatasetSpec {
            name: "RMAT_1M_16M",
            kind: DatasetKind::Rmat,
            vertices: v(1_048_576),
            edges: e(15_700_000),
            seed: 103,
        },
        DatasetSpec {
            name: "RMAT_2M_32M",
            kind: DatasetKind::Rmat,
            vertices: v(2_097_152),
            edges: e(31_770_000),
            seed: 104,
        },
        DatasetSpec {
            name: "Hollywood-2009",
            kind: DatasetKind::PowerLaw,
            vertices: v(1_139_906),
            edges: e(113_891_327),
            seed: 105,
        },
        DatasetSpec {
            name: "Kron_g500-logn21",
            kind: DatasetKind::Rmat,
            vertices: v(2_097_153),
            edges: e(182_082_942),
            seed: 106,
        },
        // Beyond Table 1: the hub-heavy stream that exercises all three
        // adjacency tiers of the adaptive layout (classic Zipf sources,
        // average out-degree 32).
        DatasetSpec {
            name: "Zipf_SourceSkew",
            kind: DatasetKind::SourceSkew,
            vertices: v(1_048_576),
            edges: e(33_554_432),
            seed: 107,
        },
    ]
}

/// Looks up a dataset by (case-insensitive) name.
pub fn dataset_by_name(name: &str, scale_factor: u32) -> Option<DatasetSpec> {
    scaled_datasets(scale_factor).into_iter().find(|d| d.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_datasets_matching_table1_names() {
        let ds = scaled_datasets(1);
        let names: Vec<&str> = ds.iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            vec![
                "RMAT_1M_10M",
                "RMAT_500K_8M",
                "RMAT_1M_16M",
                "RMAT_2M_32M",
                "Hollywood-2009",
                "Kron_g500-logn21",
                "Zipf_SourceSkew"
            ]
        );
        // Paper sizes at scale_factor 1.
        assert_eq!(ds[0].vertices, 1_000_192);
        assert_eq!(ds[0].edges, 10_000_000);
        assert_eq!(ds[4].edges, 113_891_327);
    }

    #[test]
    fn scaling_divides_proportionally() {
        let ds = scaled_datasets(64);
        assert_eq!(ds[1].vertices, 524_288 / 64);
        assert_eq!(ds[1].edges, 8_380_000 / 64);
        // Average degree preserved under scaling (within rounding).
        let full = scaled_datasets(1);
        for (a, b) in full.iter().zip(&ds) {
            let rel = (a.avg_degree() - b.avg_degree()).abs() / a.avg_degree();
            assert!(rel < 0.05, "{}: avg degree drifted {rel:.3}", a.name);
        }
    }

    #[test]
    fn generation_respects_scaled_bounds() {
        for d in scaled_datasets(512) {
            let edges = d.generate();
            assert_eq!(edges.len() as u64, d.edges, "{}", d.name);
            // RMAT rounds the vertex space up to a power of two.
            let bound = d.vertices.next_power_of_two().max(d.vertices);
            for e in &edges {
                assert!(e.src < bound && e.dst < bound, "{}: edge out of range", d.name);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(dataset_by_name("hollywood-2009", 64).is_some());
        assert!(dataset_by_name("RMAT_2M_32M", 64).is_some());
        assert!(dataset_by_name("zipf_sourceskew", 64).is_some());
        assert!(dataset_by_name("nope", 64).is_none());
    }

    #[test]
    fn source_skew_dataset_is_hub_heavy() {
        let d = dataset_by_name("Zipf_SourceSkew", 512).unwrap();
        assert_eq!(d.kind, DatasetKind::SourceSkew);
        let edges = d.generate();
        assert_eq!(edges.len() as u64, d.edges);
        let mut deg = std::collections::HashMap::new();
        for e in &edges {
            *deg.entry(e.src).or_insert(0u64) += 1;
        }
        let max = deg.values().copied().max().unwrap();
        assert!(max > 128, "largest hub degree {max} too small to cross the hub threshold");
    }

    #[test]
    fn hollywood_has_high_avg_degree() {
        let d = dataset_by_name("Hollywood-2009", 64).unwrap();
        assert!(d.avg_degree() > 90.0, "avg degree {:.1}", d.avg_degree());
    }
}
