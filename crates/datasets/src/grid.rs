//! Mesh/grid generator: bounded-degree, high-diameter graphs.
//!
//! The RMAT/power-law families are low-diameter with skewed degrees; grid
//! meshes are the opposite corner of the workload space (constant degree,
//! `O(side)` diameter), which stresses the engine's iteration loop (many
//! iterations with small frontiers — the regime where incremental
//! processing dominates) rather than the store's probe paths. Used by the
//! road-network example and the engine tests.

use gtinker_types::{Edge, VertexId, Weight};

/// Configuration of a 2-D grid graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridConfig {
    /// Grid width (columns).
    pub width: u32,
    /// Grid height (rows).
    pub height: u32,
    /// Generate both directions of every lattice edge.
    pub bidirectional: bool,
    /// Maximum edge weight; weights vary deterministically in
    /// `1..=max_weight` (1 = unit weights).
    pub max_weight: Weight,
}

impl GridConfig {
    /// A square bidirectional grid with small varying weights.
    pub fn square(side: u32) -> Self {
        GridConfig { width: side, height: side, bidirectional: true, max_weight: 9 }
    }

    /// Vertex id of grid cell `(x, y)`.
    #[inline]
    pub fn node(&self, x: u32, y: u32) -> VertexId {
        y * self.width + x
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    #[inline]
    fn weight(&self, x: u32, y: u32, dir: u32) -> Weight {
        if self.max_weight <= 1 {
            1
        } else {
            1 + (x.wrapping_mul(7).wrapping_add(y.wrapping_mul(13)).wrapping_add(dir))
                % self.max_weight
        }
    }

    /// Generates the lattice edges (right and down neighbours, plus the
    /// reverse directions when `bidirectional`).
    pub fn generate(&self) -> Vec<Edge> {
        assert!(self.width > 0 && self.height > 0);
        let mut edges = Vec::new();
        for y in 0..self.height {
            for x in 0..self.width {
                if x + 1 < self.width {
                    edges.push(Edge::new(
                        self.node(x, y),
                        self.node(x + 1, y),
                        self.weight(x, y, 0),
                    ));
                    if self.bidirectional {
                        edges.push(Edge::new(
                            self.node(x + 1, y),
                            self.node(x, y),
                            self.weight(x, y, 1),
                        ));
                    }
                }
                if y + 1 < self.height {
                    edges.push(Edge::new(
                        self.node(x, y),
                        self.node(x, y + 1),
                        self.weight(x, y, 2),
                    ));
                    if self.bidirectional {
                        edges.push(Edge::new(
                            self.node(x, y + 1),
                            self.node(x, y),
                            self.weight(x, y, 3),
                        ));
                    }
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn edge_count_formula() {
        // Directed lattice edges: 2*w*h - w - h; doubled when bidirectional.
        let g = GridConfig { width: 5, height: 4, bidirectional: false, max_weight: 1 };
        assert_eq!(g.generate().len() as u64, 2 * 5 * 4 - 5 - 4);
        let b = GridConfig { width: 5, height: 4, bidirectional: true, max_weight: 1 };
        assert_eq!(b.generate().len() as u64, 2 * (2 * 5 * 4 - 5 - 4));
    }

    #[test]
    fn degrees_bounded_by_four() {
        let g = GridConfig::square(10);
        let mut deg: HashMap<u32, u32> = HashMap::new();
        for e in g.generate() {
            *deg.entry(e.src).or_default() += 1;
        }
        assert!(deg.values().all(|&d| (2..=4).contains(&d)));
        // Corner has exactly 2 out-edges.
        assert_eq!(deg[&g.node(0, 0)], 2);
        // Interior has 4.
        assert_eq!(deg[&g.node(5, 5)], 4);
    }

    #[test]
    fn vertices_in_range_and_weights_bounded() {
        let g = GridConfig::square(8);
        for e in g.generate() {
            assert!((e.src as u64) < g.num_vertices());
            assert!((e.dst as u64) < g.num_vertices());
            assert!(e.weight >= 1 && e.weight <= 9);
        }
    }

    #[test]
    fn unit_weight_grid() {
        let g = GridConfig { max_weight: 1, ..GridConfig::square(4) };
        assert!(g.generate().iter().all(|e| e.weight == 1));
    }

    #[test]
    fn degenerate_single_row() {
        let g = GridConfig { width: 6, height: 1, bidirectional: false, max_weight: 1 };
        let edges = g.generate();
        assert_eq!(edges.len(), 5, "a path graph");
    }
}
