//! Plain-text edge-list I/O.
//!
//! Format: one `src dst [weight]` triple per line; `#`-prefixed lines are
//! comments. This is the de-facto interchange format of SNAP / UF Sparse
//! Matrix edge dumps, so real datasets can be dropped in when available.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use gtinker_types::{Edge, GraphError, Result};

/// Reads an edge list from a file.
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> Result<Vec<Edge>> {
    let reader = BufReader::new(File::open(path)?);
    parse_edge_list(reader)
}

/// Parses an edge list from any buffered reader.
pub fn parse_edge_list<R: BufRead>(reader: R) -> Result<Vec<Edge>> {
    let mut edges = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<u32> {
            tok.ok_or_else(|| GraphError::Parse {
                line: i + 1,
                message: format!("missing {what}"),
            })?
            .parse()
            .map_err(|_| GraphError::Parse { line: i + 1, message: format!("bad {what}") })
        };
        let src = parse(it.next(), "source")?;
        let dst = parse(it.next(), "destination")?;
        let weight = match it.next() {
            Some(tok) => tok
                .parse()
                .map_err(|_| GraphError::Parse { line: i + 1, message: "bad weight".into() })?,
            None => 1,
        };
        edges.push(Edge::new(src, dst, weight));
    }
    Ok(edges)
}

/// Writes an edge list to a file (with weights).
pub fn write_edge_list<P: AsRef<Path>>(path: P, edges: &[Edge]) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for e in edges {
        writeln!(w, "{} {} {}", e.src, e.dst, e.weight)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_basic_and_comments() {
        let text = "# comment\n1 2 7\n\n3 4\n  5 6 9  \n";
        let edges = parse_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(edges, vec![Edge::new(1, 2, 7), Edge::new(3, 4, 1), Edge::new(5, 6, 9)]);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_edge_list(Cursor::new("1 2\nx y\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");
        let err = parse_edge_list(Cursor::new("5\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn roundtrip_through_file() {
        let edges: Vec<Edge> = (0..100u32).map(|i| Edge::new(i, i + 1, i % 7 + 1)).collect();
        let path = std::env::temp_dir().join("gtinker_io_roundtrip.txt");
        write_edge_list(&path, &edges).unwrap();
        let back = read_edge_list(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, edges);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_edge_list("/nonexistent/gtinker/file.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
