//! Workload substrate for the GraphTinker reproduction.
//!
//! The paper evaluates on four synthetic RMAT graphs (Graph500 generator)
//! and two real-world graphs from the UF Sparse Matrix Collection
//! (Hollywood-2009 and Kron_g500-logn21). The real datasets are not
//! redistributable here, so this crate provides *shape-preserving stand-ins*
//! (see DESIGN.md §3):
//!
//! * [`rmat`] — a seeded Graph500 RMAT generator (a/b/c/d = .57/.19/.19/.05),
//!   which is also the family Kron_g500-logn21 belongs to;
//! * [`powerlaw`] — a Chung-Lu style power-law generator tuned to
//!   Hollywood-2009's signature: heavy degree skew with a very high average
//!   degree (~100);
//! * [`catalog`] — Table 1's dataset list with paper-reported sizes and a
//!   `scale_factor` knob that shrinks every dataset proportionally so the
//!   full evaluation fits on a laptop;
//! * [`grid`] — bounded-degree, high-diameter meshes (the opposite workload
//!   corner, used by examples and engine tests);
//! * [`stream`] — batching utilities (1 M-edge update batches, deletion
//!   streams, high-degree root pre-collection for Fig. 19);
//! * [`io`] — plain edge-list file I/O.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod grid;
pub mod io;
pub mod powerlaw;
pub mod rmat;
pub mod stream;

pub use catalog::{dataset_by_name, scaled_datasets, DatasetKind, DatasetSpec};
pub use grid::GridConfig;
pub use powerlaw::{PowerLawConfig, SourceSkewConfig};
pub use rmat::RmatConfig;
pub use stream::{churn_batches, deletion_batches, insertion_batches, top_degree_vertices};
