//! Chung-Lu style power-law generator: the Hollywood-2009 stand-in.
//!
//! Hollywood-2009 (actor co-appearance) has two properties the paper's
//! experiments actually exercise: a heavy-tailed degree distribution and a
//! very high average degree (~100 edges per vertex), which is what makes
//! STINGER's O(degree) chain walks hurt. This generator reproduces both:
//! endpoints are drawn from a truncated power-law over vertex ranks
//! (inverse-CDF sampling of `p(i) ∝ i^-alpha`), and the edge/vertex ratio is
//! a free parameter.

use gtinker_types::{Edge, VertexId, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a power-law generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawConfig {
    /// Number of vertices.
    pub num_vertices: u32,
    /// Number of edges.
    pub num_edges: u64,
    /// Rank exponent of the endpoint distribution (`p(i) ∝ (i+1)^-alpha`);
    /// 0 = uniform, larger = more skewed. Hollywood-like graphs use ~0.6.
    pub alpha: f64,
    /// RNG seed.
    pub seed: u64,
    /// Maximum edge weight (uniform in `1..=max_weight`).
    pub max_weight: Weight,
}

impl PowerLawConfig {
    /// A Hollywood-2009-shaped configuration: `n` vertices with an average
    /// degree of ~100 and strong skew.
    pub fn hollywood_like(num_vertices: u32, seed: u64) -> Self {
        PowerLawConfig {
            num_vertices,
            num_edges: num_vertices as u64 * 100,
            alpha: 0.6,
            seed,
            max_weight: 64,
        }
    }

    /// Samples a vertex with probability proportional to `(rank+1)^-alpha`,
    /// then maps rank to a shuffled label via a multiplicative permutation
    /// so ids do not correlate with degree.
    #[inline]
    fn sample_rank(&self, u: f64) -> u32 {
        let n = self.num_vertices as f64;
        if self.alpha.abs() < 1e-12 {
            return (u * n) as u32;
        }
        // Inverse CDF of the continuous approximation of i^-alpha on [1, N]:
        // F(x) = (x^(1-a) - 1) / (N^(1-a) - 1).
        let one_minus = 1.0 - self.alpha;
        let x = (1.0 + u * (n.powf(one_minus) - 1.0)).powf(1.0 / one_minus);
        ((x - 1.0) as u32).min(self.num_vertices - 1)
    }

    /// Generates the edge list.
    pub fn generate(&self) -> Vec<Edge> {
        assert!(self.num_vertices > 1);
        assert!(self.alpha < 1.0, "alpha >= 1 needs a different inverse CDF");
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Multiplicative label shuffle: odd multiplier modulo 2^32, reduced
        // into range by rejection-free remap through a Fisher-Yates table
        // would cost memory; a fixed permutation of ranks is enough to
        // decorrelate id from degree.
        let n = self.num_vertices;
        let mut label: Vec<u32> = (0..n).collect();
        for i in (1..n as usize).rev() {
            let j = rng.gen_range(0..=i);
            label.swap(i, j);
        }
        let mut edges = Vec::with_capacity(self.num_edges as usize);
        for _ in 0..self.num_edges {
            let src = label[self.sample_rank(rng.gen()) as usize];
            let dst = label[self.sample_rank(rng.gen()) as usize];
            let weight = if self.max_weight <= 1 { 1 } else { rng.gen_range(1..=self.max_weight) };
            edges.push(Edge::new(src as VertexId, dst as VertexId, weight));
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_and_sized() {
        let cfg = PowerLawConfig::hollywood_like(1_000, 5);
        let e1 = cfg.generate();
        assert_eq!(e1.len(), 100_000);
        assert_eq!(e1, cfg.generate());
        assert!(e1.iter().all(|e| e.src < 1_000 && e.dst < 1_000));
    }

    #[test]
    fn average_degree_is_high() {
        let cfg = PowerLawConfig::hollywood_like(500, 1);
        let edges = cfg.generate();
        assert_eq!(edges.len() as f64 / 500.0, 100.0);
    }

    #[test]
    fn degree_skew_present() {
        let cfg = PowerLawConfig {
            num_vertices: 4_096,
            num_edges: 80_000,
            alpha: 0.6,
            seed: 9,
            max_weight: 1,
        };
        let mut deg: HashMap<u32, u64> = HashMap::new();
        for e in cfg.generate() {
            *deg.entry(e.src).or_default() += 1;
        }
        let mut degrees: Vec<u64> = deg.values().copied().collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = degrees.iter().sum();
        let top5pct: u64 = degrees.iter().take(degrees.len() / 20 + 1).sum();
        assert!(
            top5pct as f64 / total as f64 > 0.2,
            "top-5% owns {:.1}% — insufficient skew",
            100.0 * top5pct as f64 / total as f64
        );
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let cfg = PowerLawConfig {
            num_vertices: 64,
            num_edges: 64_000,
            alpha: 0.0,
            seed: 2,
            max_weight: 1,
        };
        let mut deg = vec![0u64; 64];
        for e in cfg.generate() {
            deg[e.src as usize] += 1;
        }
        let expected = 1_000.0;
        for (i, &d) in deg.iter().enumerate() {
            assert!(
                (d as f64 - expected).abs() / expected < 0.25,
                "vertex {i} degree {d} far from uniform"
            );
        }
    }
}
