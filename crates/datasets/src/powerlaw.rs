//! Chung-Lu style power-law generator: the Hollywood-2009 stand-in.
//!
//! Hollywood-2009 (actor co-appearance) has two properties the paper's
//! experiments actually exercise: a heavy-tailed degree distribution and a
//! very high average degree (~100 edges per vertex), which is what makes
//! STINGER's O(degree) chain walks hurt. This generator reproduces both:
//! endpoints are drawn from a truncated power-law over vertex ranks
//! (inverse-CDF sampling of `p(i) ∝ i^-alpha`), and the edge/vertex ratio is
//! a free parameter.

use gtinker_types::{Edge, VertexId, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a power-law generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawConfig {
    /// Number of vertices.
    pub num_vertices: u32,
    /// Number of edges.
    pub num_edges: u64,
    /// Rank exponent of the endpoint distribution (`p(i) ∝ (i+1)^-alpha`);
    /// 0 = uniform, larger = more skewed. Hollywood-like graphs use ~0.6.
    pub alpha: f64,
    /// RNG seed.
    pub seed: u64,
    /// Maximum edge weight (uniform in `1..=max_weight`).
    pub max_weight: Weight,
}

impl PowerLawConfig {
    /// A Hollywood-2009-shaped configuration: `n` vertices with an average
    /// degree of ~100 and strong skew.
    pub fn hollywood_like(num_vertices: u32, seed: u64) -> Self {
        PowerLawConfig {
            num_vertices,
            num_edges: num_vertices as u64 * 100,
            alpha: 0.6,
            seed,
            max_weight: 64,
        }
    }

    /// Samples a vertex with probability proportional to `(rank+1)^-alpha`,
    /// then maps rank to a shuffled label via a multiplicative permutation
    /// so ids do not correlate with degree.
    #[inline]
    fn sample_rank(&self, u: f64) -> u32 {
        let n = self.num_vertices as f64;
        if self.alpha.abs() < 1e-12 {
            return (u * n) as u32;
        }
        // Inverse CDF of the continuous approximation of i^-alpha on [1, N]:
        // F(x) = (x^(1-a) - 1) / (N^(1-a) - 1).
        let one_minus = 1.0 - self.alpha;
        let x = (1.0 + u * (n.powf(one_minus) - 1.0)).powf(1.0 / one_minus);
        ((x - 1.0) as u32).min(self.num_vertices - 1)
    }

    /// Generates the edge list.
    pub fn generate(&self) -> Vec<Edge> {
        assert!(self.num_vertices > 1);
        assert!(self.alpha < 1.0, "alpha >= 1 needs a different inverse CDF");
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Multiplicative label shuffle: odd multiplier modulo 2^32, reduced
        // into range by rejection-free remap through a Fisher-Yates table
        // would cost memory; a fixed permutation of ranks is enough to
        // decorrelate id from degree.
        let n = self.num_vertices;
        let mut label: Vec<u32> = (0..n).collect();
        for i in (1..n as usize).rev() {
            let j = rng.gen_range(0..=i);
            label.swap(i, j);
        }
        let mut edges = Vec::with_capacity(self.num_edges as usize);
        for _ in 0..self.num_edges {
            let src = label[self.sample_rank(rng.gen()) as usize];
            let dst = label[self.sample_rank(rng.gen()) as usize];
            let weight = if self.max_weight <= 1 { 1 } else { rng.gen_range(1..=self.max_weight) };
            edges.push(Edge::new(src as VertexId, dst as VertexId, weight));
        }
        edges
    }
}

/// Zipf source-skew generator: hub-heavy update streams for the adaptive
/// tier experiments.
///
/// Unlike [`PowerLawConfig`], which skews *both* endpoints, this generator
/// draws only the **source** from a Zipf distribution over vertex ranks
/// (`p(i) ∝ i^-theta`) and keeps destinations uniform. That concentrates
/// out-degree on a few hub sources — the workload where a degree-adaptive
/// layout separates from a fixed geometry: hubs cross into the dense tier
/// while the long tail of degree-1..4 sources stays inline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceSkewConfig {
    /// Number of vertices.
    pub num_vertices: u32,
    /// Number of edges.
    pub num_edges: u64,
    /// Zipf exponent of the source-rank distribution; 0 = uniform,
    /// 1 = classic Zipf, larger = heavier hubs. Any `theta >= 0` works
    /// (the inverse CDF switches branch at `theta == 1`).
    pub theta: f64,
    /// RNG seed.
    pub seed: u64,
    /// Maximum edge weight (uniform in `1..=max_weight`).
    pub max_weight: Weight,
}

impl SourceSkewConfig {
    /// A hub-heavy preset: classic Zipf (`theta = 1`) sources with an
    /// average out-degree of 32, so the top ranks reach hub-tier degrees
    /// while most sources hold a handful of edges.
    pub fn hub_heavy(num_vertices: u32, seed: u64) -> Self {
        SourceSkewConfig {
            num_vertices,
            num_edges: num_vertices as u64 * 32,
            theta: 1.0,
            seed,
            max_weight: 64,
        }
    }

    /// Inverse CDF of the continuous Zipf approximation `p(x) ∝ x^-theta`
    /// on `[1, N]`. At `theta == 1` the CDF is `ln(x)/ln(N)` (the general
    /// formula degenerates), so that case inverts to `x = N^u`.
    #[inline]
    fn sample_rank(&self, u: f64) -> u32 {
        let n = self.num_vertices as f64;
        if self.theta.abs() < 1e-12 {
            return ((u * n) as u32).min(self.num_vertices - 1);
        }
        let x = if (self.theta - 1.0).abs() < 1e-9 {
            n.powf(u)
        } else {
            let one_minus = 1.0 - self.theta;
            (1.0 + u * (n.powf(one_minus) - 1.0)).powf(1.0 / one_minus)
        };
        ((x - 1.0) as u32).min(self.num_vertices - 1)
    }

    /// Generates the edge list: Zipf-ranked sources mapped through a seeded
    /// Fisher-Yates label shuffle (so vertex id does not correlate with
    /// degree), uniform destinations.
    pub fn generate(&self) -> Vec<Edge> {
        assert!(self.num_vertices > 1);
        assert!(self.theta >= 0.0, "theta must be non-negative");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.num_vertices;
        let mut label: Vec<u32> = (0..n).collect();
        for i in (1..n as usize).rev() {
            let j = rng.gen_range(0..=i);
            label.swap(i, j);
        }
        let mut edges = Vec::with_capacity(self.num_edges as usize);
        for _ in 0..self.num_edges {
            let src = label[self.sample_rank(rng.gen()) as usize];
            let dst = rng.gen_range(0..n);
            let weight = if self.max_weight <= 1 { 1 } else { rng.gen_range(1..=self.max_weight) };
            edges.push(Edge::new(src as VertexId, dst as VertexId, weight));
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_and_sized() {
        let cfg = PowerLawConfig::hollywood_like(1_000, 5);
        let e1 = cfg.generate();
        assert_eq!(e1.len(), 100_000);
        assert_eq!(e1, cfg.generate());
        assert!(e1.iter().all(|e| e.src < 1_000 && e.dst < 1_000));
    }

    #[test]
    fn average_degree_is_high() {
        let cfg = PowerLawConfig::hollywood_like(500, 1);
        let edges = cfg.generate();
        assert_eq!(edges.len() as f64 / 500.0, 100.0);
    }

    #[test]
    fn degree_skew_present() {
        let cfg = PowerLawConfig {
            num_vertices: 4_096,
            num_edges: 80_000,
            alpha: 0.6,
            seed: 9,
            max_weight: 1,
        };
        let mut deg: HashMap<u32, u64> = HashMap::new();
        for e in cfg.generate() {
            *deg.entry(e.src).or_default() += 1;
        }
        let mut degrees: Vec<u64> = deg.values().copied().collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = degrees.iter().sum();
        let top5pct: u64 = degrees.iter().take(degrees.len() / 20 + 1).sum();
        assert!(
            top5pct as f64 / total as f64 > 0.2,
            "top-5% owns {:.1}% — insufficient skew",
            100.0 * top5pct as f64 / total as f64
        );
    }

    #[test]
    fn source_skew_concentrates_out_degree_on_hubs() {
        let cfg = SourceSkewConfig::hub_heavy(4_096, 11);
        let edges = cfg.generate();
        assert_eq!(edges.len(), 4_096 * 32);
        assert_eq!(edges, cfg.generate(), "seeded generation must be deterministic");
        let mut deg: HashMap<u32, u64> = HashMap::new();
        for e in &edges {
            assert!(e.src < 4_096 && e.dst < 4_096);
            *deg.entry(e.src).or_default() += 1;
        }
        let mut degrees: Vec<u64> = deg.values().copied().collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = degrees.iter().sum();
        let top1pct: u64 = degrees.iter().take(degrees.len() / 100 + 1).sum();
        assert!(
            top1pct as f64 / total as f64 > 0.2,
            "top-1% of sources owns {:.1}% — not hub-heavy",
            100.0 * top1pct as f64 / total as f64
        );
        // The tail must exist too: plenty of sources at inline-tier degrees.
        let tiny = degrees.iter().filter(|&&d| d <= 4).count();
        assert!(tiny > degrees.len() / 8, "only {tiny} low-degree sources");
    }

    #[test]
    fn source_skew_theta_branches_agree_near_one() {
        // theta = 1 (log branch) and theta = 1 + eps (general branch) must
        // produce nearly identical rank distributions.
        let mk = |theta: f64| SourceSkewConfig {
            num_vertices: 1_024,
            num_edges: 50_000,
            theta,
            seed: 3,
            max_weight: 1,
        };
        let rank_mass = |cfg: SourceSkewConfig| {
            // Bypass the label shuffle by measuring via sample_rank directly.
            let mut hits = vec![0u64; 1_024];
            for i in 0..50_000u64 {
                let u = (i as f64 + 0.5) / 50_000.0;
                hits[cfg.sample_rank(u) as usize] += 1;
            }
            hits
        };
        let a = rank_mass(mk(1.0));
        let b = rank_mass(mk(1.0 + 1e-7));
        for (i, (&x, &y)) in a.iter().zip(&b).enumerate().take(64) {
            assert!((x as i64 - y as i64).abs() <= 2, "rank {i}: branch mismatch {x} vs {y}");
        }
    }

    #[test]
    fn source_skew_theta_zero_is_uniformish() {
        let cfg = SourceSkewConfig {
            num_vertices: 64,
            num_edges: 64_000,
            theta: 0.0,
            seed: 7,
            max_weight: 1,
        };
        let mut deg = vec![0u64; 64];
        for e in cfg.generate() {
            deg[e.src as usize] += 1;
        }
        for (i, &d) in deg.iter().enumerate() {
            assert!(
                (d as f64 - 1_000.0).abs() / 1_000.0 < 0.25,
                "vertex {i} degree {d} far from uniform"
            );
        }
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let cfg = PowerLawConfig {
            num_vertices: 64,
            num_edges: 64_000,
            alpha: 0.0,
            seed: 2,
            max_weight: 1,
        };
        let mut deg = vec![0u64; 64];
        for e in cfg.generate() {
            deg[e.src as usize] += 1;
        }
        let expected = 1_000.0;
        for (i, &d) in deg.iter().enumerate() {
            assert!(
                (d as f64 - expected).abs() / expected < 0.25,
                "vertex {i} degree {d} far from uniform"
            );
        }
    }
}
