//! The Graph500 RMAT (Recursive-MATrix) generator.
//!
//! RMAT places each edge by recursively descending into one of the four
//! quadrants of the adjacency matrix with probabilities `(a, b, c, d)`.
//! Graph500's reference parameters `(0.57, 0.19, 0.19, 0.05)` produce the
//! heavy-tailed, community-structured graphs the paper's synthetic datasets
//! come from — and the Kron_g500 graphs are the same Kronecker family.

use gtinker_types::{Edge, VertexId, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one RMAT generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Number of edges to emit.
    pub num_edges: u64,
    /// Quadrant probabilities; must sum to ~1.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// Lower-right quadrant probability.
    pub d: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Maximum edge weight (weights drawn uniformly from `1..=max_weight`);
    /// 1 yields unit weights.
    pub max_weight: Weight,
    /// Shuffle vertex labels so vertex id does not correlate with degree
    /// (Graph500 permutes labels too).
    pub permute_labels: bool,
}

impl RmatConfig {
    /// Graph500 reference parameters at the given scale and edge count.
    pub fn graph500(scale: u32, num_edges: u64, seed: u64) -> Self {
        RmatConfig {
            scale,
            num_edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            seed,
            max_weight: 64,
            permute_labels: true,
        }
    }

    /// Number of vertices (`2^scale`).
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Generates the edge list.
    pub fn generate(&self) -> Vec<Edge> {
        assert!(self.scale > 0 && self.scale < 32, "scale must fit VertexId");
        assert!(
            (self.a + self.b + self.c + self.d - 1.0).abs() < 1e-9,
            "quadrant probabilities must sum to 1"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.num_vertices() as u32;

        let perm: Option<Vec<u32>> = self.permute_labels.then(|| {
            let mut p: Vec<u32> = (0..n).collect();
            // Fisher-Yates.
            for i in (1..n as usize).rev() {
                let j = rng.gen_range(0..=i);
                p.swap(i, j);
            }
            p
        });

        let ab = self.a + self.b;
        let c_norm = self.c / (self.c + self.d);
        let mut edges = Vec::with_capacity(self.num_edges as usize);
        for _ in 0..self.num_edges {
            let mut src: u32 = 0;
            let mut dst: u32 = 0;
            for bit in (0..self.scale).rev() {
                let r: f64 = rng.gen();
                let (srow, scol) = if r < ab {
                    // Top half: split between a and b.
                    (0u32, if r < self.a { 0 } else { 1 })
                } else {
                    // Bottom half: split between c and d.
                    let r2: f64 = rng.gen();
                    (1u32, if r2 < c_norm { 0 } else { 1 })
                };
                src |= srow << bit;
                dst |= scol << bit;
            }
            let (src, dst) = match &perm {
                Some(p) => (p[src as usize], p[dst as usize]),
                None => (src, dst),
            };
            let weight = if self.max_weight <= 1 { 1 } else { rng.gen_range(1..=self.max_weight) };
            edges.push(Edge::new(src as VertexId, dst as VertexId, weight));
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_for_a_seed() {
        let cfg = RmatConfig::graph500(10, 5_000, 42);
        assert_eq!(cfg.generate(), cfg.generate());
        let other = RmatConfig::graph500(10, 5_000, 43);
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn respects_sizes_and_ranges() {
        let cfg = RmatConfig::graph500(8, 2_000, 1);
        let edges = cfg.generate();
        assert_eq!(edges.len(), 2_000);
        for e in &edges {
            assert!(e.src < 256 && e.dst < 256);
            assert!(e.weight >= 1 && e.weight <= 64);
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let cfg = RmatConfig { permute_labels: false, ..RmatConfig::graph500(12, 40_000, 7) };
        let edges = cfg.generate();
        let mut deg: HashMap<u32, u64> = HashMap::new();
        for e in &edges {
            *deg.entry(e.src).or_default() += 1;
        }
        let mut degrees: Vec<u64> = deg.values().copied().collect();
        degrees.sort_unstable_by(|x, y| y.cmp(x));
        let total: u64 = degrees.iter().sum();
        let top1pct: u64 = degrees.iter().take(degrees.len() / 100 + 1).sum();
        // RMAT at .57/.19/.19/.05 concentrates a large share of the edges
        // on very few sources.
        assert!(
            top1pct as f64 / total as f64 > 0.10,
            "top-1% sources own only {:.1}% of edges — not skewed",
            100.0 * top1pct as f64 / total as f64
        );
        // And far from every vertex is a source.
        assert!(deg.len() < 3_000, "{} distinct sources of 4096", deg.len());
    }

    #[test]
    fn unit_weight_option() {
        let cfg = RmatConfig { max_weight: 1, ..RmatConfig::graph500(6, 500, 3) };
        assert!(cfg.generate().iter().all(|e| e.weight == 1));
    }

    #[test]
    fn permutation_decorrelates_id_and_degree() {
        // Without permutation, low ids dominate; with it, the highest-degree
        // vertex should usually not be vertex 0.
        let base = RmatConfig { permute_labels: false, ..RmatConfig::graph500(10, 20_000, 11) };
        let permuted = RmatConfig { permute_labels: true, ..base };
        let top_src = |edges: &[Edge]| {
            let mut deg: HashMap<u32, u64> = HashMap::new();
            for e in edges {
                *deg.entry(e.src).or_default() += 1;
            }
            deg.into_iter().max_by_key(|&(_, d)| d).unwrap().0
        };
        assert_eq!(top_src(&base.generate()), 0, "unpermuted RMAT peaks at vertex 0");
        assert_ne!(top_src(&permuted.generate()), 0);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_probabilities_panic() {
        let cfg = RmatConfig { a: 0.9, ..RmatConfig::graph500(5, 10, 0) };
        cfg.generate();
    }
}
