//! Update-stream utilities: insertion batches, deletion streams, and root
//! pre-collection.
//!
//! The paper streams edges into the structures in batches of 1 M edges
//! (§V.A), deletes in 1 M-edge batches until the database is empty
//! (Fig. 14), and pre-collects the 20 highest-degree vertices of each
//! dataset as BFS roots for the update/analytics ratio sweep (Fig. 19).

use gtinker_types::{Edge, EdgeBatch, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Splits an edge list into insertion batches of `batch_size` ops (the last
/// batch may be shorter).
pub fn insertion_batches(edges: &[Edge], batch_size: usize) -> Vec<EdgeBatch> {
    assert!(batch_size > 0);
    edges.chunks(batch_size).map(EdgeBatch::inserts).collect()
}

/// Builds deletion batches covering every *distinct* `(src, dst)` pair of
/// the edge list exactly once, in a seeded shuffle (deletions arrive in an
/// order unrelated to insertion order, like the paper's experiment that
/// empties the database).
pub fn deletion_batches(edges: &[Edge], batch_size: usize, seed: u64) -> Vec<EdgeBatch> {
    assert!(batch_size > 0);
    let mut pairs: Vec<(VertexId, VertexId)> = {
        let mut seen: Vec<(VertexId, VertexId)> = edges.iter().map(|e| (e.src, e.dst)).collect();
        seen.sort_unstable();
        seen.dedup();
        seen
    };
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..pairs.len()).rev() {
        let j = rng.gen_range(0..=i);
        pairs.swap(i, j);
    }
    pairs.chunks(batch_size).map(EdgeBatch::deletes).collect()
}

/// The `k` source vertices with the highest out-degree in the edge list,
/// highest first — the paper pre-collects 20 such vertices per dataset so
/// each analytic in the Fig. 19 sweep can use a different root.
pub fn top_degree_vertices(edges: &[Edge], k: usize) -> Vec<VertexId> {
    let mut deg: HashMap<VertexId, u64> = HashMap::new();
    for e in edges {
        *deg.entry(e.src).or_default() += 1;
    }
    let mut by_degree: Vec<(VertexId, u64)> = deg.into_iter().collect();
    // Sort by degree descending, id ascending for determinism.
    by_degree.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    by_degree.into_iter().take(k).map(|(v, _)| v).collect()
}

/// Interleaves inserts with deletes of previously-inserted edges: every
/// `delete_every`-th operation deletes a seeded-random earlier edge. Degrees
/// rise and fall across the stream, so an adaptive store crosses its
/// promotion *and* demotion thresholds repeatedly — the churn workload the
/// tier-parity suite replays against a fixed-geometry store.
pub fn churn_batches(
    edges: &[Edge],
    batch_size: usize,
    delete_every: usize,
    seed: u64,
) -> Vec<EdgeBatch> {
    assert!(batch_size > 0);
    assert!(delete_every > 1, "delete_every must leave room for inserts");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batches = Vec::new();
    let mut batch = EdgeBatch::new();
    for (i, e) in edges.iter().enumerate() {
        batch.push_insert(*e);
        if (i + 1) % delete_every == 0 {
            let victim = &edges[rng.gen_range(0..=i)];
            batch.push_delete(victim.src, victim.dst);
        }
        if batch.len() >= batch_size {
            batches.push(std::mem::take(&mut batch));
        }
    }
    if !batch.is_empty() {
        batches.push(batch);
    }
    batches
}

/// Number of distinct `(src, dst)` pairs — the number of live edges a
/// structure will hold after inserting the whole list.
pub fn distinct_edge_count(edges: &[Edge]) -> u64 {
    let mut pairs: Vec<(VertexId, VertexId)> = edges.iter().map(|e| (e.src, e.dst)).collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges() -> Vec<Edge> {
        (0..250u32).map(|i| Edge::unit(i % 10, i % 25)).collect()
    }

    #[test]
    fn insertion_batches_cover_everything_in_order() {
        let e = edges();
        let batches = insertion_batches(&e, 100);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 100);
        assert_eq!(batches[2].len(), 50);
        let mut idx = 0;
        for b in &batches {
            for op in b.iter() {
                assert!(op.is_insert());
                assert_eq!(op.src(), e[idx].src);
                assert_eq!(op.dst(), e[idx].dst);
                idx += 1;
            }
        }
        assert_eq!(idx, 250);
    }

    #[test]
    fn deletion_batches_cover_each_distinct_pair_once() {
        let e = edges();
        let distinct = distinct_edge_count(&e);
        let batches = deletion_batches(&e, 17, 3);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total as u64, distinct);
        let mut pairs: Vec<(u32, u32)> =
            batches.iter().flat_map(|b| b.iter().map(|op| (op.src(), op.dst()))).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len() as u64, distinct, "a pair was deleted twice");
    }

    #[test]
    fn deletion_shuffle_is_seeded() {
        let e = edges();
        assert_eq!(deletion_batches(&e, 50, 9), deletion_batches(&e, 50, 9));
        assert_ne!(deletion_batches(&e, 50, 9), deletion_batches(&e, 50, 10));
    }

    #[test]
    fn top_degree_finds_hubs() {
        let mut e = Vec::new();
        for d in 0..50u32 {
            e.push(Edge::unit(7, d)); // hub
        }
        for d in 0..5u32 {
            e.push(Edge::unit(3, d));
        }
        e.push(Edge::unit(1, 0));
        let tops = top_degree_vertices(&e, 2);
        assert_eq!(tops, vec![7, 3]);
        assert_eq!(top_degree_vertices(&e, 10).len(), 3, "only 3 sources exist");
    }

    #[test]
    fn churn_batches_interleave_and_cover_all_inserts() {
        let e = edges();
        let batches = churn_batches(&e, 64, 4, 5);
        assert_eq!(batches, churn_batches(&e, 64, 4, 5), "must be seeded-deterministic");
        let ops: Vec<_> = batches.iter().flat_map(|b| b.iter()).collect();
        let inserts = ops.iter().filter(|op| op.is_insert()).count();
        let deletes = ops.len() - inserts;
        assert_eq!(inserts, e.len(), "every edge of the list must be inserted");
        assert_eq!(deletes, e.len() / 4);
        // Deletes only target edges inserted earlier in the stream.
        let mut seen = std::collections::HashSet::new();
        for op in &ops {
            if op.is_insert() {
                seen.insert((op.src(), op.dst()));
            } else {
                assert!(seen.contains(&(op.src(), op.dst())), "delete of a never-inserted edge");
            }
        }
    }

    #[test]
    fn distinct_count_dedups() {
        let e = vec![Edge::unit(1, 2), Edge::new(1, 2, 9), Edge::unit(2, 1)];
        assert_eq!(distinct_edge_count(&e), 2);
    }
}
