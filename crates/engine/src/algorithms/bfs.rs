//! Breadth-first search as a GAS program.

use gtinker_types::{VertexId, Weight};

use crate::gas::{GasProgram, IncrementalState};

/// BFS from a root: vertex property = hop count from the root
/// (`u32::MAX` = unreached).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bfs {
    root: VertexId,
}

impl Bfs {
    /// BFS rooted at `root`.
    pub fn new(root: VertexId) -> Self {
        Bfs { root }
    }

    /// The root vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Sentinel meaning "not reached".
    pub const UNREACHED: u32 = u32::MAX;
}

impl GasProgram for Bfs {
    type Value = u32;

    fn initial_value(&self) -> u32 {
        Self::UNREACHED
    }

    fn process_edge(&self, src_value: u32, _dst: VertexId, _weight: Weight) -> Option<u32> {
        // An unreached vertex (possible among inconsistency seeds) has
        // nothing to propagate.
        (src_value != Self::UNREACHED).then(|| src_value + 1)
    }

    fn reduce(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, old: u32, incoming: u32) -> Option<u32> {
        (incoming < old).then_some(incoming)
    }

    fn roots(&self, _vertex_space: u32) -> Vec<(VertexId, u32)> {
        vec![(self.root, 0)]
    }

    // inconsistent_vertices: default (batch sources) — per the paper, "the
    // vertices affected by the update batch comprise the source vertices of
    // the edges in the update batch" for BFS.
}

// Min-reduce is selective, so the derived witness attribution and invariant
// (`parent_level + 1 == child_level`) are exact: the witness forest is the
// BFS parent tree.
impl IncrementalState for Bfs {}

#[cfg(test)]
mod tests {
    use super::*;
    use gtinker_types::UpdateOp;

    #[test]
    fn process_edge_increments_level() {
        let b = Bfs::new(0);
        assert_eq!(b.process_edge(3, 9, 1), Some(4));
        assert_eq!(b.process_edge(Bfs::UNREACHED, 9, 1), None);
    }

    #[test]
    fn reduce_takes_min_and_apply_is_monotone() {
        let b = Bfs::new(0);
        assert_eq!(b.reduce(7, 3), 3);
        assert_eq!(b.apply(10, 4), Some(4));
        assert_eq!(b.apply(4, 10), None);
        assert_eq!(b.apply(4, 4), None, "equal level is not a change");
    }

    #[test]
    fn roots_seed_the_root_at_zero() {
        assert_eq!(Bfs::new(17).roots(100), vec![(17, 0)]);
    }

    #[test]
    fn inconsistency_unit_uses_sources() {
        let b = Bfs::new(0);
        let ops = [
            UpdateOp::Insert(gtinker_types::Edge::unit(5, 9)),
            UpdateOp::Insert(gtinker_types::Edge::unit(2, 5)),
            UpdateOp::Insert(gtinker_types::Edge::unit(5, 1)),
        ];
        assert_eq!(b.inconsistent_vertices(&ops), vec![2, 5]);
    }
}
