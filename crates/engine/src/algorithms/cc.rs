//! Weakly-connected components as a GAS program (min-label propagation).
//!
//! WCC treats edges as undirected. The edge-centric engine pushes along
//! out-edges only, so CC workloads must be *symmetrized* — insert each edge
//! in both directions (see [`crate::dynamic::symmetrize`]). This also
//! matches the paper's Set-Inconsistency unit for CC: "both the source and
//! destination vertices of the edges in the update batch".

use gtinker_types::{UpdateOp, VertexId, Weight};

use crate::gas::{GasProgram, IncrementalState};

/// Connected components: vertex property = smallest vertex id in the
/// component (label propagation to fixpoint).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cc;

impl Cc {
    /// Creates the CC program.
    pub fn new() -> Self {
        Cc
    }
}

impl GasProgram for Cc {
    type Value = u32;

    fn initial_value(&self) -> u32 {
        u32::MAX
    }

    fn default_value(&self, v: VertexId) -> u32 {
        // Every vertex is born in its own component.
        v
    }

    fn process_edge(&self, src_value: u32, _dst: VertexId, _weight: Weight) -> Option<u32> {
        Some(src_value)
    }

    fn reduce(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, old: u32, incoming: u32) -> Option<u32> {
        (incoming < old).then_some(incoming)
    }

    fn roots(&self, vertex_space: u32) -> Vec<(VertexId, u32)> {
        // Label propagation starts everywhere: every vertex is active with
        // its own label.
        (0..vertex_space).map(|v| (v, v)).collect()
    }

    fn inconsistent_vertices(&self, ops: &[UpdateOp]) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = ops.iter().flat_map(|op| [op.src(), op.dst()]).collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }
}

// Each component's label-propagation forest is anchored at its minimum-id
// vertex (the anchor witnesses itself: `NO_WITNESS`, value = own id), and
// every other member witnesses the neighbor that supplied its label, so the
// invariant is `parent_label == child_label`. Deleting a bridge severs the
// anchor-free side's witness subtree; repair resets it to own-id labels and
// re-propagates, which is exactly what lets components *split*.
impl IncrementalState for Cc {}

#[cfg(test)]
mod tests {
    use super::*;
    use gtinker_types::Edge;

    #[test]
    fn labels_propagate_min() {
        let cc = Cc::new();
        assert_eq!(cc.process_edge(4, 9, 1), Some(4));
        assert_eq!(cc.reduce(4, 2), 2);
        assert_eq!(cc.apply(4, 2), Some(2));
        assert_eq!(cc.apply(2, 4), None);
    }

    #[test]
    fn every_vertex_is_a_root_with_its_own_label() {
        let roots = Cc::new().roots(4);
        assert_eq!(roots, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn default_value_is_own_id() {
        let cc = Cc::new();
        assert_eq!(cc.default_value(17), 17);
    }

    #[test]
    fn inconsistency_unit_uses_both_endpoints() {
        let cc = Cc::new();
        let ops = [UpdateOp::Insert(Edge::unit(5, 9)), UpdateOp::Delete { src: 2, dst: 5 }];
        assert_eq!(cc.inconsistent_vertices(&ops), vec![2, 5, 9]);
    }
}
