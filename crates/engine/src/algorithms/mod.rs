//! The paper's benchmark algorithms as edge-centric GAS programs (§V.A):
//! breadth-first search, single-source shortest paths, and weakly-connected
//! components. All three are monotone min-propagations, which is what makes
//! them incrementally updatable under edge insertions — exactly the class
//! the hybrid engine targets ("algorithms such as BFS, SSSP, and CC, where
//! not all vertices need to be active in every iteration").

mod bfs;
mod cc;
mod pagerank;
mod sssp;
mod triangles;

pub use bfs::Bfs;
pub use cc::Cc;
pub use pagerank::{IncrementalPageRank, PageRank};
pub use sssp::Sssp;
pub use triangles::TriangleCount;
