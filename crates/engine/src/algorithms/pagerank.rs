//! PageRank: the counter-example the hybrid engine's applicability note
//! calls out (§IV.B) — *every* vertex is active in *every* iteration, so
//! incremental processing "is not an option" and the algorithm runs in
//! pure full-processing mode. It uses the same [`GraphStore`] streaming
//! path as the engine's FP iterations (the CAL for GraphTinker), so it
//! also serves as a standalone demonstration of the store abstraction.

use gtinker_types::VertexId;

use crate::store::GraphStore;

/// Power-iteration PageRank over any [`GraphStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRank {
    /// Damping factor (0.85 in the classic formulation).
    pub damping: f64,
    /// Number of power iterations.
    pub iterations: usize,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank { damping: 0.85, iterations: 20 }
    }
}

impl PageRank {
    /// Creates a PageRank configuration.
    pub fn new(damping: f64, iterations: usize) -> Self {
        assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
        PageRank { damping, iterations }
    }

    /// Runs power iteration; returns the rank vector (sums to 1 for a
    /// non-empty graph; dangling mass is redistributed uniformly).
    ///
    /// When the store reports more than one shard, each iteration's edge
    /// pass streams the shards on scoped worker threads into per-shard
    /// contribution vectors, merged in shard order afterwards. Floating-
    /// point addition is not associative, so the parallel ranks can differ
    /// from the sequential ones in the last few ulps (well inside the
    /// power-iteration convergence tolerance); within a fixed shard count
    /// the result is deterministic.
    pub fn run<S: GraphStore + Sync>(&self, store: &S) -> Vec<f64> {
        self.run_with_tolerance(store, None, 0.0).0
    }

    /// Power iteration with a warm start and an L1 convergence stop.
    ///
    /// Starts from `warm` when given (padded with the uniform rank for
    /// vertices born since, then renormalized to sum 1) and stops as soon
    /// as an iteration moves total rank mass by less than `tol` (L1 norm),
    /// or after [`iterations`](Self::iterations) at the latest. Returns the
    /// rank vector and the number of iterations actually run.
    ///
    /// This is what makes PageRank *incremental*: the fixpoint is a
    /// property of the graph alone, so after a small update batch the old
    /// ranks are already nearly converged and the warm-started iteration
    /// stops in a handful of rounds where a cold start pays the full
    /// budget. `tol = 0` reproduces [`run`](Self::run) exactly.
    pub fn run_with_tolerance<S: GraphStore + Sync>(
        &self,
        store: &S,
        warm: Option<&[f64]>,
        tol: f64,
    ) -> (Vec<f64>, usize) {
        let n = store.vertex_space() as usize;
        if n == 0 {
            return (Vec::new(), 0);
        }
        let num_shards = store.num_shards().max(1);
        let degrees: Vec<u32> = (0..n as u32).map(|v| store.out_degree(v)).collect();
        let mut ranks = match warm {
            Some(w) if !w.is_empty() => {
                let mut r = w.to_vec();
                r.resize(n, 1.0 / n as f64);
                let sum: f64 = r.iter().sum();
                if sum > 0.0 {
                    for x in &mut r {
                        *x /= sum;
                    }
                }
                r
            }
            _ => vec![1.0 / n as f64; n],
        };
        let mut iters_run = 0;
        let mut contrib = vec![0.0f64; n];
        // Per-shard partial contribution buffers, reused across iterations.
        let mut partials: Vec<Vec<f64>> =
            if num_shards > 1 { vec![vec![0.0f64; n]; num_shards] } else { Vec::new() };
        for _ in 0..self.iterations {
            contrib.fill(0.0);
            if num_shards > 1 {
                // Parallel full-processing phase: one worker per shard.
                let ranks_ref = &ranks[..];
                let degrees_ref = &degrees[..];
                std::thread::scope(|scope| {
                    for (shard, part) in partials.iter_mut().enumerate() {
                        scope.spawn(move || {
                            part.fill(0.0);
                            store.stream_shard_edges(shard, |src, dst, _| {
                                part[dst as usize] +=
                                    ranks_ref[src as usize] / degrees_ref[src as usize] as f64;
                            });
                        });
                    }
                });
                // Deterministic shard-order merge.
                for part in &partials {
                    for (c, p) in contrib.iter_mut().zip(part) {
                        *c += p;
                    }
                }
            } else {
                // Full-processing phase: one sequential pass over all edges.
                store.stream_edges(|src, dst, _| {
                    contrib[dst as usize] += ranks[src as usize] / degrees[src as usize] as f64;
                });
            }
            // Dangling vertices spread their rank uniformly.
            let dangling: f64 =
                (0..n).filter(|&v| degrees[v] == 0).map(|v| ranks[v]).sum::<f64>() / n as f64;
            let base = (1.0 - self.damping) / n as f64;
            let mut moved = 0.0f64;
            for v in 0..n {
                let next = base + self.damping * (contrib[v] + dangling);
                moved += (next - ranks[v]).abs();
                ranks[v] = next;
            }
            iters_run += 1;
            if moved < tol {
                break;
            }
        }
        (ranks, iters_run)
    }

    /// The `k` highest-ranked vertices, descending.
    pub fn top_k<S: GraphStore + Sync>(&self, store: &S, k: usize) -> Vec<(VertexId, f64)> {
        let ranks = self.run(store);
        let mut idx: Vec<(VertexId, f64)> =
            ranks.iter().enumerate().map(|(v, &r)| (v as u32, r)).collect();
        idx.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        idx.truncate(k);
        idx
    }
}

/// Incremental PageRank: keeps the rank vector across update batches and
/// warm-starts each re-solve from it.
///
/// PageRank has no monotone frontier to repair — every vertex is active in
/// every iteration — so the incremental leverage is *convergence*, not
/// invalidation: the old fixpoint is an excellent initial guess for the
/// new one, and the tolerance stop ends the power iteration after however
/// few rounds the batch actually perturbed. The `incremental_oracle` suite
/// compares these ranks against a cold solve *at the same tolerance*; both
/// sit within `tol` of the true fixpoint, so they agree to roughly that
/// precision.
#[derive(Debug, Clone)]
pub struct IncrementalPageRank {
    pr: PageRank,
    tol: f64,
    ranks: Vec<f64>,
}

impl IncrementalPageRank {
    /// Creates an incremental solver around `pr`, stopping each re-solve
    /// once an iteration moves less than `tol` total rank mass (L1).
    pub fn new(pr: PageRank, tol: f64) -> Self {
        assert!(tol > 0.0, "tolerance must be positive");
        IncrementalPageRank { pr, tol, ranks: Vec::new() }
    }

    /// Re-solves on the updated store, warm-starting from the previous
    /// ranks. Returns the number of power iterations the re-solve took.
    pub fn after_batch<S: GraphStore + Sync>(&mut self, store: &S) -> usize {
        let warm = (!self.ranks.is_empty()).then_some(&self.ranks[..]);
        let (ranks, iters) = self.pr.run_with_tolerance(store, warm, self.tol);
        self.ranks = ranks;
        iters
    }

    /// The current rank vector (empty before the first batch).
    pub fn ranks(&self) -> &[f64] {
        &self.ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtinker_core::GraphTinker;
    use gtinker_stinger::Stinger;
    use gtinker_types::{Edge, EdgeBatch};

    fn cycle(n: u32) -> GraphTinker {
        let mut g = GraphTinker::with_defaults();
        let edges: Vec<Edge> = (0..n).map(|i| Edge::unit(i, (i + 1) % n)).collect();
        g.apply_batch(&EdgeBatch::inserts(&edges));
        g
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = cycle(10);
        let ranks = PageRank::default().run(&g);
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn cycle_is_uniform() {
        let g = cycle(8);
        let ranks = PageRank::default().run(&g);
        for &r in &ranks {
            assert!((r - 0.125).abs() < 1e-9, "cycle must be uniform, got {ranks:?}");
        }
    }

    #[test]
    fn sink_of_a_star_ranks_highest() {
        let mut g = GraphTinker::with_defaults();
        let mut batch = EdgeBatch::new();
        for v in 1..=6u32 {
            batch.push_insert(Edge::unit(v, 0)); // everyone points at 0
        }
        g.apply_batch(&batch);
        let pr = PageRank::default();
        let top = pr.top_k(&g, 1);
        assert_eq!(top[0].0, 0);
        let ranks = pr.run(&g);
        assert!(ranks[0] > 3.0 * ranks[1]);
        assert!((ranks.iter().sum::<f64>() - 1.0).abs() < 1e-9, "dangling mass conserved");
    }

    #[test]
    fn stores_agree_on_pagerank() {
        let edges: Vec<Edge> = (0..500u32).map(|i| Edge::unit(i % 37, (i * 7) % 41)).collect();
        let batch = EdgeBatch::inserts(&edges);
        let mut gt = GraphTinker::with_defaults();
        gt.apply_batch(&batch);
        let mut st = Stinger::with_defaults();
        st.apply_batch(&batch);
        let pr = PageRank::new(0.85, 30);
        let a = pr.run(&gt);
        let b = pr.run(&st);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "stores diverged: {x} vs {y}");
        }
    }

    #[test]
    fn sharded_pagerank_matches_sequential() {
        let edges: Vec<Edge> = (0..500u32).map(|i| Edge::unit(i % 37, (i * 7) % 41)).collect();
        let batch = EdgeBatch::inserts(&edges);
        let mut seq = GraphTinker::with_defaults();
        seq.apply_batch(&batch);
        let pr = PageRank::new(0.85, 30);
        let baseline = pr.run(&seq);
        for shards in [2, 3, 4] {
            let mut g = GraphTinker::with_defaults();
            g.apply_batch(&batch);
            g.set_analytics_shards(shards);
            let ranks = pr.run(&g);
            assert_eq!(ranks.len(), baseline.len());
            for (x, y) in baseline.iter().zip(&ranks) {
                assert!((x - y).abs() < 1e-12, "shards={shards} diverged: {x} vs {y}");
            }
        }
    }

    #[test]
    fn empty_graph_yields_empty_ranks() {
        let g = GraphTinker::with_defaults();
        assert!(PageRank::default().run(&g).is_empty());
        assert!(PageRank::default().top_k(&g, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn invalid_damping_rejected() {
        PageRank::new(1.5, 10);
    }

    #[test]
    fn zero_tolerance_reproduces_run() {
        let g = cycle(9);
        let pr = PageRank::default();
        let (ranks, iters) = pr.run_with_tolerance(&g, None, 0.0);
        assert_eq!(ranks, pr.run(&g));
        assert_eq!(iters, pr.iterations);
    }

    #[test]
    fn warm_start_converges_faster_and_agrees() {
        let edges: Vec<Edge> = (0..400u32).map(|i| Edge::unit(i % 31, (i * 11) % 37)).collect();
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&EdgeBatch::inserts(&edges));
        let pr = PageRank::new(0.85, 200);
        let tol = 1e-10;
        let (cold, cold_iters) = pr.run_with_tolerance(&g, None, tol);
        // Perturb with one edge and re-solve warm vs cold.
        g.apply_batch(&EdgeBatch::inserts(&[Edge::unit(3, 5)]));
        let (cold2, cold2_iters) = pr.run_with_tolerance(&g, None, tol);
        let (warm2, warm_iters) = pr.run_with_tolerance(&g, Some(&cold), tol);
        assert!(warm_iters < cold2_iters, "warm {warm_iters} vs cold {cold2_iters}");
        for (x, y) in cold2.iter().zip(&warm2) {
            assert!((x - y).abs() < 1e-7, "warm diverged: {x} vs {y}");
        }
        assert!(cold_iters > 0);
    }

    #[test]
    fn incremental_pagerank_tracks_batches() {
        let mut g = GraphTinker::with_defaults();
        let mut inc = IncrementalPageRank::new(PageRank::new(0.85, 200), 1e-10);
        assert!(inc.ranks().is_empty());
        // Skewed graph: uniform start is far from the fixpoint.
        let b1 = EdgeBatch::inserts(
            &(0..200u32).map(|i| Edge::unit(i % 23, (i * 13) % 29)).collect::<Vec<_>>(),
        );
        g.apply_batch(&b1);
        let first = inc.after_batch(&g);
        // A later small batch re-solves in fewer iterations than the first.
        g.apply_batch(&EdgeBatch::inserts(&[Edge::unit(2, 7)]));
        let second = inc.after_batch(&g);
        assert!(second < first, "warm re-solve {second} vs cold {first}");
        let (cold, _) = PageRank::new(0.85, 200).run_with_tolerance(&g, None, 1e-10);
        for (x, y) in cold.iter().zip(inc.ranks()) {
            assert!((x - y).abs() < 1e-7);
        }
    }
}
