//! Single-source shortest paths as a GAS program.

use gtinker_types::{VertexId, Weight};

use crate::gas::{GasProgram, IncrementalState};

/// SSSP from a root over non-negative integer edge weights: vertex
/// property = shortest known distance (`u32::MAX` = unreached).
///
/// This is the asynchronous label-correcting (Bellman-Ford style)
/// formulation the edge-centric model expresses naturally: every relaxation
/// activates the improved vertex for the next iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sssp {
    root: VertexId,
}

impl Sssp {
    /// SSSP rooted at `root`.
    pub fn new(root: VertexId) -> Self {
        Sssp { root }
    }

    /// The root vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Sentinel meaning "not reached".
    pub const UNREACHED: u32 = u32::MAX;
}

impl GasProgram for Sssp {
    type Value = u32;

    fn initial_value(&self) -> u32 {
        Self::UNREACHED
    }

    fn process_edge(&self, src_value: u32, _dst: VertexId, weight: Weight) -> Option<u32> {
        if src_value == Self::UNREACHED {
            return None;
        }
        let d = src_value.saturating_add(weight);
        (d != Self::UNREACHED).then_some(d)
    }

    fn reduce(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, old: u32, incoming: u32) -> Option<u32> {
        (incoming < old).then_some(incoming)
    }

    fn roots(&self, _vertex_space: u32) -> Vec<(VertexId, u32)> {
        vec![(self.root, 0)]
    }
}

// The witness forest is the shortest-path tree; the derived invariant
// `parent_dist + weight == child_dist` is weight-sensitive, so a batch that
// *raises* a tree edge's weight fails `witness_holds` and invalidates the
// child's subtree (BFS/CC ignore weights and never do).
impl IncrementalState for Sssp {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxation_adds_weight() {
        let s = Sssp::new(0);
        assert_eq!(s.process_edge(10, 1, 5), Some(15));
        assert_eq!(s.process_edge(Sssp::UNREACHED, 1, 5), None);
    }

    #[test]
    fn saturating_distance_never_wraps() {
        let s = Sssp::new(0);
        assert_eq!(s.process_edge(u32::MAX - 1, 1, 5), None, "saturated = unreachable");
        assert_eq!(s.process_edge(u32::MAX - 10, 1, 5), Some(u32::MAX - 5));
    }

    #[test]
    fn min_plus_semantics() {
        let s = Sssp::new(0);
        assert_eq!(s.reduce(9, 4), 4);
        assert_eq!(s.apply(9, 4), Some(4));
        assert_eq!(s.apply(4, 9), None);
    }

    #[test]
    fn root_seeded_at_distance_zero() {
        assert_eq!(Sssp::new(3).roots(10), vec![(3, 0)]);
    }
}
