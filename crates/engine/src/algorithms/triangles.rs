//! Triangle counting: a point-lookup-heavy analytic that exercises the
//! stores' FIND paths (the operation GraphTinker's hashed subblocks
//! accelerate over STINGER's chain scans) rather than their streaming
//! paths. Not a GAS program — the workload is edge-existence queries, the
//! third retrieval pattern a production graph store must serve well.

use crate::store::GraphStore;

/// Undirected triangle counter over a *symmetrized* store (every edge
/// present in both directions, as produced by
/// [`crate::dynamic::symmetrize`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriangleCount;

impl TriangleCount {
    /// Creates the counter.
    pub fn new() -> Self {
        TriangleCount
    }

    /// Counts distinct undirected triangles `{u, v, w}`.
    ///
    /// Standard edge-iterator algorithm: for every edge `(u, v)` with
    /// `u < v`, walk `v`'s neighbours `w > v` and probe the store for
    /// `(u, w)` — each triangle is found exactly once at its ordered
    /// orientation, using `O(E)` stream work plus `O(Σ deg²)` point
    /// lookups.
    pub fn count<S: GraphStore>(&self, store: &S) -> u64 {
        let mut triangles = 0u64;
        store.stream_edges(|u, v, _| {
            if u < v {
                store.for_each_out_edge(v, |w, _| {
                    if w > v && store.has_edge(u, w) {
                        triangles += 1;
                    }
                });
            }
        });
        triangles
    }

    /// Per-vertex triangle participation counts (a vertex in `t` triangles
    /// gets `t`; the clustering-coefficient numerator).
    pub fn per_vertex<S: GraphStore>(&self, store: &S) -> Vec<u64> {
        let mut counts = vec![0u64; store.vertex_space() as usize];
        store.stream_edges(|u, v, _| {
            if u < v {
                store.for_each_out_edge(v, |w, _| {
                    if w > v && store.has_edge(u, w) {
                        counts[u as usize] += 1;
                        counts[v as usize] += 1;
                        counts[w as usize] += 1;
                    }
                });
            }
        });
        counts
    }

    /// Brute-force reference over an explicit vertex set (tests only;
    /// `O(n^3)` probes).
    pub fn count_reference<S: GraphStore>(&self, store: &S) -> u64 {
        let n = store.vertex_space();
        let mut triangles = 0u64;
        for u in 0..n {
            for v in (u + 1)..n {
                if !store.has_edge(u, v) {
                    continue;
                }
                for w in (v + 1)..n {
                    if store.has_edge(v, w) && store.has_edge(u, w) {
                        triangles += 1;
                    }
                }
            }
        }
        triangles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::symmetrize;
    use gtinker_core::GraphTinker;
    use gtinker_datasets::RmatConfig;
    use gtinker_stinger::Stinger;
    use gtinker_types::{Edge, EdgeBatch};

    fn sym_store(edges: &[Edge]) -> GraphTinker {
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&symmetrize(&EdgeBatch::inserts(edges)));
        g
    }

    #[test]
    fn counts_a_single_triangle() {
        let g = sym_store(&[Edge::unit(0, 1), Edge::unit(1, 2), Edge::unit(0, 2)]);
        assert_eq!(TriangleCount::new().count(&g), 1);
        assert_eq!(TriangleCount::new().per_vertex(&g), vec![1, 1, 1]);
    }

    #[test]
    fn square_without_diagonal_has_none() {
        let g =
            sym_store(&[Edge::unit(0, 1), Edge::unit(1, 2), Edge::unit(2, 3), Edge::unit(3, 0)]);
        assert_eq!(TriangleCount::new().count(&g), 0);
        // Adding one diagonal creates two triangles.
        let g2 = sym_store(&[
            Edge::unit(0, 1),
            Edge::unit(1, 2),
            Edge::unit(2, 3),
            Edge::unit(3, 0),
            Edge::unit(0, 2),
        ]);
        assert_eq!(TriangleCount::new().count(&g2), 2);
    }

    #[test]
    fn complete_graph_k5() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push(Edge::unit(u, v));
            }
        }
        let g = sym_store(&edges);
        // C(5,3) = 10 triangles; each vertex participates in C(4,2) = 6.
        assert_eq!(TriangleCount::new().count(&g), 10);
        assert_eq!(TriangleCount::new().per_vertex(&g), vec![6; 5]);
    }

    #[test]
    fn matches_reference_on_random_graph_and_across_stores() {
        let edges = RmatConfig::graph500(6, 300, 13).generate();
        let tc = TriangleCount::new();
        let gt = sym_store(&edges);
        let expected = tc.count_reference(&gt);
        assert_eq!(tc.count(&gt), expected, "GraphTinker");

        let mut st = Stinger::with_defaults();
        st.apply_batch(&symmetrize(&EdgeBatch::inserts(&edges)));
        assert_eq!(tc.count(&st), expected, "Stinger");
    }

    #[test]
    fn duplicate_edges_do_not_double_count() {
        let g = sym_store(&[
            Edge::unit(0, 1),
            Edge::new(0, 1, 7), // duplicate with new weight
            Edge::unit(1, 2),
            Edge::unit(0, 2),
        ]);
        assert_eq!(TriangleCount::new().count(&g), 1);
    }

    #[test]
    fn empty_store() {
        let g = GraphTinker::with_defaults();
        assert_eq!(TriangleCount::new().count(&g), 0);
        assert!(TriangleCount::new().per_vertex(&g).is_empty());
    }
}
