//! CSR snapshots: the classic store-and-static-compute *with
//! pre-processing* model (paper §II.B).
//!
//! Traditional dynamic-graph pipelines periodically convert the adjacency
//! structure into Compressed Sparse Row form so analytics can stream edges
//! contiguously — paying a full rebuild pass after every update interval.
//! GraphTinker's CAL exists precisely to make that pass unnecessary: it
//! maintains CSR-like streamability *online*. This module provides the
//! rebuild path so the trade-off is measurable (see the
//! `ablation_cal_vs_csr` bench target): a [`CsrSnapshot`] implements
//! [`GraphStore`], so the same engine code runs over it.

use gtinker_types::{VertexId, Weight};

use crate::store::GraphStore;

/// An immutable CSR image of a graph: `offsets[v]..offsets[v+1]` indexes
/// the out-edges of `v` in `dsts`/`weights`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrSnapshot {
    offsets: Vec<u64>,
    dsts: Vec<VertexId>,
    weights: Vec<Weight>,
    /// Logical shard count for parallel analytics streaming (balanced
    /// contiguous vertex ranges).
    analytics_shards: usize,
}

impl CsrSnapshot {
    /// Builds a snapshot from any store with a two-pass counting sort over
    /// its edge stream — the "pre-processing" cost the paper's CAL avoids.
    pub fn build<S: GraphStore>(store: &S) -> Self {
        let n = store.vertex_space() as usize;
        let mut counts = vec![0u64; n + 1];
        store.stream_edges(|src, _, _| counts[src as usize + 1] += 1);
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let m = *counts.last().unwrap_or(&0) as usize;
        let mut dsts = vec![0 as VertexId; m];
        let mut weights = vec![0 as Weight; m];
        let mut cursor = counts.clone();
        store.stream_edges(|src, dst, w| {
            let at = cursor[src as usize] as usize;
            dsts[at] = dst;
            weights[at] = w;
            cursor[src as usize] += 1;
        });
        CsrSnapshot { offsets: counts, dsts, weights, analytics_shards: 1 }
    }

    /// Builds a snapshot directly from an edge list (testing/static use).
    pub fn from_edges(edges: &[(VertexId, VertexId, Weight)], vertex_space: u32) -> Self {
        let n = vertex_space as usize;
        let mut counts = vec![0u64; n + 1];
        for &(src, _, _) in edges {
            counts[src as usize + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let m = edges.len();
        let mut dsts = vec![0 as VertexId; m];
        let mut weights = vec![0 as Weight; m];
        let mut cursor = counts.clone();
        for &(src, dst, w) in edges {
            let at = cursor[src as usize] as usize;
            dsts[at] = dst;
            weights[at] = w;
            cursor[src as usize] += 1;
        }
        CsrSnapshot { offsets: counts, dsts, weights, analytics_shards: 1 }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// The out-edges of `v` as `(dst, weight)` pairs.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let (lo, hi) = match self.offsets.get(v as usize) {
            Some(&lo) => (lo as usize, self.offsets[v as usize + 1] as usize),
            None => (0, 0),
        };
        self.dsts[lo..hi].iter().copied().zip(self.weights[lo..hi].iter().copied())
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.capacity() * 8 + (self.dsts.capacity() + self.weights.capacity()) * 4
    }

    /// Sets the logical shard count for parallel analytics streaming: the
    /// vertex range is split into balanced, contiguous intervals.
    pub fn set_analytics_shards(&mut self, n: usize) {
        assert!(n > 0, "shard count must be positive");
        self.analytics_shards = n;
    }

    fn stream_vertex_range(
        &self,
        vs: std::ops::Range<usize>,
        mut f: impl FnMut(VertexId, VertexId, Weight),
    ) {
        for v in vs.start as u32..vs.end as u32 {
            let lo = self.offsets[v as usize] as usize;
            let hi = self.offsets[v as usize + 1] as usize;
            for i in lo..hi {
                f(v, self.dsts[i], self.weights[i]);
            }
        }
    }
}

impl GraphStore for CsrSnapshot {
    fn vertex_space(&self) -> u32 {
        self.num_vertices()
    }
    fn num_edges(&self) -> u64 {
        self.dsts.len() as u64
    }
    fn out_degree(&self, v: VertexId) -> u32 {
        match self.offsets.get(v as usize) {
            Some(&lo) => (self.offsets[v as usize + 1] - lo) as u32,
            None => 0,
        }
    }
    fn for_each_out_edge(&self, v: VertexId, mut f: impl FnMut(VertexId, Weight)) {
        for (d, w) in self.out_edges(v) {
            f(d, w);
        }
    }
    fn stream_edges(&self, f: impl FnMut(VertexId, VertexId, Weight)) {
        self.stream_vertex_range(0..self.num_vertices() as usize, f);
    }
    fn num_shards(&self) -> usize {
        self.analytics_shards
    }
    fn shard_of_source(&self, v: VertexId) -> usize {
        let n = self.num_vertices() as usize;
        if self.analytics_shards == 1 || (v as usize) >= n {
            return 0;
        }
        gtinker_types::shard_of_index(v as usize, n, self.analytics_shards)
    }
    fn stream_shard_edges(&self, shard: usize, f: impl FnMut(VertexId, VertexId, Weight)) {
        let r =
            gtinker_types::shard_range(self.num_vertices() as usize, self.analytics_shards, shard);
        self.stream_vertex_range(r, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtinker_core::GraphTinker;
    use gtinker_types::{Edge, EdgeBatch};

    fn sample() -> GraphTinker {
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&EdgeBatch::inserts(&[
            Edge::new(0, 1, 5),
            Edge::new(0, 2, 7),
            Edge::new(2, 0, 1),
            Edge::new(4, 1, 9),
        ]));
        g
    }

    #[test]
    fn build_matches_store_contents() {
        let g = sample();
        let csr = CsrSnapshot::build(&g);
        assert_eq!(csr.num_vertices(), 5);
        assert_eq!(GraphStore::num_edges(&csr), 4);
        assert_eq!(csr.out_degree(0), 2);
        assert_eq!(csr.out_degree(1), 0);
        assert_eq!(csr.out_degree(4), 1);
        let mut outs: Vec<_> = csr.out_edges(0).collect();
        outs.sort_unstable();
        assert_eq!(outs, vec![(1, 5), (2, 7)]);

        let mut from_store = Vec::new();
        g.for_each_edge(|s, d, w| from_store.push((s, d, w)));
        from_store.sort_unstable();
        let mut from_csr = Vec::new();
        csr.stream_edges(|s, d, w| from_csr.push((s, d, w)));
        from_csr.sort_unstable();
        assert_eq!(from_csr, from_store);
    }

    #[test]
    fn stream_is_sorted_by_source() {
        let csr = CsrSnapshot::build(&sample());
        let mut last_src = 0;
        csr.stream_edges(|s, _, _| {
            assert!(s >= last_src, "CSR stream must be source-ordered");
            last_src = s;
        });
    }

    #[test]
    fn from_edges_equivalent_to_build() {
        let g = sample();
        let mut edges = Vec::new();
        g.for_each_edge(|s, d, w| edges.push((s, d, w)));
        let a = CsrSnapshot::build(&g);
        let mut b_edges = Vec::new();
        CsrSnapshot::from_edges(&edges, 5).stream_edges(|s, d, w| b_edges.push((s, d, w)));
        let mut a_edges = Vec::new();
        a.stream_edges(|s, d, w| a_edges.push((s, d, w)));
        a_edges.sort_unstable();
        b_edges.sort_unstable();
        assert_eq!(a_edges, b_edges);
    }

    #[test]
    fn empty_store_builds_empty_csr() {
        let g = GraphTinker::with_defaults();
        let csr = CsrSnapshot::build(&g);
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(GraphStore::num_edges(&csr), 0);
        assert_eq!(csr.out_degree(7), 0);
        assert_eq!(csr.out_edges(7).count(), 0);
    }

    #[test]
    fn engine_runs_over_csr() {
        use crate::algorithms::Bfs;
        use crate::{Engine, ModePolicy};
        let g = sample();
        let csr = CsrSnapshot::build(&g);
        let mut e = Engine::new(Bfs::new(0), ModePolicy::AlwaysFull);
        e.run_from_roots(&csr);
        assert_eq!(e.values()[1], 1);
        assert_eq!(e.values()[2], 1);
        assert_eq!(e.values()[4], u32::MAX);
    }
}
