//! Dynamic-graph processing drivers: the paper's two classic models
//! (store-and-static-compute, incremental-compute) on top of the engine,
//! the delta-driven **invalidate-and-repair** path that keeps incremental
//! mode sound under deletions, plus helpers for CC symmetrization and
//! hybrid-prediction accuracy.
//!
//! ## Invalidate-and-repair
//!
//! Monotone programs (BFS/SSSP/CC) only ever *improve* vertex properties,
//! so inserted edges are handled by re-activating the batch's inconsistency
//! vertices and running to fixpoint. A deleted edge is adverse: any vertex
//! whose committed value was derived *through* that edge is now stale, and
//! no amount of further improvement fixes a value that is too good. The
//! runner therefore tracks a **witness** per vertex (the source of the
//! message that committed its value — the BFS/SSSP parent tree, the CC
//! label-propagation forest) and, per batch:
//!
//! 1. **Tag**: every op whose target's witness edge it breaks (a deleted
//!    witness edge, or a weight update failing
//!    [`IncrementalState::witness_holds`]) marks an invalidation root.
//! 2. **Sweep**: the roots' subtrees in the witness forest are collected
//!    through the store's out-edges (`witness[child] == parent`) — the
//!    *cone* of the deletion.
//! 3. **Repair**: the cone is reset to per-vertex defaults and activated;
//!    its still-valid in-boundary (read from a lazily built transpose
//!    index) re-injects messages; the ordinary frontier machinery — mode
//!    inference, sharded processing and all — runs to fixpoint.
//!
//! Vertices outside the cone keep values justified by witness paths that
//! avoid every removed edge, so they are exact; the fixpoint over the cone
//! then equals a cold recompute on the post-batch graph (the
//! `incremental_oracle` suite holds this equality after every batch).

use std::collections::HashMap;

use gtinker_types::{Edge, EdgeBatch, UpdateOp, VertexId, Weight};

use crate::engine::{Engine, RunReport};
use crate::gas::{ExecMode, GasProgram, IncrementalState, ModePolicy};
use crate::store::GraphStore;

/// How the analysis restarts after each update batch (paper §II.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Store-and-static-compute: reset all vertex properties and re-run the
    /// algorithm from its roots, as if the updated graph were a new static
    /// graph.
    StaticRecompute,
    /// Incremental-compute: keep the previous analysis, re-activate the
    /// inconsistency vertices of the batch, and invalidate-and-repair the
    /// witness cone of any deletion (see the module docs).
    Incremental,
}

/// In-edge index mirroring the post-batch store, kept by the repair path.
///
/// Every store in the tree is push-oriented (out-edges only), but
/// re-seeding an invalidated cone needs the cone's *in*-boundary. Rather
/// than stream all edges per deletion batch, the runner maintains this
/// transpose — bootstrapped from one full edge stream on first use, then
/// updated in O(ops) per batch — and reads exactly the invalidated
/// vertices' in-edges. (The same trade differential dataflow makes when it
/// arranges a collection by both key orders.)
#[derive(Default)]
struct Transpose {
    /// `in_edges[dst]`: live in-neighbors of `dst` and their edge weights.
    in_edges: Vec<HashMap<VertexId, Weight>>,
}

impl Transpose {
    fn from_store<S: GraphStore>(store: &S) -> Self {
        let mut t = Transpose { in_edges: Vec::new() };
        t.in_edges.resize_with(store.vertex_space() as usize, HashMap::new);
        store.stream_edges(|src, dst, w| {
            t.grow(dst);
            t.in_edges[dst as usize].insert(src, w);
        });
        t
    }

    fn grow(&mut self, dst: VertexId) {
        if self.in_edges.len() <= dst as usize {
            self.in_edges.resize_with(dst as usize + 1, HashMap::new);
        }
    }

    /// Mirrors one applied batch: inserts upsert (stores update the weight
    /// in place on re-insert), deletes remove if present.
    fn apply(&mut self, ops: &[UpdateOp]) {
        for op in ops {
            match *op {
                UpdateOp::Insert(e) => {
                    self.grow(e.dst);
                    self.in_edges[e.dst as usize].insert(e.src, e.weight);
                }
                UpdateOp::Delete { src, dst } => {
                    if let Some(m) = self.in_edges.get_mut(dst as usize) {
                        m.remove(&src);
                    }
                }
            }
        }
    }

    fn in_edges_of(&self, dst: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.in_edges.get(dst as usize).into_iter().flatten().map(|(&s, &w)| (s, w))
    }
}

/// Drives one algorithm across a stream of update batches.
///
/// The caller owns the store and applies each batch to it (stores have
/// different batch APIs); the runner owns the analysis state — committed
/// values, witness parents, and the transpose index of the repair path.
pub struct DynamicRunner<P: GasProgram> {
    engine: Engine<P>,
    restart: RestartPolicy,
    /// Whether deletion batches run invalidate-and-repair (default) or the
    /// legacy counted cold-recompute fallback.
    repair: bool,
    /// In-edge mirror for boundary re-seeding; built lazily by the first
    /// repaired batch.
    transpose: Option<Transpose>,
    /// Reusable invalidation scratch: cone-membership bits and the swept
    /// cone itself (cleared after each repair).
    invalid_bits: Vec<bool>,
    cone: Vec<VertexId>,
}

impl<P: GasProgram> DynamicRunner<P> {
    /// Creates a runner. Under [`RestartPolicy::Incremental`] deletion
    /// repair is enabled by default; see [`set_repair`](Self::set_repair).
    pub fn new(program: P, mode_policy: ModePolicy, restart: RestartPolicy) -> Self {
        DynamicRunner {
            engine: Engine::new(program, mode_policy),
            restart,
            repair: true,
            transpose: None,
            invalid_bits: Vec::new(),
            cone: Vec::new(),
        }
    }

    /// Enables or disables invalidate-and-repair. With repair off, a batch
    /// containing deletions falls back to a cold recompute, counted by the
    /// `engine_delete_fallbacks` metric — the paper's original
    /// monotone-only incremental model, kept for honest A/B comparison.
    pub fn set_repair(&mut self, on: bool) {
        self.repair = on;
    }

    /// Whether deletion batches run invalidate-and-repair.
    pub fn repair_enabled(&self) -> bool {
        self.repair
    }

    /// The underlying engine (for values, policy changes, resets).
    pub fn engine(&self) -> &Engine<P> {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Engine<P> {
        &mut self.engine
    }

    /// The restart policy.
    pub fn restart(&self) -> RestartPolicy {
        self.restart
    }
}

impl<P: IncrementalState> DynamicRunner<P> {
    /// Re-runs the analysis after `batch` has been applied to `store`.
    ///
    /// `batch` must be exactly the batch the caller applied (symmetrized
    /// if the store was fed symmetrized ops): the repair path mirrors it
    /// into its in-edge index.
    pub fn after_batch<S: GraphStore + Sync>(&mut self, store: &S, batch: &EdgeBatch) -> RunReport {
        match self.restart {
            RestartPolicy::StaticRecompute => self.engine.run_from_roots(store),
            RestartPolicy::Incremental if !self.repair => {
                let has_deletes = batch.iter().any(|op| matches!(op, UpdateOp::Delete { .. }));
                if has_deletes {
                    // Monotone-only mode cannot absorb a deletion: cold
                    // recompute, counted — never silent.
                    gtinker_core::metrics::global().engine_delete_fallbacks.inc();
                    return self.engine.run_from_roots(store);
                }
                let seeds = self.engine.program().inconsistent_vertices(batch.ops());
                self.engine.run_incremental(store, &seeds)
            }
            RestartPolicy::Incremental => self.repair_and_continue(store, batch),
        }
    }

    /// The delta-driven path: mirror the batch into the transpose, sweep
    /// the invalidated witness cone, re-seed it from its valid boundary,
    /// and continue the ordinary frontier machinery to fixpoint.
    fn repair_and_continue<S: GraphStore + Sync>(
        &mut self,
        store: &S,
        batch: &EdgeBatch,
    ) -> RunReport {
        self.engine.set_witness_tracking(true);
        self.engine.ensure_capacity(store.vertex_space());
        match self.transpose.as_mut() {
            // `from_store` runs after the batch applied, so the bootstrap
            // already reflects it; only later batches need mirroring.
            Some(t) => t.apply(batch.ops()),
            None => self.transpose = Some(Transpose::from_store(store)),
        }
        self.sweep_cone(store, batch);
        let m = gtinker_core::metrics::global();
        m.engine_repair_invalidated.add(self.cone.len() as u64);
        let span =
            gtinker_core::trace::span_arg(gtinker_core::SpanId::Repair, self.cone.len() as u64);
        // Reset the cone to per-vertex defaults and activate it, then
        // re-inject every still-valid in-boundary edge's message.
        if !self.cone.is_empty() {
            self.engine.invalidate(&self.cone);
            let transpose = self.transpose.as_ref().expect("transpose built above");
            for i in 0..self.cone.len() {
                let d = self.cone[i];
                for (s, w) in transpose.in_edges_of(d) {
                    let si = s as usize;
                    if self.invalid_bits.get(si).copied().unwrap_or(false) {
                        continue; // in-cone neighbors repair through the run itself
                    }
                    let Some(&sv) = self.engine.values().get(si) else { continue };
                    if let Some(msg) = self.engine.program().process_edge(sv, d, w) {
                        self.engine.inject_message(s, d, msg);
                    }
                }
            }
            for &v in &self.cone {
                self.invalid_bits[v as usize] = false;
            }
        }
        // Inserted edges become *messages*, not frontier seeds: the source's
        // committed value already reached all its pre-existing out-edges at
        // the previous fixpoint, so re-activating it (the monotone path's
        // `inconsistent_vertices` seeding) would rescan its whole out-edge
        // list for one new edge. Depositing `process_edge(values[src])`
        // directly costs O(1) per op, and only destinations the batch
        // actually improves enter the frontier.
        let transpose = self.transpose.as_ref().expect("transpose built above");
        for op in batch.iter() {
            let UpdateOp::Insert(e) = *op else { continue };
            // A later op in the same batch may have deleted or re-weighted
            // this edge; the transpose mirrors the post-batch store, so
            // inject only edges still live, at their final weight.
            let live = transpose.in_edges.get(e.dst as usize).and_then(|m| m.get(&e.src));
            let Some(&w) = live else { continue };
            let Some(&sv) = self.engine.values().get(e.src as usize) else { continue };
            if let Some(msg) = self.engine.program().process_edge(sv, e.dst, w) {
                self.engine.inject_message(e.src, e.dst, msg);
            }
        }
        let report = self.engine.run_incremental(store, &[]);
        m.engine_repair_iters.add(report.iterations.len() as u64);
        drop(span);
        report
    }

    /// Tag-and-sweep over the witness forest: collects into `self.cone`
    /// (bits in `self.invalid_bits`) every vertex whose committed value's
    /// witness path uses an edge this batch removed or weight-broke.
    fn sweep_cone<S: GraphStore>(&mut self, store: &S, batch: &EdgeBatch) {
        self.cone.clear();
        let witness = self.engine.witness();
        if witness.is_empty() {
            return; // nothing committed yet (first repaired batch)
        }
        let values = self.engine.values();
        let program = self.engine.program();
        if self.invalid_bits.len() < witness.len() {
            self.invalid_bits.resize(witness.len(), false);
        }
        let bits = &mut self.invalid_bits;
        let cone = &mut self.cone;
        // Roots: ops that break their target's witness invariant.
        for op in batch.iter() {
            let (u, v, new_weight) = match *op {
                UpdateOp::Delete { src, dst } => (src, dst, None),
                UpdateOp::Insert(e) => (e.src, e.dst, Some(e.weight)),
            };
            let vi = v as usize;
            if vi >= witness.len() || witness[vi] != u || bits[vi] {
                continue;
            }
            let broken = match new_weight {
                // The witness edge is gone outright.
                None => true,
                // Re-inserted (weight-updated) witness edge: broken only
                // if the invariant fails (an SSSP weight raise).
                Some(w) => !values
                    .get(u as usize)
                    .is_some_and(|&pv| program.witness_holds(pv, v, values[vi], w)),
            };
            if broken {
                bits[vi] = true;
                cone.push(v);
            }
        }
        // Sweep the roots' witness-forest subtrees. Every non-root child's
        // witness edge is still live in the store (an op that broke it
        // would have made the child a root above), so the parent's
        // out-edges reach all its witness children.
        let mut i = 0;
        while i < cone.len() {
            let p = cone[i];
            i += 1;
            store.for_each_out_edge(p, |c, _| {
                let ci = c as usize;
                if ci < witness.len() && witness[ci] == p && !bits[ci] {
                    bits[ci] = true;
                    cone.push(c);
                }
            });
        }
    }
}

/// Duplicates every operation in both directions — required for CC (weak
/// connectivity over a push-style engine) and harmless for any algorithm
/// that wants undirected semantics.
pub fn symmetrize(batch: &EdgeBatch) -> EdgeBatch {
    let mut out = EdgeBatch::with_capacity(batch.len() * 2);
    for op in batch.iter() {
        match *op {
            UpdateOp::Insert(e) => {
                out.push_insert(e);
                out.push_insert(Edge::new(e.dst, e.src, e.weight));
            }
            UpdateOp::Delete { src, dst } => {
                out.push_delete(src, dst);
                out.push_delete(dst, src);
            }
        }
    }
    out
}

/// Fraction of iterations where the hybrid inference box picked the mode a
/// cost oracle would have picked.
///
/// The oracle models FP cost as `store_edges / seq_advantage` (sequential
/// streaming is cheaper per edge) and IP cost as `active_degree` (random
/// accesses). `seq_advantage` is the measured sequential-vs-random
/// throughput ratio of the host; the paper's separate experiments put the
/// crossover at `A/E = 0.02`, i.e. a ratio of ~50 on their Xeon.
pub fn prediction_accuracy(report: &RunReport, seq_advantage: f64) -> f64 {
    if report.iterations.is_empty() {
        return 1.0;
    }
    let correct = report
        .iterations
        .iter()
        .filter(|it| {
            let fp_cost = it.store_edges as f64 / seq_advantage;
            let ip_cost = it.active_degree as f64;
            let oracle = if fp_cost < ip_cost { ExecMode::Full } else { ExecMode::Incremental };
            it.mode == oracle
        })
        .count();
    correct as f64 / report.iterations.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Bfs, Cc};
    use gtinker_core::GraphTinker;
    use gtinker_types::Edge;

    #[test]
    fn symmetrize_doubles_ops_in_both_directions() {
        let mut b = EdgeBatch::new();
        b.push_insert(Edge::new(1, 2, 7));
        b.push_delete(3, 4);
        let s = symmetrize(&b);
        let ops: Vec<_> = s.iter().copied().collect();
        assert_eq!(
            ops,
            vec![
                UpdateOp::Insert(Edge::new(1, 2, 7)),
                UpdateOp::Insert(Edge::new(2, 1, 7)),
                UpdateOp::Delete { src: 3, dst: 4 },
                UpdateOp::Delete { src: 4, dst: 3 },
            ]
        );
    }

    #[test]
    fn incremental_and_static_runners_agree_on_bfs() {
        let batches = vec![
            EdgeBatch::inserts(&[Edge::unit(0, 1), Edge::unit(1, 2)]),
            EdgeBatch::inserts(&[Edge::unit(2, 3), Edge::unit(0, 3)]),
            EdgeBatch::inserts(&[Edge::unit(3, 4)]),
        ];
        let mut g_inc = GraphTinker::with_defaults();
        let mut g_st = GraphTinker::with_defaults();
        let mut inc =
            DynamicRunner::new(Bfs::new(0), ModePolicy::hybrid(), RestartPolicy::Incremental);
        let mut st =
            DynamicRunner::new(Bfs::new(0), ModePolicy::hybrid(), RestartPolicy::StaticRecompute);
        for b in &batches {
            g_inc.apply_batch(b);
            g_st.apply_batch(b);
            inc.after_batch(&g_inc, b);
            st.after_batch(&g_st, b);
            assert_eq!(inc.engine().values(), st.engine().values());
        }
        assert_eq!(inc.engine().values()[4], 2, "0->3->4");
    }

    #[test]
    fn incremental_cc_merges_components_across_batches() {
        let mut g = GraphTinker::with_defaults();
        let mut runner =
            DynamicRunner::new(Cc::new(), ModePolicy::hybrid(), RestartPolicy::Incremental);
        let b1 = symmetrize(&EdgeBatch::inserts(&[Edge::unit(0, 1), Edge::unit(2, 3)]));
        g.apply_batch(&b1);
        runner.after_batch(&g, &b1);
        assert_eq!(runner.engine().values()[1], 0);
        assert_eq!(runner.engine().values()[3], 2);

        // Bridge the two components.
        let b2 = symmetrize(&EdgeBatch::inserts(&[Edge::unit(1, 2)]));
        g.apply_batch(&b2);
        runner.after_batch(&g, &b2);
        assert_eq!(runner.engine().values()[2], 0, "components must merge");
        assert_eq!(runner.engine().values()[3], 0);
    }

    #[test]
    fn accuracy_is_one_when_oracle_agrees() {
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&EdgeBatch::inserts(&[Edge::unit(0, 1)]));
        let mut e = Engine::new(Bfs::new(0), ModePolicy::AlwaysIncremental);
        let r = e.run_from_roots(&g);
        // Tiny graph: IP is always the oracle's pick at seq_advantage 1.
        assert_eq!(prediction_accuracy(&r, 1.0), 1.0);
        assert_eq!(prediction_accuracy(&RunReport::default(), 4.0), 1.0);
    }

    /// A synthetic iteration record for exercising the cost oracle.
    fn iteration(mode: ExecMode, active_degree: u64, store_edges: u64) -> crate::IterationStats {
        crate::IterationStats {
            mode,
            active_vertices: 1,
            active_degree,
            store_edges,
            edges_processed: 0,
            messages: 0,
            duration: std::time::Duration::ZERO,
            process_time: std::time::Duration::ZERO,
            apply_time: std::time::Duration::ZERO,
            shard_times: Vec::new(),
        }
    }

    fn report_of(iters: Vec<crate::IterationStats>) -> RunReport {
        RunReport { iterations: iters, ..RunReport::default() }
    }

    #[test]
    fn oracle_prefers_ip_for_small_frontiers() {
        // fp_cost = 10_000 / 50 = 200; a frontier touching 40 edges is far
        // cheaper to random-access: the oracle's pick is IP.
        let right = report_of(vec![iteration(ExecMode::Incremental, 40, 10_000)]);
        assert_eq!(prediction_accuracy(&right, 50.0), 1.0);
        let wrong = report_of(vec![iteration(ExecMode::Full, 40, 10_000)]);
        assert_eq!(prediction_accuracy(&wrong, 50.0), 0.0);
    }

    #[test]
    fn oracle_prefers_fp_for_large_frontiers() {
        // fp_cost = 200 < active_degree 5_000: streaming wins; FP correct.
        let right = report_of(vec![iteration(ExecMode::Full, 5_000, 10_000)]);
        assert_eq!(prediction_accuracy(&right, 50.0), 1.0);
        let wrong = report_of(vec![iteration(ExecMode::Incremental, 5_000, 10_000)]);
        assert_eq!(prediction_accuracy(&wrong, 50.0), 0.0);
    }

    #[test]
    fn oracle_crossover_is_fp_cost_vs_ip_cost() {
        // Exactly at the crossover (fp_cost == ip_cost == 200) the oracle
        // keeps IP: FP must be strictly cheaper to win.
        let at = report_of(vec![iteration(ExecMode::Incremental, 200, 10_000)]);
        assert_eq!(prediction_accuracy(&at, 50.0), 1.0);
        // Just past it (degree 201 > 200) the oracle flips to FP.
        let past = report_of(vec![iteration(ExecMode::Full, 201, 10_000)]);
        assert_eq!(prediction_accuracy(&past, 50.0), 1.0);
        // Mixed report: one right, one wrong -> 0.5.
        let mixed = report_of(vec![
            iteration(ExecMode::Incremental, 40, 10_000),
            iteration(ExecMode::Incremental, 5_000, 10_000),
        ]);
        assert_eq!(prediction_accuracy(&mixed, 50.0), 0.5);
    }

    #[test]
    fn seq_advantage_moves_the_crossover() {
        // The same frontier (degree 1_000 on 10_000 edges) is an FP pick on
        // a host where streaming is 50x cheaper, and an IP pick where it is
        // only 5x cheaper (fp_cost 2_000 > 1_000).
        let fast_stream = report_of(vec![iteration(ExecMode::Full, 1_000, 10_000)]);
        assert_eq!(prediction_accuracy(&fast_stream, 50.0), 1.0);
        let slow_stream = report_of(vec![iteration(ExecMode::Incremental, 1_000, 10_000)]);
        assert_eq!(prediction_accuracy(&slow_stream, 5.0), 1.0);
    }

    // ---- invalidate-and-repair ------------------------------------------

    use crate::algorithms::Sssp;
    use crate::engine::NO_WITNESS;

    fn cold<PZ: GasProgram + Copy>(program: PZ, g: &GraphTinker) -> Vec<PZ::Value> {
        let mut e = Engine::new(program, ModePolicy::hybrid());
        e.run_from_roots(g);
        e.values().to_vec()
    }

    #[test]
    fn deleting_a_bfs_tree_edge_repairs_through_the_detour() {
        // 0 -> 1 -> 2 -> 3 with a long detour 0 -> 4 -> 5 -> 2.
        let b1 = EdgeBatch::inserts(&[
            Edge::unit(0, 1),
            Edge::unit(1, 2),
            Edge::unit(2, 3),
            Edge::unit(0, 4),
            Edge::unit(4, 5),
            Edge::unit(5, 2),
        ]);
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&b1);
        let mut r =
            DynamicRunner::new(Bfs::new(0), ModePolicy::hybrid(), RestartPolicy::Incremental);
        r.after_batch(&g, &b1);
        assert_eq!(r.engine().values()[2], 2);
        assert_eq!(r.engine().values()[3], 3);

        let mut b2 = EdgeBatch::new();
        b2.push_delete(1, 2);
        g.apply_batch(&b2);
        r.after_batch(&g, &b2);
        assert_eq!(r.engine().values().to_vec(), cold(Bfs::new(0), &g));
        assert_eq!(r.engine().values()[2], 3, "repaired through the detour");
        assert_eq!(r.engine().values()[3], 4);
    }

    #[test]
    fn deleting_the_sole_path_unreaches_the_subtree() {
        let b1 = EdgeBatch::inserts(&[Edge::unit(0, 1), Edge::unit(1, 2), Edge::unit(2, 3)]);
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&b1);
        let mut r =
            DynamicRunner::new(Bfs::new(0), ModePolicy::hybrid(), RestartPolicy::Incremental);
        r.after_batch(&g, &b1);

        let mut b2 = EdgeBatch::new();
        b2.push_delete(0, 1);
        g.apply_batch(&b2);
        r.after_batch(&g, &b2);
        assert_eq!(r.engine().values().to_vec(), cold(Bfs::new(0), &g));
        assert_eq!(r.engine().values()[1], Bfs::UNREACHED);
        assert_eq!(r.engine().values()[3], Bfs::UNREACHED);
    }

    #[test]
    fn delete_then_reinsert_in_one_batch_is_a_no_op() {
        let b1 = EdgeBatch::inserts(&[Edge::unit(0, 1), Edge::unit(1, 2)]);
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&b1);
        let mut r =
            DynamicRunner::new(Bfs::new(0), ModePolicy::hybrid(), RestartPolicy::Incremental);
        r.after_batch(&g, &b1);

        let mut b2 = EdgeBatch::new();
        b2.push_delete(0, 1);
        b2.push_insert(Edge::unit(0, 1));
        g.apply_batch(&b2);
        r.after_batch(&g, &b2);
        assert_eq!(r.engine().values().to_vec(), cold(Bfs::new(0), &g));
        assert_eq!(r.engine().values()[2], 2);
    }

    #[test]
    fn cc_bridge_deletion_splits_the_component() {
        // 0-1-2 === 3-4-5 joined by the bridge 2-3.
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5)];
        let mut b1 = EdgeBatch::new();
        for &(a, b) in &edges {
            b1.push_insert(Edge::unit(a, b));
        }
        let b1 = symmetrize(&b1);
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&b1);
        let mut r = DynamicRunner::new(Cc::new(), ModePolicy::hybrid(), RestartPolicy::Incremental);
        r.after_batch(&g, &b1);
        assert_eq!(r.engine().values()[5], 0, "one component before the cut");

        let mut b2 = EdgeBatch::new();
        b2.push_delete(2, 3);
        let b2 = symmetrize(&b2);
        g.apply_batch(&b2);
        r.after_batch(&g, &b2);
        assert_eq!(r.engine().values().to_vec(), cold(Cc::new(), &g));
        assert_eq!(r.engine().values()[2], 0);
        assert_eq!(r.engine().values()[3], 3, "anchor-free side re-labels");
        assert_eq!(r.engine().values()[5], 3);
    }

    #[test]
    fn sssp_weight_raise_breaks_the_witness_and_repairs() {
        // 0 -(1)-> 1 -(1)-> 2 and a direct 0 -(5)-> 2: tree goes via 1.
        let b1 = EdgeBatch::inserts(&[Edge::new(0, 1, 1), Edge::new(1, 2, 1), Edge::new(0, 2, 5)]);
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&b1);
        let mut r =
            DynamicRunner::new(Sssp::new(0), ModePolicy::hybrid(), RestartPolicy::Incremental);
        r.after_batch(&g, &b1);
        assert_eq!(r.engine().values()[2], 2);

        // Raise the witness edge 1->2 to weight 9: the direct edge wins now.
        let b2 = EdgeBatch::inserts(&[Edge::new(1, 2, 9)]);
        g.apply_batch(&b2);
        r.after_batch(&g, &b2);
        assert_eq!(r.engine().values().to_vec(), cold(Sssp::new(0), &g));
        assert_eq!(r.engine().values()[2], 5, "must abandon the raised path");
    }

    #[test]
    fn witness_parents_satisfy_the_invariant() {
        let b1 = EdgeBatch::inserts(&[
            Edge::unit(0, 1),
            Edge::unit(0, 2),
            Edge::unit(1, 3),
            Edge::unit(2, 3),
            Edge::unit(3, 4),
        ]);
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&b1);
        let mut r =
            DynamicRunner::new(Bfs::new(0), ModePolicy::hybrid(), RestartPolicy::Incremental);
        r.after_batch(&g, &b1);
        let mut b2 = EdgeBatch::new();
        b2.push_delete(1, 3);
        g.apply_batch(&b2);
        r.after_batch(&g, &b2);
        let values = r.engine().values();
        let witness = r.engine().witness();
        for v in 0..values.len() {
            let w = witness[v];
            if w == NO_WITNESS {
                assert!(
                    v == 0 || values[v] == Bfs::UNREACHED,
                    "witness-less vertex {v} must be the root or unreached"
                );
            } else {
                assert!(g.has_edge(w, v as u32), "witness edge {w}->{v} must be live");
                assert_eq!(values[w as usize] + 1, values[v], "invariant at {v}");
            }
        }
    }

    #[test]
    fn repair_disabled_falls_back_cold_and_counts() {
        let b1 = EdgeBatch::inserts(&[Edge::unit(0, 1), Edge::unit(1, 2)]);
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&b1);
        let mut r =
            DynamicRunner::new(Bfs::new(0), ModePolicy::hybrid(), RestartPolicy::Incremental);
        r.set_repair(false);
        assert!(!r.repair_enabled());
        r.after_batch(&g, &b1);

        let before = gtinker_core::metrics::global().engine_delete_fallbacks.get();
        let mut b2 = EdgeBatch::new();
        b2.push_delete(1, 2);
        g.apply_batch(&b2);
        r.after_batch(&g, &b2);
        let after = gtinker_core::metrics::global().engine_delete_fallbacks.get();
        assert!(after > before, "fallback must be counted, not silent");
        assert_eq!(r.engine().values().to_vec(), cold(Bfs::new(0), &g));
        assert_eq!(r.engine().values()[2], Bfs::UNREACHED);
    }

    #[test]
    fn repair_counters_and_cone_sizes_accumulate() {
        let b1 = EdgeBatch::inserts(&[Edge::unit(0, 1), Edge::unit(1, 2), Edge::unit(2, 3)]);
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&b1);
        let mut r =
            DynamicRunner::new(Bfs::new(0), ModePolicy::hybrid(), RestartPolicy::Incremental);
        r.after_batch(&g, &b1);
        let m = gtinker_core::metrics::global();
        let (inv0, it0) = (m.engine_repair_invalidated.get(), m.engine_repair_iters.get());
        let mut b2 = EdgeBatch::new();
        b2.push_delete(1, 2); // invalidates {2, 3}
        g.apply_batch(&b2);
        r.after_batch(&g, &b2);
        assert!(m.engine_repair_invalidated.get() >= inv0 + 2, "cone of 2 counted");
        assert!(m.engine_repair_iters.get() > it0);
    }
}
