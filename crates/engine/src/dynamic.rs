//! Dynamic-graph processing drivers: the paper's two classic models
//! (store-and-static-compute, incremental-compute) on top of the engine,
//! plus helpers for CC symmetrization and hybrid-prediction accuracy.

use gtinker_types::{Edge, EdgeBatch, UpdateOp};

use crate::engine::{Engine, RunReport};
use crate::gas::{ExecMode, GasProgram, ModePolicy};
use crate::store::GraphStore;

/// How the analysis restarts after each update batch (paper §II.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Store-and-static-compute: reset all vertex properties and re-run the
    /// algorithm from its roots, as if the updated graph were a new static
    /// graph.
    StaticRecompute,
    /// Incremental-compute: keep the previous analysis and re-activate only
    /// the inconsistency vertices of the batch.
    Incremental,
}

/// Drives one algorithm across a stream of update batches.
///
/// The caller owns the store and applies each batch to it (stores have
/// different batch APIs); the runner owns the analysis state.
pub struct DynamicRunner<P: GasProgram> {
    engine: Engine<P>,
    restart: RestartPolicy,
}

impl<P: GasProgram> DynamicRunner<P> {
    /// Creates a runner.
    pub fn new(program: P, mode_policy: ModePolicy, restart: RestartPolicy) -> Self {
        DynamicRunner { engine: Engine::new(program, mode_policy), restart }
    }

    /// Re-runs the analysis after `batch` has been applied to `store`.
    pub fn after_batch<S: GraphStore + Sync>(&mut self, store: &S, batch: &EdgeBatch) -> RunReport {
        match self.restart {
            RestartPolicy::StaticRecompute => self.engine.run_from_roots(store),
            RestartPolicy::Incremental => {
                let seeds = self.engine.program().inconsistent_vertices(batch.ops());
                self.engine.run_incremental(store, &seeds)
            }
        }
    }

    /// The underlying engine (for values, policy changes, resets).
    pub fn engine(&self) -> &Engine<P> {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Engine<P> {
        &mut self.engine
    }

    /// The restart policy.
    pub fn restart(&self) -> RestartPolicy {
        self.restart
    }
}

/// Duplicates every operation in both directions — required for CC (weak
/// connectivity over a push-style engine) and harmless for any algorithm
/// that wants undirected semantics.
pub fn symmetrize(batch: &EdgeBatch) -> EdgeBatch {
    let mut out = EdgeBatch::with_capacity(batch.len() * 2);
    for op in batch.iter() {
        match *op {
            UpdateOp::Insert(e) => {
                out.push_insert(e);
                out.push_insert(Edge::new(e.dst, e.src, e.weight));
            }
            UpdateOp::Delete { src, dst } => {
                out.push_delete(src, dst);
                out.push_delete(dst, src);
            }
        }
    }
    out
}

/// Fraction of iterations where the hybrid inference box picked the mode a
/// cost oracle would have picked.
///
/// The oracle models FP cost as `store_edges / seq_advantage` (sequential
/// streaming is cheaper per edge) and IP cost as `active_degree` (random
/// accesses). `seq_advantage` is the measured sequential-vs-random
/// throughput ratio of the host; the paper's separate experiments put the
/// crossover at `A/E = 0.02`, i.e. a ratio of ~50 on their Xeon.
pub fn prediction_accuracy(report: &RunReport, seq_advantage: f64) -> f64 {
    if report.iterations.is_empty() {
        return 1.0;
    }
    let correct = report
        .iterations
        .iter()
        .filter(|it| {
            let fp_cost = it.store_edges as f64 / seq_advantage;
            let ip_cost = it.active_degree as f64;
            let oracle = if fp_cost < ip_cost { ExecMode::Full } else { ExecMode::Incremental };
            it.mode == oracle
        })
        .count();
    correct as f64 / report.iterations.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Bfs, Cc};
    use gtinker_core::GraphTinker;
    use gtinker_types::Edge;

    #[test]
    fn symmetrize_doubles_ops_in_both_directions() {
        let mut b = EdgeBatch::new();
        b.push_insert(Edge::new(1, 2, 7));
        b.push_delete(3, 4);
        let s = symmetrize(&b);
        let ops: Vec<_> = s.iter().copied().collect();
        assert_eq!(
            ops,
            vec![
                UpdateOp::Insert(Edge::new(1, 2, 7)),
                UpdateOp::Insert(Edge::new(2, 1, 7)),
                UpdateOp::Delete { src: 3, dst: 4 },
                UpdateOp::Delete { src: 4, dst: 3 },
            ]
        );
    }

    #[test]
    fn incremental_and_static_runners_agree_on_bfs() {
        let batches = vec![
            EdgeBatch::inserts(&[Edge::unit(0, 1), Edge::unit(1, 2)]),
            EdgeBatch::inserts(&[Edge::unit(2, 3), Edge::unit(0, 3)]),
            EdgeBatch::inserts(&[Edge::unit(3, 4)]),
        ];
        let mut g_inc = GraphTinker::with_defaults();
        let mut g_st = GraphTinker::with_defaults();
        let mut inc =
            DynamicRunner::new(Bfs::new(0), ModePolicy::hybrid(), RestartPolicy::Incremental);
        let mut st =
            DynamicRunner::new(Bfs::new(0), ModePolicy::hybrid(), RestartPolicy::StaticRecompute);
        for b in &batches {
            g_inc.apply_batch(b);
            g_st.apply_batch(b);
            inc.after_batch(&g_inc, b);
            st.after_batch(&g_st, b);
            assert_eq!(inc.engine().values(), st.engine().values());
        }
        assert_eq!(inc.engine().values()[4], 2, "0->3->4");
    }

    #[test]
    fn incremental_cc_merges_components_across_batches() {
        let mut g = GraphTinker::with_defaults();
        let mut runner =
            DynamicRunner::new(Cc::new(), ModePolicy::hybrid(), RestartPolicy::Incremental);
        let b1 = symmetrize(&EdgeBatch::inserts(&[Edge::unit(0, 1), Edge::unit(2, 3)]));
        g.apply_batch(&b1);
        runner.after_batch(&g, &b1);
        assert_eq!(runner.engine().values()[1], 0);
        assert_eq!(runner.engine().values()[3], 2);

        // Bridge the two components.
        let b2 = symmetrize(&EdgeBatch::inserts(&[Edge::unit(1, 2)]));
        g.apply_batch(&b2);
        runner.after_batch(&g, &b2);
        assert_eq!(runner.engine().values()[2], 0, "components must merge");
        assert_eq!(runner.engine().values()[3], 0);
    }

    #[test]
    fn accuracy_is_one_when_oracle_agrees() {
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&EdgeBatch::inserts(&[Edge::unit(0, 1)]));
        let mut e = Engine::new(Bfs::new(0), ModePolicy::AlwaysIncremental);
        let r = e.run_from_roots(&g);
        // Tiny graph: IP is always the oracle's pick at seq_advantage 1.
        assert_eq!(prediction_accuracy(&r, 1.0), 1.0);
        assert_eq!(prediction_accuracy(&RunReport::default(), 4.0), 1.0);
    }
}
