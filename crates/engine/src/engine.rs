//! The iteration loop: processing phase, apply phase, and the per-iteration
//! mode decision.

use std::time::{Duration, Instant};

use gtinker_types::VertexId;
use serde::{Deserialize, Serialize};

use crate::gas::{ExecMode, GasProgram, ModePolicy};
use crate::store::GraphStore;

/// Witness sentinel: the vertex's committed value has no witness parent —
/// it is a program root, a per-vertex default, or witness tracking was off
/// when it was committed.
pub const NO_WITNESS: VertexId = VertexId::MAX;

/// Record of one engine iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationStats {
    /// Mode the inference box (or fixed policy) chose.
    pub mode: ExecMode,
    /// Active vertices processed this iteration (the formula's `A`).
    pub active_vertices: usize,
    /// Sum of the active vertices' out-degrees (what IP mode would touch).
    /// Computed only when the policy consumes it (degree-aware); recorded
    /// as 0 otherwise to keep forced-mode iterations scan-free.
    pub active_degree: u64,
    /// Edges loaded in the store at decision time (the formula's `E`;
    /// what FP mode streams).
    pub store_edges: u64,
    /// Edges actually visited by the processing phase.
    pub edges_processed: u64,
    /// Messages deposited into the VTempProperty array.
    pub messages: u64,
    /// Wall-clock duration of the iteration.
    pub duration: Duration,
    /// Wall-clock duration of the processing (gather/scatter) phase.
    pub process_time: Duration,
    /// Wall-clock duration of the apply phase.
    pub apply_time: Duration,
    /// Processing-phase wall-clock per shard worker, in shard order.
    /// Empty when the iteration ran on the single-shard sequential path.
    pub shard_times: Vec<Duration>,
}

/// Summary of one run to fixpoint.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Per-iteration records, in order.
    pub iterations: Vec<IterationStats>,
    /// Total edges visited across all processing phases.
    pub total_edges_processed: u64,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
}

impl RunReport {
    /// Number of iterations executed.
    pub fn num_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// How many iterations ran in each mode, as `(full, incremental)`.
    pub fn mode_counts(&self) -> (usize, usize) {
        let full = self.iterations.iter().filter(|i| i.mode == ExecMode::Full).count();
        (full, self.iterations.len() - full)
    }

    /// Total processing-phase time spent in each shard across all parallel
    /// iterations, in shard order (longest vector over the run). Empty for
    /// fully sequential runs — the load-imbalance view of a parallel run.
    pub fn shard_time_totals(&self) -> Vec<Duration> {
        let mut totals: Vec<Duration> = Vec::new();
        for it in &self.iterations {
            if it.shard_times.len() > totals.len() {
                totals.resize(it.shard_times.len(), Duration::ZERO);
            }
            for (t, &d) in totals.iter_mut().zip(&it.shard_times) {
                *t += d;
            }
        }
        totals
    }

    /// Processing throughput in edges per second (edges visited / elapsed).
    pub fn throughput_eps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.total_edges_processed as f64 / secs
        }
    }

    /// Merges another report into this one (multi-run accumulation).
    pub fn merge(&mut self, other: &RunReport) {
        self.iterations.extend_from_slice(&other.iterations);
        self.total_edges_processed += other.total_edges_processed;
        self.elapsed += other.elapsed;
    }
}

/// Reusable per-shard scratch for the parallel processing phase: a
/// thread-local VTempProperty accumulator with its touched list, the
/// shard's slice of the active frontier, and the counters the merge step
/// folds back into the iteration stats. Kept on the engine so steady-state
/// parallel iterations allocate nothing.
struct WorkerScratch<V> {
    temp: Vec<Option<V>>,
    /// Witness source of each pending message in `temp` (maintained only
    /// under witness tracking, empty otherwise).
    witness: Vec<VertexId>,
    touched: Vec<VertexId>,
    frontier: Vec<VertexId>,
    edges_processed: u64,
    messages: u64,
    elapsed: Duration,
}

impl<V> Default for WorkerScratch<V> {
    fn default() -> Self {
        WorkerScratch {
            temp: Vec::new(),
            witness: Vec::new(),
            touched: Vec::new(),
            frontier: Vec::new(),
            edges_processed: 0,
            messages: 0,
            elapsed: Duration::ZERO,
        }
    }
}

/// The edge-centric GAS engine (paper Fig. 7), generic over the graph store
/// and the algorithm.
///
/// Holds the VPropertyArray (`values`), the VTempProperty buffer (`temp`)
/// and the active set between runs, so incremental processing can continue
/// from a previous analysis after more batches arrive.
///
/// When the store exposes more than one shard (see
/// [`GraphStore::num_shards`]), each iteration's processing phase runs one
/// scoped worker thread per shard: full mode streams each shard's edge
/// interval, incremental mode routes the frontier to the shard owning each
/// source. Workers deposit into private accumulators that are merged in
/// shard order through the program's commutative [`GasProgram::reduce`],
/// so the committed result is identical to the sequential engine's.
pub struct Engine<P: GasProgram> {
    program: P,
    policy: ModePolicy,
    /// VPropertyArray: committed per-vertex properties.
    values: Vec<P::Value>,
    /// VTempProperty: combined incoming message per vertex, taken by apply.
    temp: Vec<Option<P::Value>>,
    /// Vertices holding a message this iteration (dense scan avoidance).
    touched: Vec<VertexId>,
    /// Current active list and its bitset (used by FP-mode filtering).
    active: Vec<VertexId>,
    active_bits: Vec<bool>,
    /// Witness parents: per vertex, the source of the message that set its
    /// committed value ([`NO_WITNESS`] = root/default). Maintained only
    /// under witness tracking; the invalidate-and-repair path reads it.
    witness: Vec<VertexId>,
    /// Witness source of the pending message in `temp`, taken by apply.
    witness_temp: Vec<VertexId>,
    /// Whether deposits attribute witnesses (enabled by repair users; a
    /// single predictable branch per deposit otherwise).
    track_witness: bool,
    /// Whether the program's roots have been seeded (first run bootstraps
    /// them even on the incremental path).
    seeded: bool,
    /// Iteration budget per run; guards against programs that never
    /// converge (only monotone programs are guaranteed to).
    max_iterations: usize,
    /// Per-shard scratch pool for the parallel processing phase, reused
    /// across iterations and runs.
    workers: Vec<WorkerScratch<P::Value>>,
}

impl<P: GasProgram> Engine<P> {
    /// Creates an engine for a program under a mode policy.
    pub fn new(program: P, policy: ModePolicy) -> Self {
        Engine {
            program,
            policy,
            values: Vec::new(),
            temp: Vec::new(),
            touched: Vec::new(),
            active: Vec::new(),
            active_bits: Vec::new(),
            witness: Vec::new(),
            witness_temp: Vec::new(),
            track_witness: false,
            seeded: false,
            max_iterations: usize::MAX,
            workers: Vec::new(),
        }
    }

    /// Caps the number of iterations per run. The engine stops (leaving the
    /// active set pending) once the cap is hit — a safety net for programs
    /// whose `apply` is not monotone and may oscillate forever.
    pub fn set_max_iterations(&mut self, cap: usize) {
        self.max_iterations = cap.max(1);
    }

    /// The program driving this engine.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// The active mode policy.
    pub fn policy(&self) -> ModePolicy {
        self.policy
    }

    /// Replaces the mode policy (e.g. to compare FP/IP/hybrid on the same
    /// state).
    pub fn set_policy(&mut self, policy: ModePolicy) {
        self.policy = policy;
    }

    /// Committed vertex properties, indexed by vertex id.
    pub fn values(&self) -> &[P::Value] {
        &self.values
    }

    /// Grows engine arrays to cover `n` vertices, filling new slots with the
    /// program's per-vertex default.
    pub(crate) fn ensure_capacity(&mut self, n: u32) {
        let n = n as usize;
        if self.values.len() < n {
            let start = self.values.len() as u32;
            self.values.extend((start..n as u32).map(|v| self.program.default_value(v)));
            self.temp.resize(n, None);
            self.active_bits.resize(n, false);
        }
        if self.track_witness && self.witness.len() < self.values.len() {
            self.witness.resize(self.values.len(), NO_WITNESS);
            self.witness_temp.resize(self.values.len(), NO_WITNESS);
        }
    }

    /// Resets all vertex properties to the program's defaults and clears the
    /// active set — the store-and-static-compute entry point.
    pub fn reset(&mut self) {
        for (v, slot) in self.values.iter_mut().enumerate() {
            *slot = self.program.default_value(v as u32);
        }
        self.temp.fill(None);
        self.touched.clear();
        for &v in &self.active {
            self.active_bits[v as usize] = false;
        }
        self.active.clear();
        self.witness.fill(NO_WITNESS);
        self.witness_temp.fill(NO_WITNESS);
        self.seeded = false;
    }

    /// Turns witness attribution on or off. Repair drivers enable it so
    /// every committed property carries the source of its winning message;
    /// the arrays are (re)sized on the next capacity check.
    pub fn set_witness_tracking(&mut self, on: bool) {
        self.track_witness = on;
        if on && self.witness.len() < self.values.len() {
            self.witness.resize(self.values.len(), NO_WITNESS);
            self.witness_temp.resize(self.values.len(), NO_WITNESS);
        }
    }

    /// Whether witness attribution is enabled.
    pub fn witness_tracking(&self) -> bool {
        self.track_witness
    }

    /// Witness parents, indexed by vertex id ([`NO_WITNESS`] where none).
    /// Empty until witness tracking is enabled and a run commits values.
    pub fn witness(&self) -> &[VertexId] {
        &self.witness
    }

    /// Resets each vertex in `invalidated` to its per-vertex default,
    /// clears its witness, and marks it active — the destructive half of
    /// invalidate-and-repair. The caller then injects the cone's still-
    /// valid boundary messages ([`inject_message`](Self::inject_message))
    /// and runs [`run_incremental`](Self::run_incremental) to repair.
    pub fn invalidate(&mut self, invalidated: &[VertexId]) {
        for &v in invalidated {
            self.ensure_capacity(v + 1);
            let vi = v as usize;
            self.values[vi] = self.program.default_value(v);
            if self.track_witness {
                self.witness[vi] = NO_WITNESS;
            }
            if !self.active_bits[vi] {
                self.active_bits[vi] = true;
                self.active.push(v);
            }
        }
    }

    /// Deposits `msg` into the pending buffer as if `src` had sent it
    /// during a processing phase; the next run's first apply phase reduces
    /// and commits it. The repair path uses this to re-seed an invalidated
    /// cone from its still-valid in-boundary.
    pub fn inject_message(&mut self, src: VertexId, dst: VertexId, msg: P::Value) {
        self.ensure_capacity(dst + 1);
        let di = dst as usize;
        let slot = &mut self.temp[di];
        *slot = Some(match slot.take() {
            Some(prev) => {
                let combined = self.program.reduce(prev, msg);
                if self.track_witness && combined == msg && msg != prev {
                    self.witness_temp[di] = src;
                }
                combined
            }
            None => {
                self.touched.push(dst);
                if self.track_witness {
                    self.witness_temp[di] = src;
                }
                msg
            }
        });
    }

    fn seed_roots(&mut self, vertex_space: u32) {
        let roots = self.program.roots(vertex_space);
        for (v, val) in roots {
            self.ensure_capacity(v + 1);
            self.values[v as usize] = val;
            if !self.active_bits[v as usize] {
                self.active_bits[v as usize] = true;
                self.active.push(v);
            }
        }
        self.seeded = true;
    }

    /// Runs to fixpoint from the program's roots over a fresh (or reset)
    /// state — the static model's full recomputation.
    pub fn run_from_roots<S: GraphStore + Sync>(&mut self, store: &S) -> RunReport {
        self.ensure_capacity(store.vertex_space());
        self.reset();
        self.seed_roots(store.vertex_space());
        self.run_to_fixpoint(store)
    }

    /// Continues from the current state with the given seed vertices active
    /// — the incremental model's entry point after a batch update. The
    /// first incremental run bootstraps the program's roots (there is no
    /// prior analysis to continue from yet).
    ///
    /// Incremental continuation is sound only for *monotone* updates (new
    /// edges, or weight changes in the program's improving direction).
    /// Deletions and adverse weight changes invalidate committed
    /// properties first: either re-run [`run_from_roots`](Self::run_from_roots)
    /// cold, or — the delta-driven path [`crate::DynamicRunner`] drives —
    /// [`invalidate`](Self::invalidate) the affected witness cone, inject
    /// its boundary messages ([`inject_message`](Self::inject_message)),
    /// and continue here to repair.
    pub fn run_incremental<S: GraphStore + Sync>(
        &mut self,
        store: &S,
        seeds: &[VertexId],
    ) -> RunReport {
        self.ensure_capacity(store.vertex_space());
        if !self.seeded {
            self.seed_roots(store.vertex_space());
        }
        for &v in seeds {
            self.ensure_capacity(v + 1);
            if !self.active_bits[v as usize] {
                self.active_bits[v as usize] = true;
                self.active.push(v);
            }
        }
        self.run_to_fixpoint(store)
    }

    /// The GAS iteration loop: decide mode, processing phase (sequential
    /// or one worker per store shard), apply phase, until no vertex is
    /// active.
    fn run_to_fixpoint<S: GraphStore + Sync>(&mut self, store: &S) -> RunReport {
        let mut report = RunReport::default();
        let run_start = Instant::now();
        // The store is borrowed for the whole run, so its edge count (the
        // formula's `E`) is loop-invariant: hoist it out of the iterations.
        let store_edges = store.num_edges();
        // The full-frontier degree scan costs one random lookup per active
        // vertex; only the degree-aware policy consumes it, so forced and
        // hybrid policies skip it entirely.
        let needs_degree = matches!(self.policy, ModePolicy::DegreeAware { .. });
        let num_shards = store.num_shards().max(1);
        // Injected (repair-boundary) messages may be pending with no vertex
        // active yet; the loop must run at least one apply to drain them.
        while (!self.active.is_empty() || !self.touched.is_empty())
            && report.iterations.len() < self.max_iterations
        {
            let iter_start = Instant::now();
            let active_degree: u64 = if needs_degree {
                self.active.iter().map(|&v| store.out_degree(v) as u64).sum()
            } else {
                0
            };
            let mode = self.policy.decide(self.active.len(), active_degree, store_edges);

            // --- Processing phase -------------------------------------
            // Spans are recorded on the calling thread only: the scoped
            // per-iteration workers are short-lived, and giving each a
            // trace ring would exhaust the ring registry over a long run.
            // Inside a serving request (nonzero thread ctx) the span arg
            // carries the request id so the iteration groups under its
            // timeline; otherwise it stays the iteration index.
            let iter_idx = report.iterations.len() as u64;
            let ctx = gtinker_core::trace::thread_ctx();
            let span_tag = if ctx != 0 { ctx } else { iter_idx };
            let process_start = Instant::now();
            let (edges_processed, messages, shard_times) = {
                let _t =
                    gtinker_core::trace::span_arg(gtinker_core::SpanId::EngineProcess, span_tag);
                if num_shards > 1 {
                    self.process_sharded(store, mode, num_shards)
                } else {
                    self.process_sequential(store, mode)
                }
            };
            let process_time = process_start.elapsed();

            // --- Apply phase -------------------------------------------
            let apply_span =
                gtinker_core::trace::span_arg(gtinker_core::SpanId::EngineApply, span_tag);
            let apply_start = Instant::now();
            let active_vertices = self.active.len();
            for &v in &self.active {
                self.active_bits[v as usize] = false;
            }
            self.active.clear();
            for &d in &self.touched {
                if let Some(msg) = self.temp[d as usize].take() {
                    if let Some(new) = self.program.apply(self.values[d as usize], msg) {
                        self.values[d as usize] = new;
                        if self.track_witness {
                            self.witness[d as usize] = self.witness_temp[d as usize];
                        }
                        if !self.active_bits[d as usize] {
                            self.active_bits[d as usize] = true;
                            self.active.push(d);
                        }
                    }
                }
            }
            self.touched.clear();
            let apply_time = apply_start.elapsed();
            drop(apply_span);

            let m = gtinker_core::metrics::global();
            m.engine_iterations.inc();
            m.engine_process_ns.add(process_time.as_nanos() as u64);
            m.engine_apply_ns.add(apply_time.as_nanos() as u64);
            report.iterations.push(IterationStats {
                mode,
                active_vertices,
                active_degree,
                store_edges,
                edges_processed,
                messages,
                duration: iter_start.elapsed(),
                process_time,
                apply_time,
                shard_times,
            });
            report.total_edges_processed += edges_processed;
        }
        report.elapsed = run_start.elapsed();
        report
    }

    /// Single-shard processing phase: the original in-place sequential
    /// path, depositing straight into the engine's VTempProperty buffer.
    fn process_sequential<S: GraphStore>(
        &mut self,
        store: &S,
        mode: ExecMode,
    ) -> (u64, u64, Vec<Duration>) {
        let mut edges_processed: u64 = 0;
        let mut messages: u64 = 0;
        let program = &self.program;
        let values = &self.values;
        let temp = &mut self.temp;
        let witness_temp = &mut self.witness_temp;
        let track = self.track_witness;
        let touched = &mut self.touched;
        let active_bits = &self.active_bits;
        let mut deposit = |src: VertexId, dst: VertexId, msg: P::Value| {
            messages += 1;
            let slot = &mut temp[dst as usize];
            *slot = Some(match slot.take() {
                Some(prev) => {
                    let combined = program.reduce(prev, msg);
                    if track && combined == msg && msg != prev {
                        witness_temp[dst as usize] = src;
                    }
                    combined
                }
                None => {
                    touched.push(dst);
                    if track {
                        witness_temp[dst as usize] = src;
                    }
                    msg
                }
            });
        };
        match mode {
            ExecMode::Full => {
                // Stream every edge sequentially; only edges whose
                // source is active contribute.
                store.stream_edges(|src, dst, w| {
                    edges_processed += 1;
                    if active_bits[src as usize] {
                        if let Some(m) = program.process_edge(values[src as usize], dst, w) {
                            deposit(src, dst, m);
                        }
                    }
                });
            }
            ExecMode::Incremental => {
                for &v in &self.active {
                    let sv = values[v as usize];
                    store.for_each_out_edge(v, |dst, w| {
                        edges_processed += 1;
                        if let Some(m) = program.process_edge(sv, dst, w) {
                            deposit(v, dst, m);
                        }
                    });
                }
            }
        }
        (edges_processed, messages, Vec::new())
    }

    /// Sharded processing phase: one scoped worker thread per store shard.
    ///
    /// Full mode streams each shard's edge interval; incremental mode
    /// walks the frontier slice routed to each shard (every source's
    /// out-edges live in exactly one shard). Workers deposit into private
    /// accumulators; the merge folds them into the engine's buffer in
    /// shard order via the program's commutative, associative `reduce`, so
    /// the committed messages — and therefore the run's results — match
    /// the sequential path's exactly.
    fn process_sharded<S: GraphStore + Sync>(
        &mut self,
        store: &S,
        mode: ExecMode,
        num_shards: usize,
    ) -> (u64, u64, Vec<Duration>) {
        if self.workers.len() < num_shards {
            self.workers.resize_with(num_shards, WorkerScratch::default);
        }
        let space = self.temp.len();
        let track = self.track_witness;
        for w in &mut self.workers[..num_shards] {
            if w.temp.len() < space {
                w.temp.resize(space, None);
            }
            if track && w.witness.len() < space {
                w.witness.resize(space, NO_WITNESS);
            }
        }
        if mode == ExecMode::Incremental {
            for &v in &self.active {
                let s = store.shard_of_source(v).min(num_shards - 1);
                self.workers[s].frontier.push(v);
            }
        }
        {
            let program = &self.program;
            let values = &self.values[..];
            let active_bits = &self.active_bits[..];
            let workers = &mut self.workers[..num_shards];
            std::thread::scope(|scope| {
                for (shard, scratch) in workers.iter_mut().enumerate() {
                    scope.spawn(move || {
                        let start = Instant::now();
                        let WorkerScratch {
                            temp,
                            witness,
                            touched,
                            frontier,
                            edges_processed,
                            messages,
                            elapsed,
                        } = scratch;
                        let mut edges: u64 = 0;
                        let mut msgs: u64 = 0;
                        let mut deposit = |src: VertexId, dst: VertexId, msg: P::Value| {
                            msgs += 1;
                            let slot = &mut temp[dst as usize];
                            *slot = Some(match slot.take() {
                                Some(prev) => {
                                    let combined = program.reduce(prev, msg);
                                    if track && combined == msg && msg != prev {
                                        witness[dst as usize] = src;
                                    }
                                    combined
                                }
                                None => {
                                    touched.push(dst);
                                    if track {
                                        witness[dst as usize] = src;
                                    }
                                    msg
                                }
                            });
                        };
                        match mode {
                            ExecMode::Full => {
                                store.stream_shard_edges(shard, |src, dst, w| {
                                    edges += 1;
                                    if active_bits[src as usize] {
                                        if let Some(m) =
                                            program.process_edge(values[src as usize], dst, w)
                                        {
                                            deposit(src, dst, m);
                                        }
                                    }
                                });
                            }
                            ExecMode::Incremental => {
                                for &v in frontier.iter() {
                                    let sv = values[v as usize];
                                    store.for_each_out_edge(v, |dst, w| {
                                        edges += 1;
                                        if let Some(m) = program.process_edge(sv, dst, w) {
                                            deposit(v, dst, m);
                                        }
                                    });
                                }
                            }
                        }
                        *edges_processed = edges;
                        *messages = msgs;
                        *elapsed = start.elapsed();
                    });
                }
            });
        }
        // Deterministic merge: fold the workers' accumulators in shard
        // order, independent of thread scheduling.
        let mut edges_total: u64 = 0;
        let mut msg_total: u64 = 0;
        let mut shard_times = Vec::with_capacity(num_shards);
        for scratch in &mut self.workers[..num_shards] {
            edges_total += scratch.edges_processed;
            msg_total += scratch.messages;
            shard_times.push(scratch.elapsed);
            for &d in &scratch.touched {
                if let Some(msg) = scratch.temp[d as usize].take() {
                    let slot = &mut self.temp[d as usize];
                    *slot = Some(match slot.take() {
                        Some(prev) => {
                            let combined = self.program.reduce(prev, msg);
                            if track && combined == msg && msg != prev {
                                self.witness_temp[d as usize] = scratch.witness[d as usize];
                            }
                            combined
                        }
                        None => {
                            self.touched.push(d);
                            if track {
                                self.witness_temp[d as usize] = scratch.witness[d as usize];
                            }
                            msg
                        }
                    });
                }
            }
            scratch.touched.clear();
            scratch.frontier.clear();
        }
        (edges_total, msg_total, shard_times)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Bfs, Cc, Sssp};
    use gtinker_core::GraphTinker;
    use gtinker_stinger::Stinger;
    use gtinker_types::{Edge, EdgeBatch};

    fn chain_graph(n: u32) -> GraphTinker {
        let mut g = GraphTinker::with_defaults();
        let edges: Vec<Edge> = (0..n - 1).map(|i| Edge::new(i, i + 1, 2)).collect();
        g.apply_batch(&EdgeBatch::inserts(&edges));
        g
    }

    #[test]
    fn bfs_levels_on_a_chain() {
        let g = chain_graph(10);
        for policy in [ModePolicy::AlwaysFull, ModePolicy::AlwaysIncremental, ModePolicy::hybrid()]
        {
            let mut e = Engine::new(Bfs::new(0), policy);
            let report = e.run_from_roots(&g);
            for v in 0..10u32 {
                assert_eq!(e.values()[v as usize], v, "level of {v} under {policy:?}");
            }
            assert_eq!(report.num_iterations(), 10, "9 hops + terminating iteration");
        }
    }

    #[test]
    fn sssp_uses_weights() {
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&EdgeBatch::inserts(&[
            Edge::new(0, 1, 10),
            Edge::new(0, 2, 1),
            Edge::new(2, 1, 2), // 0->2->1 costs 3, beating the direct 10
        ]));
        let mut e = Engine::new(Sssp::new(0), ModePolicy::hybrid());
        e.run_from_roots(&g);
        assert_eq!(e.values()[1], 3);
        assert_eq!(e.values()[2], 1);
    }

    #[test]
    fn cc_labels_on_two_components() {
        let mut g = GraphTinker::with_defaults();
        // Component {0,1,2} and {5,6}; CC runs on symmetrized edges.
        let edges = [(0u32, 1u32), (1, 2), (5, 6)];
        let mut batch = EdgeBatch::new();
        for &(a, b) in &edges {
            batch.push_insert(Edge::unit(a, b));
            batch.push_insert(Edge::unit(b, a));
        }
        g.apply_batch(&batch);
        let mut e = Engine::new(Cc::new(), ModePolicy::hybrid());
        e.run_from_roots(&g);
        let v = e.values();
        assert_eq!(v[0], 0);
        assert_eq!(v[1], 0);
        assert_eq!(v[2], 0);
        assert_eq!(v[5], 5);
        assert_eq!(v[6], 5);
        // Vertices 3, 4 are isolated (never seen as endpoints): own labels.
        assert_eq!(v[3], 3);
        assert_eq!(v[4], 4);
    }

    #[test]
    fn fp_and_ip_agree_on_random_graph() {
        use gtinker_datasets::RmatConfig;
        let edges = RmatConfig::graph500(9, 4_000, 5).generate();
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&EdgeBatch::inserts(&edges));

        let root = edges[0].src;
        let mut full = Engine::new(Bfs::new(root), ModePolicy::AlwaysFull);
        let mut inc = Engine::new(Bfs::new(root), ModePolicy::AlwaysIncremental);
        let mut hyb = Engine::new(Bfs::new(root), ModePolicy::hybrid());
        full.run_from_roots(&g);
        inc.run_from_roots(&g);
        hyb.run_from_roots(&g);
        assert_eq!(full.values(), inc.values(), "FP vs IP BFS divergence");
        assert_eq!(full.values(), hyb.values(), "FP vs hybrid BFS divergence");
    }

    #[test]
    fn graphtinker_and_stinger_agree() {
        use gtinker_datasets::RmatConfig;
        let edges = RmatConfig::graph500(8, 2_000, 9).generate();
        let batch = EdgeBatch::inserts(&edges);
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&batch);
        let mut s = Stinger::with_defaults();
        s.apply_batch(&batch);

        let root = edges[0].src;
        let mut eg = Engine::new(Bfs::new(root), ModePolicy::hybrid());
        let mut es = Engine::new(Bfs::new(root), ModePolicy::hybrid());
        eg.run_from_roots(&g);
        es.run_from_roots(&s);
        assert_eq!(eg.values(), es.values(), "stores disagree on BFS result");
    }

    #[test]
    fn incremental_bfs_matches_recompute_after_batches() {
        let mut g = GraphTinker::with_defaults();
        let b1 = EdgeBatch::inserts(&[Edge::unit(0, 1), Edge::unit(1, 2)]);
        g.apply_batch(&b1);
        let mut inc = Engine::new(Bfs::new(0), ModePolicy::hybrid());
        inc.run_from_roots(&g);

        // Insert a shortcut 0 -> 2 and a fresh tail 2 -> 3.
        let b2 = EdgeBatch::inserts(&[Edge::unit(0, 2), Edge::unit(2, 3)]);
        g.apply_batch(&b2);
        let seeds = inc.program().inconsistent_vertices(b2.ops());
        inc.run_incremental(&g, &seeds);

        let mut fresh = Engine::new(Bfs::new(0), ModePolicy::hybrid());
        fresh.run_from_roots(&g);
        assert_eq!(inc.values(), fresh.values(), "incremental diverged from recompute");
        assert_eq!(inc.values()[2], 1, "shortcut must shorten the path");
        assert_eq!(inc.values()[3], 2);
    }

    #[test]
    fn report_statistics_populate() {
        let g = chain_graph(50);
        let mut e = Engine::new(Bfs::new(0), ModePolicy::AlwaysIncremental);
        let r = e.run_from_roots(&g);
        assert!(r.total_edges_processed >= 49);
        assert_eq!(r.mode_counts().0, 0, "no FP iterations under AlwaysIncremental");
        assert!(r.throughput_eps() > 0.0);
        let mut merged = RunReport::default();
        merged.merge(&r);
        merged.merge(&r);
        assert_eq!(merged.total_edges_processed, 2 * r.total_edges_processed);
    }

    #[test]
    fn unreachable_vertices_stay_at_initial() {
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&EdgeBatch::inserts(&[Edge::unit(0, 1), Edge::unit(3, 4)]));
        let mut e = Engine::new(Bfs::new(0), ModePolicy::hybrid());
        e.run_from_roots(&g);
        assert_eq!(e.values()[1], 1);
        assert_eq!(e.values()[3], u32::MAX);
        assert_eq!(e.values()[4], u32::MAX);
    }

    #[test]
    fn empty_graph_runs_cleanly() {
        let g = GraphTinker::with_defaults();
        let mut e = Engine::new(Bfs::new(0), ModePolicy::hybrid());
        let r = e.run_from_roots(&g);
        // Root 0 exceeds the (empty) vertex space; engine must not panic.
        assert!(r.num_iterations() <= 1);
    }

    /// A deliberately non-monotone program: every message flips the
    /// receiving vertex's parity, so the fixpoint never arrives. Used to
    /// verify the iteration guard.
    struct Oscillator;
    impl crate::gas::GasProgram for Oscillator {
        type Value = u32;
        fn initial_value(&self) -> u32 {
            0
        }
        fn process_edge(&self, src_value: u32, _d: u32, _w: u32) -> Option<u32> {
            Some(src_value + 1)
        }
        fn reduce(&self, a: u32, b: u32) -> u32 {
            a.max(b)
        }
        fn apply(&self, old: u32, incoming: u32) -> Option<u32> {
            // Always "changes": oscillates between parities forever.
            Some(if incoming == old { incoming + 1 } else { incoming })
        }
        fn roots(&self, _n: u32) -> Vec<(u32, u32)> {
            vec![(0, 1)]
        }
    }

    #[test]
    fn iteration_guard_stops_non_convergent_programs() {
        let mut g = GraphTinker::with_defaults();
        // A 2-cycle keeps messages flowing forever.
        g.apply_batch(&EdgeBatch::inserts(&[Edge::unit(0, 1), Edge::unit(1, 0)]));
        let mut e = Engine::new(Oscillator, ModePolicy::AlwaysIncremental);
        e.set_max_iterations(25);
        let r = e.run_from_roots(&g);
        assert_eq!(r.num_iterations(), 25, "guard must cap the run");
    }

    #[test]
    fn guard_does_not_truncate_convergent_runs() {
        let g = chain_graph(10);
        let mut e = Engine::new(Bfs::new(0), ModePolicy::hybrid());
        e.set_max_iterations(1_000);
        e.run_from_roots(&g);
        assert_eq!(e.values()[9], 9);
    }
}
