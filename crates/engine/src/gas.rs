//! The edge-centric GAS program abstraction and the inference box.

use gtinker_types::{UpdateOp, VertexId, Weight};
use serde::{Deserialize, Serialize};

/// Retrieval mode of one engine iteration (paper §IV.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Full processing: stream all edges sequentially, filter by the active
    /// bitset.
    Full,
    /// Incremental processing: random-access the out-edges of each active
    /// vertex.
    Incremental,
}

/// Per-iteration mode selection policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModePolicy {
    /// Always stream everything (the paper's "FP mode" series).
    AlwaysFull,
    /// Always walk the active list (the paper's "IP mode" series).
    AlwaysIncremental,
    /// The paper's inference box: FP when `T = A / E > threshold`.
    Hybrid {
        /// Decision threshold on the active-fraction estimate; the paper's
        /// separately-tuned optimum is 0.02.
        threshold: f64,
    },
    /// Extension of the inference box along the paper's stated future work
    /// ("factor in other heuristics such as number of degrees of the active
    /// vertices"): compare the *actual* work of each mode — streaming all
    /// `E` edges sequentially (discounted by how much cheaper a sequential
    /// edge is) against randomly retrieving the active set's `D` out-edges.
    DegreeAware {
        /// Measured sequential-over-random per-edge throughput advantage of
        /// the host/store combination (>= 1).
        seq_advantage: f64,
    },
}

impl ModePolicy {
    /// The paper's hybrid policy with its tuned threshold of 0.02.
    pub fn hybrid() -> Self {
        ModePolicy::Hybrid { threshold: 0.02 }
    }

    /// The degree-aware policy with a typical DRAM sequential/random
    /// advantage of 50 (consistent with the paper's 0.02 crossover:
    /// `A / E = 0.02` at an average degree of 1/0.02... the tuned constant
    /// is host-dependent; measure with
    /// `hybrid_accuracy::measure_seq_advantage`).
    pub fn degree_aware() -> Self {
        ModePolicy::DegreeAware { seq_advantage: 50.0 }
    }

    /// The inference-box decision for an iteration with `active` vertices
    /// whose out-degrees sum to `active_degree`, over a graph of
    /// `edges_loaded` edges (the paper's prediction formula, §IV.B; the
    /// degree-aware variant also uses `active_degree`).
    pub fn decide(&self, active: usize, active_degree: u64, edges_loaded: u64) -> ExecMode {
        match *self {
            ModePolicy::AlwaysFull => ExecMode::Full,
            ModePolicy::AlwaysIncremental => ExecMode::Incremental,
            ModePolicy::Hybrid { threshold } => {
                if edges_loaded == 0 {
                    return ExecMode::Incremental;
                }
                let t = active as f64 / edges_loaded as f64;
                if t > threshold {
                    ExecMode::Full
                } else {
                    ExecMode::Incremental
                }
            }
            ModePolicy::DegreeAware { seq_advantage } => {
                let fp_cost = edges_loaded as f64 / seq_advantage.max(1.0);
                if fp_cost < active_degree as f64 {
                    ExecMode::Full
                } else {
                    ExecMode::Incremental
                }
            }
        }
    }
}

/// An algorithm expressed in the edge-centric GAS paradigm (paper §IV.A).
///
/// A conforming algorithm "only needs separate definitions for its
/// processEdge, reduce and apply functions"; the engine supplies the rest.
/// All three algorithms the paper evaluates (BFS, SSSP, CC) are monotone
/// min-propagations, but the trait does not assume that.
///
/// Programs must be `Sync` and their values `Send + Sync`: the engine
/// shares both across the scoped worker threads of its sharded processing
/// phase. [`reduce`](Self::reduce) must be commutative and associative —
/// already implicit in the sequential engine (FP and IP modes deliver the
/// same messages in different orders), and what lets the parallel merge
/// combine per-shard partial reductions deterministically.
pub trait GasProgram: Sync {
    /// Per-vertex property type (the VPropertyArray element).
    type Value: Copy + PartialEq + std::fmt::Debug + Send + Sync;

    /// Property of a vertex before it is reached.
    fn initial_value(&self) -> Self::Value;

    /// Default property for a specific vertex — what the engine fills new
    /// array slots with. Defaults to [`initial_value`](Self::initial_value);
    /// CC overrides it so every vertex is born labelled with its own id.
    fn default_value(&self, _v: VertexId) -> Self::Value {
        self.initial_value()
    }

    /// processEdge: message an active source with property `src_value`
    /// sends along an out-edge, or `None` to send nothing.
    fn process_edge(
        &self,
        src_value: Self::Value,
        dst: VertexId,
        weight: Weight,
    ) -> Option<Self::Value>;

    /// reduce: combines two messages destined for the same vertex.
    fn reduce(&self, a: Self::Value, b: Self::Value) -> Self::Value;

    /// apply: commits the combined message into the vertex property.
    /// Returns `Some(new)` if the property changed (the vertex becomes
    /// active next iteration), `None` otherwise.
    fn apply(&self, old: Self::Value, incoming: Self::Value) -> Option<Self::Value>;

    /// Root vertices and their seed properties for a from-scratch run
    /// (e.g. the BFS root at level 0; every vertex for CC).
    fn roots(&self, vertex_space: u32) -> Vec<(VertexId, Self::Value)>;

    /// Set-Inconsistency-Vertices unit (paper §IV.C): the vertices whose
    /// properties an update batch may invalidate, used to seed incremental
    /// re-processing. Defaults to the batch's source endpoints (BFS/SSSP);
    /// CC overrides to both endpoints.
    fn inconsistent_vertices(&self, ops: &[UpdateOp]) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = ops.iter().map(|op| op.src()).collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }
}

/// Witness-aware extension of [`GasProgram`] enabling invalidate-and-repair
/// incremental processing — the delta-driven model that stays sound under
/// *deletions*, not just monotone insertions.
///
/// The engine attributes a **witness** to every committed property: the
/// source vertex of the message that last changed it. Across a run the
/// witnesses form a forest (each commit strictly improves the property, so
/// no witness cycle can close), and at fixpoint every reached vertex
/// satisfies the *witness invariant*: its value is exactly what
/// [`process_edge`](GasProgram::process_edge) produces from its witness's
/// value over the (live) witness edge. Deleting an edge therefore
/// invalidates precisely the vertices whose witness path used it — the
/// subtree of the deletion's target in the witness forest — and repair
/// re-seeds that cone from its still-valid in-boundary.
///
/// Both methods have reduce-derived defaults that are correct for any
/// *selective* reduce (min/max — all of BFS/SSSP/CC); a program whose
/// reduce blends its inputs must override them or stay off this trait.
pub trait IncrementalState: GasProgram {
    /// Whether `candidate` strictly improves on `current`, i.e. the reduce
    /// would pick `candidate` over it. This is the order the engine uses
    /// to attribute witnesses.
    fn improves(&self, candidate: Self::Value, current: Self::Value) -> bool {
        self.reduce(current, candidate) == candidate && candidate != current
    }

    /// The witness invariant: whether `child_value` is still justified by
    /// `parent_value` across an edge of weight `weight` into `child`.
    /// Checked when a batch *re-inserts* (weight-updates) a witness edge:
    /// BFS/CC are weight-insensitive and always hold; an SSSP weight raise
    /// breaks the invariant and invalidates the child's subtree.
    fn witness_holds(
        &self,
        parent_value: Self::Value,
        child: VertexId,
        child_value: Self::Value,
        weight: Weight,
    ) -> bool {
        self.process_edge(parent_value, child, weight) == Some(child_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policies_ignore_inputs() {
        assert_eq!(ModePolicy::AlwaysFull.decide(0, 0, 0), ExecMode::Full);
        assert_eq!(
            ModePolicy::AlwaysIncremental.decide(1_000_000, 1_000_000, 1),
            ExecMode::Incremental
        );
    }

    #[test]
    fn hybrid_threshold_matches_paper_formula() {
        let p = ModePolicy::hybrid();
        // T = A/E: 1000 active over 10_000 edges = 0.1 > 0.02 -> FP.
        assert_eq!(p.decide(1_000, 0, 10_000), ExecMode::Full);
        // 100 active over 10_000 edges = 0.01 < 0.02 -> IP.
        assert_eq!(p.decide(100, 0, 10_000), ExecMode::Incremental);
        // Exactly at threshold: formula says FP only when strictly greater.
        assert_eq!(p.decide(200, 0, 10_000), ExecMode::Incremental);
        // Empty graph degenerates to IP (nothing to stream).
        assert_eq!(p.decide(5, 0, 0), ExecMode::Incremental);
    }

    #[test]
    fn custom_threshold() {
        let p = ModePolicy::Hybrid { threshold: 0.5 };
        assert_eq!(p.decide(600, 0, 1_000), ExecMode::Full);
        assert_eq!(p.decide(400, 0, 1_000), ExecMode::Incremental);
    }

    #[test]
    fn degree_aware_compares_costs() {
        let p = ModePolicy::DegreeAware { seq_advantage: 10.0 };
        // FP cost = 10_000/10 = 1_000 < active degree 5_000 -> FP.
        assert_eq!(p.decide(1, 5_000, 10_000), ExecMode::Full);
        // FP cost 1_000 > active degree 200 -> IP.
        assert_eq!(p.decide(1, 200, 10_000), ExecMode::Incremental);
        // seq_advantage is clamped to >= 1.
        let degenerate = ModePolicy::DegreeAware { seq_advantage: 0.0 };
        assert_eq!(degenerate.decide(1, 50, 100), ExecMode::Incremental);
        assert_eq!(degenerate.decide(1, 200, 100), ExecMode::Full);
    }
}
