//! The hybrid graph engine (paper §IV).
//!
//! An **edge-centric Gather-Apply-Scatter** engine over any dynamic graph
//! store, with three execution policies per iteration:
//!
//! * **Full processing (FP)** — stream *all* edges sequentially (GraphTinker
//!   serves this from the compacted CAL) and filter by the active bitset;
//!   wins when many vertices are active.
//! * **Incremental processing (IP)** — walk only the active vertices'
//!   out-edges (random access into the EdgeblockArray); wins when few are.
//! * **Hybrid** — the paper's inference box picks FP or IP *per iteration*
//!   from the prediction formula `T = A / E` with `threshold = 0.02`
//!   (A = active vertices for the next iteration, E = edges loaded so far).
//!
//! Graph algorithms are expressed as [`GasProgram`]s (processEdge / reduce /
//! apply); BFS, SSSP and weakly-connected components ship in
//! [`algorithms`]. The engine is generic over [`GraphStore`], implemented
//! for both [`gtinker_core::GraphTinker`] and the
//! [`gtinker_stinger::Stinger`] baseline, so every comparison in the
//! paper's Figs. 11-16 runs through identical engine code.
//!
//! ## Example: BFS over a dynamic graph
//!
//! ```
//! use gtinker_core::GraphTinker;
//! use gtinker_engine::{algorithms::Bfs, Engine, ModePolicy};
//! use gtinker_types::{Edge, EdgeBatch};
//!
//! let mut g = GraphTinker::with_defaults();
//! g.apply_batch(&EdgeBatch::inserts(&[
//!     Edge::unit(0, 1),
//!     Edge::unit(1, 2),
//!     Edge::unit(2, 3),
//! ]));
//!
//! let mut engine = Engine::new(Bfs::new(0), ModePolicy::hybrid());
//! let report = engine.run_from_roots(&g);
//! assert_eq!(engine.values()[3], 3); // three hops from the root
//! assert!(report.iterations.len() >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod csr;
pub mod dynamic;
pub mod engine;
pub mod gas;
pub mod store;
pub mod vc;

pub use csr::CsrSnapshot;
pub use dynamic::{DynamicRunner, RestartPolicy};
pub use engine::{Engine, IterationStats, RunReport, NO_WITNESS};
pub use gas::{ExecMode, GasProgram, IncrementalState, ModePolicy};
pub use store::GraphStore;
pub use vc::VertexCentricEngine;
