//! The [`GraphStore`] abstraction: the two edge-retrieval paths the hybrid
//! engine multiplexes between.

use gtinker_core::{GraphTinker, ParallelTinker};
use gtinker_stinger::{ParallelStinger, Stinger};
use gtinker_types::{VertexId, Weight};

/// A dynamic graph store the engine can run analytics over.
///
/// The two retrieval methods correspond to the paper's LoadEdges unit
/// (§IV.C): `stream_edges` is the full-processing path (sequential,
/// compacted — the CAL for GraphTinker), `for_each_out_edge` the
/// incremental path (random, per-vertex — the EdgeblockArray).
pub trait GraphStore {
    /// One past the largest vertex id in the store (sizes engine arrays).
    fn vertex_space(&self) -> u32;

    /// Live edge count (the `E` of the inference formula).
    fn num_edges(&self) -> u64;

    /// Live out-degree of a vertex.
    fn out_degree(&self, v: VertexId) -> u32;

    /// Visits the out-edges of one vertex (incremental / random path).
    fn for_each_out_edge(&self, v: VertexId, f: impl FnMut(VertexId, Weight));

    /// Streams every edge (full-processing / sequential path).
    fn stream_edges(&self, f: impl FnMut(VertexId, VertexId, Weight));

    /// Point query: is `(src, dst)` a live edge? The default scans the
    /// source's out-edges; stores with a FIND path (GraphTinker's hashed
    /// subblock walk, STINGER's chain scan) override with their native
    /// lookup. Triangle counting and other intersection workloads lean on
    /// this heavily.
    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        let mut found = false;
        self.for_each_out_edge(src, |d, _| found |= d == dst);
        found
    }
}

impl GraphStore for GraphTinker {
    fn vertex_space(&self) -> u32 {
        GraphTinker::vertex_space(self)
    }
    fn num_edges(&self) -> u64 {
        GraphTinker::num_edges(self)
    }
    fn out_degree(&self, v: VertexId) -> u32 {
        GraphTinker::out_degree(self, v)
    }
    fn for_each_out_edge(&self, v: VertexId, f: impl FnMut(VertexId, Weight)) {
        GraphTinker::for_each_out_edge(self, v, f)
    }
    fn stream_edges(&self, f: impl FnMut(VertexId, VertexId, Weight)) {
        // CAL stream when enabled; scattered main-structure scan otherwise
        // (the ablation's cost).
        GraphTinker::for_each_edge(self, f)
    }
    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        GraphTinker::contains_edge(self, src, dst)
    }
}

impl GraphStore for Stinger {
    fn vertex_space(&self) -> u32 {
        Stinger::vertex_space(self)
    }
    fn num_edges(&self) -> u64 {
        Stinger::num_edges(self)
    }
    fn out_degree(&self, v: VertexId) -> u32 {
        Stinger::out_degree(self, v)
    }
    fn for_each_out_edge(&self, v: VertexId, f: impl FnMut(VertexId, Weight)) {
        Stinger::for_each_out_edge(self, v, f)
    }
    fn stream_edges(&self, f: impl FnMut(VertexId, VertexId, Weight)) {
        // STINGER has no compacted copy: "streaming" walks the per-vertex
        // chains, which is exactly why Figs. 11-13 favour GraphTinker.
        Stinger::for_each_edge(self, f)
    }
    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        Stinger::contains_edge(self, src, dst)
    }
}

impl GraphStore for ParallelTinker {
    fn vertex_space(&self) -> u32 {
        ParallelTinker::vertex_space(self)
    }
    fn num_edges(&self) -> u64 {
        ParallelTinker::num_edges(self)
    }
    fn out_degree(&self, v: VertexId) -> u32 {
        ParallelTinker::out_degree(self, v)
    }
    fn for_each_out_edge(&self, v: VertexId, f: impl FnMut(VertexId, Weight)) {
        ParallelTinker::for_each_out_edge(self, v, f)
    }
    fn stream_edges(&self, f: impl FnMut(VertexId, VertexId, Weight)) {
        ParallelTinker::for_each_edge(self, f)
    }
    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        ParallelTinker::contains_edge(self, src, dst)
    }
}

impl GraphStore for ParallelStinger {
    fn vertex_space(&self) -> u32 {
        ParallelStinger::vertex_space(self)
    }
    fn num_edges(&self) -> u64 {
        ParallelStinger::num_edges(self)
    }
    fn out_degree(&self, v: VertexId) -> u32 {
        ParallelStinger::out_degree(self, v)
    }
    fn for_each_out_edge(&self, v: VertexId, f: impl FnMut(VertexId, Weight)) {
        ParallelStinger::for_each_out_edge(self, v, f)
    }
    fn stream_edges(&self, f: impl FnMut(VertexId, VertexId, Weight)) {
        ParallelStinger::for_each_edge(self, f)
    }
    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        ParallelStinger::contains_edge(self, src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtinker_types::{Edge, EdgeBatch};

    fn sample_batch() -> EdgeBatch {
        EdgeBatch::inserts(&[Edge::new(0, 1, 5), Edge::new(1, 2, 3), Edge::new(0, 2, 7)])
    }

    fn check_store<S: GraphStore>(s: &S) {
        assert_eq!(s.vertex_space(), 3);
        assert_eq!(s.num_edges(), 3);
        assert_eq!(s.out_degree(0), 2);
        assert_eq!(s.out_degree(2), 0);
        let mut outs = Vec::new();
        s.for_each_out_edge(0, |d, w| outs.push((d, w)));
        outs.sort_unstable();
        assert_eq!(outs, vec![(1, 5), (2, 7)]);
        let mut all = Vec::new();
        s.stream_edges(|a, b, w| all.push((a, b, w)));
        all.sort_unstable();
        assert_eq!(all, vec![(0, 1, 5), (0, 2, 7), (1, 2, 3)]);
        assert!(s.has_edge(0, 1));
        assert!(!s.has_edge(1, 0));
        assert!(!s.has_edge(9, 9));
    }

    #[test]
    fn graphtinker_implements_store() {
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&sample_batch());
        check_store(&g);
    }

    #[test]
    fn stinger_implements_store() {
        let mut s = Stinger::with_defaults();
        s.apply_batch(&sample_batch());
        check_store(&s);
    }

    #[test]
    fn parallel_tinker_implements_store() {
        let mut p = ParallelTinker::new(Default::default(), 2).unwrap();
        p.apply_batch(&sample_batch());
        check_store(&p);
    }

    #[test]
    fn parallel_stinger_implements_store() {
        let mut p = ParallelStinger::new(Default::default(), 2).unwrap();
        p.apply_batch(&sample_batch());
        check_store(&p);
    }
}
