//! The [`GraphStore`] abstraction: the two edge-retrieval paths the hybrid
//! engine multiplexes between.

use gtinker_core::{GraphTinker, ParallelTinker, StoreView};
use gtinker_stinger::{ParallelStinger, Stinger};
use gtinker_types::{VertexId, Weight};

/// A dynamic graph store the engine can run analytics over.
///
/// The two retrieval methods correspond to the paper's LoadEdges unit
/// (§IV.C): `stream_edges` is the full-processing path (sequential,
/// compacted — the CAL for GraphTinker), `for_each_out_edge` the
/// incremental path (random, per-vertex — the EdgeblockArray).
pub trait GraphStore {
    /// One past the largest vertex id in the store (sizes engine arrays).
    fn vertex_space(&self) -> u32;

    /// Live edge count (the `E` of the inference formula).
    fn num_edges(&self) -> u64;

    /// Live out-degree of a vertex.
    fn out_degree(&self, v: VertexId) -> u32;

    /// Visits the out-edges of one vertex (incremental / random path).
    fn for_each_out_edge(&self, v: VertexId, f: impl FnMut(VertexId, Weight));

    /// Streams every edge (full-processing / sequential path).
    fn stream_edges(&self, f: impl FnMut(VertexId, VertexId, Weight));

    /// Point query: is `(src, dst)` a live edge? The default scans the
    /// source's out-edges; stores with a FIND path (GraphTinker's hashed
    /// subblock walk, STINGER's chain scan) override with their native
    /// lookup. Triangle counting and other intersection workloads lean on
    /// this heavily.
    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        let mut found = false;
        self.for_each_out_edge(src, |d, _| found |= d == dst);
        found
    }

    /// Number of edge shards the store exposes for parallel streaming.
    ///
    /// Sharded stores split their edge stream into `num_shards` pieces
    /// whose concatenation, in shard order, is exactly the
    /// [`stream_edges`](Self::stream_edges) order — the property that lets
    /// a parallel full-processing pass reproduce the sequential result.
    /// All of one source's out-edges live in a single shard (the
    /// single-writer interval rule of paper §III.D). Default: 1.
    fn num_shards(&self) -> usize {
        1
    }

    /// The shard owning the out-edges of `v` (for routing an active
    /// frontier to shard-local workers). Vertices absent from the store
    /// may map anywhere; the result is always `< num_shards()`.
    fn shard_of_source(&self, _v: VertexId) -> usize {
        0
    }

    /// Streams the edges of one shard (see [`num_shards`](Self::num_shards)
    /// for the ordering contract). The default serves the single-shard
    /// case by streaming everything.
    fn stream_shard_edges(&self, shard: usize, f: impl FnMut(VertexId, VertexId, Weight)) {
        debug_assert!(shard < self.num_shards(), "shard {shard} out of range");
        if shard == 0 {
            self.stream_edges(f);
        }
    }
}

impl GraphStore for GraphTinker {
    fn vertex_space(&self) -> u32 {
        GraphTinker::vertex_space(self)
    }
    fn num_edges(&self) -> u64 {
        GraphTinker::num_edges(self)
    }
    fn out_degree(&self, v: VertexId) -> u32 {
        GraphTinker::out_degree(self, v)
    }
    fn for_each_out_edge(&self, v: VertexId, f: impl FnMut(VertexId, Weight)) {
        GraphTinker::for_each_out_edge(self, v, f)
    }
    fn stream_edges(&self, f: impl FnMut(VertexId, VertexId, Weight)) {
        // CAL stream when enabled; scattered main-structure scan otherwise
        // (the ablation's cost).
        GraphTinker::for_each_edge(self, f)
    }
    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        GraphTinker::contains_edge(self, src, dst)
    }
    fn num_shards(&self) -> usize {
        GraphTinker::analytics_shards(self)
    }
    fn shard_of_source(&self, v: VertexId) -> usize {
        GraphTinker::shard_of_source(self, v)
    }
    fn stream_shard_edges(&self, shard: usize, f: impl FnMut(VertexId, VertexId, Weight)) {
        GraphTinker::for_each_edge_shard(self, shard, f)
    }
}

impl GraphStore for Stinger {
    fn vertex_space(&self) -> u32 {
        Stinger::vertex_space(self)
    }
    fn num_edges(&self) -> u64 {
        Stinger::num_edges(self)
    }
    fn out_degree(&self, v: VertexId) -> u32 {
        Stinger::out_degree(self, v)
    }
    fn for_each_out_edge(&self, v: VertexId, f: impl FnMut(VertexId, Weight)) {
        Stinger::for_each_out_edge(self, v, f)
    }
    fn stream_edges(&self, f: impl FnMut(VertexId, VertexId, Weight)) {
        // STINGER has no compacted copy: "streaming" walks the per-vertex
        // chains, which is exactly why Figs. 11-13 favour GraphTinker.
        Stinger::for_each_edge(self, f)
    }
    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        Stinger::contains_edge(self, src, dst)
    }
    fn num_shards(&self) -> usize {
        Stinger::analytics_shards(self)
    }
    fn shard_of_source(&self, v: VertexId) -> usize {
        Stinger::shard_of_source(self, v)
    }
    fn stream_shard_edges(&self, shard: usize, f: impl FnMut(VertexId, VertexId, Weight)) {
        Stinger::for_each_edge_shard(self, shard, f)
    }
}

impl GraphStore for ParallelTinker {
    fn vertex_space(&self) -> u32 {
        ParallelTinker::vertex_space(self)
    }
    fn num_edges(&self) -> u64 {
        ParallelTinker::num_edges(self)
    }
    fn out_degree(&self, v: VertexId) -> u32 {
        ParallelTinker::out_degree(self, v)
    }
    fn for_each_out_edge(&self, v: VertexId, f: impl FnMut(VertexId, Weight)) {
        ParallelTinker::for_each_out_edge(self, v, f)
    }
    fn stream_edges(&self, f: impl FnMut(VertexId, VertexId, Weight)) {
        ParallelTinker::for_each_edge(self, f)
    }
    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        ParallelTinker::contains_edge(self, src, dst)
    }
    // One shard per interval-partitioned instance: each instance streams
    // its own CAL, so sharded analytics mirror the ingestion layout.
    fn num_shards(&self) -> usize {
        ParallelTinker::num_instances(self)
    }
    fn shard_of_source(&self, v: VertexId) -> usize {
        gtinker_types::partition_of(v, ParallelTinker::num_instances(self))
    }
    fn stream_shard_edges(&self, shard: usize, f: impl FnMut(VertexId, VertexId, Weight)) {
        ParallelTinker::with_instance(self, shard, |g| g.for_each_edge(f))
    }
}

impl GraphStore for StoreView<'_> {
    fn vertex_space(&self) -> u32 {
        StoreView::vertex_space(self)
    }
    fn num_edges(&self) -> u64 {
        StoreView::num_edges(self)
    }
    fn out_degree(&self, v: VertexId) -> u32 {
        StoreView::out_degree(self, v)
    }
    fn for_each_out_edge(&self, v: VertexId, f: impl FnMut(VertexId, Weight)) {
        StoreView::for_each_out_edge(self, v, f)
    }
    fn stream_edges(&self, f: impl FnMut(VertexId, VertexId, Weight)) {
        StoreView::for_each_edge(self, f)
    }
    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        StoreView::contains_edge(self, src, dst)
    }
    // Same interval layout as the live store the view was pinned from:
    // one shard per replica, each streaming its own CAL.
    fn num_shards(&self) -> usize {
        StoreView::num_instances(self)
    }
    fn shard_of_source(&self, v: VertexId) -> usize {
        gtinker_types::partition_of(v, StoreView::num_instances(self))
    }
    fn stream_shard_edges(&self, shard: usize, f: impl FnMut(VertexId, VertexId, Weight)) {
        StoreView::with_instance(self, shard, |g| g.for_each_edge(f))
    }
}

impl GraphStore for ParallelStinger {
    fn vertex_space(&self) -> u32 {
        ParallelStinger::vertex_space(self)
    }
    fn num_edges(&self) -> u64 {
        ParallelStinger::num_edges(self)
    }
    fn out_degree(&self, v: VertexId) -> u32 {
        ParallelStinger::out_degree(self, v)
    }
    fn for_each_out_edge(&self, v: VertexId, f: impl FnMut(VertexId, Weight)) {
        ParallelStinger::for_each_out_edge(self, v, f)
    }
    fn stream_edges(&self, f: impl FnMut(VertexId, VertexId, Weight)) {
        ParallelStinger::for_each_edge(self, f)
    }
    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        ParallelStinger::contains_edge(self, src, dst)
    }
    fn num_shards(&self) -> usize {
        ParallelStinger::num_instances(self)
    }
    fn shard_of_source(&self, v: VertexId) -> usize {
        gtinker_types::partition_of(v, ParallelStinger::num_instances(self))
    }
    fn stream_shard_edges(&self, shard: usize, f: impl FnMut(VertexId, VertexId, Weight)) {
        ParallelStinger::with_instance(self, shard, |g| g.for_each_edge(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtinker_types::{Edge, EdgeBatch};

    fn sample_batch() -> EdgeBatch {
        EdgeBatch::inserts(&[Edge::new(0, 1, 5), Edge::new(1, 2, 3), Edge::new(0, 2, 7)])
    }

    fn check_store<S: GraphStore>(s: &S) {
        assert_eq!(s.vertex_space(), 3);
        assert_eq!(s.num_edges(), 3);
        assert_eq!(s.out_degree(0), 2);
        assert_eq!(s.out_degree(2), 0);
        let mut outs = Vec::new();
        s.for_each_out_edge(0, |d, w| outs.push((d, w)));
        outs.sort_unstable();
        assert_eq!(outs, vec![(1, 5), (2, 7)]);
        let mut all = Vec::new();
        s.stream_edges(|a, b, w| all.push((a, b, w)));
        all.sort_unstable();
        assert_eq!(all, vec![(0, 1, 5), (0, 2, 7), (1, 2, 3)]);
        assert!(s.has_edge(0, 1));
        assert!(!s.has_edge(1, 0));
        assert!(!s.has_edge(9, 9));
    }

    /// Verifies the sharding contract: concatenating the shard streams in
    /// order reproduces `stream_edges` exactly, and every streamed source
    /// is routed back to the shard that streamed it.
    fn check_sharding<S: GraphStore>(s: &S) {
        let mut whole = Vec::new();
        s.stream_edges(|a, b, w| whole.push((a, b, w)));
        let mut cat = Vec::new();
        for shard in 0..s.num_shards() {
            s.stream_shard_edges(shard, |a, b, w| {
                assert_eq!(s.shard_of_source(a), shard, "source {a} routed off-shard");
                cat.push((a, b, w));
            });
        }
        assert_eq!(cat, whole, "shard concatenation must equal the full stream");
    }

    fn bigger_batch() -> EdgeBatch {
        EdgeBatch::inserts(
            &(0..500u32).map(|i| Edge::new(i % 61, (i * 13) % 67, i + 1)).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn graphtinker_implements_store() {
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&sample_batch());
        check_store(&g);
    }

    #[test]
    fn sharded_streaming_contract_holds_for_all_stores() {
        for shards in [1usize, 2, 3, 4, 7] {
            let mut g = GraphTinker::with_defaults();
            g.apply_batch(&bigger_batch());
            g.set_analytics_shards(shards);
            check_sharding(&g);

            let mut no_cal = GraphTinker::new(gtinker_types::TinkerConfig {
                enable_cal: false,
                ..Default::default()
            })
            .unwrap();
            no_cal.apply_batch(&bigger_batch());
            no_cal.set_analytics_shards(shards);
            check_sharding(&no_cal);

            let mut s = Stinger::with_defaults();
            s.apply_batch(&bigger_batch());
            s.set_analytics_shards(shards);
            check_sharding(&s);

            let mut csr_src = GraphTinker::with_defaults();
            csr_src.apply_batch(&bigger_batch());
            let mut csr = crate::CsrSnapshot::build(&csr_src);
            csr.set_analytics_shards(shards);
            check_sharding(&csr);

            let pt = ParallelTinker::new(Default::default(), shards).unwrap();
            pt.apply_batch(&bigger_batch());
            check_sharding(&pt);

            let pv = ParallelTinker::new_with_views(Default::default(), shards).unwrap();
            pv.apply_batch(&bigger_batch());
            let view = pv.pin_view().unwrap();
            check_sharding(&view);

            let mut ps = ParallelStinger::new(Default::default(), shards).unwrap();
            ps.apply_batch(&bigger_batch());
            check_sharding(&ps);
        }
    }

    #[test]
    fn sharding_survives_deletions_and_cal_rebuild() {
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&bigger_batch());
        let mut pairs = Vec::new();
        g.for_each_edge(|s, d, _| pairs.push((s, d)));
        // Delete two thirds of the edges to force invalid records.
        let dels: Vec<_> =
            pairs.iter().enumerate().filter(|(i, _)| i % 3 != 0).map(|(_, &p)| p).collect();
        g.apply_batch(&EdgeBatch::deletes(&dels));
        g.set_analytics_shards(4);
        check_sharding(&g);
        g.rebuild_cal();
        check_sharding(&g);
    }

    #[test]
    fn stinger_implements_store() {
        let mut s = Stinger::with_defaults();
        s.apply_batch(&sample_batch());
        check_store(&s);
    }

    #[test]
    fn parallel_tinker_implements_store() {
        let p = ParallelTinker::new(Default::default(), 2).unwrap();
        p.apply_batch(&sample_batch());
        check_store(&p);
    }

    #[test]
    fn pinned_store_view_implements_store() {
        let p = ParallelTinker::new_with_views(Default::default(), 2).unwrap();
        p.apply_batch(&sample_batch());
        let view = p.pin_view().unwrap();
        check_store(&view);
        assert_eq!(view.epoch(), 1);
    }

    #[test]
    fn parallel_stinger_implements_store() {
        let mut p = ParallelStinger::new(Default::default(), 2).unwrap();
        p.apply_batch(&sample_batch());
        check_store(&p);
    }
}
