//! A vertex-centric engine variant — the paper's stated future work
//! ("Future work on GraphTinker will explore the efficiency of the
//! vertex-centric model with our data structure", §IV.A).
//!
//! Where the edge-centric engine alternates synchronized processing/apply
//! phases over *edges*, this engine drives a worklist of *vertices* and
//! applies improvements immediately (asynchronous label correcting, in the
//! style of GraphLab's async mode). For the monotone min-propagation
//! programs the paper evaluates (BFS, SSSP, CC) the fixpoint is identical;
//! the work and locality profiles differ — the `vc_vs_ec` Criterion group
//! measures the trade-off over GraphTinker.

use gtinker_types::VertexId;

use crate::gas::GasProgram;
use crate::store::GraphStore;

/// Outcome summary of a vertex-centric run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VcReport {
    /// Vertices popped from the worklist (re-processing counts again).
    pub vertex_activations: u64,
    /// Edges visited.
    pub edges_processed: u64,
    /// Property updates committed.
    pub updates: u64,
}

/// Asynchronous vertex-centric engine.
///
/// Correctness requires the program to be *monotone and confluent*: `apply`
/// must only ever move a property in one improving direction regardless of
/// message arrival order (true for BFS / SSSP / CC). Programs that rely on
/// the edge-centric engine's per-iteration barrier are not supported.
pub struct VertexCentricEngine<P: GasProgram> {
    program: P,
    values: Vec<P::Value>,
    /// FIFO worklist plus membership bits to avoid duplicate entries.
    worklist: std::collections::VecDeque<VertexId>,
    queued: Vec<bool>,
}

impl<P: GasProgram> VertexCentricEngine<P> {
    /// Creates an engine for the program.
    pub fn new(program: P) -> Self {
        VertexCentricEngine {
            program,
            values: Vec::new(),
            worklist: std::collections::VecDeque::new(),
            queued: Vec::new(),
        }
    }

    /// The program driving this engine.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Committed vertex properties.
    pub fn values(&self) -> &[P::Value] {
        &self.values
    }

    fn ensure_capacity(&mut self, n: u32) {
        let n = n as usize;
        if self.values.len() < n {
            let start = self.values.len() as u32;
            self.values.extend((start..n as u32).map(|v| self.program.default_value(v)));
            self.queued.resize(n, false);
        }
    }

    fn push(&mut self, v: VertexId) {
        self.ensure_capacity(v + 1);
        if !self.queued[v as usize] {
            self.queued[v as usize] = true;
            self.worklist.push_back(v);
        }
    }

    /// Runs to fixpoint from the program's roots over a fresh state.
    pub fn run_from_roots<S: GraphStore>(&mut self, store: &S) -> VcReport {
        self.ensure_capacity(store.vertex_space());
        for (v, slot) in self.values.iter_mut().enumerate() {
            *slot = self.program.default_value(v as u32);
        }
        self.worklist.clear();
        self.queued.fill(false);
        for (v, val) in self.program.roots(store.vertex_space()) {
            self.ensure_capacity(v + 1);
            self.values[v as usize] = val;
            self.push(v);
        }
        self.drain(store)
    }

    /// Continues from the current state with extra seed vertices (monotone
    /// updates only, as with the edge-centric incremental path).
    pub fn run_incremental<S: GraphStore>(&mut self, store: &S, seeds: &[VertexId]) -> VcReport {
        self.ensure_capacity(store.vertex_space());
        for &v in seeds {
            self.push(v);
        }
        self.drain(store)
    }

    /// The asynchronous scatter loop: pop a vertex, push its value along its
    /// out-edges, commit improvements immediately, enqueue improved
    /// neighbours.
    fn drain<S: GraphStore>(&mut self, store: &S) -> VcReport {
        let mut report = VcReport::default();
        while let Some(v) = self.worklist.pop_front() {
            self.queued[v as usize] = false;
            report.vertex_activations += 1;
            let sv = self.values[v as usize];
            // Collect improvements first (the store callback cannot borrow
            // self mutably), then commit.
            let mut improved: Vec<(VertexId, P::Value)> = Vec::new();
            {
                let program = &self.program;
                let values = &self.values;
                store.for_each_out_edge(v, |dst, w| {
                    report.edges_processed += 1;
                    if let Some(msg) = program.process_edge(sv, dst, w) {
                        let old = values
                            .get(dst as usize)
                            .copied()
                            .unwrap_or_else(|| program.default_value(dst));
                        if let Some(new) = program.apply(old, msg) {
                            improved.push((dst, new));
                        }
                    }
                });
            }
            for (dst, new) in improved {
                self.ensure_capacity(dst + 1);
                // Re-check: an earlier entry of this batch may already have
                // improved the value further.
                if let Some(committed) = self.program.apply(self.values[dst as usize], new) {
                    self.values[dst as usize] = committed;
                    report.updates += 1;
                    self.push(dst);
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Bfs, Cc, Sssp};
    use crate::{Engine, ModePolicy};
    use gtinker_core::GraphTinker;
    use gtinker_datasets::RmatConfig;
    use gtinker_types::{Edge, EdgeBatch};

    fn rmat_store(scale: u32, edges: u64, seed: u64) -> (GraphTinker, Vec<Edge>) {
        let edges = RmatConfig::graph500(scale, edges, seed).generate();
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&EdgeBatch::inserts(&edges));
        (g, edges)
    }

    #[test]
    fn vc_bfs_matches_edge_centric() {
        let (g, edges) = rmat_store(10, 5_000, 3);
        let root = edges[0].src;
        let mut vc = VertexCentricEngine::new(Bfs::new(root));
        vc.run_from_roots(&g);
        let mut ec = Engine::new(Bfs::new(root), ModePolicy::hybrid());
        ec.run_from_roots(&g);
        assert_eq!(vc.values(), ec.values());
    }

    #[test]
    fn vc_sssp_matches_edge_centric() {
        let (g, edges) = rmat_store(9, 4_000, 5);
        let root = edges[0].src;
        let mut vc = VertexCentricEngine::new(Sssp::new(root));
        vc.run_from_roots(&g);
        let mut ec = Engine::new(Sssp::new(root), ModePolicy::AlwaysIncremental);
        ec.run_from_roots(&g);
        assert_eq!(vc.values(), ec.values());
    }

    #[test]
    fn vc_cc_matches_edge_centric() {
        let edges = RmatConfig::graph500(9, 3_000, 7).generate();
        let mut batch = EdgeBatch::with_capacity(edges.len() * 2);
        for e in &edges {
            batch.push_insert(*e);
            batch.push_insert(e.reversed());
        }
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&batch);
        let mut vc = VertexCentricEngine::new(Cc::new());
        vc.run_from_roots(&g);
        let mut ec = Engine::new(Cc::new(), ModePolicy::AlwaysFull);
        ec.run_from_roots(&g);
        assert_eq!(vc.values(), ec.values());
    }

    #[test]
    fn vc_incremental_continues() {
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&EdgeBatch::inserts(&[Edge::unit(0, 1), Edge::unit(1, 2)]));
        let mut vc = VertexCentricEngine::new(Bfs::new(0));
        vc.run_from_roots(&g);
        assert_eq!(vc.values()[2], 2);
        // Add a shortcut; reactivate its source.
        g.apply_batch(&EdgeBatch::inserts(&[Edge::unit(0, 2), Edge::unit(2, 3)]));
        vc.run_incremental(&g, &[0, 2]);
        assert_eq!(vc.values()[2], 1);
        assert_eq!(vc.values()[3], 2);
    }

    #[test]
    fn vc_report_counts_work() {
        let mut g = GraphTinker::with_defaults();
        g.apply_batch(&EdgeBatch::inserts(&[Edge::unit(0, 1), Edge::unit(1, 2)]));
        let mut vc = VertexCentricEngine::new(Bfs::new(0));
        let r = vc.run_from_roots(&g);
        assert_eq!(r.updates, 2, "two vertices reached");
        assert!(r.vertex_activations >= 3);
        assert_eq!(r.edges_processed, 2);
    }

    #[test]
    fn vc_empty_graph() {
        let g = GraphTinker::with_defaults();
        let mut vc = VertexCentricEngine::new(Bfs::new(0));
        let r = vc.run_from_roots(&g);
        assert_eq!(r.edges_processed, 0);
    }
}
