//! [`DurableTinker`]: a [`GraphTinker`] whose updates survive crashes.
//!
//! The write path is WAL-first: a batch is appended (and synced, per
//! policy) *before* it touches the in-memory store, so an acknowledged
//! [`apply_batch`](DurableTinker::apply_batch) is recoverable by
//! definition. Snapshots fold the log into a single checksummed image and
//! prune segments the image fully covers, bounding recovery time by the
//! snapshot interval rather than the lifetime of the graph.

use std::path::{Path, PathBuf};

use gtinker_core::GraphTinker;
use gtinker_types::{EdgeBatch, TinkerConfig};

use crate::format::Result;
use crate::recover::{recover_tinker_with_scan, RecoveryReport};
use crate::snapshot::write_tinker_snapshot;
use crate::wal::{prune_segments, WalOptions, WalWriter};

/// A [`GraphTinker`] paired with a WAL and snapshot directory.
///
/// All mutation goes through [`apply_batch`](Self::apply_batch) so the log
/// never lags the store; the store itself is reachable read-only via
/// [`store`](Self::store).
pub struct DurableTinker {
    store: GraphTinker,
    wal: WalWriter,
    dir: PathBuf,
}

impl DurableTinker {
    /// Opens (or creates) a durable store in `dir`, recovering whatever a
    /// previous process — cleanly shut down or not — left behind. Any torn
    /// WAL tail is truncated on disk so new appends extend a valid log.
    /// `default_config` is used only when no snapshot exists yet.
    pub fn open(
        dir: &Path,
        default_config: TinkerConfig,
        wal_opts: WalOptions,
    ) -> Result<(Self, RecoveryReport)> {
        let (mut wal, scan) = WalWriter::open(dir, wal_opts)?;
        let (store, report) = recover_tinker_with_scan(dir, &scan, default_config)?;
        // A snapshot newer than the surviving log (its records were lost
        // to a tear after being folded in): restart the log at the
        // snapshot so new records are not shadowed by it.
        wal.reset_to(report.snapshot_lsn)?;
        Ok((DurableTinker { store, wal, dir: dir.to_path_buf() }, report))
    }

    /// The underlying store, read-only.
    pub fn store(&self) -> &GraphTinker {
        &self.store
    }

    /// Consumes the wrapper, returning the in-memory store.
    pub fn into_store(self) -> GraphTinker {
        self.store
    }

    /// The persistence directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// LSN the next batch will be logged at (= batches applied so far).
    pub fn next_lsn(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// Logs `batch`, then applies it to the store. Returns the batch's
    /// LSN. If the append fails, the store is untouched.
    pub fn apply_batch(&mut self, batch: &EdgeBatch) -> Result<u64> {
        let lsn = self.wal.append(batch)?;
        self.store.apply_batch(batch);
        Ok(lsn)
    }

    /// Forces logged batches to stable storage (for `SyncPolicy::Never` /
    /// `EveryN` callers at a consistency point).
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    /// Snapshots the current state at the current LSN and prunes WAL
    /// segments the snapshot fully covers. Returns the snapshot path.
    pub fn snapshot(&mut self) -> Result<PathBuf> {
        self.wal.sync()?;
        let lsn = self.wal.next_lsn();
        let path = write_tinker_snapshot(&self.dir, &self.store, lsn)?;
        prune_segments(&self.dir, lsn)?;
        Ok(path)
    }
}

impl std::fmt::Debug for DurableTinker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableTinker")
            .field("dir", &self.dir)
            .field("next_lsn", &self.wal.next_lsn())
            .field("num_edges", &self.store.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtinker_types::Edge;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gtinker_dur_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn batch(i: u32) -> EdgeBatch {
        let mut b = EdgeBatch::new();
        for j in 0..5 {
            b.push_insert(Edge::new(i % 23, (i * 3 + j) % 71, j + 1));
        }
        b
    }

    fn edge_set(g: &GraphTinker) -> Vec<(u32, u32, u32)> {
        let mut v = Vec::new();
        g.for_each_edge_main(|s, d, w| v.push((s, d, w)));
        v.sort_unstable();
        v
    }

    #[test]
    fn open_apply_reopen_recovers_everything() {
        let dir = tmpdir("reopen");
        let (mut d, report) =
            DurableTinker::open(&dir, TinkerConfig::default(), WalOptions::default()).unwrap();
        assert_eq!(report.next_lsn, 0);
        for i in 0..12u32 {
            assert_eq!(d.apply_batch(&batch(i)).unwrap(), i as u64);
        }
        let live = edge_set(d.store());
        drop(d);
        let (d, report) =
            DurableTinker::open(&dir, TinkerConfig::default(), WalOptions::default()).unwrap();
        assert_eq!(report.replayed_records, 12);
        assert_eq!(d.next_lsn(), 12);
        assert_eq!(edge_set(d.store()), live);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_prunes_and_later_opens_replay_less() {
        let dir = tmpdir("snap");
        let opts = WalOptions { segment_bytes: 200, ..WalOptions::default() };
        let (mut d, _) = DurableTinker::open(&dir, TinkerConfig::default(), opts).unwrap();
        for i in 0..10u32 {
            d.apply_batch(&batch(i)).unwrap();
        }
        let snap = d.snapshot().unwrap();
        assert!(snap.exists());
        for i in 10..14u32 {
            d.apply_batch(&batch(i)).unwrap();
        }
        let live = edge_set(d.store());
        drop(d);
        let (d, report) = DurableTinker::open(&dir, TinkerConfig::default(), opts).unwrap();
        assert_eq!(report.snapshot_lsn, 10);
        assert_eq!(report.replayed_records, 4, "only post-snapshot records replay");
        assert_eq!(edge_set(d.store()), live);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_log_behind_snapshot_does_not_shadow_new_appends() {
        let dir = tmpdir("shadow");
        let (mut d, _) =
            DurableTinker::open(&dir, TinkerConfig::default(), WalOptions::default()).unwrap();
        for i in 0..8u32 {
            d.apply_batch(&batch(i)).unwrap();
        }
        d.snapshot().unwrap();
        drop(d);
        // Destroy the (pruned, now empty-tail) log entirely: the snapshot
        // at lsn 8 is newer than the surviving log (nothing).
        for (_, p) in crate::wal::list_segments(&dir).unwrap() {
            fs::remove_file(p).unwrap();
        }
        let (mut d, report) =
            DurableTinker::open(&dir, TinkerConfig::default(), WalOptions::default()).unwrap();
        assert_eq!(report.snapshot_lsn, 8);
        // New appends must land at lsn >= 8, not at 0 where recovery
        // would skip them as snapshot-covered.
        assert_eq!(d.apply_batch(&batch(8)).unwrap(), 8);
        let live = edge_set(d.store());
        drop(d);
        let (d, report) =
            DurableTinker::open(&dir, TinkerConfig::default(), WalOptions::default()).unwrap();
        assert_eq!(report.replayed_records, 1);
        assert_eq!(edge_set(d.store()), live);
        fs::remove_dir_all(&dir).ok();
    }
}
