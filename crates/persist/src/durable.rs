//! [`DurableTinker`]: a [`GraphTinker`] whose updates survive crashes.
//!
//! The write path is WAL-first: a batch is appended (and synced, per
//! policy) *before* it is acknowledged, so an acknowledged
//! [`apply_batch`](DurableTinker::apply_batch) is recoverable by
//! definition. Snapshots fold the log into a single checksummed image and
//! prune segments the image fully covers, bounding recovery time by the
//! snapshot interval rather than the lifetime of the graph.
//!
//! # Pipelined group commit
//!
//! In the default (inline) mode every `apply_batch` serializes WAL
//! encode/append/fsync ahead of the in-memory apply, so the store idles
//! during the disk I/O and the disk idles during the apply. Enabling
//! [`set_pipelined`](DurableTinker::set_pipelined) moves the [`WalWriter`]
//! onto a dedicated thread and overlaps the two stages:
//!
//! ```text
//! wal thread : | append k | append k+1 | append k+2 |
//! caller     : |  (wait)  |  apply k   | apply k+1  |   <- one batch behind
//!                ack k ----^   ack k+1 ---^
//! ```
//!
//! `apply_batch(k+1)` hands batch *k+1* to the WAL thread, applies the
//! *previously acknowledged* batch *k* to the store while the log I/O for
//! *k+1* is in flight, and only then blocks for *k+1*'s durable
//! acknowledgement. Two invariants survive the overlap:
//!
//! 1. **WAL-first acknowledgement**: `apply_batch` returns only after the
//!    batch's record is durable per the sync policy — a batch is never
//!    acked before it could be recovered.
//! 2. **The store never runs ahead of the acked log**: only acknowledged
//!    batches are applied in memory, so a failed append leaves the store
//!    exactly at the acked prefix (the in-memory state lags the log by at
//!    most the one pending batch, which [`sync`](DurableTinker::sync),
//!    [`snapshot`](DurableTinker::snapshot) and reads through
//!    [`store`](DurableTinker::store) fold in on demand... see below).
//!
//! Because the store may lag by the pending batch between calls, `store()`
//! is exact only after a [`sync`](DurableTinker::sync) (or any
//! `set_pipelined(false)` / [`snapshot`](DurableTinker::snapshot)); the
//! mutating entry points fold the pending batch in themselves.

use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use gtinker_core::GraphTinker;
use gtinker_types::{EdgeBatch, TinkerConfig};

use crate::format::{PersistError, Result};
use crate::recover::{recover_tinker_with_scan, RecoveryReport};
use crate::snapshot::write_tinker_snapshot;
use crate::wal::{prune_segments, WalOptions, WalWriter};

enum WalCmd {
    /// Append one batch; acked with its LSN once durable per policy.
    Append(Arc<EdgeBatch>),
    /// Force buffered records to disk; acked with the next LSN.
    Sync,
}

/// The WAL writer, moved onto its own thread for pipelined group commit.
/// Commands are processed in order; each is acknowledged on `ack_rx`
/// only after the corresponding disk work finished.
struct WalThread {
    tx: Option<Sender<WalCmd>>,
    ack_rx: Receiver<Result<u64>>,
    handle: Option<JoinHandle<WalWriter>>,
}

impl WalThread {
    fn spawn(mut wal: WalWriter) -> Self {
        let (tx, rx) = std::sync::mpsc::channel::<WalCmd>();
        let (ack_tx, ack_rx) = std::sync::mpsc::channel::<Result<u64>>();
        let handle = std::thread::Builder::new()
            .name("gtinker-wal".into())
            .spawn(move || {
                while let Ok(cmd) = rx.recv() {
                    let resp = match cmd {
                        WalCmd::Append(batch) => wal.append(&batch),
                        WalCmd::Sync => wal.sync().map(|()| wal.next_lsn()),
                    };
                    if ack_tx.send(resp).is_err() {
                        break;
                    }
                }
                wal
            })
            .expect("spawn wal thread");
        WalThread { tx: Some(tx), ack_rx, handle: Some(handle) }
    }

    fn send(&self, cmd: WalCmd) -> Result<()> {
        match &self.tx {
            Some(tx) if tx.send(cmd).is_ok() => Ok(()),
            _ => Err(PersistError::Io("wal thread exited".into())),
        }
    }

    fn recv_ack(&self) -> Result<u64> {
        self.ack_rx.recv().map_err(|_| PersistError::Io("wal thread exited".into()))?
    }

    /// Shuts the thread down and returns the writer.
    fn join(mut self) -> Result<WalWriter> {
        self.tx.take();
        let handle = self.handle.take().expect("wal thread joined twice");
        handle.join().map_err(|_| PersistError::Io("wal thread panicked".into()))
    }
}

impl Drop for WalThread {
    /// Closes the command queue and joins, so queued appends still reach
    /// the log (and the segment file is closed) before the writer is lost.
    fn drop(&mut self) {
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// A [`GraphTinker`] paired with a WAL and snapshot directory.
///
/// All mutation goes through [`apply_batch`](Self::apply_batch) so the log
/// never lags the store; the store itself is reachable read-only via
/// [`store`](Self::store).
pub struct DurableTinker {
    store: GraphTinker,
    /// Inline mode: the writer, owned directly. Exactly one of
    /// `wal`/`wal_thread` is `Some`.
    wal: Option<WalWriter>,
    /// Pipelined mode: the writer, owned by its thread.
    wal_thread: Option<WalThread>,
    /// Pipelined mode: the youngest *acknowledged* batch, durable in the
    /// log but not yet applied to the in-memory store.
    pending: Option<Arc<EdgeBatch>>,
    /// Mirror of the writer's next LSN while it lives on the WAL thread.
    next_lsn: u64,
    dir: PathBuf,
}

impl DurableTinker {
    /// Opens (or creates) a durable store in `dir`, recovering whatever a
    /// previous process — cleanly shut down or not — left behind. Any torn
    /// WAL tail is truncated on disk so new appends extend a valid log.
    /// `default_config` is used only when no snapshot exists yet.
    pub fn open(
        dir: &Path,
        default_config: TinkerConfig,
        wal_opts: WalOptions,
    ) -> Result<(Self, RecoveryReport)> {
        let (mut wal, scan) = WalWriter::open(dir, wal_opts)?;
        let (store, report) = recover_tinker_with_scan(dir, &scan, default_config)?;
        // A snapshot newer than the surviving log (its records were lost
        // to a tear after being folded in): restart the log at the
        // snapshot so new records are not shadowed by it.
        wal.reset_to(report.snapshot_lsn)?;
        let next_lsn = wal.next_lsn();
        let d = DurableTinker {
            store,
            wal: Some(wal),
            wal_thread: None,
            pending: None,
            next_lsn,
            dir: dir.to_path_buf(),
        };
        Ok((d, report))
    }

    /// Whether pipelined group commit is active.
    pub fn is_pipelined(&self) -> bool {
        self.wal_thread.is_some()
    }

    /// Switches between inline (`false`, the default) and pipelined
    /// (`true`) group commit. Disabling drains the pipeline: the pending
    /// batch is applied and the WAL thread is joined, so the store and log
    /// are exact when this returns. Enabling/disabling an already-matching
    /// mode is a no-op.
    pub fn set_pipelined(&mut self, enabled: bool) -> Result<()> {
        if enabled == self.is_pipelined() {
            return Ok(());
        }
        if enabled {
            let wal = self.wal.take().expect("inline mode owns the writer");
            self.next_lsn = wal.next_lsn();
            self.wal_thread = Some(WalThread::spawn(wal));
        } else {
            self.apply_pending();
            let thread = self.wal_thread.take().expect("pipelined mode owns the thread");
            let wal = thread.join()?;
            self.next_lsn = wal.next_lsn();
            self.wal = Some(wal);
        }
        Ok(())
    }

    /// Folds the pending (acknowledged, durable) batch into the store.
    fn apply_pending(&mut self) {
        if let Some(batch) = self.pending.take() {
            let _t = gtinker_core::trace::span_arg(
                gtinker_core::SpanId::DurablePendingApply,
                batch.len() as u64,
            );
            self.store.apply_batch(&batch);
        }
    }

    /// The underlying store, read-only. In pipelined mode the in-memory
    /// state may lag the log by the one pending batch; call
    /// [`sync`](Self::sync) first for an exact read.
    pub fn store(&self) -> &GraphTinker {
        &self.store
    }

    /// Consumes the wrapper, returning the in-memory store with every
    /// acknowledged batch applied.
    pub fn into_store(mut self) -> GraphTinker {
        self.apply_pending();
        self.store
    }

    /// The persistence directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// LSN the next batch will be logged at (= batches applied so far).
    pub fn next_lsn(&self) -> u64 {
        match &self.wal {
            Some(wal) => wal.next_lsn(),
            None => self.next_lsn,
        }
    }

    /// Logs `batch`, applies it, and returns the batch's LSN once the
    /// record is durable per the sync policy.
    ///
    /// Inline mode appends, then applies. Pipelined mode hands the batch
    /// to the WAL thread, applies the *previous* acknowledged batch while
    /// the append/sync is in flight, then blocks for this batch's durable
    /// acknowledgement (it becomes the new pending batch). Either way the
    /// store only ever contains acknowledged batches: if the append
    /// fails, the failed batch never touches the store.
    pub fn apply_batch(&mut self, batch: &EdgeBatch) -> Result<u64> {
        if let Some(wal) = &mut self.wal {
            let lsn = wal.append(batch)?;
            self.store.apply_batch(batch);
            return Ok(lsn);
        }
        let batch = Arc::new(batch.clone());
        let send = {
            let thread = self.wal_thread.as_ref().expect("pipelined mode owns the thread");
            thread.send(WalCmd::Append(Arc::clone(&batch)))
        };
        send?;
        // Overlap: fold in the previously acked batch while the WAL
        // thread encodes, appends and (per policy) syncs this one.
        self.apply_pending();
        let lsn = {
            let _t = gtinker_core::trace::span(gtinker_core::SpanId::DurableAckWait);
            self.wal_thread.as_ref().expect("pipelined").recv_ack()?
        };
        self.pending = Some(batch);
        self.next_lsn = lsn + 1;
        Ok(lsn)
    }

    /// Forces logged batches to stable storage (for `SyncPolicy::Never` /
    /// `EveryN` callers at a consistency point). In pipelined mode this is
    /// also a pipeline barrier: the pending batch is applied, so store and
    /// log agree when it returns.
    pub fn sync(&mut self) -> Result<()> {
        match &mut self.wal {
            Some(wal) => wal.sync(),
            None => {
                self.apply_pending();
                let thread = self.wal_thread.as_ref().expect("pipelined mode owns the thread");
                thread.send(WalCmd::Sync)?;
                self.next_lsn = thread.recv_ack()?;
                Ok(())
            }
        }
    }

    /// Snapshots the current state at the current LSN and prunes WAL
    /// segments the snapshot fully covers. Returns the snapshot path.
    /// (A pipeline barrier: in pipelined mode the pending batch is folded
    /// in and synced before the image is written.)
    pub fn snapshot(&mut self) -> Result<PathBuf> {
        self.sync()?;
        let lsn = self.next_lsn();
        let path = write_tinker_snapshot(&self.dir, &self.store, lsn)?;
        prune_segments(&self.dir, lsn)?;
        Ok(path)
    }
}

impl std::fmt::Debug for DurableTinker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableTinker")
            .field("dir", &self.dir)
            .field("next_lsn", &self.next_lsn())
            .field("pipelined", &self.is_pipelined())
            .field("num_edges", &self.store.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::recover_tinker;
    use crate::wal::SyncPolicy;
    use gtinker_types::Edge;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gtinker_dur_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn batch(i: u32) -> EdgeBatch {
        let mut b = EdgeBatch::new();
        for j in 0..5 {
            b.push_insert(Edge::new(i % 23, (i * 3 + j) % 71, j + 1));
        }
        b
    }

    fn edge_set(g: &GraphTinker) -> Vec<(u32, u32, u32)> {
        let mut v = Vec::new();
        g.for_each_edge_main(|s, d, w| v.push((s, d, w)));
        v.sort_unstable();
        v
    }

    /// Copies every regular file of `src` into `dst` — a crash image of
    /// the persistence directory at a moment in time.
    fn copy_dir(src: &Path, dst: &Path) {
        fs::create_dir_all(dst).unwrap();
        for entry in fs::read_dir(src).unwrap() {
            let entry = entry.unwrap();
            if entry.file_type().unwrap().is_file() {
                fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
            }
        }
    }

    #[test]
    fn open_apply_reopen_recovers_everything() {
        let dir = tmpdir("reopen");
        let (mut d, report) =
            DurableTinker::open(&dir, TinkerConfig::default(), WalOptions::default()).unwrap();
        assert_eq!(report.next_lsn, 0);
        for i in 0..12u32 {
            assert_eq!(d.apply_batch(&batch(i)).unwrap(), i as u64);
        }
        let live = edge_set(d.store());
        drop(d);
        let (d, report) =
            DurableTinker::open(&dir, TinkerConfig::default(), WalOptions::default()).unwrap();
        assert_eq!(report.replayed_records, 12);
        assert_eq!(d.next_lsn(), 12);
        assert_eq!(edge_set(d.store()), live);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_prunes_and_later_opens_replay_less() {
        let dir = tmpdir("snap");
        let opts = WalOptions { segment_bytes: 200, ..WalOptions::default() };
        let (mut d, _) = DurableTinker::open(&dir, TinkerConfig::default(), opts).unwrap();
        for i in 0..10u32 {
            d.apply_batch(&batch(i)).unwrap();
        }
        let snap = d.snapshot().unwrap();
        assert!(snap.exists());
        for i in 10..14u32 {
            d.apply_batch(&batch(i)).unwrap();
        }
        let live = edge_set(d.store());
        drop(d);
        let (d, report) = DurableTinker::open(&dir, TinkerConfig::default(), opts).unwrap();
        assert_eq!(report.snapshot_lsn, 10);
        assert_eq!(report.replayed_records, 4, "only post-snapshot records replay");
        assert_eq!(edge_set(d.store()), live);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_log_behind_snapshot_does_not_shadow_new_appends() {
        let dir = tmpdir("shadow");
        let (mut d, _) =
            DurableTinker::open(&dir, TinkerConfig::default(), WalOptions::default()).unwrap();
        for i in 0..8u32 {
            d.apply_batch(&batch(i)).unwrap();
        }
        d.snapshot().unwrap();
        drop(d);
        // Destroy the (pruned, now empty-tail) log entirely: the snapshot
        // at lsn 8 is newer than the surviving log (nothing).
        for (_, p) in crate::wal::list_segments(&dir).unwrap() {
            fs::remove_file(p).unwrap();
        }
        let (mut d, report) =
            DurableTinker::open(&dir, TinkerConfig::default(), WalOptions::default()).unwrap();
        assert_eq!(report.snapshot_lsn, 8);
        // New appends must land at lsn >= 8, not at 0 where recovery
        // would skip them as snapshot-covered.
        assert_eq!(d.apply_batch(&batch(8)).unwrap(), 8);
        let live = edge_set(d.store());
        drop(d);
        let (d, report) =
            DurableTinker::open(&dir, TinkerConfig::default(), WalOptions::default()).unwrap();
        assert_eq!(report.replayed_records, 1);
        assert_eq!(edge_set(d.store()), live);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pipelined_matches_inline_and_reopens() {
        let a = tmpdir("pipe_inline");
        let b = tmpdir("pipe_pipelined");
        let (mut inline, _) =
            DurableTinker::open(&a, TinkerConfig::default(), WalOptions::default()).unwrap();
        let (mut piped, _) =
            DurableTinker::open(&b, TinkerConfig::default(), WalOptions::default()).unwrap();
        piped.set_pipelined(true).unwrap();
        assert!(piped.is_pipelined());
        for i in 0..20u32 {
            let want = inline.apply_batch(&batch(i)).unwrap();
            assert_eq!(piped.apply_batch(&batch(i)).unwrap(), want);
        }
        piped.sync().unwrap();
        assert_eq!(edge_set(piped.store()), edge_set(inline.store()));
        assert_eq!(piped.next_lsn(), inline.next_lsn());
        drop(piped);
        let (back, report) =
            DurableTinker::open(&b, TinkerConfig::default(), WalOptions::default()).unwrap();
        assert_eq!(report.replayed_records, 20);
        assert_eq!(edge_set(back.store()), edge_set(inline.store()));
        fs::remove_dir_all(&a).ok();
        fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn pipelined_never_acks_before_durable() {
        // Crash injection at the overlap boundary: immediately after each
        // acknowledged apply_batch — the instant the pending batch is
        // durable in the log but not yet folded into the in-memory store —
        // image the directory as if the process lost power, and recover
        // from the image. Every acknowledged batch must come back.
        let dir = tmpdir("pipeack");
        let opts = WalOptions { sync: SyncPolicy::EveryRecord, ..WalOptions::default() };
        let (mut d, _) = DurableTinker::open(&dir, TinkerConfig::default(), opts).unwrap();
        d.set_pipelined(true).unwrap();
        let mut model = GraphTinker::with_defaults();
        for i in 0..10u32 {
            let b = batch(i);
            assert_eq!(d.apply_batch(&b).unwrap(), i as u64, "ack carries the batch LSN");
            model.apply_batch(&b);
            let crash = tmpdir(&format!("pipeack_crash{i}"));
            copy_dir(&dir, &crash);
            let (g, report) = recover_tinker(&crash, TinkerConfig::default()).unwrap();
            assert_eq!(
                report.replayed_records,
                (i + 1) as u64,
                "acked batch {i} missing from the log at its ack boundary"
            );
            assert_eq!(edge_set(&g), edge_set(&model), "recovered state != acked prefix");
            fs::remove_dir_all(&crash).ok();
        }
        d.sync().unwrap();
        assert_eq!(edge_set(d.store()), edge_set(&model));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pipelined_snapshot_folds_pending_batch_in() {
        let dir = tmpdir("pipesnap");
        let (mut d, _) =
            DurableTinker::open(&dir, TinkerConfig::default(), WalOptions::default()).unwrap();
        d.set_pipelined(true).unwrap();
        for i in 0..6u32 {
            d.apply_batch(&batch(i)).unwrap();
        }
        d.snapshot().unwrap();
        drop(d);
        let (d, report) =
            DurableTinker::open(&dir, TinkerConfig::default(), WalOptions::default()).unwrap();
        assert_eq!(report.snapshot_lsn, 6, "snapshot must cover the pending batch");
        assert_eq!(report.replayed_records, 0);
        assert_eq!(d.next_lsn(), 6);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn toggling_pipelined_off_drains_and_restores_inline_mode() {
        let dir = tmpdir("pipetoggle");
        let (mut d, _) =
            DurableTinker::open(&dir, TinkerConfig::default(), WalOptions::default()).unwrap();
        d.set_pipelined(true).unwrap();
        d.apply_batch(&batch(0)).unwrap();
        assert_eq!(d.store().num_edges(), 0, "pending batch lags the store");
        d.set_pipelined(false).unwrap();
        assert!(!d.is_pipelined());
        assert_eq!(d.store().num_edges(), 5, "drain folds the pending batch in");
        d.apply_batch(&batch(1)).unwrap();
        assert_eq!(d.next_lsn(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn into_store_applies_pending_batch() {
        let dir = tmpdir("pipeinto");
        let (mut d, _) =
            DurableTinker::open(&dir, TinkerConfig::default(), WalOptions::default()).unwrap();
        d.set_pipelined(true).unwrap();
        d.apply_batch(&batch(3)).unwrap();
        let g = d.into_store();
        assert_eq!(g.num_edges(), 5);
        fs::remove_dir_all(&dir).ok();
    }
}
