//! Fault injection for durability tests.
//!
//! Crash-consistency claims are only as good as the crashes they were
//! tested against. This module provides two ways to manufacture the
//! failure modes a real system sees:
//!
//! * [`FaultWriter`] wraps any [`io::Write`] and corrupts the byte stream
//!   *as it is written* — cutting it off at an offset (process killed
//!   mid-write), silently dropping a span (a short `write(2)` the caller
//!   never noticed), or flipping a bit (media/bus corruption).
//! * [`corrupt_file`] applies the same faults to bytes already on disk,
//!   which is how the crash-point sweep in the recovery tests simulates
//!   "power failed after byte N of the log".
//!
//! Both are deliberately deterministic: a fault is named by its byte
//! offset, so a failing crash point reproduces exactly.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use crate::format::Result;

/// A single injected fault, addressed by absolute byte offset in the
/// stream or file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Everything from byte `at` onward is lost (crash / power cut).
    Truncate {
        /// Offset of the first lost byte.
        at: u64,
    },
    /// `drop` bytes starting at `at` vanish; later bytes shift down
    /// (a short write whose error was swallowed).
    ShortWrite {
        /// Offset of the first dropped byte.
        at: u64,
        /// How many bytes are dropped.
        drop: u64,
    },
    /// Bit `bit` (0–7) of the byte at `at` is inverted (silent media
    /// corruption).
    BitFlip {
        /// Offset of the corrupted byte.
        at: u64,
        /// Which bit to invert.
        bit: u8,
    },
}

/// Applies `fault` to a byte vector in place (the file-at-rest view).
pub fn apply_fault(data: &mut Vec<u8>, fault: Fault) {
    match fault {
        Fault::Truncate { at } => {
            let at = (at as usize).min(data.len());
            data.truncate(at);
        }
        Fault::ShortWrite { at, drop } => {
            let at = (at as usize).min(data.len());
            let end = at.saturating_add(drop as usize).min(data.len());
            data.drain(at..end);
        }
        Fault::BitFlip { at, bit } => {
            if let Some(b) = data.get_mut(at as usize) {
                *b ^= 1 << (bit & 7);
            }
        }
    }
}

/// Rewrites the file at `path` with `fault` applied to its bytes.
pub fn corrupt_file(path: &Path, fault: Fault) -> Result<()> {
    let mut data = fs::read(path)?;
    apply_fault(&mut data, fault);
    fs::write(path, &data)?;
    Ok(())
}

/// An [`io::Write`] adapter that injects one [`Fault`] into the stream
/// passing through it.
///
/// After a [`Fault::Truncate`] trips, every further write reports success
/// while writing nothing — mimicking a process that keeps running after
/// the plug was pulled on its storage. Byte accounting (`written`) tracks
/// the *logical* stream position, so the caller's offsets stay meaningful.
#[derive(Debug)]
pub struct FaultWriter<W: Write> {
    inner: W,
    fault: Fault,
    /// Logical bytes the caller has pushed through.
    written: u64,
    /// Whether the fault has already fired.
    tripped: bool,
}

impl<W: Write> FaultWriter<W> {
    /// Wraps `inner`, arming `fault`.
    pub fn new(inner: W, fault: Fault) -> Self {
        FaultWriter { inner, fault, written: 0, tripped: false }
    }

    /// Logical bytes written by the caller so far (faults included).
    pub fn logical_written(&self) -> u64 {
        self.written
    }

    /// Whether the armed fault has fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Unwraps the adapter.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let start = self.written;
        let end = start + buf.len() as u64;
        let mut out = buf.to_vec();
        match self.fault {
            Fault::Truncate { at } => {
                if self.tripped || start >= at {
                    // Storage is gone; pretend everything still works.
                    self.tripped = true;
                    self.written = end;
                    return Ok(buf.len());
                }
                if end > at {
                    self.tripped = true;
                    out.truncate((at - start) as usize);
                }
            }
            Fault::ShortWrite { at, drop } => {
                if !self.tripped && start <= at && at < end {
                    self.tripped = true;
                    let local = (at - start) as usize;
                    let stop = local.saturating_add(drop as usize).min(out.len());
                    out.drain(local..stop);
                }
            }
            Fault::BitFlip { at, bit } => {
                if !self.tripped && start <= at && at < end {
                    self.tripped = true;
                    out[(at - start) as usize] ^= 1 << (bit & 7);
                }
            }
        }
        self.inner.write_all(&out)?;
        self.written = end;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn through(fault: Fault, chunks: &[&[u8]]) -> Vec<u8> {
        let mut w = FaultWriter::new(Vec::new(), fault);
        for c in chunks {
            w.write_all(c).unwrap();
        }
        w.flush().unwrap();
        w.into_inner()
    }

    #[test]
    fn truncate_cuts_mid_chunk_and_swallows_the_rest() {
        let out = through(Fault::Truncate { at: 5 }, &[b"abcd", b"efgh", b"ijkl"]);
        assert_eq!(out, b"abcde");
    }

    #[test]
    fn truncate_at_zero_writes_nothing() {
        let out = through(Fault::Truncate { at: 0 }, &[b"abcd"]);
        assert!(out.is_empty());
    }

    #[test]
    fn short_write_drops_a_span_once() {
        let out = through(Fault::ShortWrite { at: 2, drop: 3 }, &[b"abcdef", b"ghij"]);
        assert_eq!(out, b"abfghij");
        // Only the first crossing chunk is affected.
        let out = through(Fault::ShortWrite { at: 4, drop: 100 }, &[b"abcdef", b"ghij"]);
        assert_eq!(out, b"abcdghij");
    }

    #[test]
    fn bit_flip_inverts_exactly_one_bit() {
        let out = through(Fault::BitFlip { at: 6, bit: 0 }, &[b"abcd", b"efgh"]);
        assert_eq!(out.len(), 8);
        assert_eq!(out[6], b'g' ^ 1);
        let mut expect = b"abcdefgh".to_vec();
        expect[6] ^= 1;
        assert_eq!(out, expect);
    }

    #[test]
    fn logical_accounting_ignores_faults() {
        let mut w = FaultWriter::new(Vec::new(), Fault::Truncate { at: 1 });
        w.write_all(b"abcdef").unwrap();
        assert_eq!(w.logical_written(), 6);
        assert!(w.tripped());
        assert_eq!(w.into_inner(), b"a");
    }

    #[test]
    fn apply_fault_on_buffers() {
        let base: Vec<u8> = (0..10).collect();

        let mut v = base.clone();
        apply_fault(&mut v, Fault::Truncate { at: 4 });
        assert_eq!(v, vec![0, 1, 2, 3]);

        let mut v = base.clone();
        apply_fault(&mut v, Fault::ShortWrite { at: 3, drop: 4 });
        assert_eq!(v, vec![0, 1, 2, 7, 8, 9]);

        let mut v = base.clone();
        apply_fault(&mut v, Fault::BitFlip { at: 9, bit: 7 });
        assert_eq!(v[9], 9 ^ 0x80);

        // Out-of-range faults are no-ops / clamps, never panics.
        let mut v = base.clone();
        apply_fault(&mut v, Fault::Truncate { at: 100 });
        assert_eq!(v, base);
        let mut v = base.clone();
        apply_fault(&mut v, Fault::BitFlip { at: 100, bit: 1 });
        assert_eq!(v, base);
    }

    #[test]
    fn corrupt_file_roundtrip() {
        let path = std::env::temp_dir().join(format!("gtinker_fault_file_{}", std::process::id()));
        fs::write(&path, b"0123456789").unwrap();
        corrupt_file(&path, Fault::Truncate { at: 3 }).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"012");
        fs::remove_file(&path).ok();
    }
}
