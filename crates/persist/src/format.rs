//! Low-level binary encoding shared by snapshots and the WAL: little-endian
//! fixed-width integers, a table-driven CRC-32, and bounds-checked readers.
//!
//! Everything durable in this crate is framed as `(length, checksum,
//! payload)` so a reader can always tell a torn or bit-flipped region from
//! a valid one without trusting any byte it has not verified.

use std::fmt;

/// Errors raised by the persistence layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An underlying I/O operation failed (carried as a string so the error
    /// stays `Clone + Eq`, mirroring `gtinker_types::GraphError`).
    Io(String),
    /// A file's contents failed structural validation (bad magic, bad
    /// checksum, impossible length, unknown tag). Recovery treats
    /// corruption at a log tail as truncation, not failure.
    Corrupt(String),
    /// A required file or directory was missing.
    Missing(String),
    /// A decoded configuration failed the store's own validation.
    InvalidConfig(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(m) => write!(f, "i/o error: {m}"),
            PersistError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            PersistError::Missing(m) => write!(f, "missing: {m}"),
            PersistError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e.to_string())
    }
}

impl From<gtinker_types::GraphError> for PersistError {
    fn from(e: gtinker_types::GraphError) -> Self {
        match e {
            gtinker_types::GraphError::InvalidConfig(m) => PersistError::InvalidConfig(m),
            other => PersistError::Io(other.to_string()),
        }
    }
}

/// Result alias for the persistence layer.
pub type Result<T> = std::result::Result<T, PersistError>;

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) lookup table, generated at
/// compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// An append-only byte buffer with little-endian integer writers.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Creates a writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter { buf: Vec::with_capacity(cap) }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// A bounds-checked cursor over a byte slice. Every read that would run
/// past the end returns [`PersistError::Corrupt`] instead of panicking —
/// torn files must never crash the reader.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(PersistError::Corrupt(format!(
                "short read: {what} needs {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        self.take(n, what)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard CRC-32 (IEEE) check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut data = b"graphtinker wal record payload".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_bytes(b"tail");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.bytes(4, "d").unwrap(), b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_rejects_short_reads() {
        let mut r = ByteReader::new(&[1, 2]);
        let e = r.u32("field").unwrap_err();
        assert!(matches!(e, PersistError::Corrupt(_)), "short read must be corruption: {e}");
        // Position unchanged after a failed read.
        assert_eq!(r.u8("x").unwrap(), 1);
    }

    #[test]
    fn error_display_and_conversions() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: PersistError = io.into();
        assert!(e.to_string().contains("gone"));
        let g: PersistError = gtinker_types::GraphError::InvalidConfig("bad".into()).into();
        assert!(matches!(g, PersistError::InvalidConfig(_)));
        assert!(PersistError::Missing("x".into()).to_string().contains("missing"));
    }
}
