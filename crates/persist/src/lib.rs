//! Durable ingest for the GraphTinker workspace: checksummed snapshots, a
//! write-ahead log, and crash recovery.
//!
//! The paper's GraphTinker is an in-memory structure; this crate gives it
//! a persistence story without touching the hot update path's design:
//!
//! * [`snapshot`] — versioned, section-checksummed binary images of a
//!   [`GraphTinker`](gtinker_core::GraphTinker) or
//!   [`Stinger`](gtinker_stinger::Stinger), published atomically
//!   (`.tmp` + rename), restoring to an equivalent store.
//! * [`wal`] — an append-only log of [`EdgeBatch`](gtinker_types::EdgeBatch)
//!   records with per-record CRC-32, configurable [`SyncPolicy`], and
//!   size-based segment rotation.
//! * [`recover`] — newest valid snapshot + longest-valid-prefix WAL
//!   replay; torn or bit-flipped tails are truncated, corrupt snapshots
//!   fall back to older ones.
//! * [`fault`] — deterministic crash/corruption injection
//!   (truncate-at-byte, short write, bit flip) the recovery tests sweep
//!   over every interesting offset.
//! * [`DurableTinker`] — the assembled WAL-first store: log, then apply;
//!   snapshot folds and prunes the log.
//!
//! ```no_run
//! use gtinker_persist::{DurableTinker, WalOptions};
//! use gtinker_types::{Edge, EdgeBatch, TinkerConfig};
//!
//! let dir = std::path::Path::new("graph.db");
//! let (mut store, report) =
//!     DurableTinker::open(dir, TinkerConfig::default(), WalOptions::default())?;
//! println!("recovered {} batches", report.replayed_records);
//! store.apply_batch(&EdgeBatch::inserts(&[Edge::unit(1, 2)]))?;
//! store.snapshot()?; // fold the log into an image, prune segments
//! # Ok::<(), gtinker_persist::PersistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
pub mod fault;
pub mod format;
pub mod recover;
pub mod snapshot;
pub mod wal;

pub use durable::DurableTinker;
pub use fault::{apply_fault, corrupt_file, Fault, FaultWriter};
pub use format::{crc32, PersistError, Result};
pub use recover::{recover_stinger, recover_tinker, RecoveryReport};
pub use snapshot::{
    list_snapshots, load_stinger_snapshot, load_tinker_snapshot, write_stinger_snapshot,
    write_tinker_snapshot, SnapshotEntry, StoreKind, SNAPSHOT_MAGIC,
};
pub use wal::{
    list_segments, prune_segments, replay, SyncPolicy, WalOptions, WalReplay, WalWriter, WAL_MAGIC,
};
