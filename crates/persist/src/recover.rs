//! Crash recovery: newest valid snapshot + WAL tail replay.
//!
//! The recovery invariant is simple to state: after a crash at *any* byte
//! of any persistence file, recovery reconstructs exactly the state whose
//! durability was acknowledged — every snapshot-covered record plus the
//! longest valid WAL prefix beyond it — and never fails on corruption it
//! can route around:
//!
//! 1. Snapshots are tried newest-first; a corrupt or torn snapshot is
//!    *skipped* (the previous one is still there precisely because
//!    publishing is atomic and pruning is conservative).
//! 2. The WAL is replayed by the longest-valid-prefix rule
//!    (see [`crate::wal`]); records already folded into the chosen
//!    snapshot (`lsn < snapshot_lsn`) are skipped.
//! 3. The only hard error beyond I/O is a *gap*: a log whose first
//!    surviving record is newer than the snapshot covers. That state
//!    cannot be reconstructed faithfully, so it is reported rather than
//!    papered over (it cannot arise from crashes alone — only from
//!    deleting files by hand).

use std::path::{Path, PathBuf};

use gtinker_core::GraphTinker;
use gtinker_stinger::Stinger;
use gtinker_types::{EdgeBatch, StingerConfig, TinkerConfig};

use crate::format::{PersistError, Result};
use crate::snapshot::{list_snapshots, load_stinger_snapshot, load_tinker_snapshot};
use crate::wal::{replay, WalRecord, WalReplay};

/// What a recovery pass did, for logging and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL position of the snapshot the store was rebuilt from
    /// (0 when starting from an empty store).
    pub snapshot_lsn: u64,
    /// Path of that snapshot, if one was used.
    pub snapshot_path: Option<PathBuf>,
    /// Newer snapshots that failed validation and were skipped.
    pub snapshots_skipped: usize,
    /// WAL records applied on top of the snapshot.
    pub replayed_records: u64,
    /// Whether a torn/corrupt WAL tail was cut off.
    pub wal_truncated: bool,
    /// LSN the next appended record should get
    /// (`max(snapshot_lsn, end of valid log)`).
    pub next_lsn: u64,
}

/// A loaded snapshot: the store, its LSN, and the file it came from.
type LoadedSnapshot<T> = (T, u64, PathBuf);

/// Picks the newest snapshot in `dir` that loads and verifies, skipping
/// corrupt ones. Returns `(loaded, skipped_count)`.
fn best_snapshot<T>(
    dir: &Path,
    load: impl Fn(&Path) -> Result<(T, u64)>,
) -> Result<(Option<LoadedSnapshot<T>>, usize)> {
    let mut skipped = 0;
    for entry in list_snapshots(dir)?.into_iter().rev() {
        match load(&entry.path) {
            Ok((store, lsn)) => return Ok((Some((store, lsn, entry.path)), skipped)),
            Err(PersistError::Io(m)) => return Err(PersistError::Io(m)),
            Err(_) => skipped += 1,
        }
    }
    Ok((None, skipped))
}

/// Applies the WAL records beyond `snapshot_lsn`, enforcing the no-gap
/// rule. Returns how many were applied.
fn apply_tail(
    records: &[WalRecord],
    snapshot_lsn: u64,
    mut apply: impl FnMut(&EdgeBatch),
) -> Result<u64> {
    let mut applied = 0;
    for rec in records {
        if rec.lsn < snapshot_lsn {
            continue;
        }
        if rec.lsn != snapshot_lsn + applied {
            return Err(PersistError::Corrupt(format!(
                "gap between snapshot (lsn {snapshot_lsn}) and log record {}",
                rec.lsn
            )));
        }
        apply(&rec.batch);
        applied += 1;
    }
    Ok(applied)
}

/// Shared recovery skeleton over an already-scanned log.
fn recover_with_scan<T>(
    dir: &Path,
    scan: &WalReplay,
    load: impl Fn(&Path) -> Result<(T, u64)>,
    fresh: impl FnOnce() -> Result<T>,
    apply: impl FnMut(&mut T, &EdgeBatch),
) -> Result<(T, RecoveryReport)> {
    let (best, snapshots_skipped) = best_snapshot(dir, load)?;
    let (mut store, snapshot_lsn, snapshot_path) = match best {
        Some((s, lsn, path)) => (s, lsn, Some(path)),
        None => (fresh()?, 0, None),
    };
    let mut apply = apply;
    let replayed_records = apply_tail(&scan.records, snapshot_lsn, |b| apply(&mut store, b))?;
    let report = RecoveryReport {
        snapshot_lsn,
        snapshot_path,
        snapshots_skipped,
        replayed_records,
        wal_truncated: scan.truncated,
        next_lsn: scan.next_lsn.max(snapshot_lsn),
    };
    Ok((store, report))
}

/// Recovers a [`GraphTinker`] from `dir` (snapshots and WAL segments side
/// by side). With no valid snapshot, starts from an empty store built with
/// `default_config`. Read-only: the torn tail, if any, is ignored but not
/// truncated on disk (opening a [`crate::DurableTinker`] truncates it).
pub fn recover_tinker(
    dir: &Path,
    default_config: TinkerConfig,
) -> Result<(GraphTinker, RecoveryReport)> {
    let scan = replay(dir)?;
    recover_tinker_with_scan(dir, &scan, default_config)
}

/// [`recover_tinker`] over a log scan the caller already has.
pub(crate) fn recover_tinker_with_scan(
    dir: &Path,
    scan: &WalReplay,
    default_config: TinkerConfig,
) -> Result<(GraphTinker, RecoveryReport)> {
    recover_with_scan(
        dir,
        scan,
        load_tinker_snapshot,
        || GraphTinker::new(default_config).map_err(Into::into),
        |g, b| {
            g.apply_batch(b);
        },
    )
}

/// Recovers a [`Stinger`] from `dir`, mirroring [`recover_tinker`].
pub fn recover_stinger(
    dir: &Path,
    default_config: StingerConfig,
) -> Result<(Stinger, RecoveryReport)> {
    let scan = replay(dir)?;
    recover_with_scan(
        dir,
        &scan,
        load_stinger_snapshot,
        || Stinger::new(default_config).map_err(Into::into),
        |s, b| {
            s.apply_batch(b);
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{corrupt_file, Fault};
    use crate::snapshot::write_tinker_snapshot;
    use crate::wal::{WalOptions, WalWriter};
    use gtinker_types::Edge;
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gtinker_rec_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn batch(i: u32) -> EdgeBatch {
        let mut b = EdgeBatch::new();
        for j in 0..6 {
            b.push_insert(Edge::new(i % 37, (i * 5 + j) % 101, j + 1));
        }
        if i.is_multiple_of(4) {
            b.push_delete(i % 37, (i * 5) % 101);
        }
        b
    }

    fn ground_truth(n: u32) -> GraphTinker {
        let mut g = GraphTinker::with_defaults();
        for i in 0..n {
            g.apply_batch(&batch(i));
        }
        g
    }

    fn edge_set(g: &GraphTinker) -> Vec<(u32, u32, u32)> {
        let mut v = Vec::new();
        g.for_each_edge_main(|s, d, w| v.push((s, d, w)));
        v.sort_unstable();
        v
    }

    #[test]
    fn recovers_from_wal_only() {
        let dir = tmpdir("walonly");
        let (mut w, _) = WalWriter::open(&dir, WalOptions::default()).unwrap();
        for i in 0..10u32 {
            w.append(&batch(i)).unwrap();
        }
        drop(w);
        let (g, report) = recover_tinker(&dir, TinkerConfig::default()).unwrap();
        assert_eq!(report.replayed_records, 10);
        assert_eq!(report.snapshot_lsn, 0);
        assert!(report.snapshot_path.is_none());
        assert_eq!(report.next_lsn, 10);
        assert_eq!(edge_set(&g), edge_set(&ground_truth(10)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovers_from_snapshot_plus_tail() {
        let dir = tmpdir("snaptail");
        let (mut w, _) = WalWriter::open(&dir, WalOptions::default()).unwrap();
        for i in 0..6u32 {
            w.append(&batch(i)).unwrap();
        }
        write_tinker_snapshot(&dir, &ground_truth(6), 6).unwrap();
        for i in 6..10u32 {
            w.append(&batch(i)).unwrap();
        }
        drop(w);
        let (g, report) = recover_tinker(&dir, TinkerConfig::default()).unwrap();
        assert_eq!(report.snapshot_lsn, 6);
        assert_eq!(report.replayed_records, 4);
        assert_eq!(report.next_lsn, 10);
        assert_eq!(edge_set(&g), edge_set(&ground_truth(10)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_older() {
        let dir = tmpdir("fallback");
        let (mut w, _) = WalWriter::open(&dir, WalOptions::default()).unwrap();
        for i in 0..8u32 {
            w.append(&batch(i)).unwrap();
        }
        drop(w);
        write_tinker_snapshot(&dir, &ground_truth(4), 4).unwrap();
        let newest = write_tinker_snapshot(&dir, &ground_truth(8), 8).unwrap();
        corrupt_file(&newest, Fault::BitFlip { at: 60, bit: 3 }).unwrap();
        let (g, report) = recover_tinker(&dir, TinkerConfig::default()).unwrap();
        assert_eq!(report.snapshots_skipped, 1);
        assert_eq!(report.snapshot_lsn, 4);
        assert_eq!(report.replayed_records, 4, "records 4..8 replayed on the older snapshot");
        assert_eq!(edge_set(&g), edge_set(&ground_truth(8)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_newer_than_torn_log_wins() {
        let dir = tmpdir("newer");
        let (mut w, _) = WalWriter::open(&dir, WalOptions::default()).unwrap();
        for i in 0..10u32 {
            w.append(&batch(i)).unwrap();
        }
        let seg = w.current_segment().to_path_buf();
        drop(w);
        write_tinker_snapshot(&dir, &ground_truth(10), 10).unwrap();
        // Tear the log back to ~nothing; the snapshot still covers lsn 10.
        corrupt_file(&seg, Fault::Truncate { at: 40 }).unwrap();
        let (g, report) = recover_tinker(&dir, TinkerConfig::default()).unwrap();
        assert_eq!(report.snapshot_lsn, 10);
        assert_eq!(report.replayed_records, 0);
        assert_eq!(report.next_lsn, 10);
        assert!(report.wal_truncated);
        assert_eq!(edge_set(&g), edge_set(&ground_truth(10)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_recovers_to_empty_store() {
        let dir = tmpdir("emptyrec");
        let (g, report) = recover_tinker(&dir, TinkerConfig::default()).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(report.next_lsn, 0);
        assert_eq!(report.replayed_records, 0);
    }

    #[test]
    fn gap_between_snapshot_and_log_is_an_error() {
        let dir = tmpdir("gap");
        let (mut w, _) = WalWriter::open(&dir, WalOptions::default()).unwrap();
        for i in 0..6u32 {
            w.append(&batch(i)).unwrap();
        }
        drop(w);
        // A snapshot at lsn 2 with the log's first record at lsn 4 cannot
        // be reconstructed faithfully. Manufacture it by renaming the
        // segment (only hand-editing can produce this).
        write_tinker_snapshot(&dir, &ground_truth(2), 2).unwrap();
        let segs = crate::wal::list_segments(&dir).unwrap();
        let data = fs::read(&segs[0].1).unwrap();
        fs::remove_file(&segs[0].1).unwrap();
        // Rewrite header to claim first_lsn = 4 under the matching name.
        let mut hdr = crate::format::ByteWriter::new();
        hdr.put_bytes(crate::wal::WAL_MAGIC);
        hdr.put_u64(4);
        let mut forged = hdr.into_bytes();
        // Keep record payloads; they carry lsns 0.. so replay stops at the
        // first record anyway unless we also forge lsns — simplest gap:
        // empty segment claiming to start at 4.
        let _ = data;
        fs::write(dir.join(crate::wal::segment_file_name(4)), &forged).unwrap();
        forged.clear();
        let r = recover_tinker(&dir, TinkerConfig::default());
        // An empty forged segment yields no records: snapshot wins, no gap
        // error needed. Now forge one record at lsn 4 to force the gap.
        assert!(r.is_ok());
        let rec = crate::wal::encode_record(4, &batch(4));
        let mut file_bytes = fs::read(dir.join(crate::wal::segment_file_name(4))).unwrap();
        file_bytes.extend_from_slice(&rec);
        fs::write(dir.join(crate::wal::segment_file_name(4)), &file_bytes).unwrap();
        let err = recover_tinker(&dir, TinkerConfig::default()).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "gap must be reported: {err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stinger_recovery_mirrors_tinker() {
        let dir = tmpdir("stinger");
        let (mut w, _) = WalWriter::open(&dir, WalOptions::default()).unwrap();
        for i in 0..8u32 {
            w.append(&batch(i)).unwrap();
        }
        drop(w);
        let mut truth = Stinger::with_defaults();
        for i in 0..8u32 {
            truth.apply_batch(&batch(i));
        }
        let (s, report) = recover_stinger(&dir, StingerConfig::default()).unwrap();
        assert_eq!(report.replayed_records, 8);
        assert_eq!(s.num_edges(), truth.num_edges());
        let mut a = Vec::new();
        s.for_each_edge(|x, y, z| a.push((x, y, z)));
        let mut b = Vec::new();
        truth.for_each_edge(|x, y, z| b.push((x, y, z)));
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        fs::remove_dir_all(&dir).ok();
    }
}
